// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index). Each benchmark runs one
// experiment over a shared lab — a synthetic nine-month-style trace with a
// trained PhyNet Scout — and reports the rows/series via b.Log on the
// first iteration, so `go test -bench . -benchmem` both times the harness
// and prints the reproduced results (use -v to see them).
package scouts_test

import (
	"fmt"
	"sync"
	"testing"

	"scouts/internal/core"
	"scouts/internal/evaluate"
	"scouts/internal/experiments"
	"scouts/internal/ml/forest"
	"scouts/internal/monitoring"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

// lab builds the shared benchmark world: 150 days at 12 incidents/day.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = experiments.NewLab(experiments.LabParams{
			Seed: 20200810, Days: 150, IncidentsPerDay: 12,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// logOnce prints the reproduced table/figure on the first iteration only.
func logOnce(b *testing.B, i int, r interface{ String() string }) {
	if i == 0 {
		b.Log("\n" + r.String())
	}
}

func BenchmarkTable1Models(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Table1(l))
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Table2(l))
	}
}

func BenchmarkTable3Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Table3())
	}
}

func BenchmarkTable4AltModels(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(l)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

func BenchmarkTable5Deflation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(l)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

func BenchmarkHeadline(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Headline(l))
	}
}

func BenchmarkScoutInference(b *testing.B) {
	l := lab(b)
	ins := l.Test
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Scout.PredictIncident(ins[i%len(ins)])
	}
}

func BenchmarkFigure1CreatorMix(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure1(l))
	}
}

func BenchmarkFigure2DiagnosisTime(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure2(l))
	}
}

func BenchmarkFigure3Reducible(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure3(l))
	}
}

func BenchmarkFigure4Waypoint(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure4(l))
	}
}

func BenchmarkFigure6OverheadDist(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure6(l))
	}
}

func BenchmarkFigure7GainOverhead(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure7(l))
	}
}

func BenchmarkFigure8Deciders(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(l)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

func BenchmarkFigure9Deprecation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(l, 7, 3)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

func BenchmarkFigure10Retraining(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(l)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

func BenchmarkFigure11NonPhyNet(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure11(l))
	}
}

func BenchmarkFigure12CRIs(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure12(l, 10))
	}
}

func BenchmarkFigure13ClassDistance(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure13(l))
	}
}

func BenchmarkFigure14ComponentDistance(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure14(l))
	}
}

func BenchmarkFigure15ScoutMaster(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure15(l, 6, 40))
	}
}

func BenchmarkFigure16Imperfect(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.Figure16(l, 8, 600))
	}
}

func BenchmarkStorageScout(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.StorageScout(l))
	}
}

// BenchmarkAblationSelectorGates measures the design-choice ablation from
// DESIGN.md §4: full-pipeline accuracy with the selector gates (exclusion
// rules + component gate + meta-selector) versus the raw RF with no gates.
func BenchmarkAblationSelectorGates(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full := l.Scout.Evaluate(l.Test)
		raw := l.EvalVectors(l.Scout.Forest())
		if i == 0 {
			b.Logf("\nablation: full pipeline F1=%.3f vs ungated RF on cached vectors F1=%.3f",
				full.F1(), raw.F1())
		}
	}
}

// BenchmarkLatencyDistribution reports the §6 inference-latency summary.
func BenchmarkLatencyDistribution(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, experiments.InferenceLatency(l, 100))
	}
}

// BenchmarkForestTrainWorkers sweeps the worker count over forest training
// on the lab's cached training matrix. Output is bit-identical at every
// setting (see DESIGN.md, "Parallel execution layer"); compare ns/op across
// the sub-benchmarks for the speedup. On a multi-core machine workers=4
// should come in well under workers=1; on a single-core container the
// sweep degenerates to equal timings.
func BenchmarkForestTrainWorkers(b *testing.B) {
	l := lab(b)
	train := l.TrainSet()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := l.DefaultForest(l.Params.Seed)
			p.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := forest.Train(train, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBestSplit times a 25-tree bootstrap ensemble on the lab's
// cached training matrix with both split-finding kernels: "presorted" is
// the presorted-columns kernel (one O(dim·n log n) presort shared by all
// trees, then O(mtry·n) split scans with zero per-node allocations),
// "reference" is the retained seed kernel that re-sorts every node's
// samples per candidate feature. Both grow byte-identical forests (see
// TestGoldenEquivalenceOnLabData); compare ns/op and allocs/op for the
// win. The ensemble matters: a single-tree run would charge the whole
// presort to one tree and understate the kernel exactly where it is used.
func BenchmarkBestSplit(b *testing.B) {
	l := lab(b)
	train := l.TrainSet()
	for _, k := range []struct {
		name string
		ref  bool
	}{{"presorted", false}, {"reference", true}} {
		b.Run(k.name, func(b *testing.B) {
			p := forest.Params{
				NumTrees: 25, MaxDepth: 14, Seed: l.Params.Seed,
				Workers: 1, ReferenceKernel: k.ref,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := forest.Train(train, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWindowOnly hides a source's StatsSource capability so featurization
// falls back to materializing raw windows — the pre-aggregate path.
type benchWindowOnly struct{ monitoring.DataSource }

// BenchmarkFeaturize times one incident featurization through the
// aggregate-backed path ("stats": baseline windows answered as
// WindowStats/EventCount, no raw-window copies) and the materializing path
// ("windows": every window copied, then reduced). Both produce
// bit-identical feature vectors on the simulator source; compare allocs/op
// for the copy-elimination.
func BenchmarkFeaturize(b *testing.B) {
	l := lab(b)
	tel := l.Gen.Telemetry()
	for _, k := range []struct {
		name string
		src  monitoring.DataSource
	}{{"stats", tel}, {"windows", benchWindowOnly{tel}}} {
		b.Run(k.name, func(b *testing.B) {
			fb := core.NewFeatureBuilder(l.Cfg, l.Gen.Topology(), k.src)
			in := l.Test[0]
			ex := fb.Extract(in.Title, in.Body, in.Components)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = fb.Featurize(ex, in.CreatedAt)
			}
		})
	}
}

// BenchmarkWindowStats times window aggregation over a ~100k-point store
// series: "prefix" answers from the O(log n) aggregate layer (prefix sums +
// sparse min/max tables, zero allocations), "scan" materializes the window
// and reduces it — the only option before the aggregate layer existed.
func BenchmarkWindowStats(b *testing.B) {
	s := monitoring.NewStore(0)
	if err := s.Register(monitoring.Descriptor{Name: "cpu", Type: monitoring.TimeSeries}); err != nil {
		b.Fatal(err)
	}
	const n = 100_000
	for i := 0; i < n; i++ {
		v := float64((i*2654435761)%1000) / 10
		if err := s.AppendPoint("cpu", "srv1", monitoring.Point{Time: float64(i) / 10, Value: v}); err != nil {
			b.Fatal(err)
		}
	}
	from, to := float64(n)/10*0.25, float64(n)/10*0.75 // middle half: 50k points
	b.Run("prefix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := s.WindowStats("cpu", "srv1", from, to); !ok {
				b.Fatal("no stats")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vals := s.SeriesWindow("cpu", "srv1", from, to)
			if st := monitoring.StatsOf(vals); st.Count == 0 {
				b.Fatal("no stats")
			}
		}
	})
}

// BenchmarkPredictFlat times forest inference over the lab's cached test
// matrix through the flat SoA kernel's batch entry point: trees stream
// tree-major over the whole matrix, probabilities accumulate into one
// reused output slice. Pair with BenchmarkPredictPointer — both score the
// identical matrix per op, and the outputs are bit-identical (see
// TestGoldenFlatInferenceOnLabData), so ns/op divides directly.
func BenchmarkPredictFlat(b *testing.B) {
	l := lab(b)
	f := l.Scout.Forest()
	out := make([]float64, len(l.TestX))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProbBatch(l.TestX, out)
	}
}

// BenchmarkPredictPointer is the retained pointer-chasing kernel scoring
// the same matrix one vector at a time — the only option before the flat
// layout existed.
func BenchmarkPredictPointer(b *testing.B) {
	l := lab(b)
	f := l.Scout.Forest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range l.TestX {
			_ = f.PredictProbPointer(x)
		}
	}
}

// BenchmarkPredictFlatSingle scores one vector at a time through the flat
// kernel — the serving single-predict path — isolating the layout win from
// the batch-loop win.
func BenchmarkPredictFlatSingle(b *testing.B) {
	l := lab(b)
	f := l.Scout.Forest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range l.TestX {
			_ = f.PredictProb(x)
		}
	}
}

// BenchmarkEvaluateRunWorkers sweeps the worker count over the §7
// gain/overhead evaluation (prediction fan-out dominates).
func BenchmarkEvaluateRunWorkers(b *testing.B) {
	l := lab(b)
	baseline := evaluate.OverheadDistribution(l.Train, experiments.Team)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				evaluate.RunWorkers(l.Scout, l.Test, experiments.Team, baseline, l.RNG(7), w)
			}
		})
	}
}
