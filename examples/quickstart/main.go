// Quickstart: train a PhyNet Scout on a small synthetic cloud and classify
// a fresh incident, printing the verdict, confidence and explanation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scouts"
	"scouts/internal/cloudsim"
)

func main() {
	// 1. A world to learn from: a synthetic cloud with the twelve PhyNet
	// monitoring datasets and a few months of incident history. In a real
	// deployment this is your incident manager plus monitoring stores.
	gen := cloudsim.New(cloudsim.Params{Seed: 42, Days: 60, IncidentsPerDay: 10})
	history := gen.Generate()
	fmt.Printf("generated %d incidents over 60 days\n", history.Len())

	// 2. The team's configuration file: component extractors, monitoring
	// declarations, and exclusion rules (§5.1).
	cfg, err := scouts.ParseConfig(scouts.DefaultPhyNetConfig)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train. The framework extracts components, pulls monitoring data,
	// builds features, and fits the RF + CPD+ + model-selector pipeline.
	scout, err := scouts.Train(scouts.TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: history.Incidents,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained the %s Scout; most informative signals: %v\n\n",
		scout.Team(), scout.TopFeatures(3))

	// 4. Ask it about a new incident — here, the paper's §5.1 example: a
	// VM that cannot reach a storage cluster.
	title := "VM connectivity problem"
	body := "VM vm3.c2.dc1 in cluster c2.dc1 is experiencing problems connecting to storage cluster c4.dc2"
	p := scout.Predict(title, body, nil, 30*24)

	fmt.Println("incident:", title)
	fmt.Println("  verdict:     ", p.Verdict)
	fmt.Printf("  confidence:   %.2f\n", p.Confidence)
	fmt.Println("  model:       ", p.Model)
	fmt.Println("  components:  ", p.Components)
	fmt.Println("  explanation: ", p.Explanation)
}
