// PhyNet Scout walkthrough: reproduce the deployed Scout's §7.1 evaluation
// on a synthetic cloud — accuracy against the legacy process, gain/overhead
// on mis-routed incidents, and two §7.5-style case studies.
//
//	go run ./examples/phynet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"scouts"
	"scouts/internal/cloudsim"
	"scouts/internal/evaluate"
	"scouts/internal/incident"
	"scouts/internal/metrics"
)

func main() {
	gen := cloudsim.New(cloudsim.Params{Seed: 7, Days: 120, IncidentsPerDay: 10})
	trace := gen.Generate()

	// §7 split: half the PhyNet incidents and 35% of the rest train.
	rng := rand.New(rand.NewSource(7))
	var train, test []*incident.Incident
	for _, in := range trace.Incidents {
		frac := 0.35
		if in.OwnerLabel == cloudsim.TeamPhyNet {
			frac = 0.5
		}
		if rng.Float64() < frac {
			train = append(train, in)
		} else {
			test = append(test, in)
		}
	}

	cfg, err := scouts.ParseConfig(scouts.DefaultPhyNetConfig)
	if err != nil {
		log.Fatal(err)
	}
	scout, err := scouts.Train(scouts.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: train, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy (§7.1).
	c := scout.Evaluate(test)
	fmt.Printf("PhyNet Scout on %d held-out incidents:\n", c.Total())
	fmt.Printf("  precision %.1f%%  recall %.1f%%  F1 %.2f  (paper: 97.5%% / 97.7%% / 0.98)\n\n",
		c.Precision()*100, c.Recall()*100, c.F1())

	// Gain and overhead on mis-routed incidents (Figure 7).
	baseline := evaluate.OverheadDistribution(train, cloudsim.TeamPhyNet)
	r := evaluate.Run(scout, test, cloudsim.TeamPhyNet, baseline, rand.New(rand.NewSource(1)))
	fmt.Printf("mis-routed PhyNet incidents: median gain-in %.0f%% of investigation time (best possible %.0f%%)\n",
		100*median(r.GainIn), 100*median(r.BestGainIn))
	fmt.Printf("innocent-waypoint incidents: median gain-out %.0f%% (best possible %.0f%%)\n",
		100*median(r.GainOut), 100*median(r.BestGainOut))
	fmt.Printf("error-out %.1f%%; correct on already-correctly-routed: %.1f%%\n\n",
		100*r.ErrorOut, 100*r.CorrectOnAlreadyCorrect)

	// §7.5-style case studies: find a mis-routed PhyNet incident that the
	// Scout catches, and an innocent-waypoint incident it turns away.
	var caught, cleared *incident.Incident
	for _, in := range test {
		if caught == nil && in.OwnerLabel == cloudsim.TeamPhyNet && in.Misrouted() {
			if p := scout.PredictIncident(in); p.Usable() && p.Responsible {
				caught = in
			}
		}
		if cleared == nil && in.OwnerLabel != cloudsim.TeamPhyNet && in.WentThrough(cloudsim.TeamPhyNet) {
			if p := scout.PredictIncident(in); p.Usable() && !p.Responsible {
				cleared = in
			}
		}
		if caught != nil && cleared != nil {
			break
		}
	}
	if caught != nil {
		p := scout.PredictIncident(caught)
		fmt.Println("case study 1 — mis-routed PhyNet incident the Scout catches:")
		describe(caught, p)
	}
	if cleared != nil {
		p := scout.PredictIncident(cleared)
		fmt.Println("case study 2 — innocent-waypoint incident the Scout turns away:")
		describe(cleared, p)
	}
}

func describe(in *incident.Incident, p scouts.Prediction) {
	fmt.Printf("  %s: %s\n", in.ID, in.Title)
	fmt.Printf("  historical path: %v (%.1fh total)\n", in.Teams(), in.TotalTime())
	fmt.Printf("  scout: %s (%.2f, %s)\n", p.Verdict, p.Confidence, p.Model)
	fmt.Printf("  explanation: %s\n\n", p.Explanation)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := metrics.NewCDF(xs)
	return c.Quantile(0.5)
}
