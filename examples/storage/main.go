// Storage Scout (Appendix B): other teams can build Scouts too. The
// Storage team starts with a rule-based system — near-perfect recall,
// mediocre precision — and this example shows how the same incident history
// would let them graduate to an ML Scout using the framework, without
// writing any model code: just a different configuration file.
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"strings"

	"scouts"
	"scouts/internal/cloudsim"
	"scouts/internal/incident"
	"scouts/internal/metrics"
)

// storageConfig is a starter configuration for the Storage team. Storage
// has no switch-level monitoring of its own; in this synthetic world it
// watches the same cluster-granularity canary data plus server CPU.
const storageConfig = `
TEAM Storage;
LOOKBACK 2h;
let vm      = <\bvm\d+\.c\d+\.dc\d+\b>;
let server  = <\bsrv\d+\.c\d+\.dc\d+\b>;
let cluster = <\bc\d+\.dc\d+\b>;
let dc      = <\bdc\d+\b>;
MONITORING pingmesh = CREATE_MONITORING(store://phynet/pingmesh, {component=server}, TIME_SERIES, LATENCY);
MONITORING canary   = CREATE_MONITORING(store://phynet/canary,   {component=cluster}, TIME_SERIES, REACHABILITY);
MONITORING cpu      = CREATE_MONITORING(store://phynet/cpu,      {component=server},  TIME_SERIES, CPU_UTIL);
`

func main() {
	gen := cloudsim.New(cloudsim.Params{Seed: 21, Days: 100, IncidentsPerDay: 10})
	trace := gen.Generate()
	cut := trace.Len() / 2
	train, test := trace.Incidents[:cut], trace.Incidents[cut:]

	// The rule-based system the Storage team runs today (Appendix B:
	// precision 76.15%, recall 99.5%).
	var rule metrics.Confusion
	for _, in := range test {
		if in.Source != incident.SourceMonitor {
			continue // the rule system does not trigger on CRIs
		}
		text := strings.ToLower(in.Title + " " + in.Body)
		claim := strings.Contains(text, "disk") || strings.Contains(text, "storage") ||
			strings.Contains(text, "mount")
		rule.Add(claim, in.OwnerLabel == cloudsim.TeamStorage)
	}
	fmt.Printf("rule-based Storage Scout:  P=%5.1f%%  R=%5.1f%%  F1=%.2f   (paper: 76.15%% / 99.5%%)\n",
		rule.Precision()*100, rule.Recall()*100, rule.F1())

	// The framework-built starter Scout over the same history.
	cfg, err := scouts.ParseConfig(storageConfig)
	if err != nil {
		log.Fatal(err)
	}
	scout, err := scouts.Train(scouts.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: train, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	ml := scout.Evaluate(test)
	fmt.Printf("framework starter Scout:   P=%5.1f%%  R=%5.1f%%  F1=%.2f\n",
		ml.Precision()*100, ml.Recall()*100, ml.F1())
	fmt.Println("\nThe starter Scout's strongest signals:", scout.TopFeatures(4))
	fmt.Println("(Storage mostly learns from the *absence* of data movement in the")
	fmt.Println(" infrastructure telemetry it shares with PhyNet — §5.2's point that")
	fmt.Println(" healthy-looking monitoring is itself a routing signal.)")
}
