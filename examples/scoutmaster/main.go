// Scout Master demo (Appendix C): compose several Scouts into a routing
// decision. A trained PhyNet Scout and a rule-based Storage Scout answer in
// parallel; the Master applies the strawman policy — one confident claim
// wins, dependencies break ties, no claims falls back to the legacy
// process.
//
//	go run ./examples/scoutmaster
package main

import (
	"fmt"
	"log"
	"strings"

	"scouts"
	"scouts/internal/cloudsim"
	"scouts/internal/incident"
)

// storageRuleScout is the Appendix B rule system: claim anything that reads
// like a storage symptom.
type storageRuleScout struct{}

func (storageRuleScout) answer(in *incident.Incident) scouts.Answer {
	text := strings.ToLower(in.Title + " " + in.Body)
	claim := strings.Contains(text, "disk") || strings.Contains(text, "storage") ||
		strings.Contains(text, "mount")
	conf := 0.85
	if !claim {
		conf = 0.9
	}
	return scouts.Answer{Team: cloudsim.TeamStorage, Responsible: claim, Confidence: conf, Usable: true}
}

func main() {
	gen := cloudsim.New(cloudsim.Params{Seed: 11, Days: 80, IncidentsPerDay: 10})
	trace := gen.Generate()
	cut := trace.Len() * 3 / 4
	train, day := trace.Incidents[:cut], trace.Incidents[cut:]

	cfg, err := scouts.ParseConfig(scouts.DefaultPhyNetConfig)
	if err != nil {
		log.Fatal(err)
	}
	phynet, err := scouts.Train(scouts.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: train, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Storage depends on PhyNet: when both claim, the lower layer wins.
	master := scouts.NewMaster(map[string][]string{
		cloudsim.TeamStorage: {cloudsim.TeamPhyNet},
	}, 0.8)
	storage := storageRuleScout{}

	var correct, total int
	var saved, totalTime float64
	shown := 0
	for _, in := range day {
		p := phynet.PredictIncident(in)
		answers := []scouts.Answer{
			{Team: cloudsim.TeamPhyNet, Responsible: p.Responsible, Confidence: p.Confidence, Usable: p.Usable()},
			storage.answer(in),
		}
		fallback := "legacy-process"
		team, reason := master.Route(answers, fallback)

		total++
		totalTime += in.TotalTime()
		if team == in.OwnerLabel {
			correct++
			saved += in.TotalTime() - in.TimeIn(team)
		}
		if shown < 5 {
			shown++
			fmt.Printf("%s  %-55.55s -> %-15s (%s)\n", in.ID, in.Title, team, reason)
		}
	}
	fmt.Printf("\nrouted %d incidents of the final stretch\n", total)
	fmt.Printf("master sent %d (%.0f%%) straight to the responsible team\n",
		correct, 100*float64(correct)/float64(total))
	fmt.Printf("investigation time saved on those: %.0f%% of the stretch's total\n",
		100*saved/totalTime)
}
