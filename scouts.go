// Package scouts is the public API of the Scouts incident-routing library —
// a from-scratch reproduction of "Scouts: Improving the Diagnosis Process
// Through Domain-customized Incident Routing" (SIGCOMM 2020).
//
// A Scout is a per-team, ML-assisted gate-keeper: given an incident and the
// team's monitoring data it answers "is this team responsible?" with an
// independent confidence score and an explanation. Scouts are built by the
// team they protect from a small configuration file; the framework does the
// rest: component extraction, feature construction over TIME_SERIES and
// EVENT monitoring data, a supervised random forest for the common case, a
// change-point-based unsupervised model (CPD+) for new and rare incidents,
// and a meta-learned model selector between them.
//
// # Quick start
//
//	cfg, err := scouts.ParseConfig(scouts.DefaultPhyNetConfig)
//	...
//	scout, err := scouts.Train(scouts.TrainOptions{
//		Config:    cfg,
//		Topology:  topo,    // the team's component hierarchy
//		Source:    source,  // a monitoring.DataSource
//		Incidents: history, // labelled incident history
//	})
//	...
//	p := scout.Predict(title, body, mentionedComponents, now)
//	fmt.Println(p.Responsible, p.Confidence, p.Explanation)
//
// The subpackages under internal implement every substrate the paper
// depends on: the monitoring store and registry (internal/monitoring), the
// datacenter topology abstraction (internal/topology), the incident model
// (internal/incident), the ML models (internal/ml/...), the legacy NLP
// router (internal/text), the Scout Master (internal/master), a synthetic
// cloud calibrated to the paper's §3 measurements (internal/cloudsim), the
// Resource Central-style serving pipeline (internal/serving), and one
// runner per table and figure of the paper (internal/experiments, driven
// by cmd/repro and the repository benchmarks).
package scouts

import (
	"scouts/internal/core"
	"scouts/internal/incident"
	"scouts/internal/master"
	"scouts/internal/monitoring"
	"scouts/internal/topology"
)

// Core framework types, re-exported for library consumers.
type (
	// Scout is a trained per-team gate-keeper.
	Scout = core.Scout
	// Config is a parsed Scout configuration.
	Config = core.Config
	// TrainOptions configure Train.
	TrainOptions = core.TrainOptions
	// Prediction is a Scout's answer: verdict, confidence, explanation.
	Prediction = core.Prediction
	// Verdict is the kind of answer.
	Verdict = core.Verdict
	// FeatureCache memoizes featurization across retraining rounds.
	FeatureCache = core.FeatureCache

	// Incident is one incident record with its routing history.
	Incident = incident.Incident
	// Hop is one team's stint on an incident.
	Hop = incident.Hop
	// IncidentLog is an ordered incident collection.
	IncidentLog = incident.Log

	// Topology is the component hierarchy Scouts extract against.
	Topology = topology.Topology
	// ComponentType classifies components (vm, server, switch, ...).
	ComponentType = topology.ComponentType

	// DataSource serves monitoring data to the framework.
	DataSource = monitoring.DataSource
	// MonitoringStore is the reference DataSource implementation.
	MonitoringStore = monitoring.Store
	// Descriptor declares a monitoring dataset.
	Descriptor = monitoring.Descriptor

	// Master composes multiple Scouts' answers (Appendix C).
	Master = master.Master
	// Answer is one Scout's reply to the Master.
	Answer = master.Answer
	// MLEMaster ranks teams by maximum-likelihood over joint Scout answers
	// and historical reliability (Appendix C's "more sophisticated"
	// composition).
	MLEMaster = master.MLEMaster
	// Reliability is a Scout's historical accuracy profile.
	Reliability = master.Reliability
)

// Verdicts.
const (
	VerdictResponsible    = core.VerdictResponsible
	VerdictNotResponsible = core.VerdictNotResponsible
	VerdictExcluded       = core.VerdictExcluded
	VerdictFallback       = core.VerdictFallback
)

// DefaultPhyNetConfig is the deployed PhyNet Scout's configuration over the
// synthetic cloud's naming scheme.
const DefaultPhyNetConfig = core.DefaultPhyNetConfig

// ParseConfig parses the Scout configuration DSL (§5.1, §5.3).
func ParseConfig(src string) (*Config, error) { return core.ParseConfig(src) }

// Train builds a Scout from a configuration and labelled incident history.
func Train(opt TrainOptions) (*Scout, error) { return core.Train(opt) }

// Restore rebuilds a Scout from a Snapshot produced by (*Scout).Snapshot.
func Restore(data []byte, topo *Topology, source DataSource) (*Scout, error) {
	return core.Restore(data, topo, source)
}

// NewFeatureCache creates a cache for retraining workflows.
func NewFeatureCache() *FeatureCache { return core.NewFeatureCache() }

// NewMaster creates a Scout Master with the given inter-team dependency
// edges and confidence gate.
func NewMaster(deps map[string][]string, minConfidence float64) *Master {
	return master.New(deps, minConfidence)
}

// NewMLEMaster creates the maximum-likelihood Scout Master from per-team
// reliability profiles (see master.EstimateReliability).
func NewMLEMaster(profiles map[string]Reliability) *MLEMaster {
	return master.NewMLE(profiles)
}

// BuildTopology generates a datacenter topology with the standard naming
// scheme (vmN.cC.dcD under srvN.cC.dcD under torN.cC.dcD ...).
func BuildTopology(p topology.Params) *Topology { return topology.Build(p) }

// TopologyParams size BuildTopology.
type TopologyParams = topology.Params

// NewMonitoringStore creates a monitoring store retaining the given number
// of hours of telemetry (<= 0 keeps everything).
func NewMonitoringStore(retentionHours float64) *MonitoringStore {
	return monitoring.NewStore(retentionHours)
}
