package scouts_test

import (
	"testing"

	"scouts"
	"scouts/internal/cloudsim"
)

// TestFacadeEndToEnd exercises the public API exactly the way the README
// quick start does: build a world, train a Scout, query it, snapshot and
// restore it.
func TestFacadeEndToEnd(t *testing.T) {
	gen := cloudsim.New(cloudsim.Params{Seed: 3, Days: 40, IncidentsPerDay: 8})
	log := gen.Generate()

	cfg, err := scouts.ParseConfig(scouts.DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	scout, err := scouts.Train(scouts.TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: log.Incidents[:250],
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Query through the facade type.
	in := log.Incidents[260]
	p := scout.PredictIncident(in)
	if p.Verdict == scouts.VerdictResponsible || p.Verdict == scouts.VerdictNotResponsible {
		if p.Confidence < 0.5 || p.Explanation == "" {
			t.Fatalf("prediction incomplete: %+v", p)
		}
	}

	// Snapshot / restore round trip.
	snap, err := scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := scouts.Restore(snap, gen.Topology(), gen.Telemetry())
	if err != nil {
		t.Fatal(err)
	}
	a := scout.PredictIncident(in)
	b := restored.PredictIncident(in)
	if a.Responsible != b.Responsible {
		t.Fatal("restored scout disagrees")
	}
}

func TestFacadeTopologyAndStore(t *testing.T) {
	topo := scouts.BuildTopology(scouts.TopologyParams{DCs: 1, ClustersPerDC: 1})
	if topo.Len() == 0 {
		t.Fatal("empty topology")
	}
	st := scouts.NewMonitoringStore(24)
	if err := st.Register(scouts.Descriptor{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if len(st.Datasets()) != 1 {
		t.Fatal("store registration failed")
	}
}

func TestFacadeMaster(t *testing.T) {
	m := scouts.NewMaster(map[string][]string{"Storage": {"PhyNet"}}, 0.8)
	team, _ := m.Route([]scouts.Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.9, Usable: true},
	}, "legacy")
	if team != "PhyNet" {
		t.Fatalf("routed to %s", team)
	}
}
