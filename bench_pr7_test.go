// PR 7 benchmarks: model-load latency (JSON snapshot restore vs the
// scoutpack binary path, warm in-memory and cold through the disk
// envelope) and batch inference throughput (the exact f64 8-lane kernel
// vs the quantized cache-blocked kernels at 8 and 16 lanes). Pair
// RestoreJSON/RestorePack, ColdLoadJSON/ColdLoadPack and
// PredictFlatBig/PredictQuant8|16 — each pair runs the identical
// workload, so ns/op divides directly.
package scouts_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"scouts/internal/core"
	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
	"scouts/internal/serving"
)

// BenchmarkRestoreJSON times core.Restore on the lab scout's JSON
// snapshot — parse, rebuild pointer trees, re-derive the flat arrays.
func BenchmarkRestoreJSON(b *testing.B) {
	l := lab(b)
	snap, err := l.Scout.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	topo, tel := l.Gen.Topology(), l.Gen.Telemetry()
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Restore(snap, topo, tel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestorePack times core.Restore on the scoutpack form of the
// same scout: checksum verification plus direct adoption of the flat
// arrays, zero re-derivation.
func BenchmarkRestorePack(b *testing.B) {
	l := lab(b)
	pack, err := l.Scout.SnapshotPack()
	if err != nil {
		b.Fatal(err)
	}
	topo, tel := l.Gen.Topology(), l.Gen.Telemetry()
	b.SetBytes(int64(len(pack)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Restore(pack, topo, tel); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColdLoad times the full disk path — read the store file, verify
// the envelope (and for .pack the embedded scoutpack checksum), then
// Restore — the cost a replica pays per hot-swap from a published
// store. The OS page cache stays warm across iterations; the "cold"
// here is the serving process, which re-parses and re-verifies
// everything each time.
func benchColdLoad(b *testing.B, pack bool) {
	l := lab(b)
	var snap []byte
	var err error
	if pack {
		snap, err = l.Scout.SnapshotPack()
	} else {
		snap, err = l.Scout.Snapshot()
	}
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	st := serving.NewStore()
	st.Put(l.Scout.Team(), snap)
	if err := serving.SaveStore(st, dir); err != nil {
		b.Fatal(err)
	}
	ext := ".json"
	if pack {
		ext = ".pack"
	}
	path := filepath.Join(dir, "model-000001"+ext)
	topo, tel := l.Gen.Topology(), l.Gen.Telemetry()
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := serving.ReadModelFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Restore(m.Snapshot, topo, tel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdLoadJSON and BenchmarkColdLoadPack are the disk-path
// pair of BenchmarkRestoreJSON/BenchmarkRestorePack.
func BenchmarkColdLoadJSON(b *testing.B) { benchColdLoad(b, false) }
func BenchmarkColdLoadPack(b *testing.B) { benchColdLoad(b, true) }

// The kernel comparison runs on a production-scale forest, not the lab
// scout: the lab ensemble fits in L2, where layout and blocking cannot
// matter by construction. A few hundred deep trees over continuous
// features put the node arrays well past cache — the regime the
// quantized blocked kernel exists for, where the exact kernel re-streams
// the whole forest once per 8-vector group while the blocked kernel
// fetches each ≤16k-node block once and reuses it across the batch.
var (
	bigForestOnce sync.Once
	bigForestF    *forest.Forest
	bigForestX    [][]float64
	bigForestErr  error
)

func bigForest(b *testing.B) (*forest.Forest, [][]float64) {
	b.Helper()
	bigForestOnce.Do(func() {
		const dim, samples, probes = 64, 12000, 1024
		rng := rand.New(rand.NewSource(11))
		names := make([]string, dim)
		for j := range names {
			names[j] = fmt.Sprintf("f%02d", j)
		}
		d := mlcore.NewDataset(names)
		vec := func() []float64 {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			return x
		}
		for i := 0; i < samples; i++ {
			x := vec()
			d.MustAdd(mlcore.Sample{X: x, Y: x[0]+x[1]*x[2] > x[3]*0.5})
		}
		bigForestF, bigForestErr = forest.Train(d, forest.Params{
			NumTrees: 300, MaxDepth: 16, Seed: 11, Workers: 8,
		})
		bigForestX = make([][]float64, probes)
		for i := range bigForestX {
			bigForestX[i] = vec()
		}
	})
	if bigForestErr != nil {
		b.Fatal(bigForestErr)
	}
	return bigForestF, bigForestX
}

// benchBigKernel scores the probe matrix through one kernel, restoring
// the exact kernel afterwards so no benchmark inherits a lossy default.
func benchBigKernel(b *testing.B, k forest.BatchKernel) {
	f, xs := bigForest(b)
	f.SetBatchKernel(k)
	defer f.SetBatchKernel(forest.KernelExact)
	out := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProbBatch(xs, out)
	}
}

// BenchmarkPredictFlatBig is the PR 3 exact kernel on the
// production-scale forest — the baseline the quantized kernels divide
// against.
func BenchmarkPredictFlatBig(b *testing.B) { benchBigKernel(b, forest.KernelExact) }

// BenchmarkPredictQuant8 is the float32 cache-blocked kernel at the
// PR 3 lane width; pair with BenchmarkPredictFlatBig for the
// quantization-plus-blocking win at equal lane count.
func BenchmarkPredictQuant8(b *testing.B) { benchBigKernel(b, forest.KernelQuant8) }

// BenchmarkPredictQuant16 doubles the lane count over the same blocked
// layout; compare against BenchmarkPredictQuant8 to pick the serving
// default.
func BenchmarkPredictQuant16(b *testing.B) { benchBigKernel(b, forest.KernelQuant16) }
