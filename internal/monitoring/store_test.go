package monitoring

import (
	"sync"
	"testing"

	"scouts/internal/topology"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(0)
	if err := s.Register(Descriptor{Name: "ping", Type: TimeSeries, ComponentType: topology.TypeServer}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Descriptor{Name: "syslog", Type: Event, ComponentType: topology.TypeSwitch}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegisterDuplicate(t *testing.T) {
	s := newStore(t)
	if err := s.Register(Descriptor{Name: "ping", Type: TimeSeries}); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := s.Register(Descriptor{}); err == nil {
		t.Fatal("empty name should fail")
	}
}

func TestSeriesWindow(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 10; i++ {
		if err := s.AppendPoint("ping", "srv1", Point{Time: float64(i), Value: float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.SeriesWindow("ping", "srv1", 3, 7)
	if len(got) != 4 || got[0] != 30 || got[3] != 60 {
		t.Fatalf("window = %v", got)
	}
	if s.SeriesWindow("ping", "srv1", 100, 200) != nil {
		t.Fatal("empty window should be nil")
	}
	if s.SeriesWindow("ping", "unknown", 0, 10) != nil {
		t.Fatal("unknown component should be nil")
	}
	if s.SeriesWindow("nope", "srv1", 0, 10) != nil {
		t.Fatal("unknown dataset should be nil")
	}
}

func TestAppendOrdering(t *testing.T) {
	s := newStore(t)
	if err := s.AppendPoint("ping", "srv1", Point{Time: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoint("ping", "srv1", Point{Time: 4}); err == nil {
		t.Fatal("out-of-order append should fail")
	}
	if err := s.AppendPoint("ping", "srv1", Point{Time: 5}); err != nil {
		t.Fatalf("equal-time append should be fine: %v", err)
	}
	if err := s.AppendPoint("syslog", "x", Point{}); err == nil {
		t.Fatal("appending a point to an event dataset should fail")
	}
	if err := s.AppendEvent("ping", "x", EventRecord{}); err == nil {
		t.Fatal("appending an event to a series dataset should fail")
	}
}

func TestEventWindowAndCounts(t *testing.T) {
	s := newStore(t)
	kinds := []string{"LINK_DOWN", "LINK_DOWN", "PARITY", "LINK_DOWN"}
	for i, k := range kinds {
		if err := s.AppendEvent("syslog", "tor1", EventRecord{Time: float64(i), Kind: k}); err != nil {
			t.Fatal(err)
		}
	}
	evs := s.EventsWindow("syslog", "tor1", 1, 4)
	if len(evs) != 3 {
		t.Fatalf("events = %v", evs)
	}
	counts := s.EventCounts("syslog", "tor1", 0, 10)
	if counts["LINK_DOWN"] != 3 || counts["PARITY"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestGCRespectsRetention(t *testing.T) {
	s := NewStore(2) // keep 2 hours
	if err := s.Register(Descriptor{Name: "cpu", Type: TimeSeries}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = s.AppendPoint("cpu", "srv1", Point{Time: float64(i), Value: 1})
	}
	s.GC(10)
	if got := s.SeriesWindow("cpu", "srv1", 0, 100); len(got) != 2 {
		t.Fatalf("after GC want 2 points (t=8,9), got %d", len(got))
	}
}

func TestDeprecate(t *testing.T) {
	s := newStore(t)
	_ = s.AppendPoint("ping", "srv1", Point{Time: 1, Value: 2})
	s.Deprecate("ping")
	if _, ok := s.Describe("ping"); ok {
		t.Fatal("descriptor should be gone")
	}
	if s.SeriesWindow("ping", "srv1", 0, 10) != nil {
		t.Fatal("data should be gone")
	}
	if len(s.Datasets()) != 1 {
		t.Fatalf("datasets = %v", s.Datasets())
	}
}

func TestComponents(t *testing.T) {
	s := newStore(t)
	_ = s.AppendPoint("ping", "srv2", Point{Time: 1})
	_ = s.AppendPoint("ping", "srv1", Point{Time: 1})
	got := s.Components("ping")
	if len(got) != 2 || got[0] != "srv1" {
		t.Fatalf("components = %v", got)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			comp := []string{"a", "b", "c", "d"}[w]
			for i := 0; i < 200; i++ {
				_ = s.AppendPoint("ping", comp, Point{Time: float64(i), Value: 1})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.SeriesWindow("ping", "a", 0, float64(i))
				_ = s.Datasets()
			}
		}()
	}
	wg.Wait()
}

func TestDataTypeString(t *testing.T) {
	if TimeSeries.String() != "TIME_SERIES" || Event.String() != "EVENT" {
		t.Fatal("DataType strings wrong")
	}
}
