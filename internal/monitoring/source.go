package monitoring

// DataSource is the read interface the Scout framework pulls monitoring
// data through. The Store implements it for deployments that persist
// telemetry; the cloud simulator implements it with deterministic lazy
// synthesis so a nine-month trace needs no storage.
type DataSource interface {
	// Datasets lists the registered dataset descriptors.
	Datasets() []Descriptor
	// SeriesWindow returns the time-series values in [from, to) for a
	// component, oldest first. Unknown datasets/components return nil.
	SeriesWindow(dataset, component string, from, to float64) []float64
	// EventsWindow returns the events in [from, to) for a component.
	EventsWindow(dataset, component string, from, to float64) []EventRecord
}

// Interface conformance check.
var _ DataSource = (*Store)(nil)
