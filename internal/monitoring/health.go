package monitoring

// DatasetHealth is one dataset's availability report at a moment of model
// time. It is the unit of the graceful-degradation contract: featurization
// asks "is this dataset trustworthy right now?" before using its windows,
// and the serving health endpoint aggregates the answers for operators.
type DatasetHealth struct {
	Dataset string `json:"dataset"`
	// Available is false while the dataset is known to be dark: a full
	// blackout, a flap's down phase, or an open circuit breaker.
	Available bool `json:"available"`
	// Staleness is how far (in model hours) the dataset's answers lag
	// behind the queried time; 0 means fresh.
	Staleness float64 `json:"staleness_hours,omitempty"`
	// Breaker is the circuit-breaker state guarding the dataset
	// ("closed", "open", "half-open"), or "" when no breaker is installed.
	Breaker string `json:"breaker,omitempty"`
}

// HealthReporter is an optional capability of a DataSource: time-aware
// per-dataset availability and staleness. Sources that cannot lose data
// (the Store, the plain cloud simulator) simply do not implement it;
// consumers then fall back to registry presence (Datasets()) as the
// availability signal, which is how monitoring-system deprecation has
// always been detected.
type HealthReporter interface {
	// DatasetHealth reports one dataset's health at model time t. Unknown
	// datasets report Available == false.
	DatasetHealth(dataset string, t float64) DatasetHealth
	// HealthSnapshot reports every registered dataset's health at model
	// time t, in registry order.
	HealthSnapshot(t float64) []DatasetHealth
}

// HealthReporterOf returns src's health capability, or nil when the source
// does not report health (callers then treat every registered dataset as
// available).
func HealthReporterOf(src DataSource) HealthReporter {
	if h, ok := src.(HealthReporter); ok {
		return h
	}
	return nil
}
