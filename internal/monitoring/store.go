// Package monitoring implements the monitoring-data substrate of §5.1: a
// registry of datasets tagged with their resource locator, component
// associations, data type (TIME_SERIES or EVENT) and optional class tag,
// plus a windowed store the Scout pulls feature inputs from.
//
// Times throughout are normalized model hours (float64), matching the
// paper's normalized investigation times.
package monitoring

import (
	"fmt"
	"sort"
	"sync"

	"scouts/internal/topology"
)

// DataType distinguishes the two basic shapes every monitoring dataset is
// reduced to (§5.1): regularly sampled time series and irregular events.
type DataType int

const (
	// TimeSeries data is measured at a regular interval (utilization,
	// temperature, latency, ...).
	TimeSeries DataType = iota
	// Event data occurs irregularly (alerts, syslog errors, reboots, ...).
	Event
)

// String renders the data type like the configuration DSL does.
func (d DataType) String() string {
	if d == Event {
		return "EVENT"
	}
	return "TIME_SERIES"
}

// Descriptor declares one monitoring dataset — the CREATE_MONITORING
// statement of the configuration DSL.
type Descriptor struct {
	// Name identifies the dataset (e.g. "pingmesh").
	Name string
	// Locator is the opaque resource locator operators use to reach the
	// data (a URI in production; informational here).
	Locator string
	// Type is TIME_SERIES or EVENT.
	Type DataType
	// ComponentType is the primary component granularity the data is keyed
	// by.
	ComponentType topology.ComponentType
	// Covers lists every component type the dataset observes when it is
	// broader than ComponentType (e.g. reboot records cover servers and
	// switches). Empty means just ComponentType.
	Covers []topology.ComponentType
	// Class is the optional class tag enabling automatic combination of
	// related datasets (§5.1; the PhyNet Scout tags only two datasets).
	Class string
	// Description is free-form documentation (Table 2's right column).
	Description string
}

// CoversType reports whether the dataset observes components of the type.
func (d Descriptor) CoversType(t topology.ComponentType) bool {
	if len(d.Covers) == 0 {
		return d.ComponentType == t
	}
	for _, c := range d.Covers {
		if c == t {
			return true
		}
	}
	return false
}

// Point is one time-series observation.
type Point struct {
	Time  float64
	Value float64
}

// EventRecord is one event occurrence with its kind (e.g. a syslog type:
// the framework counts events "per type of alert and per component").
type EventRecord struct {
	Time float64
	Kind string
}

// Store holds monitoring data for all registered datasets. It is safe for
// concurrent use; the online serving path reads while generators write.
type Store struct {
	mu        sync.RWMutex
	desc      map[string]Descriptor
	series    map[string]map[string][]Point
	events    map[string]map[string][]EventRecord
	retention float64 // hours of data kept; <= 0 keeps everything
}

// NewStore creates a store that retains the given number of hours of data
// (§8 "Adding new features can be slow": retention had to be extended to
// 9 months before the Scout could train).
func NewStore(retentionHours float64) *Store {
	return &Store{
		desc:      map[string]Descriptor{},
		series:    map[string]map[string][]Point{},
		events:    map[string]map[string][]EventRecord{},
		retention: retentionHours,
	}
}

// Register adds a dataset to the registry.
func (s *Store) Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("monitoring: dataset name required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.desc[d.Name]; dup {
		return fmt.Errorf("monitoring: dataset %q already registered", d.Name)
	}
	s.desc[d.Name] = d
	if d.Type == Event {
		s.events[d.Name] = map[string][]EventRecord{}
	} else {
		s.series[d.Name] = map[string][]Point{}
	}
	return nil
}

// Deprecate removes a dataset and all its data — the Figure 9 experiment
// ("old monitoring systems may be deprecated").
func (s *Store) Deprecate(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.desc, name)
	delete(s.series, name)
	delete(s.events, name)
}

// Datasets lists registered descriptors sorted by name.
func (s *Store) Datasets() []Descriptor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Descriptor, 0, len(s.desc))
	for _, d := range s.desc {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Describe returns the descriptor for a dataset.
func (s *Store) Describe(name string) (Descriptor, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.desc[name]
	return d, ok
}

// AppendPoint records a time-series observation. Appends must be in
// non-decreasing time order per (dataset, component) so window queries can
// binary-search.
func (s *Store) AppendPoint(dataset, component string, p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.series[dataset]
	if !ok {
		return fmt.Errorf("monitoring: %q is not a registered time-series dataset", dataset)
	}
	pts := m[component]
	if n := len(pts); n > 0 && pts[n-1].Time > p.Time {
		return fmt.Errorf("monitoring: out-of-order append to %s/%s (%.4f after %.4f)",
			dataset, component, p.Time, pts[n-1].Time)
	}
	m[component] = append(pts, p)
	return nil
}

// AppendEvent records an event occurrence (same ordering contract).
func (s *Store) AppendEvent(dataset, component string, e EventRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.events[dataset]
	if !ok {
		return fmt.Errorf("monitoring: %q is not a registered event dataset", dataset)
	}
	evs := m[component]
	if n := len(evs); n > 0 && evs[n-1].Time > e.Time {
		return fmt.Errorf("monitoring: out-of-order append to %s/%s", dataset, component)
	}
	m[component] = append(evs, e)
	return nil
}

// SeriesWindow returns the values of [from, to) for a component, in time
// order. Missing datasets or components yield nil — uneven instrumentation
// is the normal state of the world (§1).
func (s *Store) SeriesWindow(dataset, component string, from, to float64) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pts := s.series[dataset][component]
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].Time >= from })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].Time >= to })
	if lo >= hi {
		return nil
	}
	out := make([]float64, 0, hi-lo)
	for _, p := range pts[lo:hi] {
		out = append(out, p.Value)
	}
	return out
}

// EventsWindow returns the events in [from, to) for a component.
func (s *Store) EventsWindow(dataset, component string, from, to float64) []EventRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	evs := s.events[dataset][component]
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= from })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= to })
	if lo >= hi {
		return nil
	}
	out := make([]EventRecord, hi-lo)
	copy(out, evs[lo:hi])
	return out
}

// EventCounts returns per-kind counts of events in [from, to).
func (s *Store) EventCounts(dataset, component string, from, to float64) map[string]int {
	out := map[string]int{}
	for _, e := range s.EventsWindow(dataset, component, from, to) {
		out[e.Kind]++
	}
	return out
}

// GC discards data older than the retention horizon relative to now.
func (s *Store) GC(now float64) {
	if s.retention <= 0 {
		return
	}
	cut := now - s.retention
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, byComp := range s.series {
		for comp, pts := range byComp {
			lo := sort.Search(len(pts), func(i int) bool { return pts[i].Time >= cut })
			if lo > 0 {
				byComp[comp] = append([]Point(nil), pts[lo:]...)
			}
		}
	}
	for _, byComp := range s.events {
		for comp, evs := range byComp {
			lo := sort.Search(len(evs), func(i int) bool { return evs[i].Time >= cut })
			if lo > 0 {
				byComp[comp] = append([]EventRecord(nil), evs[lo:]...)
			}
		}
	}
}

// Components returns the components with any data in a dataset, sorted.
func (s *Store) Components(dataset string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	if m, ok := s.series[dataset]; ok {
		for c := range m {
			out = append(out, c)
		}
	}
	if m, ok := s.events[dataset]; ok {
		for c := range m {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
