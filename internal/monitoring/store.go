// Package monitoring implements the monitoring-data substrate of §5.1: a
// registry of datasets tagged with their resource locator, component
// associations, data type (TIME_SERIES or EVENT) and optional class tag,
// plus a windowed store the Scout pulls feature inputs from.
//
// Times throughout are normalized model hours (float64), matching the
// paper's normalized investigation times.
package monitoring

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"strings"
	"sync"

	"scouts/internal/topology"
)

// DataType distinguishes the two basic shapes every monitoring dataset is
// reduced to (§5.1): regularly sampled time series and irregular events.
type DataType int

const (
	// TimeSeries data is measured at a regular interval (utilization,
	// temperature, latency, ...).
	TimeSeries DataType = iota
	// Event data occurs irregularly (alerts, syslog errors, reboots, ...).
	Event
)

// String renders the data type like the configuration DSL does.
func (d DataType) String() string {
	if d == Event {
		return "EVENT"
	}
	return "TIME_SERIES"
}

// Descriptor declares one monitoring dataset — the CREATE_MONITORING
// statement of the configuration DSL.
type Descriptor struct {
	// Name identifies the dataset (e.g. "pingmesh").
	Name string
	// Locator is the opaque resource locator operators use to reach the
	// data (a URI in production; informational here).
	Locator string
	// Type is TIME_SERIES or EVENT.
	Type DataType
	// ComponentType is the primary component granularity the data is keyed
	// by.
	ComponentType topology.ComponentType
	// Covers lists every component type the dataset observes when it is
	// broader than ComponentType (e.g. reboot records cover servers and
	// switches). Empty means just ComponentType.
	Covers []topology.ComponentType
	// Class is the optional class tag enabling automatic combination of
	// related datasets (§5.1; the PhyNet Scout tags only two datasets).
	Class string
	// Description is free-form documentation (Table 2's right column).
	Description string
}

// CoversType reports whether the dataset observes components of the type.
func (d Descriptor) CoversType(t topology.ComponentType) bool {
	if len(d.Covers) == 0 {
		return d.ComponentType == t
	}
	for _, c := range d.Covers {
		if c == t {
			return true
		}
	}
	return false
}

// Point is one time-series observation.
type Point struct {
	Time  float64
	Value float64
}

// EventRecord is one event occurrence with its kind (e.g. a syslog type:
// the framework counts events "per type of alert and per component").
type EventRecord struct {
	Time float64
	Kind string
}

// seriesData holds one (dataset, component) time series column-major with
// the aggregate layer maintained on append:
//
//   - prefix/prefixSq are cumulative sums (len n+1, entry i covering
//     vals[:i]) so any window's sum and sum-of-squares are two-subtraction
//     lookups;
//   - minLv/maxLv are incremental sparse tables: level k (stored at index
//     k-1; level 0 is vals itself) has entry j covering vals[j : j+2^k].
//     Entry j of level k is completed exactly when element j+2^k-1 arrives,
//     so each append finishes one entry per level — O(log n) amortized —
//     and entries complete in index order, making the tables append-only.
//
// With the time bounds found by binary search, WindowStats answers
// count/sum/sumsq/min/max for any window in O(log n) total, never touching
// the raw values.
type seriesData struct {
	times  []float64
	vals   []float64
	prefix []float64 // len(vals)+1 cumulative sums; prefix[0] == 0
	prefSq []float64 // len(vals)+1 cumulative sums of squares
	minLv  [][]float64
	maxLv  [][]float64
}

func (sd *seriesData) append(t, v float64) {
	if len(sd.prefix) == 0 {
		sd.prefix = append(sd.prefix, 0)
		sd.prefSq = append(sd.prefSq, 0)
	}
	sd.times = append(sd.times, t)
	sd.vals = append(sd.vals, v)
	sd.prefix = append(sd.prefix, sd.prefix[len(sd.prefix)-1]+v)
	sd.prefSq = append(sd.prefSq, sd.prefSq[len(sd.prefSq)-1]+v*v)
	n := len(sd.vals)
	for k := 1; 1<<k <= n; k++ {
		j := n - 1<<k // the entry this append completes; always len(minLv[k-1])
		half := 1 << (k - 1)
		var lmin, rmin, lmax, rmax float64
		if k == 1 {
			lmin, rmin = sd.vals[j], sd.vals[j+half]
			lmax, rmax = lmin, rmin
		} else {
			lmin, rmin = sd.minLv[k-2][j], sd.minLv[k-2][j+half]
			lmax, rmax = sd.maxLv[k-2][j], sd.maxLv[k-2][j+half]
		}
		if k-1 == len(sd.minLv) {
			sd.minLv = append(sd.minLv, nil)
			sd.maxLv = append(sd.maxLv, nil)
		}
		sd.minLv[k-1] = append(sd.minLv[k-1], min(lmin, rmin))
		sd.maxLv[k-1] = append(sd.maxLv[k-1], max(lmax, rmax))
	}
}

// minMax answers a range-min/max query over vals[lo:hi) (hi > lo) from two
// overlapping power-of-two entries.
func (sd *seriesData) minMax(lo, hi int) (mn, mx float64) {
	k := bits.Len(uint(hi-lo)) - 1
	if k == 0 {
		return sd.vals[lo], sd.vals[lo]
	}
	a, b := lo, hi-1<<k
	return min(sd.minLv[k-1][a], sd.minLv[k-1][b]),
		max(sd.maxLv[k-1][a], sd.maxLv[k-1][b])
}

// window returns the [lo, hi) index bounds of the half-open time window.
func (sd *seriesData) window(from, to float64) (lo, hi int) {
	return sort.SearchFloat64s(sd.times, from), sort.SearchFloat64s(sd.times, to)
}

// eventData holds one (dataset, component) event stream column-major so
// window counting is pure binary search and per-kind counting touches no
// record copies.
type eventData struct {
	times []float64
	kinds []string
}

func (ed *eventData) window(from, to float64) (lo, hi int) {
	return sort.SearchFloat64s(ed.times, from), sort.SearchFloat64s(ed.times, to)
}

// Store holds monitoring data for all registered datasets. It is safe for
// concurrent use; the online serving path reads while generators write.
type Store struct {
	mu        sync.RWMutex
	desc      map[string]Descriptor
	series    map[string]map[string]*seriesData
	events    map[string]map[string]*eventData
	retention float64 // hours of data kept; <= 0 keeps everything
}

// NewStore creates a store that retains the given number of hours of data
// (§8 "Adding new features can be slow": retention had to be extended to
// 9 months before the Scout could train).
func NewStore(retentionHours float64) *Store {
	return &Store{
		desc:      map[string]Descriptor{},
		series:    map[string]map[string]*seriesData{},
		events:    map[string]map[string]*eventData{},
		retention: retentionHours,
	}
}

// Register adds a dataset to the registry.
func (s *Store) Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("monitoring: dataset name required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.desc[d.Name]; dup {
		return fmt.Errorf("monitoring: dataset %q already registered", d.Name)
	}
	s.desc[d.Name] = d
	if d.Type == Event {
		s.events[d.Name] = map[string]*eventData{}
	} else {
		s.series[d.Name] = map[string]*seriesData{}
	}
	return nil
}

// Deprecate removes a dataset and all its data — the Figure 9 experiment
// ("old monitoring systems may be deprecated").
func (s *Store) Deprecate(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.desc, name)
	delete(s.series, name)
	delete(s.events, name)
}

// Datasets lists registered descriptors sorted by name.
func (s *Store) Datasets() []Descriptor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Descriptor, 0, len(s.desc))
	for _, d := range s.desc {
		out = append(out, d)
	}
	slices.SortFunc(out, func(a, b Descriptor) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// Describe returns the descriptor for a dataset.
func (s *Store) Describe(name string) (Descriptor, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.desc[name]
	return d, ok
}

// AppendPoint records a time-series observation. Appends must be in
// non-decreasing time order per (dataset, component) so window queries can
// binary-search.
func (s *Store) AppendPoint(dataset, component string, p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.series[dataset]
	if !ok {
		return fmt.Errorf("monitoring: %q is not a registered time-series dataset", dataset)
	}
	sd := m[component]
	if sd == nil {
		sd = &seriesData{}
		m[component] = sd
	}
	if n := len(sd.times); n > 0 && sd.times[n-1] > p.Time {
		return fmt.Errorf("monitoring: out-of-order append to %s/%s (%.4f after %.4f)",
			dataset, component, p.Time, sd.times[n-1])
	}
	sd.append(p.Time, p.Value)
	return nil
}

// AppendEvent records an event occurrence (same ordering contract).
func (s *Store) AppendEvent(dataset, component string, e EventRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.events[dataset]
	if !ok {
		return fmt.Errorf("monitoring: %q is not a registered event dataset", dataset)
	}
	ed := m[component]
	if ed == nil {
		ed = &eventData{}
		m[component] = ed
	}
	if n := len(ed.times); n > 0 && ed.times[n-1] > e.Time {
		return fmt.Errorf("monitoring: out-of-order append to %s/%s", dataset, component)
	}
	ed.times = append(ed.times, e.Time)
	ed.kinds = append(ed.kinds, e.Kind)
	return nil
}

// SeriesWindow returns the values of [from, to) for a component, in time
// order. Missing datasets or components yield nil — uneven instrumentation
// is the normal state of the world (§1).
func (s *Store) SeriesWindow(dataset, component string, from, to float64) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sd := s.series[dataset][component]
	if sd == nil {
		return nil
	}
	lo, hi := sd.window(from, to)
	if lo >= hi {
		return nil
	}
	out := make([]float64, hi-lo)
	copy(out, sd.vals[lo:hi])
	return out
}

// WindowStats returns the aggregates of the time-series values in [from,
// to) for a component in O(log n): the time bounds by binary search, sum
// and sum-of-squares as prefix differences, min and max from the sparse
// tables. ok is false for unknown datasets/components and empty windows.
// Mean/Std derive from the moments (see Stats); the query allocates
// nothing.
//
//scout:hotpath
func (s *Store) WindowStats(dataset, component string, from, to float64) (Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sd := s.series[dataset][component]
	if sd == nil {
		return Stats{}, false
	}
	lo, hi := sd.window(from, to)
	if lo >= hi {
		return Stats{}, false
	}
	mn, mx := sd.minMax(lo, hi)
	return momentStats(hi-lo, sd.prefix[hi]-sd.prefix[lo], sd.prefSq[hi]-sd.prefSq[lo], mn, mx), true
}

// EventsWindow returns the events in [from, to) for a component.
func (s *Store) EventsWindow(dataset, component string, from, to float64) []EventRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ed := s.events[dataset][component]
	if ed == nil {
		return nil
	}
	lo, hi := ed.window(from, to)
	if lo >= hi {
		return nil
	}
	out := make([]EventRecord, hi-lo)
	for i := range out {
		out[i] = EventRecord{Time: ed.times[lo+i], Kind: ed.kinds[lo+i]}
	}
	return out
}

// EventCount returns the number of events in [from, to) for a component —
// two binary searches, no record materialization.
//
//scout:hotpath
func (s *Store) EventCount(dataset, component string, from, to float64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ed := s.events[dataset][component]
	if ed == nil {
		return 0
	}
	lo, hi := ed.window(from, to)
	if lo >= hi {
		return 0
	}
	return hi - lo
}

// EventCounts returns per-kind counts of events in [from, to), counting in
// place under the read lock instead of copying the window's records.
func (s *Store) EventCounts(dataset, component string, from, to float64) map[string]int {
	out := map[string]int{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ed := s.events[dataset][component]
	if ed == nil {
		return out
	}
	lo, hi := ed.window(from, to)
	for _, k := range ed.kinds[lo:hi] {
		out[k]++
	}
	return out
}

// Store offers the aggregate-query capability.
var _ StatsSource = (*Store)(nil)

// GC discards data older than the retention horizon relative to now. The
// surviving suffix of each series is re-appended into a fresh seriesData so
// the prefix sums and sparse tables are rebuilt consistently.
func (s *Store) GC(now float64) {
	if s.retention <= 0 {
		return
	}
	cut := now - s.retention
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, byComp := range s.series {
		for comp, sd := range byComp {
			lo := sort.SearchFloat64s(sd.times, cut)
			if lo == 0 {
				continue
			}
			kept := &seriesData{}
			for i := lo; i < len(sd.times); i++ {
				kept.append(sd.times[i], sd.vals[i])
			}
			byComp[comp] = kept
		}
	}
	for _, byComp := range s.events {
		for comp, ed := range byComp {
			lo := sort.SearchFloat64s(ed.times, cut)
			if lo == 0 {
				continue
			}
			byComp[comp] = &eventData{
				times: append([]float64(nil), ed.times[lo:]...),
				kinds: append([]string(nil), ed.kinds[lo:]...),
			}
		}
	}
}

// Components returns the components with any data in a dataset, sorted.
func (s *Store) Components(dataset string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	if m, ok := s.series[dataset]; ok {
		for c := range m {
			out = append(out, c)
		}
	}
	if m, ok := s.events[dataset]; ok {
		for c := range m {
			out = append(out, c)
		}
	}
	slices.Sort(out)
	return out
}
