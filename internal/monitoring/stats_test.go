package monitoring

import (
	"math"
	"testing"
)

// hashVal is a cheap deterministic pseudo-random value stream for tests.
func hashVal(i int) float64 {
	z := uint64(i)*0x9E3779B97F4A7C15 + 0x1234567
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return float64(z%10000)/100 - 50
}

func statsStore(t *testing.T, n int) *Store {
	t.Helper()
	s := NewStore(0)
	if err := s.Register(Descriptor{Name: "cpu", Type: TimeSeries}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Descriptor{Name: "syslog", Type: Event}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.AppendPoint("cpu", "srv1", Point{Time: float64(i) / 10, Value: hashVal(i)}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			kind := []string{"LINK_DOWN", "PARITY"}[i%2]
			if err := s.AppendEvent("syslog", "tor1", EventRecord{Time: float64(i) / 10, Kind: kind}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestWindowStatsMatchesMaterialized cross-checks the O(log n) aggregate
// path against StatsOf over the materialized window for many window shapes,
// including windows that straddle sparse-table level boundaries.
func TestWindowStatsMatchesMaterialized(t *testing.T) {
	s := statsStore(t, 500)
	windows := [][2]float64{
		{0, 50}, {0, 0.1}, {12.3, 12.4}, {7, 9}, {0.05, 49.95},
		{3.14, 31.4}, {49.9, 50}, {0, 0.05}, {25, 26.6},
	}
	for _, w := range windows {
		got, ok := s.WindowStats("cpu", "srv1", w[0], w[1])
		vals := s.SeriesWindow("cpu", "srv1", w[0], w[1])
		if !ok {
			if len(vals) != 0 {
				t.Fatalf("window %v: ok=false but %d values exist", w, len(vals))
			}
			continue
		}
		want := StatsOf(vals)
		if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("window %v: got %+v want %+v", w, got, want)
		}
		// Sum/SumSq accumulate in the same left-to-right order as StatsOf,
		// so prefix differences agree to within one rounding of the
		// subtraction; mean/std are derived from moments and agree up to
		// association.
		if math.Abs(got.Sum-want.Sum) > 1e-9*(1+math.Abs(want.Sum)) {
			t.Fatalf("window %v: sum %g want %g", w, got.Sum, want.Sum)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*(1+math.Abs(want.Mean)) {
			t.Fatalf("window %v: mean %g want %g", w, got.Mean, want.Mean)
		}
		if math.Abs(got.Std-want.Std) > 1e-6*(1+want.Std) {
			t.Fatalf("window %v: std %g want %g", w, got.Std, want.Std)
		}
	}
	if _, ok := s.WindowStats("cpu", "nope", 0, 10); ok {
		t.Fatal("unknown component should not be ok")
	}
	if _, ok := s.WindowStats("nope", "srv1", 0, 10); ok {
		t.Fatal("unknown dataset should not be ok")
	}
	if _, ok := s.WindowStats("cpu", "srv1", 100, 200); ok {
		t.Fatal("empty window should not be ok")
	}
}

// TestWindowStatsZeroAllocs guards the aggregate path's allocation
// contract: a WindowStats query allocates nothing.
func TestWindowStatsZeroAllocs(t *testing.T) {
	s := statsStore(t, 2048)
	allocs := testing.AllocsPerRun(100, func() {
		s.WindowStats("cpu", "srv1", 17.3, 181.7)
	})
	if allocs != 0 {
		t.Fatalf("WindowStats allocates %.1f times per call, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		s.EventCount("syslog", "tor1", 1, 40)
	})
	if allocs != 0 {
		t.Fatalf("EventCount allocates %.1f times per call, want 0", allocs)
	}
}

// TestEventCountMatchesWindow checks the search-only count against the
// materialized window and the in-place per-kind counts against a manual
// tally.
func TestEventCountMatchesWindow(t *testing.T) {
	s := statsStore(t, 300)
	for _, w := range [][2]float64{{0, 30}, {1.5, 2}, {29.9, 30}, {5, 5}, {40, 50}} {
		got := s.EventCount("syslog", "tor1", w[0], w[1])
		want := len(s.EventsWindow("syslog", "tor1", w[0], w[1]))
		if got != want {
			t.Fatalf("window %v: EventCount=%d, EventsWindow has %d", w, got, want)
		}
		counts := s.EventCounts("syslog", "tor1", w[0], w[1])
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != want {
			t.Fatalf("window %v: per-kind counts sum to %d, want %d", w, total, want)
		}
	}
	if s.EventCount("syslog", "nope", 0, 10) != 0 || s.EventCount("nope", "x", 0, 10) != 0 {
		t.Fatal("unknown component/dataset should count 0")
	}
}

// TestGCRebuildsAggregates verifies that after a retention sweep the
// surviving series answers aggregate queries consistently with its
// materialized values (the prefix sums and sparse tables are rebuilt, not
// left dangling over truncated indices).
func TestGCRebuildsAggregates(t *testing.T) {
	s := NewStore(10) // keep 10 hours
	if err := s.Register(Descriptor{Name: "cpu", Type: TimeSeries}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		_ = s.AppendPoint("cpu", "srv1", Point{Time: float64(i) / 10, Value: hashVal(i)})
	}
	s.GC(40) // cut = 30, keeps t in [30, 40)
	got, ok := s.WindowStats("cpu", "srv1", 0, 100)
	if !ok {
		t.Fatal("survivors should answer stats")
	}
	want := StatsOf(s.SeriesWindow("cpu", "srv1", 0, 100))
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max ||
		math.Abs(got.Sum-want.Sum) > 1e-9*(1+math.Abs(want.Sum)) {
		t.Fatalf("after GC: got %+v want %+v", got, want)
	}
	if got.Count != 100 {
		t.Fatalf("after GC want 100 survivors, got %d", got.Count)
	}
	// Appends after GC must extend the rebuilt aggregates seamlessly.
	for i := 400; i < 450; i++ {
		_ = s.AppendPoint("cpu", "srv1", Point{Time: float64(i) / 10, Value: hashVal(i)})
	}
	got, _ = s.WindowStats("cpu", "srv1", 0, 100)
	want = StatsOf(s.SeriesWindow("cpu", "srv1", 0, 100))
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("after GC+append: got %+v want %+v", got, want)
	}
}

// TestStatsSourceOf checks both directions of the capability dispatch: a
// capable source is returned as-is, a plain DataSource gets the
// materializing adapter with identical results.
func TestStatsSourceOf(t *testing.T) {
	s := statsStore(t, 100)
	if StatsSourceOf(s).(*Store) != s {
		t.Fatal("capable source should pass through")
	}
	type windowOnly struct{ DataSource }
	adapted := StatsSourceOf(windowOnly{s})
	if _, isStore := adapted.(*Store); isStore {
		t.Fatal("wrapped source should get the adapter")
	}
	got, ok := adapted.WindowStats("cpu", "srv1", 1, 7)
	want := StatsOf(s.SeriesWindow("cpu", "srv1", 1, 7))
	if !ok || got.Count != want.Count || got.Mean != want.Mean || got.Std != want.Std {
		t.Fatalf("adapter stats %+v want %+v", got, want)
	}
	if adapted.EventCount("syslog", "tor1", 0, 10) != s.EventCount("syslog", "tor1", 0, 10) {
		t.Fatal("adapter event count mismatch")
	}
}
