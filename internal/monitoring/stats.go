package monitoring

import (
	"math"

	"scouts/internal/metrics"
)

// Stats are the windowed aggregates featurization consumes instead of raw
// sample windows: count, sum, sum of squares, min, max, plus the derived
// mean and (sample) standard deviation.
//
// Mean and Std are carried as fields rather than recomputed by the consumer
// so each producer can choose its arithmetic: sources that see the raw
// values (StatsOf, the cloud simulator) compute the two-pass mean/std that
// is bit-identical to metrics.Mean/metrics.StdDev, while the aggregate-
// backed Store derives them from the moments it maintains — equal up to
// floating-point association (see DESIGN.md §7).
type Stats struct {
	Count int
	Sum   float64
	SumSq float64
	Min   float64
	Max   float64
	Mean  float64
	Std   float64
}

// StatsOf computes the window aggregates of raw values in one pass plus the
// two-pass mean/std of the metrics package, so downstream arithmetic is
// bit-identical to code that materialized the window and called
// metrics.Mean/metrics.StdDev on it. Empty input returns the zero Stats.
func StatsOf(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(vals), Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		st.Sum += v
		st.SumSq += v * v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = metrics.Mean(vals)
	st.Std = metrics.StdDev(vals)
	return st
}

// momentStats derives Stats from pre-aggregated moments: mean = sum/n and
// std = sqrt((sumsq - sum²/n) / (n-1)), clamped at zero against the
// cancellation the one-pass formula is prone to. Used by aggregate-backed
// sources that never see the raw window.
func momentStats(n int, sum, sumsq, mn, mx float64) Stats {
	st := Stats{Count: n, Sum: sum, SumSq: sumsq, Min: mn, Max: mx}
	if n > 0 {
		st.Mean = sum / float64(n)
	}
	if n >= 2 {
		v := (sumsq - sum*sum/float64(n)) / float64(n-1)
		if v > 0 {
			st.Std = math.Sqrt(v)
		}
	}
	return st
}

// StatsSource is the aggregate-query capability a DataSource may offer.
// Featurization prefers it over SeriesWindow/EventsWindow: a capable source
// answers without materializing the raw window (the Store in O(log n) from
// cumulative arrays, the cloud simulator without allocating), which removes
// the window copies from the per-incident hot path.
type StatsSource interface {
	// WindowStats returns the aggregates of the time-series values in
	// [from, to) for a component. ok is false when the dataset or component
	// is unknown to the source or the window is empty — mirroring the nil
	// return of SeriesWindow.
	WindowStats(dataset, component string, from, to float64) (Stats, bool)
	// EventCount returns the number of events in [from, to) for a
	// component.
	EventCount(dataset, component string, from, to float64) int
}

// statsAdapter lifts a plain DataSource to a StatsSource by materializing
// windows — the compatibility path for sources that predate the capability.
type statsAdapter struct{ src DataSource }

func (a statsAdapter) WindowStats(dataset, component string, from, to float64) (Stats, bool) {
	vals := a.src.SeriesWindow(dataset, component, from, to)
	if len(vals) == 0 {
		return Stats{}, false
	}
	return StatsOf(vals), true
}

func (a statsAdapter) EventCount(dataset, component string, from, to float64) int {
	return len(a.src.EventsWindow(dataset, component, from, to))
}

// StatsSourceOf returns src itself when it already offers the aggregate
// capability, and a window-materializing adapter otherwise.
func StatsSourceOf(src DataSource) StatsSource {
	if s, ok := src.(StatsSource); ok {
		return s
	}
	return statsAdapter{src: src}
}
