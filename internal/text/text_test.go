package text

import (
	"reflect"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	got := Tokenize("The VM vm3.c10.dc2 is unable to connect to storage!")
	want := []string{"vm", "vm3.c10.dc2", "unable", "connect", "storage"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeKeepsIdentifiers(t *testing.T) {
	got := Tokenize("switch tor-2.c4.dc1 rebooted")
	if len(got) != 3 || got[1] != "tor-2.c4.dc1" {
		t.Fatalf("identifier mangled: %v", got)
	}
}

func TestTokenizeTrimsPunctuation(t *testing.T) {
	got := Tokenize("latency spiked... badly.")
	want := []string{"latency", "spiked", "badly"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeEmptyAndStopwords(t *testing.T) {
	if got := Tokenize("the a an is to"); len(got) != 0 {
		t.Fatalf("stopwords leaked: %v", got)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
}

func TestBuildVocabularyMinDocFreq(t *testing.T) {
	docs := [][]string{
		{"latency", "spike"},
		{"latency", "drop"},
		{"reboot"},
	}
	v := BuildVocabulary(docs, VocabOptions{MinDocFreq: 2})
	if v.Size() != 1 || v.Words[0] != "latency" {
		t.Fatalf("vocab: %v", v.Words)
	}
	if v.NumDocs != 3 || v.DocFreq[0] != 2 {
		t.Fatalf("df bookkeeping wrong: %+v", v)
	}
}

func TestBuildVocabularyMaxWords(t *testing.T) {
	docs := [][]string{
		{"aa", "bb", "cc"},
		{"aa", "bb", "cc"},
		{"aa", "bb"},
		{"aa"},
	}
	v := BuildVocabulary(docs, VocabOptions{MinDocFreq: 1, MaxWords: 2})
	if v.Size() != 2 {
		t.Fatalf("size %d", v.Size())
	}
	// Highest document frequency first.
	if v.Words[0] != "aa" || v.Words[1] != "bb" {
		t.Fatalf("order: %v", v.Words)
	}
}

func TestCountsAndTFIDF(t *testing.T) {
	docs := [][]string{{"x", "x", "y"}, {"y", "z"}, {"z"}, {"z", "x"}}
	v := BuildVocabulary(docs, VocabOptions{MinDocFreq: 1})
	c := v.Counts([]string{"x", "x", "unknown"})
	xi := v.Index["x"]
	if c[xi] != 2 {
		t.Fatalf("count of x = %v", c[xi])
	}
	tf := v.TFIDF([]string{"x", "z"})
	var norm float64
	for _, val := range tf {
		norm += val * val
	}
	if norm < 0.999 || norm > 1.001 {
		t.Fatalf("TF-IDF not L2-normalized: %v", norm)
	}
	if v.TFIDF(nil)[0] != 0 {
		t.Fatal("empty doc should give zero vector")
	}
}

func TestImportantWordsFindDiscriminative(t *testing.T) {
	var docs [][]string
	var labels []bool
	for i := 0; i < 30; i++ {
		docs = append(docs, []string{"packetloss", "switch", "common"})
		labels = append(labels, true)
		docs = append(docs, []string{"disk", "database", "common"})
		labels = append(labels, false)
	}
	v := BuildVocabulary(docs, VocabOptions{MinDocFreq: 1})
	top := ImportantWords(docs, labels, v, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	for _, w := range top {
		if w == "common" {
			t.Fatalf("non-discriminative word ranked top: %v", top)
		}
	}
}

func TestWordCounter(t *testing.T) {
	wc := NewWordCounter([]string{"alpha", "beta"})
	x := wc.Featurize([]string{"alpha", "alpha", "gamma"})
	if x[0] != 2 || x[1] != 0 {
		t.Fatalf("features: %v", x)
	}
	if len(wc.Names()) != 2 {
		t.Fatal("names wrong")
	}
}
