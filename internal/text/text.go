// Package text provides the natural-language machinery the paper's systems
// need: tokenization, vocabularies, bag-of-words and TF-IDF features, the
// "important words" meta-features used by the Scout's model selector
// (method of Potharaju & Jain [58]), and the legacy NLP-based multi-class
// incident-routing recommender that serves as the paper's baseline (§7:
// high precision, low recall; it sees only the incident text).
package text

import (
	"cmp"
	"math"
	"slices"
	"strings"
	"unicode"
)

// stopwords are common English and ticket-boilerplate words that carry no
// routing signal. The production system filters conversation noise the same
// way (§7: "the text of the incident is often noisy").
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true, "have": true,
	"in": true, "is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "that": true, "the": true, "this": true, "to": true, "was": true,
	"we": true, "were": true, "will": true, "with": true, "please": true,
	"hi": true, "hello": true, "thanks": true, "thank": true, "you": true,
}

// Tokenize lower-cases the text and splits it into alphanumeric tokens,
// dropping stopwords and single characters. Machine-generated names such as
// "vm3.c10.dc2" are kept intact (dots and dashes inside identifiers do not
// split) so component mentions survive tokenization.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := strings.Trim(b.String(), ".-")
		b.Reset()
		if len(tok) < 2 || stopwords[tok] {
			return
		}
		out = append(out, tok)
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case (r == '.' || r == '-' || r == '_') && b.Len() > 0:
			// Keep intra-identifier punctuation.
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// Vocabulary maps tokens to dense feature indices.
type Vocabulary struct {
	Index   map[string]int
	Words   []string
	DocFreq []int // number of documents containing each word
	NumDocs int
}

// VocabOptions control vocabulary fitting.
type VocabOptions struct {
	// MinDocFreq drops words appearing in fewer documents (default 2).
	MinDocFreq int
	// MaxWords caps the vocabulary by document frequency (default 4096).
	MaxWords int
}

// BuildVocabulary fits a vocabulary over tokenized documents.
func BuildVocabulary(docs [][]string, opt VocabOptions) *Vocabulary {
	if opt.MinDocFreq <= 0 {
		opt.MinDocFreq = 2
	}
	if opt.MaxWords <= 0 {
		opt.MaxWords = 4096
	}
	df := map[string]int{}
	for _, doc := range docs {
		seen := map[string]bool{}
		for _, w := range doc {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	type wc struct {
		w string
		c int
	}
	var cands []wc
	for w, c := range df {
		if c >= opt.MinDocFreq {
			cands = append(cands, wc{w, c})
		}
	}
	slices.SortFunc(cands, func(a, b wc) int {
		if a.c != b.c {
			return cmp.Compare(b.c, a.c)
		}
		return cmp.Compare(a.w, b.w)
	})
	if len(cands) > opt.MaxWords {
		cands = cands[:opt.MaxWords]
	}
	v := &Vocabulary{Index: map[string]int{}, NumDocs: len(docs)}
	for _, c := range cands {
		v.Index[c.w] = len(v.Words)
		v.Words = append(v.Words, c.w)
		v.DocFreq = append(v.DocFreq, c.c)
	}
	return v
}

// Size returns the vocabulary size.
func (v *Vocabulary) Size() int { return len(v.Words) }

// Counts returns the bag-of-words count vector for a tokenized document.
func (v *Vocabulary) Counts(doc []string) []float64 {
	x := make([]float64, v.Size())
	for _, w := range doc {
		if i, ok := v.Index[w]; ok {
			x[i]++
		}
	}
	return x
}

// TFIDF returns the TF-IDF vector for a tokenized document, with smooth IDF
// idf = ln((1+N)/(1+df)) + 1 and L2 normalization.
func (v *Vocabulary) TFIDF(doc []string) []float64 {
	x := v.Counts(doc)
	var norm float64
	for i := range x {
		if x[i] == 0 {
			continue
		}
		idf := math.Log(float64(1+v.NumDocs)/float64(1+v.DocFreq[i])) + 1
		x[i] *= idf
		norm += x[i] * x[i]
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range x {
			x[i] /= norm
		}
	}
	return x
}

// ImportantWords ranks vocabulary words by chi-square association with a
// binary label over the corpus and returns the top k. The Scout's model
// selector builds its meta-features from these words (§5.3).
func ImportantWords(docs [][]string, labels []bool, vocab *Vocabulary, k int) []string {
	if k <= 0 || vocab.Size() == 0 {
		return nil
	}
	n := len(docs)
	var posDocs int
	// Per-word: document counts in positive / negative class.
	posCount := make([]int, vocab.Size())
	negCount := make([]int, vocab.Size())
	for d, doc := range docs {
		seen := map[int]bool{}
		for _, w := range doc {
			if i, ok := vocab.Index[w]; ok && !seen[i] {
				seen[i] = true
				if labels[d] {
					posCount[i]++
				} else {
					negCount[i]++
				}
			}
		}
		if labels[d] {
			posDocs++
		}
	}
	negDocs := n - posDocs
	type ws struct {
		w     string
		score float64
	}
	scored := make([]ws, 0, vocab.Size())
	for i, w := range vocab.Words {
		// 2x2 contingency chi-square with continuity guard.
		a := float64(posCount[i])           // word & pos
		b := float64(negCount[i])           // word & neg
		c := float64(posDocs - posCount[i]) // no word & pos
		d := float64(negDocs - negCount[i]) // no word & neg
		num := (a*d - b*c)
		den := (a + b) * (c + d) * (a + c) * (b + d)
		if den == 0 {
			continue
		}
		chi2 := float64(n) * num * num / den
		scored = append(scored, ws{w, chi2})
	}
	slices.SortFunc(scored, func(a, b ws) int {
		if a.score != b.score {
			return cmp.Compare(b.score, a.score)
		}
		return cmp.Compare(a.w, b.w)
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	out := make([]string, len(scored))
	for i, s := range scored {
		out[i] = s.w
	}
	return out
}

// WordCounter turns a fixed word list into a count featurizer — the
// meta-feature vector ("important words and their frequency").
type WordCounter struct {
	words []string
	index map[string]int
}

// NewWordCounter builds a counter over the given words.
func NewWordCounter(words []string) *WordCounter {
	wc := &WordCounter{words: append([]string(nil), words...), index: map[string]int{}}
	for i, w := range wc.words {
		wc.index[w] = i
	}
	return wc
}

// Names returns the feature names (the words).
func (wc *WordCounter) Names() []string { return wc.words }

// Featurize counts occurrences of each tracked word in the document.
func (wc *WordCounter) Featurize(doc []string) []float64 {
	x := make([]float64, len(wc.words))
	for _, w := range doc {
		if i, ok := wc.index[w]; ok {
			x[i]++
		}
	}
	return x
}
