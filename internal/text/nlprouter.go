package text

import (
	"cmp"
	"errors"
	"math"
	"slices"
)

// ConfidenceBand is the categorical confidence the legacy NLP recommender
// attaches to its ranked list (§7: "along with categorical — high, medium,
// and low — confidence scores").
type ConfidenceBand int

const (
	// Low confidence: the top team barely beats the runner-up.
	Low ConfidenceBand = iota
	// Medium confidence.
	Medium
	// High confidence: the posterior mass concentrates on one team.
	High
)

// String renders the band.
func (b ConfidenceBand) String() string {
	switch b {
	case High:
		return "high"
	case Medium:
		return "medium"
	default:
		return "low"
	}
}

// TeamScore is one entry of the recommender's ranked output.
type TeamScore struct {
	Team  string
	Score float64 // posterior probability
}

// NLPRouter is the legacy multi-class incident router: a multinomial naive
// Bayes classifier over incident text. It reproduces the baseline's
// behaviour profile: decent precision on clearly-worded incidents, poor
// recall when the text describes symptoms rather than causes.
type NLPRouter struct {
	vocab    *Vocabulary
	teams    []string
	teamIdx  map[string]int
	logPrior []float64
	logProb  [][]float64 // team x word: log P(word | team) with Laplace smoothing
}

// ErrNoTrainingData is returned when TrainNLPRouter receives no documents.
var ErrNoTrainingData = errors.New("text: no training documents")

// TrainNLPRouter fits the multinomial NB router on (document, team) pairs.
func TrainNLPRouter(docs []string, teams []string, opt VocabOptions) (*NLPRouter, error) {
	if len(docs) == 0 || len(docs) != len(teams) {
		return nil, ErrNoTrainingData
	}
	tokenized := make([][]string, len(docs))
	for i, d := range docs {
		tokenized[i] = Tokenize(d)
	}
	vocab := BuildVocabulary(tokenized, opt)
	r := &NLPRouter{vocab: vocab, teamIdx: map[string]int{}}
	for _, t := range teams {
		if _, ok := r.teamIdx[t]; !ok {
			r.teamIdx[t] = len(r.teams)
			r.teams = append(r.teams, t)
		}
	}
	nTeams := len(r.teams)
	wordCounts := make([][]float64, nTeams)
	teamDocs := make([]float64, nTeams)
	totals := make([]float64, nTeams)
	for i := range wordCounts {
		wordCounts[i] = make([]float64, vocab.Size())
	}
	for i, doc := range tokenized {
		t := r.teamIdx[teams[i]]
		teamDocs[t]++
		for _, w := range doc {
			if j, ok := vocab.Index[w]; ok {
				wordCounts[t][j]++
				totals[t]++
			}
		}
	}
	r.logPrior = make([]float64, nTeams)
	r.logProb = make([][]float64, nTeams)
	v := float64(vocab.Size())
	for t := 0; t < nTeams; t++ {
		r.logPrior[t] = math.Log(teamDocs[t] / float64(len(docs)))
		r.logProb[t] = make([]float64, vocab.Size())
		for j := range r.logProb[t] {
			r.logProb[t][j] = math.Log((wordCounts[t][j] + 1) / (totals[t] + v))
		}
	}
	return r, nil
}

// Teams returns the known team labels.
func (r *NLPRouter) Teams() []string { return append([]string(nil), r.teams...) }

// Rank scores every team for the incident text and returns the ranked list
// (posterior probabilities summing to 1) plus the categorical confidence.
func (r *NLPRouter) Rank(doc string) ([]TeamScore, ConfidenceBand) {
	tokens := Tokenize(doc)
	scores := make([]float64, len(r.teams))
	for t := range r.teams {
		s := r.logPrior[t]
		for _, w := range tokens {
			if j, ok := r.vocab.Index[w]; ok {
				s += r.logProb[t][j]
			}
		}
		scores[t] = s
	}
	// Softmax via log-sum-exp.
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	var z float64
	for t := range scores {
		scores[t] = math.Exp(scores[t] - maxS)
		z += scores[t]
	}
	out := make([]TeamScore, len(r.teams))
	for t, name := range r.teams {
		out[t] = TeamScore{Team: name, Score: scores[t] / z}
	}
	slices.SortFunc(out, func(a, b TeamScore) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		return cmp.Compare(a.Team, b.Team)
	})
	return out, band(out)
}

// Route returns only the top team and the confidence band.
func (r *NLPRouter) Route(doc string) (string, ConfidenceBand) {
	ranked, b := r.Rank(doc)
	return ranked[0].Team, b
}

func band(ranked []TeamScore) ConfidenceBand {
	if len(ranked) == 0 {
		return Low
	}
	top := ranked[0].Score
	second := 0.0
	if len(ranked) > 1 {
		second = ranked[1].Score
	}
	switch {
	case top >= 0.8 && top-second >= 0.4:
		return High
	case top >= 0.5:
		return Medium
	default:
		return Low
	}
}
