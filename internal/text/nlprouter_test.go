package text

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// corpus builds a synthetic ticket corpus with team-specific vocabulary and
// shared boilerplate.
func corpus(n int, rng *rand.Rand) (docs []string, teams []string) {
	vocab := map[string][]string{
		"PhyNet":  {"switch", "packet", "loss", "tor", "link", "bgp"},
		"Storage": {"disk", "virtual", "mount", "blob", "iops"},
		"SLB":     {"vip", "loadbalancer", "probe", "nat", "mapping"},
	}
	teamNames := []string{"PhyNet", "Storage", "SLB"}
	for i := 0; i < n; i++ {
		team := teamNames[rng.Intn(len(teamNames))]
		words := vocab[team]
		doc := "incident reported customers impacted"
		for k := 0; k < 4; k++ {
			doc += " " + words[rng.Intn(len(words))]
		}
		docs = append(docs, doc)
		teams = append(teams, team)
	}
	return docs, teams
}

func TestNLPRouterLearnsVocabulary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs, teams := corpus(600, rng)
	r, err := TrainNLPRouter(docs, teams, VocabOptions{MinDocFreq: 2})
	if err != nil {
		t.Fatal(err)
	}
	testDocs, testTeams := corpus(300, rng)
	correct := 0
	for i := range testDocs {
		top, _ := r.Route(testDocs[i])
		if top == testTeams[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(testDocs)); frac < 0.9 {
		t.Fatalf("NLP router accuracy %v too low", frac)
	}
}

func TestNLPRouterRankIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	docs, teams := corpus(200, rng)
	r, err := TrainNLPRouter(docs, teams, VocabOptions{MinDocFreq: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked, _ := r.Rank("switch link loss")
	var sum float64
	for i, ts := range ranked {
		sum += ts.Score
		if i > 0 && ts.Score > ranked[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
	if ranked[0].Team != "PhyNet" {
		t.Fatalf("obvious PhyNet text routed to %v", ranked[0].Team)
	}
}

func TestNLPRouterConfidenceBands(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs, teams := corpus(600, rng)
	r, err := TrainNLPRouter(docs, teams, VocabOptions{MinDocFreq: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Strongly team-specific text should be confident; vague text should
	// not be High.
	_, strong := r.Rank("switch tor link packet loss bgp switch link")
	if strong == Low {
		t.Fatalf("strong PhyNet text got %v confidence", strong)
	}
	_, vague := r.Rank("incident reported customers impacted")
	if vague == High {
		t.Fatal("pure boilerplate should not be High confidence")
	}
}

func TestNLPRouterErrors(t *testing.T) {
	if _, err := TrainNLPRouter(nil, nil, VocabOptions{}); err != ErrNoTrainingData {
		t.Fatalf("want ErrNoTrainingData, got %v", err)
	}
	if _, err := TrainNLPRouter([]string{"a"}, []string{"t1", "t2"}, VocabOptions{}); err != ErrNoTrainingData {
		t.Fatalf("mismatched lengths should error, got %v", err)
	}
}

func TestNLPRouterUnknownWordsFallBackToPrior(t *testing.T) {
	docs := []string{"disk failure storage", "disk mount error", "switch loss", "packet drop switch", "switch flap", "switch down"}
	teams := []string{"Storage", "Storage", "PhyNet", "PhyNet", "PhyNet", "PhyNet"}
	r, err := TrainNLPRouter(docs, teams, VocabOptions{MinDocFreq: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked, _ := r.Rank("zzz qqq completely-novel-text")
	// With no known words, the prior should dominate: PhyNet has 4/6 docs.
	if ranked[0].Team != "PhyNet" {
		t.Fatalf("prior should win on unknown text, got %v", ranked[0].Team)
	}
}

func TestConfidenceBandString(t *testing.T) {
	for b, want := range map[ConfidenceBand]string{Low: "low", Medium: "medium", High: "high"} {
		if got := fmt.Sprint(b); got != want {
			t.Errorf("band %d prints %q want %q", b, got, want)
		}
	}
}
