package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ctxKey is the private context-key namespace.
type ctxKey int

const requestIDKey ctxKey = iota

// WithRequestID stamps a request ID into the context. The serving
// middleware generates the ID once per request; everything downstream —
// the batch scorer, degradation fallbacks, access logs — reads it back
// with RequestID, so one incident's trip through the stack is grep-able
// end to end.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "" when none was set
// (library calls outside a request, tests).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Field is one key/value pair of a structured log line. Fields render in
// the order given, so a line's layout is deterministic.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes JSON-lines structured logs: one object per line, an
// "event" discriminator first, then the fields in call order. A nil
// *Logger is a valid no-op logger, so instrumented code logs
// unconditionally and the caller decides by wiring.
//
// The wall clock is injected: Now, when set (binaries set it to
// time.Now), adds a "ts" RFC3339Nano field; left nil (libraries, tests)
// lines carry no timestamp and log output is bit-reproducible.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	base []Field

	// Now stamps each line's "ts" field; nil omits the field entirely.
	Now func() time.Time
}

// NewLogger builds a logger over w with optional constant fields
// (component names, instance IDs) prepended to every line.
func NewLogger(w io.Writer, base ...Field) *Logger {
	return &Logger{w: w, base: base}
}

// Log emits one line. Marshal failures degrade to a quoted %v rendering
// of the offending value — a log line must never be lost to its payload.
func (l *Logger) Log(event string, fields ...Field) {
	if l == nil || l.w == nil {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"event":`)
	appendJSON(&buf, event)
	if l.Now != nil {
		buf.WriteString(`,"ts":`)
		appendJSON(&buf, l.Now().UTC().Format(time.RFC3339Nano))
	}
	for _, f := range l.base {
		appendField(&buf, f)
	}
	for _, f := range fields {
		appendField(&buf, f)
	}
	buf.WriteString("}\n")
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(buf.Bytes())
}

func appendField(buf *bytes.Buffer, f Field) {
	if f.Key == "" {
		return
	}
	buf.WriteByte(',')
	appendJSON(buf, f.Key)
	buf.WriteByte(':')
	appendJSON(buf, f.Value)
}

func appendJSON(buf *bytes.Buffer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	buf.Write(b)
}
