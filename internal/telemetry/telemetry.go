// Package telemetry is the repo's self-observability plane: a
// stdlib-only instrumentation kit whose hot path is nothing but atomic
// adds. A Registry holds named counters, gauges and fixed-bucket
// histograms — all pre-registered with their full label sets at startup,
// so recording a sample never touches a lock, never hashes a label map
// and never allocates — and renders them in the Prometheus text
// exposition format (it is an http.Handler, mountable as GET /metrics).
//
// Design rules, enforced by tests and scoutlint:
//
//   - Hot path is atomic-only. Counter.Inc/Add, Gauge.Set and
//     Histogram.Observe are lock-free and zero-alloc; the registry mutex
//     guards registration and scraping only.
//   - Registration is startup-time. Metrics are created once (NewServer,
//     Handler()) and held by pointer; a duplicate or inconsistent
//     registration panics immediately rather than corrupting a scrape.
//   - Exposition is deterministic. Families render sorted by name,
//     series sorted by label signature, label keys sorted at
//     registration; no timestamps, no wall-clock values. Under an
//     injected clock a scrape is golden-testable byte for byte.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//scout:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
//
//scout:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down (model
// versions, in-flight requests, breaker states).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//scout:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
//
//scout:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are chosen at
// registration; observing walks the (short) bound slice and lands in two
// atomic adds — one bucket count, one fixed-point sum — so a histogram
// sample is safe inside the zero-alloc serving path. The sum is kept in
// nanounits (1e-9 of the observed unit), which is exact for durations
// observed through ObserveDuration.
type Histogram struct {
	bounds []float64     // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative; cumulated at scrape
	sum    atomic.Int64   // fixed-point, 1e-9 resolution
}

// DefBuckets are the default latency buckets in seconds, 500µs to 10s.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one sample.
//
//scout:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(v * 1e9))
}

// ObserveDuration records a duration in seconds, with an exact
// (integer-nanosecond) contribution to the sum.
//
//scout:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) {
	v := float64(d) / 1e9
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Label is one metric dimension. Values are escaped at render time;
// keys must be valid Prometheus label names.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates how a family renders.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one labeled instance inside a family. Exactly one of the
// value fields is set; fn-backed series are read at scrape time (breaker
// state lives in the breaker, not in a stored gauge).
type series struct {
	labels string // rendered `k="v",...`, keys sorted; "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64
	series []*series
}

// Registry is a set of metric families with a deterministic text
// exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Counter registers (or panics on conflict) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, nil, &series{c: c}, labels)
	return c
}

// CounterFunc registers a counter whose value is read at scrape time.
// The callback must be monotone for the series to mean anything; the
// registry does not enforce it.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindCounter, nil, &series{fn: fn}, labels)
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, nil, &series{g: g}, labels)
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, nil, &series{fn: fn}, labels)
}

// Histogram registers a histogram series. bounds must be strictly
// increasing; nil selects DefBuckets. Every series of one family must
// share the same bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not strictly increasing", name))
		}
	}
	h := &Histogram{bounds: slices.Clone(bounds), counts: make([]atomic.Int64, len(bounds)+1)}
	r.add(name, help, kindHistogram, h.bounds, &series{h: h}, labels)
	return h
}

func (r *Registry) add(name, help string, kind metricKind, bounds []float64, s *series, labels []Label) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	s.labels = renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered with a different type", name))
	}
	if f.help != help {
		panic(fmt.Sprintf("telemetry: metric %s re-registered with different help text", name))
	}
	if kind == kindHistogram && !slices.Equal(f.bounds, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with different buckets", name))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
	slices.SortFunc(f.series, func(a, b *series) int { return strings.Compare(a.labels, b.labels) })
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

var valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels pre-bakes the sorted `k="v",...` signature at
// registration so scraping only concatenates.
func renderLabels(metric string, labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := slices.Clone(labels)
	slices.SortFunc(ls, func(a, b Label) int { return strings.Compare(a.Key, b.Key) })
	var sb strings.Builder
	for i, l := range ls {
		if !validName(l.Key) || l.Key == "le" {
			panic(fmt.Sprintf("telemetry: metric %s has invalid label key %q", metric, l.Key))
		}
		if i > 0 {
			if ls[i-1].Key == l.Key {
				panic(fmt.Sprintf("telemetry: metric %s repeats label key %q", metric, l.Key))
			}
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(valueEscaper.Replace(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, series sorted by label signature, histogram
// buckets cumulative with the canonical +Inf terminal, no timestamps.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	slices.Sort(names)
	var buf bytes.Buffer
	for _, name := range names {
		f := r.fams[name]
		fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, typeString(f.kind))
		for _, s := range f.series {
			writeSeries(&buf, f, s)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func writeSeries(buf *bytes.Buffer, f *family, s *series) {
	switch {
	case s.h != nil:
		cum := int64(0)
		for i := range s.h.counts {
			cum += s.h.counts[i].Load()
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			buf.WriteString(f.name)
			buf.WriteString("_bucket{")
			if s.labels != "" {
				buf.WriteString(s.labels)
				buf.WriteByte(',')
			}
			fmt.Fprintf(buf, "le=%q} %d\n", le, cum)
		}
		writeLine(buf, f.name+"_sum", s.labels, formatFloat(float64(s.h.sum.Load())/1e9))
		writeLine(buf, f.name+"_count", s.labels, strconv.FormatInt(cum, 10))
	case s.fn != nil:
		writeLine(buf, f.name, s.labels, formatFloat(s.fn()))
	case s.c != nil:
		writeLine(buf, f.name, s.labels, strconv.FormatInt(s.c.Value(), 10))
	default:
		writeLine(buf, f.name, s.labels, strconv.FormatInt(s.g.Value(), 10))
	}
}

func writeLine(buf *bytes.Buffer, name, labels, value string) {
	buf.WriteString(name)
	if labels != "" {
		buf.WriteByte('{')
		buf.WriteString(labels)
		buf.WriteByte('}')
	}
	buf.WriteByte(' ')
	buf.WriteString(value)
	buf.WriteByte('\n')
}

// formatFloat renders values the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP makes the registry mountable as GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
