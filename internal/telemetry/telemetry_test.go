package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exposition format byte for byte: stable
// metric names, families sorted by name, series sorted by label
// signature, sorted label keys, cumulative buckets with a +Inf terminal,
// no timestamps and no wall-clock values — the contract every scrape
// consumer (and the loadgen soak parser) relies on.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of render order.
	r.Gauge("scout_model_version", "Version of the served model.").Set(3)
	b := r.Counter("scout_http_requests_total", "Requests by endpoint and code.",
		L("endpoint", "/v1/predict"), L("code", "400"))
	a := r.Counter("scout_http_requests_total", "Requests by endpoint and code.",
		L("code", "200"), L("endpoint", "/v1/predict"))
	h := r.Histogram("scout_request_duration_seconds", "Latency.", []float64{0.001, 0.01, 0.1},
		L("endpoint", "/v1/predict"))
	r.GaugeFunc("scout_breaker_state", "Breaker state.", func() float64 { return 2 }, L("dataset", "pingmesh"))
	r.CounterFunc("scout_breaker_trips_total", "Breaker trips.", func() float64 { return 1 }, L("dataset", "pingmesh"))

	a.Add(2)
	b.Inc()
	h.Observe(0.0004)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(7)

	want := strings.Join([]string{
		`# HELP scout_breaker_state Breaker state.`,
		`# TYPE scout_breaker_state gauge`,
		`scout_breaker_state{dataset="pingmesh"} 2`,
		`# HELP scout_breaker_trips_total Breaker trips.`,
		`# TYPE scout_breaker_trips_total counter`,
		`scout_breaker_trips_total{dataset="pingmesh"} 1`,
		`# HELP scout_http_requests_total Requests by endpoint and code.`,
		`# TYPE scout_http_requests_total counter`,
		`scout_http_requests_total{code="200",endpoint="/v1/predict"} 2`,
		`scout_http_requests_total{code="400",endpoint="/v1/predict"} 1`,
		`# HELP scout_model_version Version of the served model.`,
		`# TYPE scout_model_version gauge`,
		`scout_model_version 3`,
		`# HELP scout_request_duration_seconds Latency.`,
		`# TYPE scout_request_duration_seconds histogram`,
		`scout_request_duration_seconds_bucket{endpoint="/v1/predict",le="0.001"} 1`,
		`scout_request_duration_seconds_bucket{endpoint="/v1/predict",le="0.01"} 1`,
		`scout_request_duration_seconds_bucket{endpoint="/v1/predict",le="0.1"} 3`,
		`scout_request_duration_seconds_bucket{endpoint="/v1/predict",le="+Inf"} 4`,
		`scout_request_duration_seconds_sum{endpoint="/v1/predict"} 7.1004`,
		`scout_request_duration_seconds_count{endpoint="/v1/predict"} 4`,
		``,
	}, "\n")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Rendering must be idempotent: a scrape reads, never mutates.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("second scrape differs from the first with no observations in between")
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("scout_up_total", "Up.").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "scout_up_total 1") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

// TestHotPathZeroAlloc is the allocation guard on the instrumented
// serving path: a counter bump and a histogram sample must not produce
// garbage, or the PR 3 zero-alloc batch path regresses the moment it is
// observed.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scout_x_total", "x")
	g := r.Gauge("scout_g", "g")
	h := r.Histogram("scout_d_seconds", "d", nil)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(2)
		g.Set(4)
		h.Observe(0.003)
		h.ObserveDuration(3 * time.Millisecond)
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f objects per run, want 0", n)
	}
}

// TestConcurrentObserveAndScrape runs observers against scrapers under
// the race detector: the lock-free hot path and the locked render must
// coexist.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scout_x_total", "x")
	h := r.Histogram("scout_d_seconds", "d", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 2000 || h.Count() != 2000 {
		t.Fatalf("lost updates: counter=%d histogram=%d", c.Value(), h.Count())
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("scout_a_total", "a")
	mustPanic("duplicate series", func() { r.Counter("scout_a_total", "a") })
	mustPanic("kind conflict", func() { r.Gauge("scout_a_total", "a") })
	mustPanic("help conflict", func() { r.Counter("scout_a_total", "b", L("x", "y")) })
	mustPanic("bad name", func() { r.Counter("0bad", "x") })
	mustPanic("bad label key", func() { r.Counter("scout_b_total", "b", L("le", "y")) })
	mustPanic("bad buckets", func() { r.Histogram("scout_h", "h", []float64{1, 1}) })
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("scout_esc_total", "esc", L("path", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `scout_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped series %q missing from:\n%s", want, buf.String())
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context should carry no request ID")
	}
	ctx = WithRequestID(ctx, "inst-42")
	if got := RequestID(ctx); got != "inst-42" {
		t.Fatalf("RequestID = %q", got)
	}
}

// TestLoggerGolden pins the JSON-lines layout: "event" first, injected
// timestamp when a clock is set, base fields before call fields, field
// order preserved, every line valid JSON.
func TestLoggerGolden(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, F("component", "scoutd"))
	lg.Now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	lg.Log("http_request",
		F("request_id", "i-1"),
		F("status", 200),
		F("duration_ms", 1.5),
	)
	want := `{"event":"http_request","ts":"2026-08-08T12:00:00Z","component":"scoutd","request_id":"i-1","status":200,"duration_ms":1.5}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("log line:\n got %q\nwant %q", got, want)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}

	// No clock, no ts field; nil logger is a no-op.
	buf.Reset()
	NewLogger(&buf).Log("x")
	if got := buf.String(); got != `{"event":"x"}`+"\n" {
		t.Errorf("clockless line = %q", got)
	}
	var nilLogger *Logger
	nilLogger.Log("ignored", F("k", "v")) // must not panic
}
