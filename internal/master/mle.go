package master

import (
	"cmp"
	"math"
	"slices"
)

// Reliability is the historically-measured accuracy profile of one team's
// Scout, estimated from how its past answers matched eventual incident
// owners. Appendix C: "more sophisticated algorithms can predict the team
// 'most likely' to be responsible (the MLE estimate [54]) given the
// historic accuracy of each Scout and its output confidence score".
type Reliability struct {
	// TruePositiveRate is P(Scout says yes | team responsible).
	TruePositiveRate float64
	// FalsePositiveRate is P(Scout says yes | team not responsible).
	FalsePositiveRate float64
	// Prior is P(team responsible) among routed incidents.
	Prior float64
}

// clamp keeps probabilities usable in likelihoods.
func clampProb(p float64) float64 {
	if p < 1e-4 {
		return 1e-4
	}
	if p > 1-1e-4 {
		return 1 - 1e-4
	}
	return p
}

// MLEMaster routes by maximum-likelihood estimation over the joint Scout
// answers: for every candidate team it computes the likelihood of the
// observed yes/no pattern (weighted by each answer's confidence) under the
// hypothesis "this team is responsible", multiplies by the team prior, and
// picks the argmax. Unlike the strawman it degrades gracefully with
// unreliable Scouts: a chronically wrong Scout's claims barely move the
// posterior.
type MLEMaster struct {
	profiles map[string]Reliability
}

// NewMLE builds an MLE master from per-team reliability profiles.
func NewMLE(profiles map[string]Reliability) *MLEMaster {
	cp := map[string]Reliability{}
	for t, r := range profiles {
		cp[t] = r
	}
	return &MLEMaster{profiles: cp}
}

// EstimateReliability derives reliability profiles from labelled history:
// for each team's Scout, its answers over past incidents paired with the
// eventual owner.
type HistoricalAnswer struct {
	Team        string
	Responsible bool // the Scout's answer
	Actual      bool // was the team the eventual owner?
}

// EstimateReliability tallies historical answers into profiles, applying
// add-one smoothing so a Scout with a short history is not treated as
// perfectly reliable.
func EstimateReliability(history []HistoricalAnswer) map[string]Reliability {
	type tally struct{ tp, fnn, fp, tn float64 }
	t := map[string]*tally{}
	for _, h := range history {
		x := t[h.Team]
		if x == nil {
			x = &tally{}
			t[h.Team] = x
		}
		switch {
		case h.Responsible && h.Actual:
			x.tp++
		case !h.Responsible && h.Actual:
			x.fnn++
		case h.Responsible && !h.Actual:
			x.fp++
		default:
			x.tn++
		}
	}
	out := map[string]Reliability{}
	for team, x := range t {
		pos := x.tp + x.fnn
		neg := x.fp + x.tn
		out[team] = Reliability{
			TruePositiveRate:  (x.tp + 1) / (pos + 2),
			FalsePositiveRate: (x.fp + 1) / (neg + 2),
			Prior:             (pos + 1) / (pos + neg + 2),
		}
	}
	return out
}

// Route scores every candidate team and returns the ranked posterior.
// Candidates are the teams with answers plus any extra candidates given
// (teams without Scouts compete through their priors alone). An empty
// result means no information at all.
func (m *MLEMaster) Route(answers []Answer, extraCandidates []string) []TeamPosterior {
	candidates := map[string]bool{}
	for _, a := range answers {
		candidates[a.Team] = true
	}
	for _, t := range extraCandidates {
		candidates[t] = true
	}
	if len(candidates) == 0 {
		return nil
	}
	var out []TeamPosterior
	for team := range candidates {
		prior := 1.0 / float64(len(candidates))
		if p, ok := m.profiles[team]; ok && p.Prior > 0 {
			prior = p.Prior
		}
		ll := math.Log(clampProb(prior))
		for _, a := range answers {
			if !a.Usable {
				continue
			}
			ll += m.logLikelihood(a, a.Team == team)
		}
		out = append(out, TeamPosterior{Team: team, logScore: ll})
	}
	// Normalize via log-sum-exp for readable posteriors.
	maxLL := math.Inf(-1)
	for _, tp := range out {
		if tp.logScore > maxLL {
			maxLL = tp.logScore
		}
	}
	var z float64
	for i := range out {
		out[i].Posterior = math.Exp(out[i].logScore - maxLL)
		z += out[i].Posterior
	}
	for i := range out {
		out[i].Posterior /= z
	}
	slices.SortFunc(out, func(a, b TeamPosterior) int {
		if a.Posterior != b.Posterior {
			return cmp.Compare(b.Posterior, a.Posterior)
		}
		return cmp.Compare(a.Team, b.Team)
	})
	return out
}

// logLikelihood scores one Scout's answer under the hypothesis that
// `responsible` states whether that Scout's team is the true owner. The
// answer's confidence interpolates between an uninformative coin and the
// Scout's historical rates.
func (m *MLEMaster) logLikelihood(a Answer, responsible bool) float64 {
	prof, ok := m.profiles[a.Team]
	if !ok {
		return 0 // unknown Scout: no information
	}
	var pYes float64
	if responsible {
		pYes = clampProb(prof.TruePositiveRate)
	} else {
		pYes = clampProb(prof.FalsePositiveRate)
	}
	// Confidence-weighted: at confidence 0.5 the answer carries no
	// information; at 1.0 it carries the full historical likelihood.
	w := (a.Confidence - 0.5) * 2
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	var p float64
	if a.Responsible {
		p = pYes
	} else {
		p = 1 - pYes
	}
	return w * math.Log(clampProb(p))
}

// TeamPosterior is one entry of the MLE ranking.
type TeamPosterior struct {
	Team      string
	Posterior float64
	logScore  float64
}
