package master

import (
	"math"
	"testing"
)

func reliableProfiles() map[string]Reliability {
	return map[string]Reliability{
		"PhyNet":  {TruePositiveRate: 0.95, FalsePositiveRate: 0.03, Prior: 0.3},
		"Storage": {TruePositiveRate: 0.9, FalsePositiveRate: 0.05, Prior: 0.2},
		"Flaky":   {TruePositiveRate: 0.55, FalsePositiveRate: 0.45, Prior: 0.2},
	}
}

func TestMLESingleConfidentClaim(t *testing.T) {
	m := NewMLE(reliableProfiles())
	ranked := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.95, Usable: true},
		{Team: "Storage", Responsible: false, Confidence: 0.9, Usable: true},
	}, nil)
	if ranked[0].Team != "PhyNet" {
		t.Fatalf("ranked: %+v", ranked)
	}
	if ranked[0].Posterior <= ranked[1].Posterior {
		t.Fatal("posterior ordering broken")
	}
	var sum float64
	for _, tp := range ranked {
		sum += tp.Posterior
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", sum)
	}
}

func TestMLEDiscountsFlakyScout(t *testing.T) {
	m := NewMLE(reliableProfiles())
	// The flaky Scout claims the incident while the reliable PhyNet Scout
	// also claims it: PhyNet's claim should dominate because the flaky
	// Scout's yes carries almost no likelihood weight.
	ranked := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.95, Usable: true},
		{Team: "Flaky", Responsible: true, Confidence: 0.95, Usable: true},
	}, nil)
	if ranked[0].Team != "PhyNet" {
		t.Fatalf("flaky scout outranked a reliable one: %+v", ranked)
	}
}

func TestMLEConfidenceWeighting(t *testing.T) {
	m := NewMLE(reliableProfiles())
	confident := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.99, Usable: true},
		{Team: "Storage", Responsible: true, Confidence: 0.51, Usable: true},
	}, nil)
	if confident[0].Team != "PhyNet" {
		t.Fatalf("confidence weighting failed: %+v", confident)
	}
	// At confidence 0.5 an answer is a coin flip: only priors separate.
	coin := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.5, Usable: true},
		{Team: "Storage", Responsible: true, Confidence: 0.5, Usable: true},
	}, nil)
	if math.Abs(coin[0].Posterior-coin[1].Posterior) > 0.25 {
		t.Fatalf("uninformative answers should leave posteriors near priors: %+v", coin)
	}
}

func TestMLEUnusableIgnored(t *testing.T) {
	m := NewMLE(reliableProfiles())
	ranked := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.99, Usable: false},
		{Team: "Storage", Responsible: true, Confidence: 0.85, Usable: true},
	}, nil)
	if ranked[0].Team != "Storage" {
		t.Fatalf("unusable answer should not route: %+v", ranked)
	}
}

func TestMLEExtraCandidates(t *testing.T) {
	m := NewMLE(reliableProfiles())
	// Both Scouts say no: a Scout-less candidate should win on priors.
	ranked := m.Route([]Answer{
		{Team: "PhyNet", Responsible: false, Confidence: 0.95, Usable: true},
		{Team: "Storage", Responsible: false, Confidence: 0.95, Usable: true},
	}, []string{"DNS"})
	if ranked[0].Team != "DNS" {
		t.Fatalf("scoutless candidate should win when every Scout declines: %+v", ranked)
	}
}

func TestMLEEmpty(t *testing.T) {
	if got := NewMLE(nil).Route(nil, nil); got != nil {
		t.Fatalf("no candidates should return nil, got %+v", got)
	}
}

func TestEstimateReliability(t *testing.T) {
	var history []HistoricalAnswer
	// PhyNet: 9 TP, 1 FN, 1 FP, 9 TN.
	for i := 0; i < 9; i++ {
		history = append(history,
			HistoricalAnswer{Team: "PhyNet", Responsible: true, Actual: true},
			HistoricalAnswer{Team: "PhyNet", Responsible: false, Actual: false},
		)
	}
	history = append(history,
		HistoricalAnswer{Team: "PhyNet", Responsible: false, Actual: true},
		HistoricalAnswer{Team: "PhyNet", Responsible: true, Actual: false},
	)
	prof := EstimateReliability(history)["PhyNet"]
	if prof.TruePositiveRate < 0.8 || prof.TruePositiveRate > 0.9 {
		t.Fatalf("TPR = %v (want ~(9+1)/(10+2))", prof.TruePositiveRate)
	}
	if prof.FalsePositiveRate < 0.1 || prof.FalsePositiveRate > 0.2 {
		t.Fatalf("FPR = %v", prof.FalsePositiveRate)
	}
	if math.Abs(prof.Prior-0.5) > 0.05 {
		t.Fatalf("prior = %v", prof.Prior)
	}
}

func TestEstimateReliabilitySmoothing(t *testing.T) {
	// One perfect observation must not produce a perfect profile.
	prof := EstimateReliability([]HistoricalAnswer{
		{Team: "X", Responsible: true, Actual: true},
	})["X"]
	if prof.TruePositiveRate > 0.99 {
		t.Fatalf("unsmoothed TPR: %v", prof.TruePositiveRate)
	}
}
