package master

import (
	"math/rand"
	"strings"
	"testing"

	"scouts/internal/incident"
	"scouts/internal/metrics"
)

func TestRouteNoClaims(t *testing.T) {
	m := New(nil, 0.8)
	team, reason := m.Route([]Answer{
		{Team: "A", Responsible: false, Confidence: 0.9, Usable: true},
		{Team: "B", Responsible: true, Confidence: 0.6, Usable: true}, // below gate
	}, "legacy")
	if team != "legacy" {
		t.Fatalf("routed to %q", team)
	}
	if !strings.Contains(reason, "legacy") {
		t.Fatalf("reason %q", reason)
	}
}

func TestRouteSingleClaim(t *testing.T) {
	m := New(nil, 0.8)
	team, _ := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.95, Usable: true},
		{Team: "Storage", Responsible: false, Confidence: 0.9, Usable: true},
	}, "legacy")
	if team != "PhyNet" {
		t.Fatalf("routed to %q", team)
	}
}

func TestRouteDependencyWins(t *testing.T) {
	deps := map[string][]string{"Storage": {"PhyNet"}}
	m := New(deps, 0.8)
	team, reason := m.Route([]Answer{
		{Team: "PhyNet", Responsible: true, Confidence: 0.85, Usable: true},
		{Team: "Storage", Responsible: true, Confidence: 0.99, Usable: true},
	}, "legacy")
	if team != "PhyNet" {
		t.Fatalf("dependency rule should pick PhyNet, got %q (%s)", team, reason)
	}
}

func TestRouteConfidenceTieBreak(t *testing.T) {
	m := New(nil, 0.8)
	team, _ := m.Route([]Answer{
		{Team: "A", Responsible: true, Confidence: 0.85, Usable: true},
		{Team: "B", Responsible: true, Confidence: 0.92, Usable: true},
	}, "legacy")
	if team != "B" {
		t.Fatalf("most confident should win, got %q", team)
	}
}

func TestRouteIgnoresUnusable(t *testing.T) {
	m := New(nil, 0.8)
	team, _ := m.Route([]Answer{
		{Team: "A", Responsible: true, Confidence: 0.99, Usable: false},
	}, "legacy")
	if team != "legacy" {
		t.Fatalf("unusable answers must be ignored, got %q", team)
	}
}

func synthetic(n int, rng *rand.Rand) []*incident.Incident {
	teams := []string{"PhyNet", "Storage", "SLB", "DB"}
	var out []*incident.Incident
	for i := 0; i < n; i++ {
		owner := teams[rng.Intn(len(teams))]
		in := &incident.Incident{ID: "i", OwnerLabel: owner}
		t := 0.0
		hops := 1 + rng.Intn(3)
		for h := 0; h < hops; h++ {
			team := teams[rng.Intn(len(teams))]
			if h == hops-1 {
				team = owner
			}
			d := 1 + rng.Float64()*3
			in.Hops = append(in.Hops, incident.Hop{Team: team, Enter: t, Exit: t + d})
			t += d
		}
		out = append(out, in)
	}
	return out
}

func TestPerfectScoutsSaveEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ins := synthetic(200, rng)
	// All teams enabled with perfect Scouts: every mis-routed incident is
	// fully saved.
	saved := SimulateAssignment(ins, []string{"PhyNet", "Storage", "SLB", "DB"}, SimParams{Alpha: 1}, rng)
	for i, s := range saved {
		in := ins[i]
		want := (in.TotalTime() - in.TimeIn(in.OwnerLabel)) / in.TotalTime()
		if s != want {
			t.Fatalf("incident %d: saved %v want %v", i, s, want)
		}
	}
}

func TestMoreScoutsMoreGain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ins := synthetic(400, rng)
	teams := []string{"PhyNet", "Storage", "SLB", "DB"}
	g1 := metrics.Mean(SweepScoutCount(ins, teams, 1, 0, SimParams{Alpha: 1, Seed: 3}))
	g3 := metrics.Mean(SweepScoutCount(ins, teams, 3, 0, SimParams{Alpha: 1, Seed: 3}))
	if g3 <= g1 {
		t.Fatalf("3 Scouts (%v) should beat 1 Scout (%v)", g3, g1)
	}
}

func TestImperfectScoutsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ins := synthetic(400, rng)
	teams := []string{"PhyNet", "Storage", "SLB", "DB"}
	perfect := metrics.Mean(SweepScoutCount(ins, teams, 2, 0, SimParams{Alpha: 1, Seed: 5}))
	sloppy := metrics.Mean(SweepScoutCount(ins, teams, 2, 0, SimParams{Alpha: 0.7, Beta: 0.3, Seed: 5}))
	if sloppy >= perfect {
		t.Fatalf("imperfect Scouts (%v) should save less than perfect (%v)", sloppy, perfect)
	}
	if sloppy <= 0 {
		t.Fatal("even imperfect Scouts should save some time")
	}
	_ = rng
}

func TestCombinations(t *testing.T) {
	teams := []string{"a", "b", "c", "d"}
	all := Combinations(teams, 2, 0, rand.New(rand.NewSource(6)))
	if len(all) != 6 {
		t.Fatalf("C(4,2) = %d", len(all))
	}
	capped := Combinations(teams, 2, 3, rand.New(rand.NewSource(6)))
	if len(capped) != 3 {
		t.Fatalf("cap ignored: %d", len(capped))
	}
	single := Combinations(teams, 4, 0, rand.New(rand.NewSource(6)))
	if len(single) != 1 {
		t.Fatalf("C(4,4) = %d", len(single))
	}
}

func TestMisroutedFilter(t *testing.T) {
	log := &incident.Log{}
	log.Append(&incident.Incident{ID: "a", OwnerLabel: "X",
		Hops: []incident.Hop{{Team: "X", Enter: 0, Exit: 1}}})
	log.Append(&incident.Incident{ID: "b", OwnerLabel: "X",
		Hops: []incident.Hop{{Team: "Y", Enter: 0, Exit: 1}, {Team: "X", Enter: 1, Exit: 2}}})
	mis := Misrouted(log, []string{"X", "Y"})
	if len(mis) != 1 || mis[0].ID != "b" {
		t.Fatalf("misrouted = %v", mis)
	}
}
