// Package master implements the Scout Master of Appendix C — the global
// routing process that queries every available Scout in parallel — and the
// trace-driven deployment simulations of Appendix D (Figures 15–16), which
// quantify how much investigation time a handful of (perfect or imperfect)
// Scouts can save.
package master

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"scouts/internal/incident"
)

// Answer is one Scout's reply to the master.
type Answer struct {
	Team        string
	Responsible bool
	Confidence  float64
	Usable      bool // false when the Scout fell back (no components, ...)
}

// Master composes Scout answers with the strawman policy of Appendix C.
type Master struct {
	// deps maps team -> teams it depends on; when several Scouts claim an
	// incident, the dependency (the lower-level team) wins.
	deps map[string][]string
	// MinConfidence gates answers (the deployed recommendation: do not
	// act below 0.8, §8).
	MinConfidence float64
}

// New creates a Master with the given dependency edges.
func New(deps map[string][]string, minConfidence float64) *Master {
	if minConfidence <= 0 {
		minConfidence = 0.8
	}
	return &Master{deps: deps, MinConfidence: minConfidence}
}

// dependsOn reports whether a depends on b.
func (m *Master) dependsOn(a, b string) bool {
	for _, d := range m.deps[a] {
		if d == b {
			return true
		}
	}
	return false
}

// Route applies the strawman: (1) exactly one confident "yes" → that team;
// (2) several — prefer a team the others depend on, else the most
// confident; (3) none → the fallback (legacy) process. The returned reason
// explains the decision, because the master inherits the Scouts'
// explainability requirement.
func (m *Master) Route(answers []Answer, fallback string) (team, reason string) {
	var yes []Answer
	for _, a := range answers {
		if a.Usable && a.Responsible && a.Confidence >= m.MinConfidence {
			yes = append(yes, a)
		}
	}
	switch len(yes) {
	case 0:
		return fallback, "no Scout claimed the incident; using the legacy routing process"
	case 1:
		return yes[0].Team, fmt.Sprintf("only %s's Scout claimed it (confidence %.2f)", yes[0].Team, yes[0].Confidence)
	}
	// Multiple claims: a dependency of the others wins (the paper's rule:
	// "if one team's component depends on the other, send it to the
	// latter").
	for _, a := range yes {
		isDep := true
		for _, b := range yes {
			if a.Team == b.Team {
				continue
			}
			if !m.dependsOn(b.Team, a.Team) {
				isDep = false
				break
			}
		}
		if isDep {
			return a.Team, fmt.Sprintf("%s underpins the other claimants", a.Team)
		}
	}
	slices.SortFunc(yes, func(a, b Answer) int {
		if a.Confidence != b.Confidence {
			return cmp.Compare(b.Confidence, a.Confidence)
		}
		return cmp.Compare(a.Team, b.Team)
	})
	return yes[0].Team, fmt.Sprintf("%s's Scout was the most confident of %d claimants", yes[0].Team, len(yes))
}

// SimParams configure the Appendix D deployment simulation.
type SimParams struct {
	// Alpha is the lower edge of the per-Scout accuracy band: each Scout
	// draws accuracy P uniformly from (Alpha, Alpha+0.05). Alpha >= 1
	// means perfect Scouts.
	Alpha float64
	// Beta is the confidence-spread parameter: correct answers draw
	// confidence from (0.8-Beta, 0.8), incorrect from (0.5, 0.5+Beta).
	Beta float64
	// Seed drives the randomness.
	Seed int64
}

// perfect reports whether the parameters describe perfect Scouts.
func (p SimParams) perfect() bool { return p.Alpha >= 1 }

// SimulateAssignment replays the mis-routed incidents of a trace assuming
// the teams in `enabled` operate Scouts, and returns the per-incident
// fraction of investigation time saved.
//
// Mechanics (Appendix D): the master queries every Scout when the incident
// is created. If the responsible team's Scout claims it, the incident goes
// straight there and all other teams' time is saved. Otherwise the
// incident follows its historical path, minus the dwell time of innocent
// Scout-enabled teams whose Scouts (correctly) turned it away.
func SimulateAssignment(ins []*incident.Incident, enabled []string, p SimParams, rng *rand.Rand) []float64 {
	enabledSet := map[string]bool{}
	for _, t := range enabled {
		enabledSet[t] = true
	}
	// Per-Scout accuracy for this assignment.
	acc := map[string]float64{}
	for _, t := range enabled {
		if p.perfect() {
			acc[t] = 1
		} else {
			acc[t] = p.Alpha + 0.05*rng.Float64()
		}
	}
	var out []float64
	for _, in := range ins {
		total := in.TotalTime()
		if total <= 0 {
			out = append(out, 0)
			continue
		}
		owner := in.OwnerLabel
		type claim struct {
			team string
			conf float64
		}
		var claims []claim
		turnedAway := map[string]bool{}
		for _, team := range enabled {
			truth := team == owner
			correct := rng.Float64() < acc[team]
			answer := truth == correct
			conf := 0.8
			if !p.perfect() {
				if correct {
					conf = 0.8 - p.Beta*rng.Float64()
				} else {
					conf = 0.5 + p.Beta*rng.Float64()
				}
			}
			if answer {
				claims = append(claims, claim{team, conf})
			} else {
				turnedAway[team] = true
			}
		}
		routed := ""
		best := -1.0
		for _, c := range claims {
			if c.conf > best {
				best, routed = c.conf, c.team
			}
		}
		switch {
		case routed == owner:
			// Direct route: everything but the owner's own time is saved.
			out = append(out, (total-in.TimeIn(owner))/total)
		case routed != "":
			// Mis-claimed: the incident detours; no saving. (We do not
			// charge extra time, so these results are lower bounds, as in
			// the paper.)
			out = append(out, 0)
		default:
			// Nobody claimed it: historical path minus the innocent
			// teams whose Scouts turned it away.
			var saved float64
			for team := range turnedAway {
				if team != owner {
					saved += in.TimeIn(team)
				}
			}
			out = append(out, saved/total)
		}
	}
	return out
}

// Misrouted filters a trace to the mis-routed incidents — the population
// Figures 15 and 16 evaluate on.
func Misrouted(log *incident.Log, internalTeams []string) []*incident.Incident {
	isTeam := map[string]bool{}
	for _, t := range internalTeams {
		isTeam[t] = true
	}
	return log.Filter(func(in *incident.Incident) bool {
		return in.Misrouted()
	})
}

// Combinations enumerates all k-element subsets of teams, up to maxSets
// (uniformly subsampled when there are more; 0 = no cap).
func Combinations(teams []string, k int, maxSets int, rng *rand.Rand) [][]string {
	var all [][]string
	n := len(teams)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := make([]string, k)
		for i, j := range idx {
			set[i] = teams[j]
		}
		all = append(all, set)
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	if maxSets > 0 && len(all) > maxSets {
		rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
		all = all[:maxSets]
	}
	return all
}

// SweepScoutCount pools SimulateAssignment over (sub)sampled assignments
// of k Scouts to teams — one Figure 15/16 series.
func SweepScoutCount(ins []*incident.Incident, teams []string, k int, maxSets int, p SimParams) []float64 {
	rng := rand.New(rand.NewSource(p.Seed + int64(k)*1000))
	var pooled []float64
	for _, set := range Combinations(teams, k, maxSets, rng) {
		pooled = append(pooled, SimulateAssignment(ins, set, p, rng)...)
	}
	return pooled
}
