// Package topology models the datacenter component hierarchy the Scout
// framework extracts and expands incident components against — the
// provider's "logical/physical topology abstractions" ([52], §5.1).
//
// Components carry the machine-generated names operators embed in incident
// text (the paper's example: "VM X.c10.dc3 in cluster c10.dc3"): a VM
// "vm12.c10.dc3" runs on server "srv4.c10.dc3", which hangs off ToR switch
// "tor2.c10.dc3" in cluster "c10.dc3" of datacenter "dc3".
package topology

import (
	"fmt"
	"sort"
)

// ComponentType classifies a datacenter component. The PhyNet Scout's
// configuration recognizes exactly the five types of the paper's example
// (§5.1): VM, server, switch, cluster, DC.
type ComponentType string

// The component types of the synthetic cloud.
const (
	TypeDC      ComponentType = "dc"
	TypeCluster ComponentType = "cluster"
	TypeSwitch  ComponentType = "switch"
	TypeServer  ComponentType = "server"
	TypeVM      ComponentType = "vm"
)

// AllTypes lists every component type from the leaf up.
var AllTypes = []ComponentType{TypeVM, TypeServer, TypeSwitch, TypeCluster, TypeDC}

// Component is one named element of the hierarchy.
type Component struct {
	Name   string
	Type   ComponentType
	Parent string // name of the containing component; "" for a DC
}

// Params size the generated topology.
type Params struct {
	DCs            int // number of datacenters (default 2)
	ClustersPerDC  int // clusters per DC (default 4)
	ToRsPerCluster int // top-of-rack switches per cluster (default 4)
	AggsPerCluster int // aggregation switches per cluster (default 2)
	ServersPerToR  int // servers per ToR (default 4)
	VMsPerServer   int // VMs per server (default 2)
}

func (p Params) withDefaults() Params {
	if p.DCs <= 0 {
		p.DCs = 2
	}
	if p.ClustersPerDC <= 0 {
		p.ClustersPerDC = 4
	}
	if p.ToRsPerCluster <= 0 {
		p.ToRsPerCluster = 4
	}
	if p.AggsPerCluster < 0 {
		p.AggsPerCluster = 0
	} else if p.AggsPerCluster == 0 {
		p.AggsPerCluster = 2
	}
	if p.ServersPerToR <= 0 {
		p.ServersPerToR = 4
	}
	if p.VMsPerServer <= 0 {
		p.VMsPerServer = 2
	}
	return p
}

// Topology is an immutable component hierarchy plus explicit cross-tree
// dependency edges (e.g. a VM depending on a remote storage cluster).
type Topology struct {
	components map[string]*Component
	children   map[string][]string
	deps       map[string][]string // explicit extra dependencies
}

// Build generates a topology with the standard naming scheme.
func Build(p Params) *Topology {
	p = p.withDefaults()
	t := &Topology{
		components: map[string]*Component{},
		children:   map[string][]string{},
		deps:       map[string][]string{},
	}
	for d := 1; d <= p.DCs; d++ {
		dc := fmt.Sprintf("dc%d", d)
		t.add(dc, TypeDC, "")
		for c := 1; c <= p.ClustersPerDC; c++ {
			cluster := fmt.Sprintf("c%d.%s", c, dc)
			t.add(cluster, TypeCluster, dc)
			for a := 1; a <= p.AggsPerCluster; a++ {
				t.add(fmt.Sprintf("agg%d.%s", a, cluster), TypeSwitch, cluster)
			}
			srvIdx, vmIdx := 0, 0
			for s := 1; s <= p.ToRsPerCluster; s++ {
				tor := fmt.Sprintf("tor%d.%s", s, cluster)
				t.add(tor, TypeSwitch, cluster)
				for h := 0; h < p.ServersPerToR; h++ {
					srvIdx++
					srv := fmt.Sprintf("srv%d.%s", srvIdx, cluster)
					t.add(srv, TypeServer, tor)
					for v := 0; v < p.VMsPerServer; v++ {
						vmIdx++
						t.add(fmt.Sprintf("vm%d.%s", vmIdx, cluster), TypeVM, srv)
					}
				}
			}
		}
	}
	return t
}

func (t *Topology) add(name string, typ ComponentType, parent string) {
	t.components[name] = &Component{Name: name, Type: typ, Parent: parent}
	if parent != "" {
		t.children[parent] = append(t.children[parent], name)
	}
}

// Lookup returns the component with the given name.
func (t *Topology) Lookup(name string) (*Component, bool) {
	c, ok := t.components[name]
	return c, ok
}

// Names returns all component names of a type, sorted.
func (t *Topology) Names(typ ComponentType) []string {
	var out []string
	for name, c := range t.components {
		if c.Type == typ {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of components.
func (t *Topology) Len() int { return len(t.components) }

// Children returns the direct children of a component, sorted.
func (t *Topology) Children(name string) []string {
	out := append([]string(nil), t.children[name]...)
	sort.Strings(out)
	return out
}

// Ancestors walks up the containment chain from (excluding) name to the DC.
func (t *Topology) Ancestors(name string) []string {
	var out []string
	c, ok := t.components[name]
	for ok && c.Parent != "" {
		out = append(out, c.Parent)
		c, ok = t.components[c.Parent]
	}
	return out
}

// ClusterOf returns the cluster containing the component ("" when the
// component is a DC or unknown).
func (t *Topology) ClusterOf(name string) string {
	c, ok := t.components[name]
	for ok {
		if c.Type == TypeCluster {
			return c.Name
		}
		if c.Parent == "" {
			return ""
		}
		c, ok = t.components[c.Parent]
	}
	return ""
}

// AddDependency records that `from` depends on component `to` even though
// they are in different subtrees (the paper's database example: VMs in one
// cluster depending on a storage cluster elsewhere).
func (t *Topology) AddDependency(from, to string) error {
	if _, ok := t.components[from]; !ok {
		return fmt.Errorf("topology: unknown component %q", from)
	}
	if _, ok := t.components[to]; !ok {
		return fmt.Errorf("topology: unknown dependency target %q", to)
	}
	t.deps[from] = append(t.deps[from], to)
	return nil
}

// Expand returns the component itself, its ancestors, and its explicit
// dependencies — the set a Scout investigates for a mentioned component
// ("dependent components can be extracted by using the operator's
// logical/physical topology abstractions", §5.1). Unknown names return nil.
func (t *Topology) Expand(name string) []string {
	if _, ok := t.components[name]; !ok {
		return nil
	}
	seen := map[string]bool{name: true}
	out := []string{name}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, a := range t.Ancestors(name) {
		add(a)
	}
	for _, d := range t.deps[name] {
		add(d)
		for _, a := range t.Ancestors(d) {
			add(a)
		}
	}
	return out
}

// Descendants returns every component under name (excluding name itself).
func (t *Topology) Descendants(name string) []string {
	var out []string
	var walk func(n string)
	walk = func(n string) {
		for _, ch := range t.children[n] {
			out = append(out, ch)
			walk(ch)
		}
	}
	walk(name)
	sort.Strings(out)
	return out
}

// DescendantsOfType filters Descendants by component type.
func (t *Topology) DescendantsOfType(name string, typ ComponentType) []string {
	var out []string
	for _, d := range t.Descendants(name) {
		if t.components[d].Type == typ {
			out = append(out, d)
		}
	}
	return out
}

// ServerOfVM returns the server hosting a VM ("" if not a VM).
func (t *Topology) ServerOfVM(vm string) string {
	c, ok := t.components[vm]
	if !ok || c.Type != TypeVM {
		return ""
	}
	return c.Parent
}

// ToROfServer returns the ToR switch above a server ("" if not a server).
func (t *Topology) ToROfServer(srv string) string {
	c, ok := t.components[srv]
	if !ok || c.Type != TypeServer {
		return ""
	}
	return c.Parent
}
