package topology

import (
	"strings"
	"testing"
)

func build(t *testing.T) *Topology {
	t.Helper()
	return Build(Params{DCs: 2, ClustersPerDC: 2, ToRsPerCluster: 2, AggsPerCluster: 1, ServersPerToR: 2, VMsPerServer: 2})
}

func TestBuildCounts(t *testing.T) {
	topo := build(t)
	if got := len(topo.Names(TypeDC)); got != 2 {
		t.Fatalf("DCs = %d", got)
	}
	if got := len(topo.Names(TypeCluster)); got != 4 {
		t.Fatalf("clusters = %d", got)
	}
	// 2 ToRs + 1 agg per cluster.
	if got := len(topo.Names(TypeSwitch)); got != 12 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(topo.Names(TypeServer)); got != 16 {
		t.Fatalf("servers = %d", got)
	}
	if got := len(topo.Names(TypeVM)); got != 32 {
		t.Fatalf("VMs = %d", got)
	}
	if topo.Len() != 2+4+12+16+32 {
		t.Fatalf("total = %d", topo.Len())
	}
}

func TestNamingScheme(t *testing.T) {
	topo := build(t)
	c, ok := topo.Lookup("vm1.c1.dc1")
	if !ok || c.Type != TypeVM {
		t.Fatalf("vm1.c1.dc1 missing: %+v", c)
	}
	if !strings.HasPrefix(c.Parent, "srv") {
		t.Fatalf("VM parent should be a server, got %q", c.Parent)
	}
	if _, ok := topo.Lookup("tor2.c2.dc2"); !ok {
		t.Fatal("tor2.c2.dc2 missing")
	}
	if _, ok := topo.Lookup("agg1.c1.dc1"); !ok {
		t.Fatal("agg1.c1.dc1 missing")
	}
}

func TestHierarchyWalks(t *testing.T) {
	topo := build(t)
	srv := topo.ServerOfVM("vm1.c1.dc1")
	if srv == "" {
		t.Fatal("no server for vm1.c1.dc1")
	}
	tor := topo.ToROfServer(srv)
	if !strings.HasPrefix(tor, "tor") {
		t.Fatalf("server parent %q not a ToR", tor)
	}
	if got := topo.ClusterOf("vm1.c1.dc1"); got != "c1.dc1" {
		t.Fatalf("ClusterOf = %q", got)
	}
	if got := topo.ClusterOf("dc1"); got != "" {
		t.Fatalf("ClusterOf(dc) = %q", got)
	}
	anc := topo.Ancestors("vm1.c1.dc1")
	// server, tor, cluster, dc
	if len(anc) != 4 || anc[len(anc)-1] != "dc1" {
		t.Fatalf("ancestors = %v", anc)
	}
}

func TestExpandIncludesDependencies(t *testing.T) {
	topo := build(t)
	if err := topo.AddDependency("vm1.c1.dc1", "c2.dc2"); err != nil {
		t.Fatal(err)
	}
	exp := topo.Expand("vm1.c1.dc1")
	want := map[string]bool{"vm1.c1.dc1": true, "c2.dc2": true, "dc2": true, "c1.dc1": true, "dc1": true}
	got := map[string]bool{}
	for _, n := range exp {
		got[n] = true
	}
	for n := range want {
		if !got[n] {
			t.Fatalf("Expand missing %q: %v", n, exp)
		}
	}
	// No duplicates.
	if len(got) != len(exp) {
		t.Fatalf("Expand returned duplicates: %v", exp)
	}
}

func TestExpandUnknown(t *testing.T) {
	topo := build(t)
	if exp := topo.Expand("nonexistent"); exp != nil {
		t.Fatalf("unknown component should expand to nil, got %v", exp)
	}
}

func TestAddDependencyValidation(t *testing.T) {
	topo := build(t)
	if err := topo.AddDependency("nope", "dc1"); err == nil {
		t.Fatal("unknown source should error")
	}
	if err := topo.AddDependency("dc1", "nope"); err == nil {
		t.Fatal("unknown target should error")
	}
}

func TestDescendants(t *testing.T) {
	topo := build(t)
	servers := topo.DescendantsOfType("c1.dc1", TypeServer)
	if len(servers) != 4 {
		t.Fatalf("servers under c1.dc1 = %d", len(servers))
	}
	switches := topo.DescendantsOfType("c1.dc1", TypeSwitch)
	if len(switches) != 3 {
		t.Fatalf("switches under c1.dc1 = %d", len(switches))
	}
	all := topo.Descendants("dc1")
	// dc1 has 2 clusters * (3 switches + 4 servers + 8 VMs) + 2 clusters.
	if len(all) != 2+2*(3+4+8) {
		t.Fatalf("descendants of dc1 = %d", len(all))
	}
}

func TestChildrenSorted(t *testing.T) {
	topo := build(t)
	ch := topo.Children("c1.dc1")
	for i := 1; i < len(ch); i++ {
		if ch[i] < ch[i-1] {
			t.Fatalf("children unsorted: %v", ch)
		}
	}
}
