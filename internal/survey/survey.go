// Package survey encodes the operator survey of Appendix A. The paper
// surveyed 27 practicing network operators about incident routing; Table 3
// reports the characteristics of their networks and the prose reports the
// aggregate answers. The individual responses are reconstructed here so
// the table and the quoted aggregates regenerate from data.
package survey

import (
	"fmt"
	"slices"
	"strings"
)

// Band is a categorical answer range.
type Band string

// Team-count bands of Table 3.
const (
	Teams1to10     Band = "1-10"
	Teams10to20    Band = "10-20"
	Teams20to100   Band = "20-100"
	Teams100to1000 Band = "100-1000"
	TeamsOver1000  Band = ">1000"
	BandUnknown    Band = "n/a"
)

// User-count bands of Table 3.
const (
	UsersUnder1k   Band = "<1k"
	Users1kTo10k   Band = "1k-10k"
	Users10kTo100k Band = "10k-100k"
	Users100kTo1m  Band = "100k-1m"
	UsersOver1m    Band = ">1m"
)

// Response is one operator's survey answers.
type Response struct {
	// Kind of network operated (ISP, enterprise, DC, CDN, security, all).
	Kind string
	// Teams is the number-of-teams band.
	Teams Band
	// Users is the user-base band.
	Users Band
	// Impact is the 1–5 score for how much incident routing impacts the
	// organization.
	Impact int
	// BlamedOver60 is true when the operator reported their network was
	// incorrectly blamed for over 60% of incidents.
	BlamedOver60 bool
	// OthersUnder20 is true when the operator said other components are
	// blamed for networking issues less than 20% of the time.
	OthersUnder20 bool
	// TypicalTeams is the number of teams typically involved in an
	// investigation.
	TypicalTeams int
}

// Responses returns the 27 reconstructed survey responses. The individual
// rows are synthetic, but every aggregate the paper reports holds exactly:
// kinds (9 ISP, 10 enterprise, 5 DC, 1 CDN, 1 security, 1 all), Table 3
// band counts, 23 respondents scoring impact >= 3 of which 17 >= 4,
// 17 blamed >60%, 20 saying others are blamed <20%, 14 with >3 teams per
// investigation and 19 with >= 2.
func Responses() []Response {
	kinds := append(append(append(append(append(
		repeat("ISP", 9), repeat("enterprise", 10)...), repeat("datacenter", 5)...),
		"CDN"), "security"), "all")
	teams := bands(map[Band]int{
		Teams1to10: 14, Teams10to20: 1, Teams20to100: 8, Teams100to1000: 1,
		TeamsOver1000: 1, BandUnknown: 2,
	})
	users := bands(map[Band]int{
		UsersUnder1k: 4, Users1kTo10k: 5, Users10kTo100k: 11, Users100kTo1m: 3, UsersOver1m: 4,
	})
	// 17 respondents score >= 4 (9 fives, 8 fours), 6 score exactly 3,
	// 4 score lower.
	impact := append(append(append(append(
		repeatInt(5, 9), repeatInt(4, 8)...), repeatInt(3, 6)...), repeatInt(2, 2)...), repeatInt(1, 2)...)
	blamed := repeatBool(true, 17, 27)
	others := repeatBool(true, 20, 27)
	// 14 respondents: > 3 teams; 5 more: 2–3 teams (>= 2 total 19); 8: 1.
	teamsInvolved := append(append(repeatInt(4, 14), repeatInt(2, 5)...), repeatInt(1, 8)...)

	out := make([]Response, 27)
	for i := range out {
		out[i] = Response{
			Kind:          kinds[i],
			Teams:         teams[i],
			Users:         users[i],
			Impact:        impact[i],
			BlamedOver60:  blamed[i],
			OthersUnder20: others[i],
			TypicalTeams:  teamsInvolved[i],
		}
	}
	return out
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func repeatInt(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func repeatBool(v bool, n, total int) []bool {
	out := make([]bool, total)
	for i := 0; i < n; i++ {
		out[i] = v
	}
	return out
}

func bands(counts map[Band]int) []Band {
	var keys []Band
	for k := range counts {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var out []Band
	for _, k := range keys {
		for i := 0; i < counts[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}

// Aggregates summarizes the responses into the numbers the paper quotes.
type Aggregates struct {
	Total          int
	TeamBands      map[Band]int
	UserBands      map[Band]int
	ImpactAtLeast3 int
	ImpactAtLeast4 int
	BlamedOver60   int
	OthersUnder20  int
	MoreThan3Teams int
	AtLeast2Teams  int
	KindCounts     map[string]int
}

// Aggregate tabulates the responses.
func Aggregate(rs []Response) Aggregates {
	a := Aggregates{
		Total:      len(rs),
		TeamBands:  map[Band]int{},
		UserBands:  map[Band]int{},
		KindCounts: map[string]int{},
	}
	for _, r := range rs {
		a.TeamBands[r.Teams]++
		a.UserBands[r.Users]++
		a.KindCounts[r.Kind]++
		if r.Impact >= 3 {
			a.ImpactAtLeast3++
		}
		if r.Impact >= 4 {
			a.ImpactAtLeast4++
		}
		if r.BlamedOver60 {
			a.BlamedOver60++
		}
		if r.OthersUnder20 {
			a.OthersUnder20++
		}
		if r.TypicalTeams > 3 {
			a.MoreThan3Teams++
		}
		if r.TypicalTeams >= 2 {
			a.AtLeast2Teams++
		}
	}
	return a
}

// Table3 renders the two header rows of Table 3.
func Table3(a Aggregates) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# of Teams   | 1-10 | 10-20 | 20-100 | 100-1000 | >1000\n")
	fmt.Fprintf(&b, "Respondents  | %4d | %5d | %6d | %8d | %5d\n",
		a.TeamBands[Teams1to10], a.TeamBands[Teams10to20], a.TeamBands[Teams20to100],
		a.TeamBands[Teams100to1000], a.TeamBands[TeamsOver1000])
	fmt.Fprintf(&b, "# of Users   | <1k  | 1k-10k | 10k-100k | 100k-1m | >1m\n")
	fmt.Fprintf(&b, "Respondents  | %4d | %6d | %8d | %7d | %3d\n",
		a.UserBands[UsersUnder1k], a.UserBands[Users1kTo10k], a.UserBands[Users10kTo100k],
		a.UserBands[Users100kTo1m], a.UserBands[UsersOver1m])
	return b.String()
}
