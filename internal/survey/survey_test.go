package survey

import (
	"strings"
	"testing"
)

func TestAggregatesMatchPaper(t *testing.T) {
	a := Aggregate(Responses())
	if a.Total != 27 {
		t.Fatalf("total respondents = %d, want 27", a.Total)
	}
	// Table 3 rows.
	wantTeams := map[Band]int{Teams1to10: 14, Teams10to20: 1, Teams20to100: 8, Teams100to1000: 1, TeamsOver1000: 1}
	for b, n := range wantTeams {
		if a.TeamBands[b] != n {
			t.Errorf("team band %s = %d, want %d", b, a.TeamBands[b], n)
		}
	}
	wantUsers := map[Band]int{UsersUnder1k: 4, Users1kTo10k: 5, Users10kTo100k: 11, Users100kTo1m: 3, UsersOver1m: 4}
	for b, n := range wantUsers {
		if a.UserBands[b] != n {
			t.Errorf("user band %s = %d, want %d", b, a.UserBands[b], n)
		}
	}
	// Prose aggregates of Appendix A.
	if a.ImpactAtLeast3 != 23 || a.ImpactAtLeast4 != 17 {
		t.Errorf("impact >=3: %d (want 23), >=4: %d (want 17)", a.ImpactAtLeast3, a.ImpactAtLeast4)
	}
	if a.BlamedOver60 != 17 {
		t.Errorf("blamed >60%%: %d, want 17", a.BlamedOver60)
	}
	if a.OthersUnder20 != 20 {
		t.Errorf("others <20%%: %d, want 20", a.OthersUnder20)
	}
	if a.MoreThan3Teams != 14 || a.AtLeast2Teams != 19 {
		t.Errorf(">3 teams: %d (want 14), >=2 teams: %d (want 19)", a.MoreThan3Teams, a.AtLeast2Teams)
	}
	// Operator kinds.
	if a.KindCounts["ISP"] != 9 || a.KindCounts["enterprise"] != 10 || a.KindCounts["datacenter"] != 5 {
		t.Errorf("kind counts wrong: %v", a.KindCounts)
	}
}

func TestTable3Rendering(t *testing.T) {
	s := Table3(Aggregate(Responses()))
	for _, want := range []string{"1-10", "14", "10k-100k", "11"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, s)
		}
	}
}
