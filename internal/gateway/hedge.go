package gateway

import (
	"slices"
	"sync"
	"time"
)

// latencyWindow keeps the last windowSize successful upstream latencies
// and answers their p99, which is what the hedge delay derives from: a
// second request is worth sending only once the first has outlived the
// fleet's own tail. The quantile is cached and recomputed lazily every
// recomputeEvery inserts — a hedge delay does not need sample-exact
// precision, it needs to be cheap on the request path.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	filled  bool
	dirty   int
	cached  time.Duration
}

const (
	windowSize     = 512
	recomputeEvery = 64
	// minHedgeSamples gates adaptive hedging: below it the window has no
	// meaningful tail and the configured fallback delay is used.
	minHedgeSamples = 20
)

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{samples: make([]time.Duration, 0, windowSize)}
}

// Observe records one successful request's latency.
func (w *latencyWindow) Observe(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) < windowSize {
		w.samples = append(w.samples, d)
	} else {
		w.samples[w.next] = d
		w.next = (w.next + 1) % windowSize
		w.filled = true
	}
	w.dirty++
}

// P99 returns the window's 99th-percentile latency, or 0 while the
// window holds fewer than minHedgeSamples samples.
func (w *latencyWindow) P99() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) < minHedgeSamples {
		return 0
	}
	if w.dirty >= recomputeEvery || w.cached == 0 {
		sorted := slices.Clone(w.samples)
		slices.Sort(sorted)
		w.cached = sorted[(len(sorted)-1)*99/100]
		w.dirty = 0
	}
	return w.cached
}

// Count returns how many samples the window currently holds.
func (w *latencyWindow) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.samples)
}
