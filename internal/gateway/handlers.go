package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"sync"

	"scouts/internal/serving"
)

// maxGwBody caps client request bodies at the gateway (matches the
// serving layer's single-predict cap; batch calls go straight to a
// replica, not through the gateway).
const maxGwBody = 1 << 20

type errorBody struct {
	Error       string       `json:"error"`
	FleetHealth *FleetHealth `json:"fleet_health,omitempty"`
}

// RouteRequest is POST /v1/route's input: a PredictRequest plus the
// ranking size. The incident fields are forwarded verbatim to every
// team's Scout.
type RouteRequest struct {
	Title      string   `json:"title"`
	Body       string   `json:"body"`
	Components []string `json:"components,omitempty"`
	Time       float64  `json:"time"`
	TopK       int      `json:"top_k,omitempty"`
}

// RouteEntry is one team's row in the ranked routing recommendation.
// Score orders the ranking: a team's responsibility probability
// (Confidence when the Scout says responsible, 1-Confidence when it says
// not), so "most likely owner" sorts first regardless of verdict sign.
type RouteEntry struct {
	Team         string  `json:"team"`
	Score        float64 `json:"score"`
	Responsible  bool    `json:"responsible"`
	Confidence   float64 `json:"confidence"`
	Verdict      string  `json:"verdict"`
	Model        string  `json:"model"`
	ModelVersion int     `json:"model_version"`
}

// RouteResponse is the gateway's aggregated answer: the top-k teams by
// responsibility score, plus the fleet picture behind the answer — a
// partial fan-out is still served, but it says so.
type RouteResponse struct {
	Ranking     []RouteEntry `json:"ranking"`
	TopK        int          `json:"top_k"`
	FleetHealth FleetHealth  `json:"fleet_health"`
}

// DrainRequest is POST /v1/drain's input.
type DrainRequest struct {
	Replica string `json:"replica"`
	// Restore re-admits a previously drained replica.
	Restore bool `json:"restore,omitempty"`
}

// Handler returns the gateway mux:
//
//	POST /v1/predict?team=T -> proxied PredictResponse from T's shard (verbatim)
//	POST /v1/route          -> RouteRequest -> RouteResponse (fan-out, ranked)
//	GET  /v1/health         -> fleet + per-replica health
//	POST /v1/reload         -> fan out reload to every replica (no retries)
//	POST /v1/drain          -> mark a replica draining / restored
//	GET  /metrics           -> Prometheus text exposition of scout_gw_* series
//
// Every route passes through instrument; unrouted paths answer JSON 404.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/predict", g.instrument("/v1/predict", http.HandlerFunc(g.handlePredict)))
	mux.Handle("POST /v1/route", g.instrument("/v1/route", http.HandlerFunc(g.handleRoute)))
	mux.Handle("GET /v1/health", g.instrument("/v1/health", http.HandlerFunc(g.handleHealth)))
	mux.Handle("POST /v1/reload", g.instrument("/v1/reload", http.HandlerFunc(g.handleReload)))
	mux.Handle("POST /v1/drain", g.instrument("/v1/drain", http.HandlerFunc(g.handleDrain)))
	mux.Handle("GET /metrics", g.instrument("/metrics", g.tel.reg))
	mux.Handle("/", g.instrument("other", http.HandlerFunc(g.handleNotFound)))
	return mux
}

// instrument wraps one endpoint with its latency histogram and status
// counters — the same per-route observation contract scoutlint's obs
// analyzer enforces on the serving layer.
func (g *Gateway) instrument(endpoint string, next http.Handler) http.Handler {
	em := g.tel.endpoint(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := g.now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			em.dur.ObserveDuration(g.now().Sub(start))
			status := sw.code
			if status == 0 {
				status = http.StatusOK
			}
			em.codeCounter(status).Inc()
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"internal encoding failure"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// readBody buffers the request body under the gateway cap, answering the
// error itself (413 / 400) when the read fails.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGwBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			g.writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
		} else {
			g.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		}
		return nil, false
	}
	return raw, true
}

// decodeStrict decodes buffered JSON rejecting unknown fields, answering
// the 400 itself on failure.
func (g *Gateway) decodeStrict(w http.ResponseWriter, raw []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		g.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

// relay writes a forward result to the client: upstream responses are
// passed through verbatim — status, Content-Type and body bytes — so a
// gateway answer is bit-identical to asking the replica directly;
// gateway-level failures become JSON errors carrying the fleet picture.
func (g *Gateway) relay(w http.ResponseWriter, fr forwardResult) {
	if fr.failed() {
		if fr.retryHint > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(fr.retryHint.Seconds())))
		}
		fh := g.fleetHealth(fr.skips, 0)
		g.writeJSON(w, fr.errStatus, errorBody{Error: fr.errMsg, FleetHealth: &fh})
		return
	}
	if ct := fr.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if fr.replica != "" {
		w.Header().Set("X-Scout-Replica", fr.replica)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(fr.body)))
	w.WriteHeader(fr.status)
	_, _ = w.Write(fr.body)
}

// shardKey places an incident on its team's ring: stable per incident,
// so the same incident keeps hitting the same replica (and its caches)
// while distinct incidents spread across the failover set.
func shardKey(team, title, body string) string {
	return team + "\x00" + title + "\x00" + body
}

// handlePredict proxies one prediction to the team's shard. The team
// comes from the ?team= query parameter (optional for single-team
// fleets); the body is validated for shape, then forwarded byte for
// byte.
func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	raw, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req serving.PredictRequest
	if !g.decodeStrict(w, raw, &req) {
		return
	}
	team := r.URL.Query().Get("team")
	if team == "" {
		if len(g.teams) != 1 {
			g.writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "team query parameter required (fleet serves " + strconv.Itoa(len(g.teams)) + " teams)"})
			return
		}
		team = g.teams[0]
	}
	fr := g.forward(r.Context(), team, shardKey(team, req.Title, req.Body), http.MethodPost, "/v1/predict", raw, true)
	g.relay(w, fr)
}

// handleRoute fans the incident out to every team's shard and returns
// the top-k teams ranked by responsibility score. Teams the fleet could
// not answer for are named in fleet_health — a partial ranking says it
// is partial instead of silently shrinking.
func (g *Gateway) handleRoute(w http.ResponseWriter, r *http.Request) {
	raw, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req RouteRequest
	if !g.decodeStrict(w, raw, &req) {
		return
	}
	body, err := json.Marshal(serving.PredictRequest{
		Title: req.Title, Body: req.Body, Components: req.Components, Time: req.Time,
	})
	if err != nil {
		g.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return
	}
	type teamResult struct {
		fr   forwardResult
		resp serving.PredictResponse
		ok   bool
	}
	results := make([]teamResult, len(g.teams))
	var wg sync.WaitGroup
	for i, team := range g.teams {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fr := g.forward(r.Context(), team, shardKey(team, req.Title, req.Body), http.MethodPost, "/v1/predict", body, true)
			results[i].fr = fr
			if fr.failed() || fr.status != http.StatusOK {
				return
			}
			if err := json.Unmarshal(fr.body, &results[i].resp); err == nil {
				results[i].ok = true
			}
		}()
	}
	wg.Wait()

	var ranking []RouteEntry
	var skips []FleetSkip
	answered := 0
	for i, team := range g.teams {
		res := results[i]
		if !res.ok {
			reason := res.fr.skipReason()
			if !res.fr.failed() {
				reason = "bad-upstream-answer"
			}
			skips = append(skips, FleetSkip{Team: team, Reason: reason})
			continue
		}
		answered++
		score := res.resp.Confidence
		if !res.resp.Responsible {
			score = 1 - res.resp.Confidence
		}
		ranking = append(ranking, RouteEntry{
			Team: team, Score: score,
			Responsible: res.resp.Responsible, Confidence: res.resp.Confidence,
			Verdict: res.resp.Verdict, Model: res.resp.Model, ModelVersion: res.resp.ModelVersion,
		})
	}
	fh := g.fleetHealth(skips, answered)
	if answered == 0 {
		g.writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "no team could answer", FleetHealth: &fh})
		return
	}
	slices.SortFunc(ranking, func(a, b RouteEntry) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmpString(a.Team, b.Team)
	})
	k := req.TopK
	if k <= 0 {
		k = g.cfg.TopK
	}
	if k < len(ranking) {
		ranking = ranking[:k]
	}
	g.writeJSON(w, http.StatusOK, RouteResponse{Ranking: ranking, TopK: k, FleetHealth: fh})
}

// handleHealth reports the fleet: per-replica breaker/budget/drain state
// plus the aggregate. 200 while at least one replica can take traffic,
// 503 once none can — that is the signal to pull the gateway itself.
func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rows := make([]ReplicaHealth, 0, len(g.order))
	usable := 0
	for _, name := range g.order {
		rep := g.replicas[name]
		state := rep.breaker.State()
		if !rep.draining.Load() && state != "open" {
			usable++
		}
		rows = append(rows, ReplicaHealth{
			Name: name, Team: rep.cfg.Team,
			Breaker: string(state), Trips: rep.breaker.Trips(),
			Draining: rep.draining.Load(), Healthy: rep.healthy.Load(),
			InFlight: int(rep.inflight.Load()),
		})
	}
	fh := g.fleetHealth(nil, len(g.teams))
	status := http.StatusOK
	state := "ok"
	if fh.Degraded {
		state = "degraded"
	}
	if usable == 0 {
		status = http.StatusServiceUnavailable
		state = "down"
	}
	g.writeJSON(w, status, map[string]any{
		"status":       state,
		"fleet_health": fh,
		"replicas":     rows,
	})
}

// handleReload fans a reload out to every replica — once each, no
// retries and no hedging: reload is not idempotent-cheap (each call
// re-reads the store), and a doubled reload on a struggling replica
// helps nothing. Per-replica outcomes are reported individually; the
// overall status is 200 only when every replica reloaded.
func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	type reloadResult struct {
		Replica string `json:"replica"`
		OK      bool   `json:"ok"`
		Status  int    `json:"status,omitempty"`
		Error   string `json:"error,omitempty"`
	}
	results := make([]reloadResult, len(g.order))
	var wg sync.WaitGroup
	for i, name := range g.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep := g.replicas[name]
			res := reloadResult{Replica: name}
			defer func() { results[i] = res }()
			if rep.draining.Load() {
				res.Error = skipDraining
				return
			}
			if !rep.acquire(g.cfg.ReplicaBudget) {
				res.Error = skipSaturated
				return
			}
			pass, probe := rep.breaker.Allow()
			if !pass {
				rep.release()
				res.Error = skipBreakerOpen
				return
			}
			out := g.finish(r.Context(), rep, probe, false, g.send(r.Context(), rep, http.MethodPost, "/v1/reload", nil))
			if out.void {
				res.Error = "cancelled"
				return
			}
			if out.res.err != nil {
				res.Error = out.res.err.Error()
				return
			}
			res.Status = out.res.status
			res.OK = out.res.status == http.StatusOK
			if !res.OK {
				res.Error = fmt.Sprintf("replica answered %d", out.res.status)
			}
		}()
	}
	wg.Wait()
	status := http.StatusOK
	for _, res := range results {
		if !res.OK {
			status = http.StatusBadGateway
		}
	}
	g.writeJSON(w, status, map[string]any{"results": results})
}

// handleDrain marks a replica draining (or restores it). Draining is the
// graceful-removal path: the replica finishes what it has and gets
// nothing new, so it can be stopped without failing client requests.
func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	raw, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req DrainRequest
	if !g.decodeStrict(w, raw, &req) {
		return
	}
	if req.Replica == "" {
		g.writeJSON(w, http.StatusBadRequest, errorBody{Error: "replica is required"})
		return
	}
	if !g.Drain(req.Replica, req.Restore) {
		g.writeJSON(w, http.StatusNotFound, errorBody{Error: "no such replica: " + req.Replica})
		return
	}
	rep := g.replicas[req.Replica]
	g.writeJSON(w, http.StatusOK, ReplicaHealth{
		Name: req.Replica, Team: rep.cfg.Team,
		Breaker: string(rep.breaker.State()), Trips: rep.breaker.Trips(),
		Draining: rep.draining.Load(), Healthy: rep.healthy.Load(),
		InFlight: int(rep.inflight.Load()),
	})
}

func (g *Gateway) handleNotFound(w http.ResponseWriter, r *http.Request) {
	g.writeJSON(w, http.StatusNotFound, errorBody{Error: "no such endpoint: " + r.URL.Path})
}
