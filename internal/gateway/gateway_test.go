package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scouts/internal/faults"
	"scouts/internal/serving"
)

// ---- ring ----

func TestRingShardOrderAndCoverage(t *testing.T) {
	r := newRing([]string{"a", "b", "c"})
	seen := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("incident-%d", i)
		order := r.Shard(key)
		if len(order) != 3 {
			t.Fatalf("Shard(%q) returned %d candidates, want 3", key, len(order))
		}
		distinct := map[string]bool{}
		for _, n := range order {
			distinct[n] = true
		}
		if len(distinct) != 3 {
			t.Fatalf("Shard(%q) repeated a replica: %v", key, order)
		}
		seen[order[0]]++
		// Stability: the same key shards identically every time.
		again := r.Shard(key)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("Shard(%q) unstable: %v then %v", key, order, again)
			}
		}
	}
	for _, name := range []string{"a", "b", "c"} {
		if seen[name] < 100 {
			t.Fatalf("replica %s owns only %d/1000 keys; vnodes too clumpy (%v)", name, seen[name], seen)
		}
	}
}

func TestRingRemovalMovesOnlyOrphanedKeys(t *testing.T) {
	before := newRing([]string{"a", "b", "c"})
	after := newRing([]string{"a", "c"})
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("incident-%d", i)
		was, is := before.Shard(key)[0], after.Shard(key)[0]
		if was == "b" {
			continue // orphaned keys must move somewhere
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved owners despite their owner surviving the removal", moved)
	}
}

// ---- backoff / Retry-After ----

func TestBackoffDelayHonorsRetryAfterHint(t *testing.T) {
	b := newBackoffSource(1)
	d := b.delay(1, 25*time.Millisecond, 2*time.Second, time.Second)
	if d < time.Second || d > 2*time.Second {
		t.Fatalf("delay with 1s hint = %v, want within [1s, 2s]", d)
	}
	// The hint is capped at max: a hostile Retry-After cannot park us.
	d = b.delay(1, 25*time.Millisecond, 100*time.Millisecond, time.Hour)
	if d > 100*time.Millisecond {
		t.Fatalf("hinted delay %v exceeds the max cap", d)
	}
}

func TestBackoffDelayGrowsWithJitter(t *testing.T) {
	b := newBackoffSource(7)
	for attempt := 1; attempt <= 6; attempt++ {
		d := b.delay(attempt, 25*time.Millisecond, time.Second, 0)
		ceiling := min(25*time.Millisecond<<(attempt-1), time.Second)
		if d < ceiling/2 || d > ceiling {
			t.Fatalf("attempt %d delay %v outside equal-jitter range [%v, %v]", attempt, d, ceiling/2, ceiling)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if d := parseRetryAfter(h); d != 0 {
		t.Fatalf("missing header parsed as %v", d)
	}
	h.Set("Retry-After", "3")
	if d := parseRetryAfter(h); d != 3*time.Second {
		t.Fatalf("Retry-After 3 parsed as %v", d)
	}
	h.Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
	if d := parseRetryAfter(h); d != 0 {
		t.Fatalf("HTTP-date form should be ignored, got %v", d)
	}
}

// ---- latency window ----

func TestLatencyWindowP99(t *testing.T) {
	w := newLatencyWindow()
	if w.P99() != 0 {
		t.Fatal("empty window must report 0 (no adaptive hedge yet)")
	}
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	p99 := w.P99()
	if p99 < 95*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 of 1..100ms = %v", p99)
	}
}

// ---- integration helpers ----

// fakeReplica is an httptest-backed stand-in for one scoutd.
type fakeReplica struct {
	ts      *httptest.Server
	hits    atomic.Int64
	reloads atomic.Int64
}

func newFakeReplica(handler func(w http.ResponseWriter, r *http.Request)) *fakeReplica {
	f := &fakeReplica{}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/reload" {
			f.reloads.Add(1)
		} else {
			f.hits.Add(1)
		}
		handler(w, r)
	}))
	return f
}

func okJSON(body string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, body)
	}
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// keyOwnedBy finds a predict title whose shard owner is the wanted
// replica, so tests can steer the first attempt deterministically.
func keyOwnedBy(t *testing.T, g *Gateway, team, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		title := fmt.Sprintf("incident %d", i)
		if g.byTeam[team].Shard(shardKey(team, title, ""))[0] == want {
			return title
		}
	}
	t.Fatalf("no key owned by %s found", want)
	return ""
}

func predictBody(title string) []byte {
	b, _ := json.Marshal(serving.PredictRequest{Title: title, Time: 10})
	return b
}

func doPredict(t *testing.T, h http.Handler, team, title string) *httptest.ResponseRecorder {
	t.Helper()
	url := "/v1/predict"
	if team != "" {
		url += "?team=" + team
	}
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(predictBody(title)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// ---- forwarding behavior ----

func TestPredictProxiesVerbatim(t *testing.T) {
	const answer = `{"team":"phynet","verdict":"responsible","confidence":0.91}` + "\n"
	rep := newFakeReplica(okJSON(answer))
	defer rep.ts.Close()
	g := newTestGateway(t, Config{Replicas: []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}}})

	w := doPredict(t, g.Handler(), "", "incident 1") // single-team fleet: team optional
	if w.Code != http.StatusOK {
		t.Fatalf("predict answered %d: %s", w.Code, w.Body.String())
	}
	if w.Body.String() != answer {
		t.Fatalf("gateway altered the replica's bytes:\n got %q\nwant %q", w.Body.String(), answer)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got := w.Header().Get("X-Scout-Replica"); got != "a" {
		t.Fatalf("X-Scout-Replica = %q, want a", got)
	}
}

func TestFailoverToNextReplica(t *testing.T) {
	live := newFakeReplica(okJSON(`{"ok":true}`))
	defer live.ts.Close()
	dead := newFakeReplica(okJSON(`{}`))
	dead.ts.Close() // connection refused from the start

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "dead", Team: "phynet", URL: dead.ts.URL},
			{Name: "live", Team: "phynet", URL: live.ts.URL},
		},
		MaxAttempts: 3,
		RetryBase:   time.Millisecond, RetryMax: 5 * time.Millisecond,
		HedgeAfter: -1, // isolate the retry path
		Breaker:    faults.ReqBreakerParams{Trip: 2, Cooldown: time.Minute},
	})
	h := g.Handler()
	title := keyOwnedBy(t, g, "phynet", "dead")

	w := doPredict(t, h, "phynet", title)
	if w.Code != http.StatusOK {
		t.Fatalf("failover answered %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Scout-Replica"); got != "live" {
		t.Fatalf("answered by %q, want live", got)
	}
	if n := g.tel.replica("live").retries.Value(); n != 1 {
		t.Fatalf("live retries = %d, want 1", n)
	}
	if n := g.tel.replica("dead").outcome("error").Value(); n != 1 {
		t.Fatalf("dead error outcomes = %d, want 1", n)
	}

	// A second failed attempt trips the dead replica's breaker (Trip=2);
	// after that the gateway routes around it without even dialing.
	_ = doPredict(t, h, "phynet", title)
	if st := g.replicas["dead"].breaker.State(); st != faults.StateOpen {
		t.Fatalf("dead breaker = %s after %d failures, want open", st, 2)
	}
	dials := g.tel.replica("dead").outcome("error").Value()
	w = doPredict(t, h, "phynet", title)
	if w.Code != http.StatusOK {
		t.Fatalf("open-breaker routing answered %d", w.Code)
	}
	if n := g.tel.replica("dead").outcome("error").Value(); n != dials {
		t.Fatalf("open breaker still dialed the dead replica (%d -> %d errors)", dials, n)
	}
}

func TestBusyReplicaRetriesElsewhereAndBreakerStaysClosed(t *testing.T) {
	busy := newFakeReplica(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = io.WriteString(w, `{"error":"at capacity"}`)
	})
	defer busy.ts.Close()
	calm := newFakeReplica(okJSON(`{"ok":true}`))
	defer calm.ts.Close()

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "busy", Team: "phynet", URL: busy.ts.URL},
			{Name: "calm", Team: "phynet", URL: calm.ts.URL},
		},
		MaxAttempts: 3,
		RetryBase:   time.Millisecond, RetryMax: 10 * time.Millisecond, // caps the honored 1s hint
		HedgeAfter: -1,
		Breaker:    faults.ReqBreakerParams{Trip: 2, Cooldown: time.Minute},
	})
	title := keyOwnedBy(t, g, "phynet", "busy")
	w := doPredict(t, g.Handler(), "phynet", title)
	if w.Code != http.StatusOK {
		t.Fatalf("retry-around-busy answered %d: %s", w.Code, w.Body.String())
	}
	if n := g.tel.replica("busy").outcome("busy").Value(); n != 1 {
		t.Fatalf("busy outcomes = %d, want 1", n)
	}
	// A 429 is a live replica shedding — it must not feed the breaker.
	if st := g.replicas["busy"].breaker.State(); st != faults.StateClosed {
		t.Fatalf("breaker = %s after a 429, want closed", st)
	}
}

func TestBreakerRecoversThroughProbe(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	rep := newFakeReplica(func(w http.ResponseWriter, _ *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"ok":true}`)
	})
	defer rep.ts.Close()

	g := newTestGateway(t, Config{
		Replicas:    []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}},
		MaxAttempts: 1, HedgeAfter: -1,
		Breaker: faults.ReqBreakerParams{Trip: 2, Cooldown: 30 * time.Millisecond},
	})
	h := g.Handler()
	for i := 0; i < 2; i++ {
		if w := doPredict(t, h, "", "incident"); w.Code != http.StatusBadGateway {
			t.Fatalf("failing replica answered %d, want 502 relayed as gateway failure", w.Code)
		}
	}
	if st := g.replicas["a"].breaker.State(); st != faults.StateOpen {
		t.Fatalf("breaker = %s, want open", st)
	}
	// Inside the cooldown the gateway does not dial at all.
	dials := rep.hits.Load()
	if w := doPredict(t, h, "", "incident"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker single-replica predict = %d, want 503", w.Code)
	}
	if rep.hits.Load() != dials {
		t.Fatal("open breaker still dialed the replica")
	}

	failing.Store(false)
	time.Sleep(40 * time.Millisecond) // past the cooldown: next request is the probe
	if w := doPredict(t, h, "", "incident"); w.Code != http.StatusOK {
		t.Fatalf("probe request answered %d, want 200", w.Code)
	}
	if st := g.replicas["a"].breaker.State(); st != faults.StateClosed {
		t.Fatalf("breaker = %s after successful probe, want closed", st)
	}
}

func TestHedgeWinsAndLoserIsCancelledWithoutBreakerPoison(t *testing.T) {
	var slowCancelled atomic.Bool
	slow := newFakeReplica(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body like a real replica would; the server can only
		// watch for client disconnects once the request is consumed.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			slowCancelled.Store(true)
			return
		case <-time.After(2 * time.Second):
		}
		_, _ = io.WriteString(w, `{"slow":true}`)
	})
	defer slow.ts.Close()
	fast := newFakeReplica(okJSON(`{"fast":true}`))
	defer fast.ts.Close()

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "slow", Team: "phynet", URL: slow.ts.URL},
			{Name: "fast", Team: "phynet", URL: fast.ts.URL},
		},
		MaxAttempts: 2,
		HedgeAfter:  10 * time.Millisecond,
		Breaker:     faults.ReqBreakerParams{Trip: 1, Cooldown: time.Minute},
	})
	title := keyOwnedBy(t, g, "phynet", "slow")
	start := time.Now()
	w := doPredict(t, g.Handler(), "phynet", title)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "fast") {
		t.Fatalf("hedged predict answered %d %q", w.Code, w.Body.String())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the tail: %v", elapsed)
	}
	if n := g.tel.replica("fast").hedges.Value(); n != 1 {
		t.Fatalf("hedges = %d, want 1", n)
	}
	if n := g.tel.replica("fast").hedgeWins.Value(); n != 1 {
		t.Fatalf("hedge wins = %d, want 1", n)
	}
	// The loser was cancelled, and a cancelled hedge loser must not count
	// as a replica failure (Trip=1 would open it instantly).
	deadline := time.Now().Add(time.Second)
	for !slowCancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !slowCancelled.Load() {
		t.Fatal("loser request was never cancelled")
	}
	time.Sleep(50 * time.Millisecond) // let the loser's finish() settle
	if st := g.replicas["slow"].breaker.State(); st != faults.StateClosed {
		t.Fatalf("loser cancellation poisoned the breaker: %s", st)
	}
	if n := g.replicas["slow"].breaker.Trips(); n != 0 {
		t.Fatalf("loser cancellation tripped the breaker %d times", n)
	}
}

func TestSaturatedFleetShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	rep := newFakeReplica(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-gate:
		case <-r.Context().Done():
			return
		}
		_, _ = io.WriteString(w, `{"ok":true}`)
	})
	defer rep.ts.Close()
	defer close(gate)

	g := newTestGateway(t, Config{
		Replicas:      []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}},
		MaxAttempts:   1,
		ReplicaBudget: 1,
		HedgeAfter:    -1,
	})
	h := g.Handler()

	firstDone := make(chan int, 1)
	go func() {
		w := doPredict(t, h, "", "occupier")
		firstDone <- w.Code
	}()
	deadline := time.Now().Add(time.Second)
	for g.replicas["a"].inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.replicas["a"].inflight.Load() == 0 {
		t.Fatal("occupier never reached the replica")
	}

	w := doPredict(t, h, "", "shed me")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet answered %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("shed body is not JSON: %v", err)
	}
	if eb.FleetHealth == nil || len(eb.FleetHealth.Skipped) == 0 || eb.FleetHealth.Skipped[0].Reason != skipSaturated {
		t.Fatalf("shed body must name the saturated replica: %+v", eb.FleetHealth)
	}
	if g.tel.shed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", g.tel.shed.Value())
	}

	gate <- struct{}{}
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("occupier answered %d", code)
	}
}

func TestDrainAndRestore(t *testing.T) {
	rep := newFakeReplica(okJSON(`{"ok":true}`))
	defer rep.ts.Close()
	g := newTestGateway(t, Config{
		Replicas:    []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}},
		MaxAttempts: 1, HedgeAfter: -1,
	})
	h := g.Handler()

	drain := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/drain", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	if w := drain(`{"replica":"a"}`); w.Code != http.StatusOK {
		t.Fatalf("drain answered %d: %s", w.Code, w.Body.String())
	}
	if w := doPredict(t, h, "", "incident"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("drained fleet answered %d, want 503", w.Code)
	}
	if rep.hits.Load() != 0 {
		t.Fatal("draining replica still received traffic")
	}
	if w := drain(`{"replica":"a","restore":true}`); w.Code != http.StatusOK {
		t.Fatalf("restore answered %d", w.Code)
	}
	if w := doPredict(t, h, "", "incident"); w.Code != http.StatusOK {
		t.Fatalf("restored fleet answered %d", w.Code)
	}
	if w := drain(`{"replica":"nope"}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown replica drain answered %d", w.Code)
	}
}

func TestRouteRanksTeamsAndReportsDegradation(t *testing.T) {
	strong := newFakeReplica(okJSON(`{"team":"storage","verdict":"responsible","responsible":true,"confidence":0.9,"model":"rf","model_version":1}`))
	defer strong.ts.Close()
	weak := newFakeReplica(okJSON(`{"team":"network","verdict":"not_responsible","responsible":false,"confidence":0.8,"model":"rf","model_version":1}`))
	defer weak.ts.Close()

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "s1", Team: "storage", URL: strong.ts.URL},
			{Name: "n1", Team: "network", URL: weak.ts.URL},
		},
		MaxAttempts: 2, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		HedgeAfter: -1,
	})
	h := g.Handler()

	route := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/route", bytes.NewReader([]byte(`{"title":"disk latency","time":10}`)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	w := route()
	if w.Code != http.StatusOK {
		t.Fatalf("route answered %d: %s", w.Code, w.Body.String())
	}
	var rr RouteResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Ranking) != 2 || rr.Ranking[0].Team != "storage" || rr.Ranking[1].Team != "network" {
		t.Fatalf("ranking = %+v, want storage (0.9) before network (0.2)", rr.Ranking)
	}
	if math.Abs(rr.Ranking[0].Score-0.9) > 1e-9 || math.Abs(rr.Ranking[1].Score-0.2) > 1e-9 {
		t.Fatalf("scores = %v/%v", rr.Ranking[0].Score, rr.Ranking[1].Score)
	}
	if rr.FleetHealth.Degraded || rr.FleetHealth.TeamsAnswered != 2 {
		t.Fatalf("healthy fleet reported %+v", rr.FleetHealth)
	}

	// Kill network's only replica: the ranking shrinks and says why.
	weak.ts.Close()
	w = route()
	if w.Code != http.StatusOK {
		t.Fatalf("degraded route answered %d", w.Code)
	}
	rr = RouteResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Ranking) != 1 || rr.Ranking[0].Team != "storage" {
		t.Fatalf("degraded ranking = %+v", rr.Ranking)
	}
	if !rr.FleetHealth.Degraded || rr.FleetHealth.TeamsAnswered != 1 {
		t.Fatalf("degraded fleet_health = %+v", rr.FleetHealth)
	}
	found := false
	for _, s := range rr.FleetHealth.Skipped {
		if s.Team == "network" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet_health does not name the dark team: %+v", rr.FleetHealth.Skipped)
	}
}

func TestReloadFansOutOnceWithoutRetry(t *testing.T) {
	ok1 := newFakeReplica(okJSON(`{"status":"ok"}`))
	defer ok1.ts.Close()
	bad := newFakeReplica(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	defer bad.ts.Close()

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "good", Team: "phynet", URL: ok1.ts.URL},
			{Name: "bad", Team: "phynet", URL: bad.ts.URL},
		},
		MaxAttempts: 3, // must NOT apply to reload
		HedgeAfter:  -1,
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/reload", nil)
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("partial reload answered %d, want 502", w.Code)
	}
	if n := ok1.reloads.Load(); n != 1 {
		t.Fatalf("good replica reloaded %d times, want exactly 1", n)
	}
	if n := bad.reloads.Load(); n != 1 {
		t.Fatalf("failed reload must not retry: %d calls", n)
	}
}

func TestProberUpdatesHealthAndBreaker(t *testing.T) {
	var failing atomic.Bool
	rep := newFakeReplica(func(w http.ResponseWriter, _ *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_, _ = io.WriteString(w, `{"status":"ok"}`)
	})
	defer rep.ts.Close()

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}},
		Breaker:  faults.ReqBreakerParams{Trip: 2, Cooldown: 10 * time.Millisecond},
	})
	ctx := context.Background()
	g.probeAll(ctx)
	if !g.replicas["a"].healthy.Load() {
		t.Fatal("healthy replica probed unhealthy")
	}
	failing.Store(true)
	g.probeAll(ctx)
	g.probeAll(ctx)
	if g.replicas["a"].healthy.Load() {
		t.Fatal("failing replica still marked healthy")
	}
	if st := g.replicas["a"].breaker.State(); st != faults.StateOpen {
		t.Fatalf("probe failures must feed the breaker: %s", st)
	}
	// Recovery: past the cooldown the prober takes the probe slot itself.
	failing.Store(false)
	time.Sleep(15 * time.Millisecond)
	g.probeAll(ctx)
	if st := g.replicas["a"].breaker.State(); st != faults.StateClosed {
		t.Fatalf("prober did not recover the breaker: %s", st)
	}
	if n := g.tel.replica("a").probeFail.Value(); n != 2 {
		t.Fatalf("probe failures = %d, want 2", n)
	}
}

func TestGatewayJSON404AndHealth(t *testing.T) {
	rep := newFakeReplica(okJSON(`{}`))
	defer rep.ts.Close()
	g := newTestGateway(t, Config{Replicas: []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}}})
	h := g.Handler()

	req := httptest.NewRequest(http.MethodGet, "/nope", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound || w.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("catch-all: %d %q", w.Code, w.Header().Get("Content-Type"))
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/health", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("health answered %d", w.Code)
	}
	var body struct {
		Status   string          `json:"status"`
		Replicas []ReplicaHealth `json:"replicas"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || len(body.Replicas) != 1 || body.Replicas[0].Breaker != "closed" {
		t.Fatalf("health body: %s", w.Body.String())
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "scout_gw_replica_breaker_state") {
		t.Fatalf("metrics exposition missing gateway series (%d)", w.Code)
	}
}

func TestPredictRejectsUnknownFieldsAndUnknownTeam(t *testing.T) {
	rep := newFakeReplica(okJSON(`{}`))
	defer rep.ts.Close()
	g := newTestGateway(t, Config{Replicas: []ReplicaConfig{{Name: "a", Team: "phynet", URL: rep.ts.URL}}})
	h := g.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(`{"title":"x","time":1,"tittle":"typo"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field answered %d", w.Code)
	}

	w = doPredict(t, h, "nosuchteam", "incident")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown team answered %d", w.Code)
	}
	if rep.hits.Load() != 0 {
		t.Fatal("rejected requests must not reach replicas")
	}
}
