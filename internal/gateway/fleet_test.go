package gateway

// Fleet acceptance tests: a real trained Scout served by several
// serving.Server replicas behind the gateway. These pin the two
// headline guarantees of the resilient-fleet PR:
//
//  1. Bit-identity — a verdict fetched through the gateway is the same
//     bytes as asking a replica directly, at any fleet size.
//  2. Kill tolerance — losing a replica mid-burst costs zero non-shed
//     client requests: everything is answered 200 (or an explicit 429
//     shed), never a 5xx or transport error.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/incident"
	"scouts/internal/serving"
)

var (
	onceFleet sync.Once
	fleetGen  *cloudsim.Generator
	fleetLog  *incident.Log
	fleetTank *serving.Store
	fleetErr  error
)

// fleetEnv trains one Scout and publishes it to a shared store; every
// replica reloads the same snapshot, which is what makes bit-identity a
// meaningful claim.
func fleetEnv(t testing.TB) (*cloudsim.Generator, *incident.Log, *serving.Store) {
	t.Helper()
	onceFleet.Do(func() {
		fleetGen = cloudsim.New(cloudsim.Params{Seed: 5, Days: 50, IncidentsPerDay: 8})
		fleetLog = fleetGen.Generate()
		cfg, err := core.ParseConfig(core.DefaultPhyNetConfig)
		if err != nil {
			fleetErr = err
			return
		}
		fleetTank = serving.NewStore()
		tr := &serving.Trainer{Store: fleetTank}
		_, _, fleetErr = tr.TrainAndPublish(core.TrainOptions{
			Config:    cfg,
			Topology:  fleetGen.Topology(),
			Source:    fleetGen.Telemetry(),
			Incidents: fleetLog.Incidents[:300],
			Seed:      1,
		})
	})
	if fleetErr != nil {
		t.Fatal(fleetErr)
	}
	return fleetGen, fleetLog, fleetTank
}

// newScoutReplica starts one real scoutd-equivalent replica serving the
// shared snapshot.
func newScoutReplica(t testing.TB) *httptest.Server {
	t.Helper()
	gen, _, store := fleetEnv(t)
	srv := serving.NewServer(gen.Topology(), gen.Telemetry(), store, nil)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(srv.Handler())
}

func fleetPayloads(t testing.TB, n int) [][]byte {
	t.Helper()
	_, log, _ := fleetEnv(t)
	if len(log.Incidents) < 300+n {
		t.Fatalf("simulation too small: %d incidents", len(log.Incidents))
	}
	payloads := make([][]byte, 0, n)
	for _, in := range log.Incidents[300 : 300+n] {
		b, err := json.Marshal(serving.PredictRequest{
			Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
		})
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, b)
	}
	return payloads
}

func postRaw(t testing.TB, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestGatewayVerdictsBitIdenticalToDirectReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a real scout")
	}
	direct := newScoutReplica(t)
	defer direct.Close()
	var fleet []*httptest.Server
	for i := 0; i < 3; i++ {
		ts := newScoutReplica(t)
		defer ts.Close()
		fleet = append(fleet, ts)
	}
	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "r0", Team: "phynet", URL: fleet[0].URL},
			{Name: "r1", Team: "phynet", URL: fleet[1].URL},
			{Name: "r2", Team: "phynet", URL: fleet[2].URL},
		},
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	client := &http.Client{}
	for i, payload := range fleetPayloads(t, 30) {
		wantStatus, want := postRaw(t, client, direct.URL+"/v1/predict", payload)
		gotStatus, got := postRaw(t, client, gw.URL+"/v1/predict", payload)
		if gotStatus != wantStatus {
			t.Fatalf("payload %d: gateway status %d, direct replica %d", i, gotStatus, wantStatus)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("payload %d: gateway verdict differs from direct replica\n gw: %s\ndir: %s", i, got, want)
		}
	}
}

func TestFleetSurvivesReplicaKillMidBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a real scout")
	}
	var fleet []*httptest.Server
	for i := 0; i < 3; i++ {
		fleet = append(fleet, newScoutReplica(t))
	}
	defer fleet[0].Close()
	defer fleet[2].Close()
	// fleet[1] is killed mid-burst below.

	g := newTestGateway(t, Config{
		Replicas: []ReplicaConfig{
			{Name: "r0", Team: "phynet", URL: fleet[0].URL},
			{Name: "r1", Team: "phynet", URL: fleet[1].URL},
			{Name: "r2", Team: "phynet", URL: fleet[2].URL},
		},
		MaxAttempts: 3,
		RetryBase:   5 * time.Millisecond, RetryMax: 100 * time.Millisecond,
		ReplicaBudget: 64,
		HedgeAfter:    50 * time.Millisecond,
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// Baseline truth: what each payload's verdict must look like.
	client := &http.Client{}
	payloads := fleetPayloads(t, 40)
	want := make(map[int][]byte, len(payloads))
	for i, p := range payloads {
		status, body := postRaw(t, client, fleet[0].URL+"/v1/predict", p)
		if status != http.StatusOK {
			t.Fatalf("baseline payload %d answered %d", i, status)
		}
		want[i] = body
	}

	const rounds = 5 // every payload asked 5 times: 200 requests across the kill
	type job struct{ round, idx int }
	jobs := make(chan job, rounds*len(payloads))
	for r := 0; r < rounds; r++ {
		for i := range payloads {
			jobs <- job{r, i}
		}
	}
	close(jobs)

	var wrong, failed, shed atomic.Int64
	var killOnce sync.Once
	var done atomic.Int64
	total := int64(rounds * len(payloads))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := &http.Client{}
			for j := range jobs {
				// Kill replica r1 once a third of the burst has completed:
				// in-flight requests to it die mid-connection, later ones get
				// connection refused — both must be absorbed by failover.
				if done.Load() > total/3 {
					killOnce.Do(func() {
						fleet[1].CloseClientConnections()
						fleet[1].Close()
					})
				}
				status, body := postRaw(t, wc, gw.URL+"/v1/predict", payloads[j.idx])
				switch {
				case status == http.StatusOK:
					if !bytes.Equal(body, want[j.idx]) {
						wrong.Add(1)
					}
				case status == http.StatusTooManyRequests:
					shed.Add(1) // explicit shed: allowed, counted separately
				default:
					failed.Add(1)
					t.Errorf("round %d payload %d: status %d body %s", j.round, j.idx, status, body)
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d non-shed requests failed across the replica kill", n)
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d verdicts differed from the single-replica baseline", n)
	}
	if n := shed.Load(); n > total/10 {
		t.Fatalf("%d/%d requests shed — the fleet had headroom for this burst", n, total)
	}
	// The kill must have been visible to the resilience machinery: the
	// dead replica's breaker opened (or it at least recorded errors).
	errs := g.tel.replica("r1").outcome("error").Value()
	if errs == 0 {
		t.Fatal("replica kill left no trace in the gateway's upstream metrics")
	}
	t.Logf("burst done: shed=%d r1_errors=%d r1_breaker=%s retries={r0:%d r1:%d r2:%d}",
		shed.Load(), errs, g.replicas["r1"].breaker.State(),
		g.tel.replica("r0").retries.Value(), g.tel.replica("r1").retries.Value(), g.tel.replica("r2").retries.Value())
}
