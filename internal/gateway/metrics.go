package gateway

import (
	"strconv"

	"scouts/internal/faults"
	"scouts/internal/telemetry"
)

// gwEndpoints is the gateway's full route set plus the catch-all;
// per-endpoint series are pre-registered from this list, same contract
// as the serving layer: request-time recording is a prebuilt pointer.
var gwEndpoints = []string{
	"/v1/predict", "/v1/route", "/v1/health", "/v1/reload", "/v1/drain",
	"/metrics", "other",
}

// gwStatusCodes are the label values of scout_gw_http_requests_total.
var gwStatusCodes = []int{200, 400, 404, 405, 413, 429, 500, 502, 503}

// upstreamOutcomes classify one upstream attempt's result for
// scout_gw_upstream_requests_total: a bounded set instead of raw status
// codes so per-replica cardinality stays fixed.
var upstreamOutcomes = []string{"ok", "busy", "error", "5xx", "4xx"}

type gwEndpointMetrics struct {
	dur    *telemetry.Histogram
	byCode map[int]*telemetry.Counter
	other  *telemetry.Counter
}

func (em *gwEndpointMetrics) codeCounter(status int) *telemetry.Counter {
	if c, ok := em.byCode[status]; ok {
		return c
	}
	return em.other
}

// replicaMetrics is one replica's slice of the gateway's series, held by
// pointer so the forwarding path records with atomic adds only.
type replicaMetrics struct {
	byOutcome map[string]*telemetry.Counter
	retries   *telemetry.Counter
	hedges    *telemetry.Counter
	hedgeWins *telemetry.Counter
	probes    *telemetry.Counter
	probeFail *telemetry.Counter
}

func (rm *replicaMetrics) outcome(name string) *telemetry.Counter {
	if c, ok := rm.byOutcome[name]; ok {
		return c
	}
	return rm.byOutcome["error"]
}

// gwMetrics is every series the gateway exports.
type gwMetrics struct {
	reg *telemetry.Registry

	endpoints map[string]*gwEndpointMetrics
	replicas  map[string]*replicaMetrics

	shed      *telemetry.Counter
	noReplica *telemetry.Counter
	upstream  *telemetry.Histogram
}

func newGwMetrics(replicas []*replica) *gwMetrics {
	reg := telemetry.NewRegistry()
	m := &gwMetrics{
		reg:       reg,
		endpoints: make(map[string]*gwEndpointMetrics, len(gwEndpoints)),
		replicas:  make(map[string]*replicaMetrics, len(replicas)),
		shed: reg.Counter("scout_gw_requests_shed_total",
			"Client requests answered 429 because every candidate replica was saturated."),
		noReplica: reg.Counter("scout_gw_no_replica_total",
			"Client requests answered 503 because no replica could take them (breakers open or fleet draining)."),
		upstream: reg.Histogram("scout_gw_upstream_duration_seconds",
			"Latency of successful upstream attempts (the hedge-delay source).", nil),
	}
	const reqHelp = "Gateway HTTP requests by endpoint and status code."
	const durHelp = "Gateway HTTP request latency in seconds by endpoint."
	for _, ep := range gwEndpoints {
		em := &gwEndpointMetrics{
			dur:    reg.Histogram("scout_gw_http_request_duration_seconds", durHelp, nil, telemetry.L("endpoint", ep)),
			byCode: make(map[int]*telemetry.Counter, len(gwStatusCodes)),
			other: reg.Counter("scout_gw_http_requests_total", reqHelp,
				telemetry.L("endpoint", ep), telemetry.L("code", "other")),
		}
		for _, code := range gwStatusCodes {
			em.byCode[code] = reg.Counter("scout_gw_http_requests_total", reqHelp,
				telemetry.L("endpoint", ep), telemetry.L("code", strconv.Itoa(code)))
		}
		m.endpoints[ep] = em
	}
	const upHelp = "Upstream attempts by replica and outcome (ok, busy, error, 5xx, 4xx)."
	for _, r := range replicas {
		r := r
		name := r.cfg.Name
		rm := &replicaMetrics{
			byOutcome: make(map[string]*telemetry.Counter, len(upstreamOutcomes)),
			retries: reg.Counter("scout_gw_retries_total",
				"Retry attempts (second and later tries) by replica.",
				telemetry.L("replica", name)),
			hedges: reg.Counter("scout_gw_hedges_total",
				"Hedge requests launched against the replica.",
				telemetry.L("replica", name)),
			hedgeWins: reg.Counter("scout_gw_hedge_wins_total",
				"Hedge requests that beat the primary attempt.",
				telemetry.L("replica", name)),
			probes: reg.Counter("scout_gw_probes_total",
				"Active health probes sent to the replica.",
				telemetry.L("replica", name)),
			probeFail: reg.Counter("scout_gw_probe_failures_total",
				"Active health probes the replica failed.",
				telemetry.L("replica", name)),
		}
		for _, o := range upstreamOutcomes {
			rm.byOutcome[o] = reg.Counter("scout_gw_upstream_requests_total", upHelp,
				telemetry.L("replica", name), telemetry.L("outcome", o))
		}
		m.replicas[name] = rm
		reg.GaugeFunc("scout_gw_replica_breaker_state",
			"Replica circuit-breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch r.breaker.State() {
				case faults.StateOpen:
					return 2
				case faults.StateHalfOpen:
					return 1
				default:
					return 0
				}
			},
			telemetry.L("replica", name))
		reg.CounterFunc("scout_gw_replica_breaker_trips_total",
			"Times the replica's circuit breaker has opened.",
			func() float64 { return float64(r.breaker.Trips()) },
			telemetry.L("replica", name))
		reg.GaugeFunc("scout_gw_replica_inflight",
			"Requests the gateway currently has outstanding to the replica.",
			func() float64 { return float64(r.inflight.Load()) },
			telemetry.L("replica", name))
		reg.GaugeFunc("scout_gw_replica_healthy",
			"Last active probe verdict: 1 healthy, 0 not.",
			func() float64 {
				if r.healthy.Load() {
					return 1
				}
				return 0
			},
			telemetry.L("replica", name))
		reg.GaugeFunc("scout_gw_replica_draining",
			"Whether the replica is draining: 1 yes, 0 no.",
			func() float64 {
				if r.draining.Load() {
					return 1
				}
				return 0
			},
			telemetry.L("replica", name))
	}
	return m
}

func (m *gwMetrics) endpoint(name string) *gwEndpointMetrics {
	if em, ok := m.endpoints[name]; ok {
		return em
	}
	return m.endpoints["other"]
}

func (m *gwMetrics) replica(name string) *replicaMetrics {
	return m.replicas[name]
}
