// Package gateway is the fleet front door: it consistent-hash-shards
// incidents across a set of scoutd replicas and keeps answering while
// parts of the fleet misbehave. Per-replica circuit breakers stop
// traffic to replicas that fail repeatedly, bounded in-flight budgets
// spill hot shards to the next ring candidate instead of queueing,
// failed attempts retry with jittered exponential backoff on a
// different replica, and slow attempts are hedged — a second request to
// another replica after a p99-derived delay, first success wins, loser
// cancelled. Degradation is explicit: partial answers carry a
// fleet_health block naming every replica that was skipped and why.
package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"slices"
	"time"

	"scouts/internal/faults"
	"scouts/internal/telemetry"
)

// Config sizes the gateway. The zero value of every knob means "use the
// default in parentheses"; set HedgeAfter negative to disable hedging.
type Config struct {
	// Replicas is the fleet: every entry must have a unique Name and a
	// non-empty Team and URL. Replicas sharing a Team form that team's
	// failover set.
	Replicas []ReplicaConfig

	// MaxAttempts bounds tries per retriable request, first attempt
	// included (3).
	MaxAttempts int
	// RetryBase / RetryMax bound the jittered exponential backoff between
	// attempts (25ms / 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// PerTryTimeout bounds each upstream attempt (5s).
	PerTryTimeout time.Duration
	// ReplicaBudget bounds in-flight requests per replica; beyond it the
	// shard spills to the next ring candidate, and when the whole
	// candidate chain is saturated the client is shed with 429 (32).
	ReplicaBudget int64
	// HedgeAfter is the delay before a slow attempt is hedged to another
	// replica. 0 means adaptive: the observed upstream p99, clamped to
	// [5ms, 500ms], with 100ms until enough samples exist. Negative
	// disables hedging.
	HedgeAfter time.Duration
	// Breaker tunes the per-replica circuit breakers (Trip 5, Cooldown 2s).
	Breaker faults.ReqBreakerParams
	// ProbeInterval is the active health-probe period for RunProber (1s).
	ProbeInterval time.Duration
	// TopK is the default size of /v1/route rankings (3).
	TopK int
	// Seed seeds the backoff jitter; a fixed seed replays the same
	// schedule (1).
	Seed int64

	// Client issues upstream requests; nil uses a dedicated transport.
	// Tests wire a faults.FlakyTransport here.
	Client *http.Client
	// Now is the gateway's clock (time.Now). Injected so library code
	// never reads the wall clock directly and tests control latency
	// measurements.
	Now func() time.Time
	// Logger receives operational lines; nil discards.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.PerTryTimeout <= 0 {
		c.PerTryTimeout = 5 * time.Second
	}
	if c.ReplicaBudget <= 0 {
		c.ReplicaBudget = 32
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Hedge-delay bounds for the adaptive (HedgeAfter == 0) mode.
const (
	hedgeDelayMin     = 5 * time.Millisecond
	hedgeDelayMax     = 500 * time.Millisecond
	hedgeDelayDefault = 100 * time.Millisecond
)

// maxUpstreamBody caps how much of a replica's response the gateway will
// buffer (batch responses are the largest legitimate payload).
const maxUpstreamBody = 16 << 20

// Gateway routes incidents to a scoutd fleet. Build with New, mount
// Handler(), and optionally run RunProber for active health checking.
type Gateway struct {
	cfg    Config
	client *http.Client
	now    func() time.Time
	logger *log.Logger

	replicas map[string]*replica
	order    []string // replica names, config order
	teams    []string // distinct team names, sorted
	byTeam   map[string]*ring

	backoff *backoffSource
	lat     *latencyWindow
	tel     *gwMetrics
}

// New validates the fleet config and builds the gateway.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	g := &Gateway{
		cfg:      cfg,
		client:   cfg.Client,
		now:      cfg.Now,
		logger:   cfg.Logger,
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		byTeam:   make(map[string]*ring),
		backoff:  newBackoffSource(cfg.Seed),
		lat:      newLatencyWindow(),
	}
	if g.client == nil {
		g.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	if g.logger == nil {
		g.logger = log.New(io.Discard, "", 0)
	}
	teamNames := map[string][]string{}
	reps := make([]*replica, 0, len(cfg.Replicas))
	for _, rc := range cfg.Replicas {
		if rc.Name == "" || rc.Team == "" || rc.URL == "" {
			return nil, fmt.Errorf("gateway: replica needs name, team and url (got %+v)", rc)
		}
		if _, dup := g.replicas[rc.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate replica name %q", rc.Name)
		}
		rep := &replica{cfg: rc, breaker: faults.NewReqBreaker(cfg.Breaker, cfg.Now)}
		rep.healthy.Store(true) // optimistic until the first probe says otherwise
		g.replicas[rc.Name] = rep
		g.order = append(g.order, rc.Name)
		teamNames[rc.Team] = append(teamNames[rc.Team], rc.Name)
		reps = append(reps, rep)
	}
	for team, names := range teamNames {
		g.teams = append(g.teams, team)
		g.byTeam[team] = newRing(names)
	}
	slices.Sort(g.teams)
	g.tel = newGwMetrics(reps)
	return g, nil
}

// Teams returns the sorted team set the fleet serves.
func (g *Gateway) Teams() []string { return slices.Clone(g.teams) }

// Metrics returns the gateway's registry (the GET /metrics payload).
func (g *Gateway) Metrics() *telemetry.Registry { return g.tel.reg }

// Drain marks a replica as leaving (or, with restore, rejoining) the
// fleet. Draining replicas take no new requests; in-flight ones finish.
func (g *Gateway) Drain(name string, restore bool) bool {
	rep, ok := g.replicas[name]
	if !ok {
		return false
	}
	rep.draining.Store(!restore)
	return true
}

// DrainAll marks every replica draining — the shutdown path.
func (g *Gateway) DrainAll() {
	for _, name := range g.order {
		g.replicas[name].draining.Store(true)
	}
}

// upstreamResult is one attempt's raw outcome.
type upstreamResult struct {
	status  int
	header  http.Header
	body    []byte
	latency time.Duration
	err     error
}

// usable reports whether the result can be returned to the client as-is:
// the replica answered and is not asking us to go elsewhere (5xx and 429
// are retry fodder, not answers).
func (u *upstreamResult) usable() bool {
	return u.err == nil && u.status != http.StatusTooManyRequests && u.status < 500
}

// healthyOutcome is the breaker's success criterion: any coherent HTTP
// response below 500 that is not a 429. A 429 keeps the breaker closed
// too — a replica shedding load is alive — but is counted separately.
func (u *upstreamResult) healthyOutcome() bool {
	return u.err == nil && u.status < 500
}

func (u *upstreamResult) outcomeLabel() string {
	switch {
	case u.err != nil:
		return "error"
	case u.status == http.StatusTooManyRequests:
		return "busy"
	case u.status >= 500:
		return "5xx"
	case u.status >= 400:
		return "4xx"
	default:
		return "ok"
	}
}

// send issues one attempt under the per-try timeout and buffers the
// response.
func (g *Gateway) send(ctx context.Context, rep *replica, method, path string, body []byte) upstreamResult {
	tctx, cancel := context.WithTimeout(ctx, g.cfg.PerTryTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tctx, method, rep.cfg.URL+path, rd)
	if err != nil {
		return upstreamResult{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := g.now()
	resp, err := g.client.Do(req)
	if err != nil {
		return upstreamResult{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody+1))
	if err != nil {
		return upstreamResult{err: err}
	}
	if len(b) > maxUpstreamBody {
		return upstreamResult{err: fmt.Errorf("gateway: response from %s exceeds %d bytes", rep.cfg.Name, maxUpstreamBody)}
	}
	return upstreamResult{status: resp.StatusCode, header: resp.Header, body: b, latency: g.now().Sub(start)}
}

// pick walks the shard's ring order and admits the first replica that is
// not draining, has budget headroom, and whose breaker passes. Every
// rejection is named in the returned skip list.
func (g *Gateway) pick(r *ring, key string, exclude map[string]bool) (*replica, bool, []FleetSkip) {
	var skips []FleetSkip
	for _, name := range r.Shard(key) {
		if exclude[name] {
			continue
		}
		rep := g.replicas[name]
		if rep.draining.Load() {
			skips = append(skips, FleetSkip{Replica: name, Team: rep.cfg.Team, Reason: skipDraining})
			continue
		}
		if !rep.acquire(g.cfg.ReplicaBudget) {
			skips = append(skips, FleetSkip{Replica: name, Team: rep.cfg.Team, Reason: skipSaturated})
			continue
		}
		pass, probe := rep.breaker.Allow()
		if !pass {
			rep.release()
			skips = append(skips, FleetSkip{Replica: name, Team: rep.cfg.Team, Reason: skipBreakerOpen})
			continue
		}
		return rep, probe, skips
	}
	return nil, false, skips
}

// hedgeDelay is how long the primary attempt gets before a hedge
// launches: the configured value, or the observed upstream p99 clamped
// to sane bounds.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeAfter > 0 {
		return g.cfg.HedgeAfter
	}
	p99 := g.lat.P99()
	if p99 <= 0 {
		return hedgeDelayDefault
	}
	return min(max(p99, hedgeDelayMin), hedgeDelayMax)
}

// attemptOutcome is one raced attempt's result as the coordinator sees
// it. void marks an attempt cancelled by the race itself (hedge loser or
// client gone): it carries no signal about the replica.
type attemptOutcome struct {
	res   upstreamResult
	rep   *replica
	void  bool
	hedge bool
}

// finish settles one in-flight attempt: breaker feedback (or a void
// release for cancelled losers), budget release, metrics, and the
// latency sample that feeds the hedge delay.
func (g *Gateway) finish(cctx context.Context, rep *replica, probe, isHedge bool, res upstreamResult) attemptOutcome {
	if res.err != nil && cctx.Err() != nil {
		// Cancelled mid-flight — by the race winner or by the client going
		// away. Either way the replica answered nothing; feeding this to
		// the breaker as a failure would let hedging trip breakers on
		// healthy replicas.
		rep.breaker.Release(probe)
		rep.release()
		return attemptOutcome{rep: rep, void: true, hedge: isHedge}
	}
	rep.breaker.Record(res.healthyOutcome(), probe)
	rep.release()
	g.tel.replica(rep.cfg.Name).outcome(res.outcomeLabel()).Inc()
	if res.err == nil && res.status < 300 {
		g.lat.Observe(res.latency)
		g.tel.upstream.ObserveDuration(res.latency)
	}
	return attemptOutcome{res: res, rep: rep, hedge: isHedge}
}

// race runs one attempt round: the primary request, plus — when hedging
// is on and the primary outlives the hedge delay — a second request to a
// different replica. First usable response wins and cancels the other;
// the loser's outcome is voided rather than recorded. Returns the
// winning outcome, or the first failure once every launched attempt has
// failed, plus any skips from hedge candidate selection.
func (g *Gateway) race(ctx context.Context, r *ring, key string, tried map[string]bool,
	primary *replica, primaryProbe bool, method, path string, body []byte, canHedge bool,
) (attemptOutcome, []FleetSkip) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the maximum number of launched attempts: a goroutine
	// finishing after the coordinator returned parks its result here and
	// exits instead of leaking.
	results := make(chan attemptOutcome, 2)
	launch := func(rep *replica, probe, isHedge bool) {
		go func() {
			results <- g.finish(cctx, rep, probe, isHedge, g.send(cctx, rep, method, path, body))
		}()
	}
	launch(primary, primaryProbe, false)

	var hedgeC <-chan time.Time
	if canHedge {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	var skips []FleetSkip
	inFlight := 1
	var firstFail *attemptOutcome
	for {
		select {
		case <-ctx.Done():
			// Client gone: cancel everything; the launched goroutines settle
			// into the buffered channel and exit.
			cancel()
			return attemptOutcome{res: upstreamResult{err: ctx.Err()}}, skips
		case <-hedgeC:
			hedgeC = nil
			h, hprobe, s := g.pick(r, key, tried)
			skips = append(skips, s...)
			if h != nil {
				tried[h.cfg.Name] = true
				g.tel.replica(h.cfg.Name).hedges.Inc()
				launch(h, hprobe, true)
				inFlight++
			}
		case out := <-results:
			inFlight--
			if out.void {
				if inFlight == 0 {
					if firstFail != nil {
						return *firstFail, skips
					}
					return attemptOutcome{res: upstreamResult{err: ctx.Err()}}, skips
				}
				continue
			}
			if out.res.usable() {
				cancel()
				if out.hedge {
					g.tel.replica(out.rep.cfg.Name).hedgeWins.Inc()
				}
				return out, skips
			}
			if firstFail == nil {
				firstFail = &out
			}
			if inFlight == 0 {
				return *firstFail, skips
			}
		}
	}
}

// forwardResult is forward's verdict: either an upstream response to
// relay verbatim (status/header/body) or a gateway-level failure
// (errStatus + errMsg), plus the skip trail for fleet_health.
type forwardResult struct {
	status  int
	header  http.Header
	body    []byte
	replica string

	errStatus int
	errMsg    string
	retryHint time.Duration
	skips     []FleetSkip
}

func (fr *forwardResult) failed() bool { return fr.errStatus != 0 }

// skipReason compresses the skip trail into one team-level reason for
// fleet_health aggregation: saturation only if *every* skip was
// saturation (that is the shed case), otherwise the first reason seen,
// or unreachable when no candidate was ever found.
func (fr *forwardResult) skipReason() string {
	if len(fr.skips) == 0 {
		return skipUnreachable
	}
	allSat := true
	for _, s := range fr.skips {
		if s.Reason != skipSaturated {
			allSat = false
			break
		}
	}
	if allSat {
		return skipSaturated
	}
	return fr.skips[0].Reason
}

// forward routes one request to the team's shard: bounded-load candidate
// selection, hedged attempts, jittered retries on a different replica.
// retriable gates the retry loop (and hedging) — only idempotent calls
// may be re-sent, because a retry after an ambiguous failure re-executes
// the request.
func (g *Gateway) forward(ctx context.Context, team, key, method, path string, body []byte, retriable bool) forwardResult {
	r := g.byTeam[team]
	if r == nil {
		return forwardResult{errStatus: http.StatusNotFound, errMsg: "no replicas serve team " + team}
	}
	maxAttempts := g.cfg.MaxAttempts
	if !retriable {
		maxAttempts = 1
	}
	canHedge := retriable && g.cfg.HedgeAfter >= 0
	tried := make(map[string]bool, len(g.order))
	var allSkips []FleetSkip
	var lastHint time.Duration
	var lastErr string
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, g.backoff.delay(attempt-1, g.cfg.RetryBase, g.cfg.RetryMax, lastHint)); err != nil {
				return forwardResult{errStatus: 499, errMsg: "client went away: " + err.Error(), skips: allSkips}
			}
			lastHint = 0
			if len(tried) >= len(r.names) {
				// Every replica in the shard has been tried; give them all
				// another chance rather than refusing to route.
				clear(tried)
			}
		}
		rep, probe, skips := g.pick(r, key, tried)
		allSkips = append(allSkips, skips...)
		if rep == nil {
			lastErr = "no replica available"
			continue
		}
		tried[rep.cfg.Name] = true
		if attempt > 1 {
			g.tel.replica(rep.cfg.Name).retries.Inc()
		}
		out, hedgeSkips := g.race(ctx, r, key, tried, rep, probe, method, path, body, canHedge)
		allSkips = append(allSkips, hedgeSkips...)
		if out.res.usable() {
			name := ""
			if out.rep != nil {
				name = out.rep.cfg.Name
			}
			return forwardResult{status: out.res.status, header: out.res.header, body: out.res.body, replica: name, skips: allSkips}
		}
		if ctx.Err() != nil {
			return forwardResult{errStatus: 499, errMsg: "client went away: " + ctx.Err().Error(), skips: allSkips}
		}
		if out.res.err != nil {
			lastErr = out.res.err.Error()
			if out.rep != nil {
				allSkips = append(allSkips, FleetSkip{Replica: out.rep.cfg.Name, Team: team, Reason: skipUnreachable})
			}
		} else {
			lastErr = fmt.Sprintf("upstream answered %d", out.res.status)
			if out.res.status == http.StatusTooManyRequests {
				lastHint = parseRetryAfter(out.res.header)
			}
			if out.rep != nil {
				reason := skipUnreachable
				if out.res.status == http.StatusTooManyRequests {
					reason = skipSaturated
				}
				allSkips = append(allSkips, FleetSkip{Replica: out.rep.cfg.Name, Team: team, Reason: reason})
			}
		}
	}
	fr := forwardResult{skips: allSkips, errMsg: "team " + team + ": " + lastErr}
	if fr.skipReason() == skipSaturated {
		// The whole candidate chain is saturated: shed, and tell the
		// client when the fleet expects headroom back.
		fr.errStatus = http.StatusTooManyRequests
		fr.retryHint = time.Second
		g.tel.shed.Inc()
	} else {
		fr.errStatus = http.StatusBadGateway
		if lastErr == "no replica available" {
			fr.errStatus = http.StatusServiceUnavailable
		}
		g.tel.noReplica.Inc()
	}
	return fr
}

// fleetHealth summarizes the fleet for /v1/health and degraded answers.
func (g *Gateway) fleetHealth(skips []FleetSkip, teamsAnswered int) FleetHealth {
	up := 0
	for _, name := range g.order {
		rep := g.replicas[name]
		if !rep.draining.Load() && rep.breaker.State() != faults.StateOpen && rep.healthy.Load() {
			up++
		}
	}
	return FleetHealth{
		ReplicasTotal: len(g.order),
		ReplicasUp:    up,
		TeamsTotal:    len(g.teams),
		TeamsAnswered: teamsAnswered,
		Degraded:      teamsAnswered < len(g.teams) || up < len(g.order),
		Skipped:       skips,
	}
}
