package gateway

import (
	"hash/fnv"
	"slices"
	"strconv"
)

// ring is a consistent-hash ring over replica names with virtual nodes.
// Shard(key) returns every distinct replica in ring-walk order from the
// key's position — the caller applies bounded-load placement by taking
// the first candidate that is healthy and under budget, so a hot team's
// overflow spills to the *next* replica on the ring (stable spillover)
// instead of scattering. Adding or removing one replica moves only the
// keys that hashed to it; everything else keeps its owner, which is what
// keeps per-replica caches and breaker state meaningful across fleet
// changes.
type ring struct {
	// points are the virtual nodes, sorted by hash.
	points []ringPoint
	names  []string // distinct replica names, config order
}

type ringPoint struct {
	hash uint64
	name string
}

// vnodesPerReplica balances shard spread against ring size; 64 keeps the
// per-replica load within a few percent of uniform for small fleets.
const vnodesPerReplica = 64

// newRing builds the ring from replica names (order-insensitive: the
// placement depends only on the name set).
func newRing(names []string) *ring {
	r := &ring{names: slices.Clone(names)}
	for _, name := range names {
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(name + "#" + strconv.Itoa(v)),
				name: name,
			})
		}
	}
	slices.SortFunc(r.points, func(a, b ringPoint) int {
		if a.hash != b.hash {
			if a.hash < b.hash {
				return -1
			}
			return 1
		}
		// Hash ties (vanishingly rare) break by name so the ring is a
		// pure function of the name set.
		return cmpString(a.name, b.name)
	})
	return r
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// hashKey is FNV-1a 64: stable across processes and platforms, so a
// fleet of gateways shards identically without coordination.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Shard returns the distinct replica names in ring order starting at the
// key's successor. The first entry is the key's owner; later entries are
// the bounded-load spillover sequence. The returned slice is freshly
// allocated and the caller's to keep.
func (r *ring) Shard(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	// First virtual node clockwise of h (successor), wrapping.
	i, _ := slices.BinarySearchFunc(r.points, h, func(p ringPoint, h uint64) int {
		if p.hash < h {
			return -1
		}
		if p.hash > h {
			return 1
		}
		return 0
	})
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for k := 0; k < len(r.points) && len(out) < len(r.names); k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}
