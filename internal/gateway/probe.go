package gateway

import (
	"context"
	"net/http"
	"time"
)

// RunProber actively probes every replica's GET /v1/health on the
// configured interval until ctx ends. Probes serve two jobs: they keep
// the informational healthy flag fresh, and they feed the circuit
// breakers — a probe takes the half-open probe slot when one is
// available, so a replica that died and came back is recovered by the
// prober rather than by gambling a client request on it, and a replica
// failing probes while closed burns its failure streak down before
// client traffic does.
func (g *Gateway) RunProber(ctx context.Context) {
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.probeAll(ctx)
		}
	}
}

// probeAll probes the whole fleet once, sequentially (a probe is one
// cheap GET; fleet sizes here do not justify fan-out bookkeeping).
func (g *Gateway) probeAll(ctx context.Context) {
	for _, name := range g.order {
		g.probeOne(ctx, g.replicas[name])
	}
}

func (g *Gateway) probeOne(ctx context.Context, rep *replica) {
	if rep.draining.Load() {
		return
	}
	pass, probe := rep.breaker.Allow()
	if !pass {
		// Open breaker inside cooldown, or a client request already holds
		// the probe slot — nothing useful to learn right now.
		return
	}
	res := g.send(ctx, rep, http.MethodGet, "/v1/health", nil)
	if res.err != nil && ctx.Err() != nil {
		rep.breaker.Release(probe)
		return
	}
	ok := res.healthyOutcome()
	rep.breaker.Record(ok, probe)
	rep.healthy.Store(ok && res.status == http.StatusOK)
	rm := g.tel.replica(rep.cfg.Name)
	rm.probes.Inc()
	if !ok {
		rm.probeFail.Inc()
		g.logger.Printf("gateway: probe of %s failed: status=%d err=%v", rep.cfg.Name, res.status, res.err)
	}
}
