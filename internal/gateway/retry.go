package gateway

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// backoffSource draws jitter from a seeded source so a fixed seed
// replays the same backoff schedule (the rand.Rand itself is not
// goroutine-safe; the mutex is the price of determinism-by-seed).
type backoffSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoffSource(seed int64) *backoffSource {
	return &backoffSource{rng: rand.New(rand.NewSource(seed))}
}

// delay computes the attempt-th retry's wait: exponential growth from
// base capped at max, with equal jitter (half fixed, half uniform) so a
// burst of failed requests does not re-converge into a synchronized
// retry stampede. A Retry-After hint from the replica overrides the
// computed wait when longer — the server knows its own pressure better
// than our exponent does — capped at max so a hostile hint cannot park
// the client forever.
func (b *backoffSource) delay(attempt int, base, max, hint time.Duration) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	b.mu.Lock()
	jittered := d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	b.mu.Unlock()
	if hint > jittered {
		jittered = hint
	}
	if jittered > max {
		jittered = max
	}
	return jittered
}

// sleepCtx waits d or until the context ends, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// parseRetryAfter reads a Retry-After header as delay seconds (the only
// form this fleet emits; HTTP-date is ignored rather than guessed at).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
