package gateway

import (
	"sync/atomic"

	"scouts/internal/faults"
)

// ReplicaConfig names one scoutd replica in the fleet: which team's
// Scout it serves and where it listens.
type ReplicaConfig struct {
	// Name identifies the replica in metrics, drain calls and
	// fleet_health blocks. Must be unique across the fleet.
	Name string `json:"name"`
	// Team is the Scout team the replica serves; several replicas may
	// share a team (that is the failover set).
	Team string `json:"team"`
	// URL is the replica's base URL (http://host:port).
	URL string `json:"url"`
}

// replica is one backend's runtime state: the circuit breaker that
// decides whether it is trusted, the bounded-load in-flight budget, the
// drain flag, and the last active-probe verdict.
type replica struct {
	cfg     ReplicaConfig
	breaker *faults.ReqBreaker

	// inflight counts requests the gateway currently has outstanding to
	// this replica; the bounded-load placement admits a request only while
	// inflight < budget, so one hot shard spills to the next ring
	// candidate instead of queueing here.
	inflight atomic.Int64
	// draining marks the replica as leaving the fleet: no new requests,
	// in-flight ones finish. Set by POST /v1/drain and by shutdown.
	draining atomic.Bool
	// healthy is the last active /v1/health probe's verdict; informational
	// (fleet_health, /v1/health) — the breaker is the routing gate.
	healthy atomic.Bool
}

func (r *replica) acquire(budget int64) bool {
	if r.inflight.Add(1) > budget {
		r.inflight.Add(-1)
		return false
	}
	return true
}

func (r *replica) release() { r.inflight.Add(-1) }

// Skip reasons used in fleet_health blocks and error bodies; mirrors the
// DataHealth contract of naming *why* an answer is partial.
const (
	skipDraining    = "draining"
	skipBreakerOpen = "breaker-open"
	skipSaturated   = "saturated"
	skipUnreachable = "unreachable"
)

// ReplicaHealth is one replica's row in /v1/health and fleet_health.
type ReplicaHealth struct {
	Name     string `json:"name"`
	Team     string `json:"team"`
	Breaker  string `json:"breaker"`
	Trips    int    `json:"trips"`
	Draining bool   `json:"draining,omitempty"`
	Healthy  bool   `json:"healthy"`
	InFlight int    `json:"in_flight"`
}

// FleetSkip names one replica (or a whole team) a degraded answer had to
// route around, and why.
type FleetSkip struct {
	Replica string `json:"replica,omitempty"`
	Team    string `json:"team"`
	Reason  string `json:"reason"`
}

// FleetHealth is the fleet-side sibling of the serving layer's
// DataHealthInfo: every partial answer carries one, naming which
// replicas were skipped and why, so "the fleet degraded" is an explicit
// part of the contract rather than a silent quality drop.
type FleetHealth struct {
	ReplicasTotal int         `json:"replicas_total"`
	ReplicasUp    int         `json:"replicas_up"`
	TeamsTotal    int         `json:"teams_total"`
	TeamsAnswered int         `json:"teams_answered"`
	Degraded      bool        `json:"degraded"`
	Skipped       []FleetSkip `json:"skipped,omitempty"`
}
