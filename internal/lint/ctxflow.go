package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"scouts/internal/lint/cfg"
	"scouts/internal/lint/flow"
)

// CtxFlow is the first flow-sensitive check: a function that accepts a
// context.Context promises its caller cancellation, so every operation
// that can block — channel sends and receives, bare selects, time.Sleep,
// sync waits, network and file I/O — must be dominated by a consultation
// of that context on every path from the function's entry. Consulting
// means calling ctx.Err/Done/Deadline, selecting on ctx.Done(), or
// handing the context to a callee (which then owns cancellation).
//
// The analysis is a must-analysis over the function's CFG: the fact "ctx
// has been consulted" survives a join only when it holds on both
// incoming edges, so a check inside one arm of an if does not license a
// block after the join, and a check inside a loop body does not license
// the first iteration. A select containing a ctx.Done() case (or a
// default) is itself non-blocking and counts as a consultation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "blocking operations in a ctx-carrying function must be dominated by a ctx check or a select on ctx.Done()",
	Run:  runCtxFlow,
}

// ctxLattice is the must-consulted domain: Join is AND, so only checks
// established on every incoming path survive a merge.
type ctxLattice struct{}

func (ctxLattice) Entry() bool          { return false }
func (ctxLattice) Join(a, b bool) bool  { return a && b }
func (ctxLattice) Equal(a, b bool) bool { return a == b }

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body != nil && hasCtxParam(p.Info, ft) && !isTestFile(p.Fset, body.Pos()) {
				checkCtxFlow(p, body)
			}
			return true
		})
	}
}

// hasCtxParam reports whether the signature declares a context.Context
// parameter. An unnamed (or blank) context still counts: taking one and
// then blocking unconditionally is exactly the contract violation the
// check exists for.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && namedPath(t) == "context.Context" {
			return true
		}
	}
	return false
}

func checkCtxFlow(p *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	comms := selectComms(body)
	tf := func(b *cfg.Block, in bool) bool {
		out := in
		for _, n := range b.Nodes {
			out = ctxStep(p, comms, n, out, false)
		}
		return out
	}
	res := flow.Forward(g, ctxLattice{}, tf)
	// Reporting pass: replay each reachable block from its settled input
	// fact; a blocking node met with the fact still false is a finding.
	for _, b := range g.Blocks {
		in, ok := res.At(b)
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			in = ctxStep(p, comms, n, in, true)
		}
	}
}

// ctxStep is the transfer function for one block node, shared between
// the fixpoint (report=false) and the reporting replay (report=true).
func ctxStep(p *Pass, comms map[ast.Stmt]bool, n ast.Node, in bool, report bool) bool {
	consulted := in
	if st, ok := n.(ast.Stmt); ok && comms[st] {
		// A select clause's comm op: the gating select already decided
		// whether the select blocks; a ctx.Done receive marks its branch
		// as having observed cancellation.
		if commIsCtxDone(p.Info, st) {
			consulted = true
		}
		return consulted
	}
	cfg.NodeInspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SelectStmt:
			hasDefault, hasDone := selectEscapes(p.Info, x)
			switch {
			case hasDone:
				consulted = true
			case !hasDefault && !consulted:
				if report {
					p.Reportf(x.Pos(), "select blocks with no ctx.Done() case and no default; add a case <-ctx.Done() so the caller can cancel")
				}
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && !consulted && report {
					p.Reportf(x.Pos(), "range over channel %s blocks between messages with no prior ctx check; select on the channel and ctx.Done() instead", types.ExprString(x.X))
				}
			}
		case *ast.SendStmt:
			if !consulted && report {
				p.Reportf(x.Pos(), "channel send %s <- ... may block forever with no prior ctx check; use a select with a ctx.Done() case", types.ExprString(x.Chan))
			}
		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			if isCtxDoneCall(p.Info, x.X) {
				// <-ctx.Done() waits for cancellation itself.
				consulted = true
				return false
			}
			if !consulted && report {
				p.Reportf(x.Pos(), "channel receive %s may block forever with no prior ctx check; use a select with a ctx.Done() case", types.ExprString(x))
			}
			return false
		case *ast.CallExpr:
			if isCtxConsult(p.Info, x) || callCarriesCtx(p.Info, x) {
				consulted = true
				return true
			}
			if !consulted && report {
				if what := blockingCallDesc(p.Info, x); what != "" {
					p.Reportf(x.Pos(), "%s with no prior ctx check; guard it with ctx.Err()/a ctx.Done() select, or pass ctx down", what)
				}
			}
		}
		return true
	})
	return consulted
}

// isCtxConsult reports whether the call reads the context's liveness:
// ctx.Err(), ctx.Done(), ctx.Deadline(). ctx.Value is a plain lookup and
// does not count.
func isCtxConsult(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Err", "Done", "Deadline":
	default:
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && namedPath(t) == "context.Context"
}

// isCtxDoneCall reports whether e is a ctx.Done() call.
func isCtxDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isCtxConsult(info, call) && selName(call.Fun) == "Done"
}

func selName(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// callCarriesCtx reports whether any argument carries a context.Context
// into the call — delegation, after which the callee owns cancellation.
// A fresh context.Background()/TODO() does not count: it is not the
// caller's context and cancels nothing.
func callCarriesCtx(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		carries := false
		ast.Inspect(a, func(n ast.Node) bool {
			if carries {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				fn := calleeFunc(info, c)
				if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					return false
				}
			}
			if e, ok := n.(ast.Expr); ok {
				if t := info.TypeOf(e); t != nil && namedPath(t) == "context.Context" {
					carries = true
					return false
				}
			}
			return true
		})
		if carries {
			return true
		}
	}
	return false
}

// selectEscapes classifies a select's clauses: a default case makes it
// non-blocking, a <-ctx.Done() case makes it cancellation-aware.
func selectEscapes(info *types.Info, sel *ast.SelectStmt) (hasDefault, hasDone bool) {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if commIsCtxDone(info, cc.Comm) {
			hasDone = true
		}
	}
	return hasDefault, hasDone
}

// commIsCtxDone reports whether a select comm statement receives from
// ctx.Done().
func commIsCtxDone(info *types.Info, comm ast.Stmt) bool {
	if u := commRecv(comm); u != nil {
		return isCtxDoneCall(info, u.X)
	}
	return false
}

// commRecv extracts the receive expression of a comm statement, or nil
// for send clauses.
func commRecv(comm ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if e == nil {
		return nil
	}
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}

// blockingCallDesc describes a call that can block indefinitely (or for
// an unbounded I/O round trip), or returns "" for calls the check does
// not consider blocking.
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	recv := ""
	if sig != nil && sig.Recv() != nil {
		recv = namedPath(sig.Recv().Type())
	}
	switch {
	case path == "time" && name == "Sleep" && recv == "":
		return "time.Sleep blocks"
	case path == "sync" && name == "Wait" && (recv == "sync.WaitGroup" || recv == "sync.Cond"):
		return "(*" + recv + ").Wait blocks"
	case path == "net" && recv == "" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		return "net." + name + " performs network I/O"
	case path == "net/http" && recv == "" &&
		(name == "Get" || name == "Post" || name == "Head" || name == "PostForm"):
		return "http." + name + " performs network I/O"
	case path == "net/http" && name == "Do" && recv == "net/http.Client":
		return "(*http.Client).Do performs network I/O"
	case path == "os" && recv == "" &&
		(name == "ReadFile" || name == "WriteFile" || name == "Open" ||
			name == "OpenFile" || name == "Create" || name == "ReadDir"):
		return "os." + name + " performs file I/O"
	}
	return ""
}

// selectComms indexes the comm statements of every select in the body
// (nested function literals excluded — they are analyzed as their own
// functions), so the transfer function can tell a gated channel op from
// a bare one.
func selectComms(body *ast.BlockStmt) map[ast.Stmt]bool {
	comms := map[ast.Stmt]bool{}
	bodyInspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc := c.(*ast.CommClause); cc.Comm != nil {
					comms[cc.Comm] = true
				}
			}
		}
		return true
	})
	return comms
}

// bodyInspect walks a function body without descending into nested
// function literals: their statements belong to other analyses.
func bodyInspect(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
