package lint

// SARIF 2.1.0 rendering of a lint run. The output is byte-deterministic:
// rules come from the analyzer catalog sorted by name, results are
// assumed pre-sorted by sortDiagnostics (Run's postcondition), struct
// field order fixes the JSON key order, and the encoder appends a single
// trailing newline. Two consecutive runs over an unchanged tree produce
// identical bytes, so lint.sarif diffs cleanly as a CI artifact.
//
// File paths in the diagnostics should already be root-relative and
// slash-separated (cmd/scoutlint relativizes before rendering); SARIF
// artifact URIs are required to be slash-separated, so absolute paths
// are converted defensively here too.

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"slices"
	"strings"
)

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders the findings as a SARIF 2.1.0 document. analyzers feeds
// the rule catalog (pass All() for the full suite); every diagnostic's
// Check should name one of them, but unknown checks still render — the
// "allow" pseudo-check for malformed suppressions has no analyzer.
func SARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	slices.SortFunc(rules, func(a, b sarifRule) int { return strings.Compare(a.ID, b.ID) })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "scoutlint",
				InformationURI: "https://example.invalid/scouts/scoutlint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(log); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
