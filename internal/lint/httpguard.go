package lint

import (
	"go/ast"
	"go/types"
)

// HTTPGuard generalizes PR 3's serving hardening to every future
// endpoint: any function that decodes an *http.Request body with
// encoding/json must (a) wrap the body in http.MaxBytesReader — an
// unbounded decode lets one request balloon the heap — and (b) call
// DisallowUnknownFields on the decoder — a typoed field silently
// zeroing a required value (the Time-field bug the serving layer guards
// against) must be a 400, not a wrong answer served with confidence.
//
// The check is function-local: it looks at json.NewDecoder calls whose
// argument traces to a request body (directly, or through one local
// assignment like `body := http.MaxBytesReader(w, r.Body, n)`).
// Decoding *response* bodies (clients, tests) is untouched — the
// receiver must be an *http.Request.
var HTTPGuard = &Analyzer{
	Name: "httpguard",
	Doc:  "request-body JSON decodes need http.MaxBytesReader and DisallowUnknownFields",
	Run:  runHTTPGuard,
}

func runHTTPGuard(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHTTPFunc(p, fd)
		}
	}
}

// bodySource classifies what a json.NewDecoder argument reads from.
type bodySource int

const (
	notRequestBody    bodySource = iota // response body, file, buffer — not ours
	rawRequestBody                      // r.Body with no byte cap
	cappedRequestBody                   // http.MaxBytesReader(w, r.Body, n)
)

func checkHTTPFunc(p *Pass, fd *ast.FuncDecl) {
	// assigns maps a local variable to the expression it was (last)
	// assigned from, for one-hop tracing of `body := http.MaxBytesReader(...)`.
	assigns := map[types.Object]ast.Expr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if obj := objectOf(p.Info, lhs); obj != nil {
				assigns[obj] = as.Rhs[i]
			}
		}
		return true
	})

	classify := func(e ast.Expr) bodySource { return classifyBodyExpr(p.Info, e, assigns, 0) }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if !isPkgFunc(fn, "encoding/json", "NewDecoder") || len(call.Args) != 1 {
			return true
		}
		src := classify(call.Args[0])
		if src == notRequestBody {
			return true
		}
		if src == rawRequestBody {
			p.Reportf(call.Pos(), "request body decoded without http.MaxBytesReader; cap it so one request cannot balloon the heap")
		}
		if !decoderDisallowsUnknown(p.Info, fd, call) {
			p.Reportf(call.Pos(), "request-body decoder never calls DisallowUnknownFields; a typoed field would silently zero a required value")
		}
		return true
	})
}

// classifyBodyExpr resolves whether e reads an *http.Request body and
// whether a MaxBytesReader caps it, following at most two local
// assignment hops.
func classifyBodyExpr(info *types.Info, e ast.Expr, assigns map[types.Object]ast.Expr, depth int) bodySource {
	if depth > 2 {
		return notRequestBody
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// X.Body where X is an *http.Request.
		if v.Sel.Name != "Body" {
			return notRequestBody
		}
		if tv, ok := info.Types[v.X]; ok && namedPath(tv.Type) == "net/http.Request" {
			return rawRequestBody
		}
	case *ast.CallExpr:
		fn := calleeFunc(info, v)
		if isPkgFunc(fn, "net/http", "MaxBytesReader") && len(v.Args) == 3 {
			// Capped — but only meaningful if it caps a request body.
			if classifyBodyExpr(info, v.Args[1], assigns, depth+1) != notRequestBody {
				return cappedRequestBody
			}
		}
	case *ast.Ident:
		if obj := info.Uses[v]; obj != nil {
			if rhs, ok := assigns[obj]; ok {
				return classifyBodyExpr(info, rhs, assigns, depth+1)
			}
		}
	}
	return notRequestBody
}

// decoderDisallowsUnknown reports whether the decoder produced by
// newDec has DisallowUnknownFields called on it in fd: either inline
// (json.NewDecoder(b).DisallowUnknownFields() — nobody writes that, but
// it is legal) or via the local variable it is assigned to.
func decoderDisallowsUnknown(info *types.Info, fd *ast.FuncDecl, newDec *ast.CallExpr) bool {
	// Find the variable the decoder lands in.
	var decObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if ast.Unparen(rhs) == newDec {
				decObj = objectOf(info, as.Lhs[i])
			}
		}
		return true
	})
	if decObj == nil {
		// Used inline: json.NewDecoder(b).Decode(v) can never have
		// DisallowUnknownFields applied.
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DisallowUnknownFields" {
			return true
		}
		if objectOf(info, sel.X) == decObj {
			found = true
		}
		return !found
	})
	return found
}
