package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
)

// Locks hardens the shared-cache and serving-hot-swap concurrency
// contracts with three checks:
//
//   - no by-value copy of a type containing a sync.Mutex/RWMutex
//     (parameters, receivers, plain assignments, range variables) — a
//     copied lock guards nothing;
//   - every non-deferred mu.Lock()/mu.RLock() needs a matching
//     mu.Unlock()/mu.RUnlock() (or a defer of it) somewhere in the same
//     function — cross-function lock handoff is banned in this repo;
//   - no mu.Lock() while mu.RLock() is still held on the same receiver:
//     sync.RWMutex cannot be upgraded and the goroutine self-deadlocks.
//
// The checks are intraprocedural and pair calls by the receiver's
// printed expression ("s.mu"), which matches how every lock in this
// repo is used: a struct field locked and unlocked in the same method.
var Locks = &Analyzer{
	Name: "locks",
	Doc:  "no lock copies, no Lock without Unlock in-function, no RLock→Lock upgrades",
	Run:  runLocks,
}

func runLocks(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(p, fd)
			if fd.Body != nil {
				checkLockPairing(p, fd)
			}
		}
	}
}

// containsLock reports whether a value of type t holds a sync.Mutex or
// sync.RWMutex (directly, in a struct field, or in an array element).
// Pointers, slices, maps and interfaces hide the lock behind a
// reference, so copying them is fine.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch path := namedPath(t); path {
	case "sync.Mutex", "sync.RWMutex":
		// A pointer to a lock is fine; namedPath dereferences one level,
		// so re-check that t itself is not a pointer.
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value lock copies in signatures, assignments
// and range clauses.
func checkLockCopies(p *Pass, fd *ast.FuncDecl) {
	flagField := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(tv.Type) {
				p.Reportf(field.Type.Pos(), "%s passes %s by value, copying its lock; use a pointer", what, tv.Type)
			}
		}
	}
	flagField(fd.Recv, "receiver")
	flagField(fd.Type.Params, "parameter")
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				if !copiesValue(rhs) {
					continue
				}
				tv, ok := p.Info.Types[rhs]
				if !ok || tv.Type == nil {
					continue
				}
				if containsLock(tv.Type) {
					p.Reportf(s.Pos(), "assignment copies %s by value, copying its lock; use a pointer", tv.Type)
				}
			}
		case *ast.RangeStmt:
			if s.Value == nil {
				return true
			}
			// A `:=`-defined range value lives in Defs, not Types; a
			// reused variable (`=`) lives in Types. Blank idents have
			// neither and fall through.
			var vt types.Type
			if id, ok := s.Value.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					vt = obj.Type()
				}
			}
			if vt == nil {
				if tv, ok := p.Info.Types[s.Value]; ok {
					vt = tv.Type
				}
			}
			if vt != nil && containsLock(vt) {
				p.Reportf(s.Value.Pos(), "range copies %s elements by value, copying their locks; range over indices or pointers", vt)
			}
		}
		return true
	})
}

// copiesValue reports whether the right-hand side reads an existing
// value (identifier, field, deref, index) — the forms that duplicate a
// held lock. Composite literals build a fresh, unlocked value and calls
// are the callee's responsibility, so both pass.
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// lockEvent is one Lock/Unlock-family call in source order.
type lockEvent struct {
	pos      token.Pos
	name     string // Lock, Unlock, RLock, RUnlock
	recv     string // printed receiver expression, e.g. "s.mu"
	deferred bool
}

func checkLockPairing(p *Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	collect := func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock":
			events = append(events, lockEvent{
				pos: call.Pos(), name: fn.Name(), recv: recvKey(sel.X), deferred: deferred,
			})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			collect(ds.Call, true)
			return false // the call inside the defer is already handled
		}
		collect(n, false)
		return true
	})
	slices.SortFunc(events, func(a, b lockEvent) int { return int(a.pos - b.pos) })

	// Check 1: every acquire has a release somewhere in the function.
	released := map[string]bool{} // "recv\x00Unlock" present?
	for _, e := range events {
		if e.name == "Unlock" || e.name == "RUnlock" {
			released[e.recv+"\x00"+e.name] = true
		}
	}
	for _, e := range events {
		switch e.name {
		case "Lock":
			if !released[e.recv+"\x00Unlock"] {
				p.Reportf(e.pos, "%s.Lock() has no %s.Unlock() (or defer of it) in this function", e.recv, e.recv)
			}
		case "RLock":
			if !released[e.recv+"\x00RUnlock"] {
				p.Reportf(e.pos, "%s.RLock() has no %s.RUnlock() (or defer of it) in this function", e.recv, e.recv)
			}
		}
	}

	// Check 2: RLock→Lock upgrade. Walk in source order, tracking which
	// receivers hold a read lock; a deferred RUnlock releases only at
	// function exit, so it never clears the flag mid-walk.
	readHeld := map[string]bool{}
	for _, e := range events {
		switch {
		case e.name == "RLock" && !e.deferred:
			readHeld[e.recv] = true
		case e.name == "RUnlock" && !e.deferred:
			readHeld[e.recv] = false
		case e.name == "Lock" && readHeld[e.recv]:
			p.Reportf(e.pos, "%s.Lock() while %s.RLock() is held: RWMutex cannot upgrade and this deadlocks", e.recv, e.recv)
		}
	}
}
