package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"scouts/internal/lint"
)

// The fixture harness: every file under testdata/src carries
// // want "regex" comments on the lines where diagnostics are expected
// (several quoted regexes for several diagnostics on one line). The test
// runs the full analyzer catalog over the fixture tree and demands an
// exact match in both directions — every want consumed by a distinct
// diagnostic, every diagnostic claimed by a want.
var (
	wantRE   = regexp.MustCompile(`// want ("[^"]*"(?:\s+"[^"]*")*)\s*$`)
	quotedRE = regexp.MustCompile(`"([^"]*)"`)
)

// loadWants scans root for want comments, keyed by "path:line".
func loadWants(t *testing.T, root string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, i+1)
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, q[1], err)
				}
				wants[key] = append(wants[key], re)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found under %s", root)
	}
	return wants
}

func TestFixtures(t *testing.T) {
	// The driver reports absolute file paths; walk the same absolute root
	// so want keys and diagnostic keys line up.
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(lint.Config{Root: root})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	unmatched := loadWants(t, root)

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		text := fmt.Sprintf("[%s] %s", d.Check, d.Message)
		idx := -1
		for i, re := range unmatched[key] {
			if re.MatchString(text) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", key, text)
			continue
		}
		unmatched[key] = append(unmatched[key][:idx], unmatched[key][idx+1:]...)
	}
	for key, res := range unmatched {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s matching %q", key, re)
		}
	}
}

// TestSuppression pins the //scout:allow contract on the allowsrc
// fixture: valid directives (trailing and line-above) silence their
// findings; a reasonless directive, a bare directive, and an unknown
// check name each surface as [allow] findings — and the reasonless one
// leaves the original finding standing.
func TestSuppression(t *testing.T) {
	root := filepath.Join("testdata", "allowsrc")
	diags, err := lint.Run(lint.Config{Root: root})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}

	src, err := os.ReadFile(filepath.Join(root, "allowdemo.go"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	lineOf := func(pred func(string) bool, what string) int {
		t.Helper()
		for i, l := range lines {
			if pred(l) {
				return i + 1
			}
		}
		t.Fatalf("fixture marker not found: %s", what)
		return 0
	}
	reasonless := lineOf(func(l string) bool {
		return strings.HasSuffix(strings.TrimSpace(l), "//scout:allow sortslice")
	}, "reasonless directive")
	bare := lineOf(func(l string) bool {
		return strings.TrimSpace(l) == "//scout:allow"
	}, "bare directive")
	unknown := lineOf(func(l string) bool {
		return strings.Contains(l, "nosuchcheck")
	}, "unknown-check directive")

	type want struct {
		line    int
		check   string
		message string // substring
	}
	wants := []want{
		{reasonless, "sortslice", "sorts through reflection"},
		{reasonless, "allow", "needs a reason"},
		{bare, "allow", "needs a check name"},
		{unknown, "allow", "unknown check"},
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s", d.String())
		}
		t.Fatalf("got %d findings, want %d", len(diags), len(wants))
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Line == w.line && d.Check == w.check && strings.Contains(d.Message, w.message) {
				found = true
				break
			}
		}
		if !found {
			for _, d := range diags {
				t.Logf("got: %s", d.String())
			}
			t.Fatalf("missing finding: line %d [%s] ~%q", w.line, w.check, w.message)
		}
	}
}

// TestSelfCheck runs the full catalog over the repository itself — the
// same invocation as `make lint` — and demands zero findings. This is
// the gate that keeps the tree honest about its own invariants.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	diags, err := lint.Run(lint.Config{Root: moduleRoot(t)})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d.String())
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test directory")
		}
		dir = parent
	}
}
