package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Atomicity flags mixed access protocols: a variable or struct field
// that is updated through the old-style sync/atomic package functions
// (atomic.AddInt64(&x, ...), atomic.LoadUint32(&x), ...) on one path
// and read or written with a plain load/store on another. The plain
// access races with the atomic one — the exact hazard a lock-free
// counter or gauge lives on — and the mix usually means one call site
// was added after the protocol was forgotten.
//
// The check is package-wide and two-pass: pass one collects every
// object whose address is taken by a sync/atomic package function; pass
// two reports every other use of those objects. Composite-literal
// initialization (Counter{hits: 0}) is exempt: it builds a new value
// that is not yet shared. Typed atomics (atomic.Int64 and friends) are
// immune by construction — their value is unexported — and copies of
// them are already rejected by go vet's copylocks.
var Atomicity = &Analyzer{
	Name: "atomicity",
	Doc:  "a variable updated via sync/atomic must never be read or written with a plain access",
	Run:  runAtomicity,
}

func runAtomicity(p *Pass) {
	// Pass one: objects addressed by old-style sync/atomic calls, with
	// the first such site for the report, and the identifiers inside
	// those calls (which are legitimate uses).
	atomicAt := map[types.Object]token.Pos{}
	okIdents := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // typed atomics police themselves
			}
			for _, a := range call.Args {
				u, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				obj := exprObject(p.Info, u.X)
				if obj == nil {
					continue
				}
				if _, recorded := atomicAt[obj]; !recorded {
					atomicAt[obj] = call.Pos()
				}
				ast.Inspect(a, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						okIdents[id] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass two: every other use is a plain access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					okIdents[id] = true // composite literal init of a fresh value
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || okIdents[id] {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			pos, ok := atomicAt[obj]
			if !ok {
				return true
			}
			at := p.Fset.Position(pos)
			p.Reportf(id.Pos(), "plain access of %s, which is accessed via sync/atomic at %s:%d; use atomic loads/stores everywhere (or migrate to a typed atomic.Int64-style field)",
				id.Name, filepath.Base(at.Filename), at.Line)
			return true
		})
	}
}
