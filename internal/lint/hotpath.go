package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath guards the proven zero-alloc kernels between benchmark runs.
// The AllocsPerRun tests catch allocation regressions only where a
// benchmark exists; annotating a function with a //scout:hotpath doc
// line extends the guarantee to every build. Inside an annotated
// function three allocation classes are banned:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf calls (each
//     formats through reflection and allocates the result);
//   - append into a fresh local slice that the function returns (the
//     caller-supplied-buffer pattern — FeaturizeInto, PredictProbBatch —
//     is the sanctioned alternative);
//   - interface-boxing conversions at call sites: passing a concrete
//     non-pointer value (struct, slice, string, number) to an interface
//     parameter heap-allocates the box. Pointers, maps, channels and
//     funcs are pointer-shaped and box for free, so they pass.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//scout:hotpath functions must not format, box into interfaces, or grow escaping fresh slices",
	Run:  runHotPath,
}

// HotPathDirective is the doc-comment line that opts a function into the
// check.
const HotPathDirective = "//scout:hotpath"

var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotPathDirective) {
			return true
		}
	}
	return false
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	fresh := map[types.Object]token.Pos{} // slices allocated in this function
	appended := map[types.Object]token.Pos{}
	returned := map[types.Object]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, s)
			if isBuiltin(p.Info, s, "append") && len(s.Args) > 0 {
				if obj := objectOf(p.Info, s.Args[0]); obj != nil {
					if _, seen := appended[obj]; !seen {
						appended[obj] = s.Pos()
					}
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				obj := objectOf(p.Info, lhs)
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if isFreshSliceExpr(p.Info, s.Rhs[i]) {
					fresh[obj] = s.Pos()
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := p.Info.Defs[name]; obj != nil && isSliceType(obj.Type()) {
						fresh[obj] = name.Pos()
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if obj := objectOf(p.Info, res); obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})

	// Named results are returned by definition.
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}

	for obj, appendPos := range appended {
		if _, isFresh := fresh[obj]; isFresh && returned[obj] {
			p.Reportf(appendPos,
				"hot path grows fresh slice %q and returns it; take a caller-supplied buffer (the FeaturizeInto pattern) instead",
				obj.Name())
		}
	}
}

// checkHotCall flags formatting calls and interface-boxing arguments.
func checkHotCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
		p.Reportf(call.Pos(), "hot path calls fmt.%s, which formats through reflection and allocates", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			paramType = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				paramType = params.At(params.Len() - 1).Type()
			} else if sl, okSlice := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); okSlice {
				paramType = sl.Elem()
			}
		}
		if paramType == nil {
			continue
		}
		if _, isIface := paramType.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, okType := p.Info.Types[arg]
		if !okType || tv.Type == nil {
			continue
		}
		at := tv.Type
		if tv.IsNil() {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		p.Reportf(arg.Pos(),
			"hot path boxes %s into interface parameter of %s.%s (allocates); keep the call concrete or pass a pointer",
			at.String(), pkgName(fn), fn.Name())
	}
}

func pkgName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return "?"
	}
	return fn.Pkg().Name()
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isFreshSliceExpr reports whether the expression allocates a new slice:
// a composite literal, a make call, or an append to one of those forms
// inline. Reslicing an existing buffer (pool.Get, param[:0]) is not
// fresh.
func isFreshSliceExpr(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if isBuiltin(info, v, "make") {
			return true
		}
		if isBuiltin(info, v, "append") && len(v.Args) > 0 {
			if id, ok := ast.Unparen(v.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
			return isFreshSliceExpr(info, v.Args[0])
		}
	}
	return false
}

// pointerShaped reports whether boxing a value of t into an interface
// stores the value directly in the interface word — no allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
