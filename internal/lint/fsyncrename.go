package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"

	"scouts/internal/lint/cfg"
	"scouts/internal/lint/flow"
)

// FsyncRename enforces the crash-safety discipline PR 5 established by
// convention: committing a freshly written file with os.Rename is only
// durable if the file was File.Sync()ed before the rename (or the data
// may be lost) and the parent directory is fsynced after it (or the
// directory entry may be lost). The check is flow-sensitive over each
// function's CFG, with two facts:
//
//   - synced (must-set, intersection join): the file handles whose
//     last write was followed by a Sync on every path. A rename whose
//     source was opened in-function but is not in the set is reported
//     at the rename.
//   - pending (may-multiset, per-key max join, counts capped at 2): the
//     rename sites whose directory sync has not happened yet. A rename
//     guarded by `if err := os.Rename(...); err != nil { return ... }`
//     is forgiven one count on the error return — the rename did not
//     commit there — but a second count survives, which is exactly how
//     an error return after an earlier loop iteration's successful
//     rename is caught. Any pending count that reaches the function's
//     exit without a directory sync is reported.
//
// A directory sync is a Sync on an os.Open handle (the syncDir shape),
// a call to a same-package function containing one, or either deferred.
// Obligations compose across the package: an unexported function whose
// exit carries pending renames is a "renamer", and calls to it push the
// obligation to its callers instead of being reported in place —
// writeFileSync-style helpers stay silent while an exported entry point
// that forgets the directory sync is flagged.
var FsyncRename = &Analyzer{
	Name: "fsyncrename",
	Doc:  "os.Rename of a freshly written file needs File.Sync before and a directory sync after, on every path",
	Run:  runFsyncRename,
}

// frFunc is one function's summary: its graph plus the syntactic facts
// the transfer function needs.
type frFunc struct {
	fn    *types.Func
	graph *cfg.Graph
	// openOf maps an os.Create/os.OpenFile/os.WriteFile call to the
	// file identity it (re)writes: the handle variable's object, or the
	// os.WriteFile call itself (which has no handle and never syncs).
	openOf map[*ast.CallExpr]any
	// handles are write handles; dirs are os.Open handles, whose Sync
	// is a directory sync.
	handles map[types.Object]bool
	dirs    map[types.Object]bool
	// fileOfPath maps the path argument's expression text to the file
	// identity, so os.Rename(src, dst) can recognize a fresh file.
	fileOfPath map[string]any
	// forgives maps a return statement inside a `if err := F(...);
	// err != nil` body to F's position: the guarded call failed on that
	// path, so one pending count for it is dropped.
	forgives map[*ast.ReturnStmt][]token.Pos
	// describe renders a pending site for the report (filled in by the
	// transfer function; a given site always renders the same way).
	describe map[token.Pos]string
	// syncsDir marks the syncDir shape (Sync on an os.Open handle).
	syncsDir bool
	// discharged marks a deferred directory sync covering every exit.
	discharged bool
}

// frFact is the dataflow fact; see the Analyzer comment.
type frFact struct {
	synced  map[any]bool
	pending map[token.Pos]int
}

func (f frFact) clone() frFact {
	s := make(map[any]bool, len(f.synced))
	for k, v := range f.synced {
		s[k] = v
	}
	pd := make(map[token.Pos]int, len(f.pending))
	for k, v := range f.pending {
		pd[k] = v
	}
	return frFact{synced: s, pending: pd}
}

func (f frFact) withSynced(id any) frFact  { g := f.clone(); g.synced[id] = true; return g }
func (f frFact) clearSynced(id any) frFact { g := f.clone(); delete(g.synced, id); return g }

// maxPending caps a site's count: "more than once" needs no more
// resolution than two, and the cap keeps the lattice finite.
const maxPending = 2

func (f frFact) withPending(pos token.Pos) frFact {
	g := f.clone()
	if g.pending[pos] < maxPending {
		g.pending[pos]++
	}
	return g
}

func (f frFact) forgiven(positions []token.Pos) frFact {
	g := f.clone()
	for _, pos := range positions {
		if c := g.pending[pos]; c > 1 {
			g.pending[pos] = c - 1
		} else {
			delete(g.pending, pos)
		}
	}
	return g
}

func (f frFact) clearPending() frFact {
	g := f.clone()
	g.pending = map[token.Pos]int{}
	return g
}

type frLattice struct{}

func (frLattice) Entry() frFact {
	return frFact{synced: map[any]bool{}, pending: map[token.Pos]int{}}
}

func (frLattice) Join(a, b frFact) frFact {
	out := frFact{synced: map[any]bool{}, pending: map[token.Pos]int{}}
	for k := range a.synced {
		if b.synced[k] {
			out.synced[k] = true
		}
	}
	for k, v := range a.pending {
		out.pending[k] = v
	}
	for k, v := range b.pending {
		if v > out.pending[k] {
			out.pending[k] = v
		}
	}
	return out
}

func (frLattice) Equal(a, b frFact) bool {
	if len(a.synced) != len(b.synced) || len(a.pending) != len(b.pending) {
		return false
	}
	for k := range a.synced {
		if !b.synced[k] {
			return false
		}
	}
	for k, v := range a.pending {
		if b.pending[k] != v {
			return false
		}
	}
	return true
}

func runFsyncRename(p *Pass) {
	if !packageRenames(p) {
		return
	}
	var fns []*frFunc
	byObj := map[*types.Func]*frFunc{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isTestFile(p.Fset, fd.Pos()) {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := newFrFunc(p, fd, fn)
			fns = append(fns, ff)
			byObj[fn] = ff
		}
	}

	dirSyncer := map[*types.Func]bool{}
	for _, ff := range fns {
		if ff.syncsDir {
			dirSyncer[ff.fn] = true
		}
	}
	for _, ff := range fns {
		ff.discharged = deferredDirSync(p, ff.graph, dirSyncer)
	}
	callers := map[*types.Func]int{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(p.Info, call); fn != nil && byObj[fn] != nil {
					callers[fn]++
				}
			}
			return true
		})
	}

	// Renamer fixpoint: a function whose exit carries pending renames
	// (and has no deferred discharge) pushes the obligation to callers;
	// that can make the callers renamers in turn.
	renamer := map[*types.Func]bool{}
	for pass := 0; pass < len(fns)+2; pass++ {
		changed := false
		for _, ff := range fns {
			res := frForward(p, ff, dirSyncer, renamer)
			val := !ff.discharged && len(frExitPending(res, ff)) > 0
			if val != renamer[ff.fn] {
				renamer[ff.fn] = val
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, ff := range fns {
		res := frForward(p, ff, dirSyncer, renamer)
		// Sync-before violations: replay each reachable block.
		for _, b := range ff.graph.Blocks {
			in, ok := res.At(b)
			if !ok {
				continue
			}
			for _, n := range b.Nodes {
				in = frStep(p, ff, dirSyncer, renamer, n, in, true)
			}
		}
		// Directory-sync obligations at exit.
		if ff.discharged {
			continue
		}
		pend := frExitPending(res, ff)
		if len(pend) == 0 {
			continue
		}
		if !ff.fn.Exported() && callers[ff.fn] > 0 {
			continue // the obligation propagates to the callers
		}
		poss := make([]token.Pos, 0, len(pend))
		for pos := range pend {
			poss = append(poss, pos)
		}
		slices.Sort(poss)
		for _, pos := range poss {
			p.Reportf(pos, "%s can reach return with no directory sync; fsync the parent directory after the rename (a deferred syncDir-style call works) or the entry may be lost on crash", pend[pos])
		}
	}
}

// frExitPending returns the pending sites at the function's exit, with
// their report descriptions, or nil when the exit is unreachable.
func frExitPending(res *flow.Result[frFact], ff *frFunc) map[token.Pos]string {
	exit, ok := res.At(ff.graph.Exit)
	if !ok || len(exit.pending) == 0 {
		return nil
	}
	out := map[token.Pos]string{}
	for pos := range exit.pending {
		out[pos] = ff.describe[pos]
	}
	return out
}

func frForward(p *Pass, ff *frFunc, dirSyncer, renamer map[*types.Func]bool) *flow.Result[frFact] {
	tf := func(b *cfg.Block, in frFact) frFact {
		out := in
		for _, n := range b.Nodes {
			out = frStep(p, ff, dirSyncer, renamer, n, out, false)
		}
		return out
	}
	return flow.Forward(ff.graph, frLattice{}, tf)
}

// frStep is the transfer function for one node, shared between the
// fixpoint (report=false) and the reporting replay (report=true).
func frStep(p *Pass, ff *frFunc, dirSyncer, renamer map[*types.Func]bool, n ast.Node, in frFact, report bool) frFact {
	out := in
	cfg.NodeInspect(n, func(x ast.Node) bool {
		if ret, ok := x.(*ast.ReturnStmt); ok {
			if poss := ff.forgives[ret]; len(poss) > 0 {
				out = out.forgiven(poss)
			}
			return true
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ff.openOf[call]; ok {
			out = out.clearSynced(id) // a (re)write leaves the file dirty
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil &&
			namedPath(sig.Recv().Type()) == "os.File" {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := exprObject(p.Info, sel.X)
			if obj == nil {
				return true
			}
			switch fn.Name() {
			case "Sync":
				if ff.handles[obj] {
					out = out.withSynced(obj)
				}
				if ff.dirs[obj] {
					out = out.clearPending() // directory fsync
				}
			case "Write", "WriteString", "WriteAt", "ReadFrom", "Truncate":
				if ff.handles[obj] {
					out = out.clearSynced(obj)
				}
			}
			return true
		}
		if isPkgFunc(fn, "os", "Rename") && len(call.Args) == 2 {
			src := types.ExprString(call.Args[0])
			id, fresh := ff.fileOfPath[src]
			if !fresh {
				return true // renaming a pre-existing file is out of scope
			}
			if report && !out.synced[id] {
				if _, viaWriteFile := id.(*ast.CallExpr); viaWriteFile {
					p.Reportf(call.Pos(), "os.Rename(%s, %s) commits a file written with os.WriteFile, which never fsyncs; open-write-Sync-close before renaming or the data may be lost on crash", src, types.ExprString(call.Args[1]))
				} else {
					p.Reportf(call.Pos(), "os.Rename(%s, %s) commits a file with no File.Sync on some path to this rename; sync before renaming or the data may be lost on crash", src, types.ExprString(call.Args[1]))
				}
			}
			out = out.withPending(call.Pos())
			ff.describe[call.Pos()] = fmt.Sprintf("os.Rename(%s, %s)", src, types.ExprString(call.Args[1]))
			return true
		}
		switch {
		case dirSyncer[fn]:
			out = out.clearPending()
		case renamer[fn]:
			out = out.withPending(call.Pos())
			ff.describe[call.Pos()] = fmt.Sprintf("call to %s (which renames a freshly written file)", fn.Name())
		}
		return true
	})
	return out
}

// newFrFunc builds one function's syntactic summary.
func newFrFunc(p *Pass, fd *ast.FuncDecl, fn *types.Func) *frFunc {
	ff := &frFunc{
		fn:         fn,
		graph:      cfg.New(fd.Body),
		openOf:     map[*ast.CallExpr]any{},
		handles:    map[types.Object]bool{},
		dirs:       map[types.Object]bool{},
		fileOfPath: map[string]any{},
		forgives:   map[*ast.ReturnStmt][]token.Pos{},
		describe:   map[token.Pos]string{},
	}
	bodyInspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) == 0 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			cfn := calleeFunc(p.Info, call)
			obj := exprObject(p.Info, n.Lhs[0])
			if cfn == nil || obj == nil {
				return true
			}
			switch {
			case isPkgFunc(cfn, "os", "Create") || isPkgFunc(cfn, "os", "OpenFile"):
				ff.handles[obj] = true
				ff.openOf[call] = obj
				if len(call.Args) > 0 {
					ff.fileOfPath[types.ExprString(call.Args[0])] = obj
				}
			case isPkgFunc(cfn, "os", "Open"):
				ff.dirs[obj] = true
			}
		case *ast.CallExpr:
			if cfn := calleeFunc(p.Info, n); isPkgFunc(cfn, "os", "WriteFile") && len(n.Args) > 0 {
				ff.openOf[n] = n
				ff.fileOfPath[types.ExprString(n.Args[0])] = n
			}
		case *ast.IfStmt:
			// The forgiveness pattern: `if err := F(...); err != nil {
			// ... return ... }`. On the error branch F's effect did not
			// happen, so returns inside the body drop one pending count
			// for F's site.
			if n.Init == nil || !isErrNotNil(n.Cond) {
				return true
			}
			assign, ok := n.Init.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			bodyInspect(n.Body, func(m ast.Node) bool {
				if ret, ok := m.(*ast.ReturnStmt); ok {
					ff.forgives[ret] = append(ff.forgives[ret], call.Pos())
				}
				return true
			})
		}
		return true
	})
	// The syncDir shape: a Sync on an os.Open handle.
	bodyInspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sync" {
			return true
		}
		if obj := exprObject(p.Info, sel.X); obj != nil && ff.dirs[obj] {
			ff.syncsDir = true
		}
		return true
	})
	return ff
}

// isErrNotNil matches `x != nil`.
func isErrNotNil(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	return isNilIdent(bin.X) || isNilIdent(bin.Y)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// deferredDirSync reports whether one of the graph's deferred calls is a
// directory sync: a call to a same-package dir-syncing function, or a
// function literal containing one (possibly conditionally — the defer
// runs at every exit, which is the property the check needs).
func deferredDirSync(p *Pass, g *cfg.Graph, dirSyncer map[*types.Func]bool) bool {
	for _, call := range g.Defers {
		if fn := calleeFunc(p.Info, call); fn != nil && dirSyncer[fn] {
			return true
		}
		lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(p.Info, c); fn != nil && dirSyncer[fn] {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// packageRenames reports whether any file calls os.Rename — the cheap
// gate that keeps the whole analysis off packages that never touch the
// persistence path.
func packageRenames(p *Pass) bool {
	for _, f := range p.Files {
		renames := false
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if isPkgFunc(calleeFunc(p.Info, call), "os", "Rename") {
					renames = true
					return false
				}
			}
			return !renames
		})
		if renames {
			return true
		}
	}
	return false
}
