package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's bit-identity contract: every table,
// figure and model snapshot must be a pure function of its seed. Two
// sources of hidden nondeterminism are banned in library code:
//
//   - time.Now / time.Since calls outside cmd/ and examples/ (the
//     binaries own the wall clock; libraries take an injected
//     `func() time.Time` — referencing time.Now as a default value is
//     fine, calling it is not);
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Seed,
//     rand.Shuffle, ...) anywhere — randomness flows through seeded
//     rand.New(rand.NewSource(seed)) instances, which the check allows.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock reads in library code, no unseeded global math/rand anywhere",
	Run:  runDeterminism,
}

// globalRandFuncs are the math/rand package-level functions that consume
// the shared global source. rand.New / rand.NewSource / rand.NewZipf are
// the seeded constructors and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// clockExempt reports whether the package may read the wall clock
// directly: binaries (cmd/, examples/) time their own runs, and test
// files measure around the code under test.
func clockExempt(relDir string) bool {
	return relDir == "cmd" || strings.HasPrefix(relDir, "cmd/") ||
		relDir == "examples" || strings.HasPrefix(relDir, "examples/")
}

func runDeterminism(p *Pass) {
	exemptClock := clockExempt(p.RelDir)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if exemptClock || isTestFile(p.Fset, call.Pos()) {
					return true
				}
				if fn.Name() == "Now" || fn.Name() == "Since" {
					p.Reportf(call.Pos(),
						"time.%s read in library code breaks snapshot reproducibility; inject a clock (func() time.Time field defaulting to time.Now)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Methods on a seeded *rand.Rand share the package path and
				// names (r.Intn, ...); only package-level calls hit the
				// global source, so methods are filtered by receiver.
				if globalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
					p.Reportf(call.Pos(),
						"rand.%s uses the global math/rand source; draw from a seeded rand.New(rand.NewSource(seed)) instead",
						fn.Name())
				}
			}
			return true
		})
	}
}
