package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"scouts/internal/lint/cfg"
)

// buildFunc parses src as a file, finds the function named fn and builds
// its graph.
func buildFunc(t *testing.T, src, fn string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return cfg.New(fd.Body)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// markBlock returns the reachable block containing the call mark<n>(),
// or nil. Marks let tests pin statements without position bookkeeping.
func markBlock(g *cfg.Graph, name string) *cfg.Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			cfg.NodeInspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	return nil
}

// canReach reports whether to is reachable from from along Succs.
func canReach(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	stack := []*cfg.Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

const header = "package p\nfunc mark1(){}\nfunc mark2(){}\nfunc mark3(){}\nfunc mark4(){}\n"

func TestIfJoin(t *testing.T) {
	g := buildFunc(t, header+`
func f(c bool) {
	if c {
		mark1()
	} else {
		mark2()
	}
	mark3()
}`, "f")
	m1, m2, m3 := markBlock(g, "mark1"), markBlock(g, "mark2"), markBlock(g, "mark3")
	if m1 == nil || m2 == nil || m3 == nil {
		t.Fatalf("marks not all placed:\n%s", g)
	}
	if m1 == m2 {
		t.Fatalf("then and else share a block:\n%s", g)
	}
	if !canReach(m1, m3) || !canReach(m2, m3) {
		t.Fatalf("branches do not rejoin:\n%s", g)
	}
	if canReach(m1, m2) || canReach(m2, m1) {
		t.Fatalf("branches reach each other:\n%s", g)
	}
	r := g.Reachable()
	if !r[m1] || !r[m2] || !r[m3] {
		t.Fatalf("branch blocks unreachable from entry:\n%s", g)
	}
}

func TestForLoop(t *testing.T) {
	g := buildFunc(t, header+`
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		if i == 3 {
			break
		}
		mark1()
	}
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	if m1 == nil || m2 == nil {
		t.Fatalf("marks missing:\n%s", g)
	}
	if !canReach(m1, m1) {
		t.Fatalf("loop body has no back edge to itself:\n%s", g)
	}
	if !canReach(m1, m2) {
		t.Fatalf("loop does not reach its exit:\n%s", g)
	}
	if !g.Reachable()[m2] {
		t.Fatalf("loop exit unreachable:\n%s", g)
	}
}

func TestInfiniteLoopTail(t *testing.T) {
	g := buildFunc(t, header+`
func f() {
	for {
		mark1()
	}
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	r := g.Reachable()
	if !r[m1] {
		t.Fatalf("loop body unreachable:\n%s", g)
	}
	if r[m2] {
		t.Fatalf("statement after for{} should be unreachable:\n%s", g)
	}
	if r[g.Exit] {
		t.Fatalf("exit reachable despite infinite loop:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, header+`
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				break outer
			}
			mark1()
		}
	}
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	if m1 == nil || m2 == nil {
		t.Fatalf("marks missing:\n%s", g)
	}
	if !canReach(m1, m2) {
		t.Fatalf("labeled break does not reach loop exit:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, header+`
func f(x int) {
	switch x {
	case 1:
		mark1()
		fallthrough
	case 2:
		mark2()
	default:
		mark3()
	}
	mark4()
}`, "f")
	m1, m2, m3, m4 := markBlock(g, "mark1"), markBlock(g, "mark2"), markBlock(g, "mark3"), markBlock(g, "mark4")
	if m1 == nil || m2 == nil || m3 == nil || m4 == nil {
		t.Fatalf("marks missing:\n%s", g)
	}
	if !canReach(m1, m2) {
		t.Fatalf("fallthrough edge missing:\n%s", g)
	}
	if canReach(m2, m3) || canReach(m3, m2) {
		t.Fatalf("cases leak into each other:\n%s", g)
	}
	for _, m := range []*cfg.Block{m1, m2, m3} {
		if !canReach(m, m4) {
			t.Fatalf("case does not rejoin:\n%s", g)
		}
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildFunc(t, header+`
func f(x int) {
	switch x {
	case 1:
		return
	}
	mark1()
}`, "f")
	m1 := markBlock(g, "mark1")
	if m1 == nil || !g.Reachable()[m1] {
		t.Fatalf("no-default switch must flow to the join:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, header+`
func f(a, b chan int) {
	select {
	case <-a:
		mark1()
	case b <- 1:
		mark2()
	}
	mark3()
}`, "f")
	m1, m2, m3 := markBlock(g, "mark1"), markBlock(g, "mark2"), markBlock(g, "mark3")
	if m1 == nil || m2 == nil || m3 == nil {
		t.Fatalf("marks missing:\n%s", g)
	}
	if m1 == m2 {
		t.Fatalf("select cases share a block:\n%s", g)
	}
	if !canReach(m1, m3) || !canReach(m2, m3) {
		t.Fatalf("select cases do not rejoin:\n%s", g)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := buildFunc(t, header+`
func f() {
	select {}
	mark1()
}`, "f")
	if m1 := markBlock(g, "mark1"); m1 != nil && g.Reachable()[m1] {
		t.Fatalf("statement after select{} should be unreachable:\n%s", g)
	}
}

func TestReturnAndPanicTerminate(t *testing.T) {
	g := buildFunc(t, header+`
func f(c bool) {
	if c {
		mark1()
		return
	}
	panic("boom")
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	r := g.Reachable()
	if !r[m1] {
		t.Fatalf("then branch unreachable:\n%s", g)
	}
	if m2 != nil && r[m2] {
		t.Fatalf("code after panic should be unreachable:\n%s", g)
	}
	if !canReach(m1, g.Exit) {
		t.Fatalf("return does not reach exit:\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := buildFunc(t, header+`
func f(c bool) {
	if c {
		goto done
	}
	mark1()
done:
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	r := g.Reachable()
	if !r[m1] || !r[m2] {
		t.Fatalf("goto paths unreachable:\n%s", g)
	}
	if !canReach(m1, m2) {
		t.Fatalf("fallthrough into label missing:\n%s", g)
	}
}

func TestGotoBackward(t *testing.T) {
	g := buildFunc(t, header+`
func f(c bool) {
again:
	mark1()
	if c {
		goto again
	}
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	if !canReach(m1, m1) {
		t.Fatalf("backward goto has no cycle:\n%s", g)
	}
	if !canReach(m1, m2) {
		t.Fatalf("loop exit unreachable:\n%s", g)
	}
}

func TestDefersCollected(t *testing.T) {
	g := buildFunc(t, header+`
func f(c bool) {
	defer mark1()
	if c {
		defer mark2()
	}
}`, "f")
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2:\n%s", len(g.Defers), g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, header+`
func f(xs []int) {
	for _, x := range xs {
		_ = x
		mark1()
	}
	mark2()
}`, "f")
	m1, m2 := markBlock(g, "mark1"), markBlock(g, "mark2")
	if m1 == nil || m2 == nil {
		t.Fatalf("marks missing:\n%s", g)
	}
	if !canReach(m1, m1) || !canReach(m1, m2) {
		t.Fatalf("range loop edges wrong:\n%s", g)
	}
	// A range loop may run zero times: exit must be reachable without
	// passing the body.
	seen := map[*cfg.Block]bool{m1: true} // forbid the body
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == m2 {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	if !walk(g.Entry) {
		t.Fatalf("range exit requires passing the body:\n%s", g)
	}
}

func TestNilBody(t *testing.T) {
	g := cfg.New(nil)
	if !g.Reachable()[g.Exit] {
		t.Fatal("empty body must reach exit")
	}
}

func TestStringRenders(t *testing.T) {
	g := buildFunc(t, header+`
func f(c bool) {
	if c {
		mark1()
	}
}`, "f")
	s := g.String()
	if !strings.Contains(s, "entry") || !strings.Contains(s, "exit") {
		t.Fatalf("String() missing entry/exit: %s", s)
	}
}
