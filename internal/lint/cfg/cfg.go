// Package cfg builds per-function control-flow graphs over go/ast for
// the flow-sensitive scoutlint analyzers. The graph is deliberately
// small: basic blocks hold the function's statements and the control
// expressions that gate them, in source order, and edges model every way
// control can move between them — if/else, for and range loops (with
// break/continue, labeled or not), switch and type switch (with
// fallthrough), select, goto, return, and calls that provably never
// return (panic, os.Exit, runtime.Goexit, log.Fatal*).
//
// Only the standard library is used; this is NOT x/tools/go/cfg, though
// the shape is intentionally similar so analyses written against it read
// familiarly. Function literals nested inside a body are not descended
// into — each literal gets its own graph, built by the caller — because
// a literal's body runs at some other time (or never), not as part of
// the enclosing function's control flow.
//
// Deferred calls are collected into Graph.Defers rather than threaded as
// edges: a defer runs at every function exit, so analyses that care
// (fsyncrename's directory-sync obligation, for example) consult the
// defer list when they reach Exit instead of modeling the stack.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal run of nodes with no internal
// control transfer. Nodes holds statements and gating expressions (an
// if's Cond, a switch's Tag) in execution order. Succs are the blocks
// control may reach next; a block with no successors either returns,
// panics, or ends an infinite loop's unreachable tail.
type Block struct {
	// Index is the block's position in Graph.Blocks; stable and
	// deterministic for a given function, so analyses can use it for
	// ordered worklists.
	Index int
	// Nodes are the block's statements and control expressions in order.
	Nodes []ast.Node
	// Succs are the possible successors in the order their syntax
	// appears (then before else, case order, loop body before exit).
	Succs []*Block
	// kind labels the block for String(); purely cosmetic.
	kind string
}

// Graph is one function body's control-flow graph.
type Graph struct {
	// Entry is where control enters; it is always Blocks[0].
	Entry *Block
	// Exit is the single synthetic exit block every return and
	// fall-off-the-end path reaches. It holds no nodes.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last, the rest in
	// construction (source) order.
	Blocks []*Block
	// Defers are the deferred calls seen anywhere in the body, in source
	// order. They run — in reverse order — at every path to Exit.
	Defers []*ast.CallExpr
}

// builder carries the construction state.
type builder struct {
	g *Graph
	// cur is the block new nodes land in; nil while control is
	// unreachable (after a return/goto/panic) until a label or join
	// starts a new block.
	cur *Block
	// breakTo / continueTo map loop & switch/select statements to their
	// break and continue targets; labels maps label names to their
	// blocks for goto, and labeled loops for labeled break/continue.
	breakTo    map[ast.Stmt]*Block
	continueTo map[ast.Stmt]*Block
	labels     map[string]*Block
	// labelStmt maps a label name to the statement it labels, so
	// labeled break/continue can find the loop's break/continue target.
	labelStmt map[string]ast.Stmt
	// gotos are forward gotos resolved after the walk.
	gotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

// New builds the graph of one function body. A nil body (a declaration
// without a definition) yields a graph whose entry connects straight to
// exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{
		g:          g,
		breakTo:    map[ast.Stmt]*Block{},
		continueTo: map[ast.Stmt]*Block{},
		labels:     map[string]*Block{},
		labelStmt:  map[string]ast.Stmt{},
	}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{kind: "exit"} // indexed last, after the walk
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jumpTo(g.Exit) // falling off the end returns
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			pg.from.Succs = append(pg.from.Succs, target)
		}
		// An unresolved goto label is a type error the driver already
		// rejected; nothing to do here.
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends a node to the current block; a nil current block means the
// node is unreachable, and it is parked in a fresh successor-less block
// so analyses still see (and can choose to ignore) it.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
		// No edges in: the block stays unreachable from Entry, which is
		// exactly what reachability-aware analyses test for.
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jumpTo ends the current block with an edge to target.
func (b *builder) jumpTo(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// startBlock begins a new current block and returns it.
func (b *builder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	b.cur = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement into blocks and edges.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock("if.join")
		// Then branch.
		thenBlk := b.startBlock("if.then")
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.stmtList(s.Body.List)
		b.jumpTo(join)
		// Else branch (or straight to join).
		if s.Else != nil {
			elseBlk := b.startBlock("if.else")
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.stmt(s.Else)
			b.jumpTo(join)
		} else {
			condBlk.Succs = append(condBlk.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.jumpTo(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.newBlock("for.exit")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.breakTo[s] = exit
		b.continueTo[s] = post
		body := b.startBlock("for.body")
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, exit) // cond false
		}
		b.stmtList(s.Body.List)
		b.jumpTo(post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.jumpTo(head)
		}
		delete(b.breakTo, s)
		delete(b.continueTo, s)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.jumpTo(head)
		b.cur = head
		b.add(s) // the range clause itself: X evaluation + per-iteration assign
		exit := b.newBlock("range.exit")
		b.breakTo[s] = exit
		b.continueTo[s] = head
		body := b.startBlock("range.body")
		head.Succs = append(head.Succs, body, exit)
		b.stmtList(s.Body.List)
		b.jumpTo(head)
		delete(b.breakTo, s)
		delete(b.continueTo, s)
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchStmt(s, s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s, s.Init, nil, s.Body)
		// The assign clause (x := y.(type)) is part of every case's
		// context; it was added by switchStmt via the extra node hook.

	case *ast.SelectStmt:
		join := b.newBlock("select.join")
		b.breakTo[s] = join
		selBlk := b.cur
		if selBlk == nil {
			selBlk = b.startBlock("select")
		}
		b.add(s) // the select itself gates all branches
		selBlk = b.cur
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			branch := b.startBlock("select.case")
			selBlk.Succs = append(selBlk.Succs, branch)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jumpTo(join)
		}
		if len(s.Body.List) == 0 {
			// select {} blocks forever: no edge to join.
			b.cur = nil
		}
		delete(b.breakTo, s)
		b.cur = join

	case *ast.LabeledStmt:
		target := b.newBlock("label." + s.Label.Name)
		b.labels[s.Label.Name] = target
		b.labelStmt[s.Label.Name] = s.Stmt
		b.jumpTo(target)
		b.cur = target
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.g.Exit)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s.Call)
		b.add(s)

	case *ast.GoStmt:
		// The goroutine's body is a separate graph; the go statement
		// itself is a plain node here.
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if callNeverReturns(s.X) {
			b.cur = nil // no successors, not even Exit
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Send, Decl, ... — straight-line statements.
		b.add(s)
	}
}

// switchStmt builds expression and type switches: each case is a branch
// off the tag block, fallthrough chains a case into the next one's body,
// and a missing default adds a tag→join edge.
func (b *builder) switchStmt(s ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if ts, ok := s.(*ast.TypeSwitchStmt); ok {
		b.add(ts.Assign)
	}
	tagBlk := b.cur
	if tagBlk == nil {
		tagBlk = b.startBlock("switch")
	}
	join := b.newBlock("switch.join")
	b.breakTo[s] = join
	hasDefault := false
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("switch.case")
		tagBlk.Succs = append(tagBlk.Succs, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(caseBlocks) {
			b.jumpTo(caseBlocks[i+1])
		} else {
			b.jumpTo(join)
		}
	}
	if !hasDefault {
		tagBlk.Succs = append(tagBlk.Succs, join)
	}
	delete(b.breakTo, s)
	b.cur = join
}

// branchStmt handles break/continue/goto/fallthrough. Fallthrough is
// handled inside switchStmt; one reaching here is outside a case body
// (a parse error) and is ignored.
func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		target := b.nearestBreak(s.Label)
		if target != nil {
			b.jumpTo(target)
		} else {
			b.cur = nil
		}
	case token.CONTINUE:
		target := b.nearestContinue(s.Label)
		if target != nil {
			b.jumpTo(target)
		} else {
			b.cur = nil
		}
	case token.GOTO:
		if s.Label != nil {
			if target, ok := b.labels[s.Label.Name]; ok {
				b.jumpTo(target)
			} else {
				// Forward goto: resolve after the walk.
				from := b.cur
				if from == nil {
					from = b.startBlock("goto")
				}
				b.gotos = append(b.gotos, pendingGoto{from: from, label: s.Label.Name})
				b.cur = nil
			}
		}
	}
}

// nearestBreak finds the break target: the innermost enclosing loop,
// switch or select (maps hold only currently-open statements), or the
// labeled statement's target.
func (b *builder) nearestBreak(label *ast.Ident) *Block {
	if label != nil {
		if st, ok := b.labelStmt[label.Name]; ok {
			return b.breakTo[st]
		}
		return nil
	}
	return lastOpen(b.breakTo)
}

func (b *builder) nearestContinue(label *ast.Ident) *Block {
	if label != nil {
		if st, ok := b.labelStmt[label.Name]; ok {
			return b.continueTo[st]
		}
		return nil
	}
	return lastOpen(b.continueTo)
}

// lastOpen picks the innermost open statement's target. Map iteration
// order is fine here only because we pick by maximal statement position:
// the innermost open construct starts last in the source.
func lastOpen(m map[ast.Stmt]*Block) *Block {
	var best ast.Stmt
	for st := range m {
		if best == nil || st.Pos() > best.Pos() {
			best = st
		}
	}
	if best == nil {
		return nil
	}
	return m[best]
}

// callNeverReturns recognizes the syntactic forms of calls that
// terminate the goroutine or process: panic(...), os.Exit, log.Fatal*,
// runtime.Goexit. Purely syntactic (no type info is available here);
// a shadowed `panic` would be misread, and nobody shadows panic.
func callNeverReturns(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit":
			return true
		}
		return pkg.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal")
	}
	return false
}

// NodeInspect walks one block node the way ast.Inspect does, except it
// does not descend into regions whose statements live in other blocks or
// run at another time: a RangeStmt's body, a SelectStmt's clauses, and
// every function literal's body. Analyzers iterating Block.Nodes must
// use this instead of ast.Inspect, or they would attribute a nested
// block's statements to the wrong block (and a goroutine's statements to
// its creator).
func NodeInspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			f(x) // visible, not entered
			return false
		case *ast.RangeStmt:
			if !f(x) {
				return false
			}
			// Walk the clause (key, value, X) but not the body.
			if x.Key != nil {
				NodeInspect(x.Key, f)
			}
			if x.Value != nil {
				NodeInspect(x.Value, f)
			}
			NodeInspect(x.X, f)
			return false
		case *ast.SelectStmt:
			f(x) // visible; clauses live in their branch blocks
			return false
		case nil:
			return true
		}
		return f(x)
	})
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// String renders the graph for tests and debugging: one line per block,
// "i(kind) -> succs: nodes".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s) ->", blk.Index, blk.kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		if len(blk.Nodes) > 0 {
			fmt.Fprintf(&sb, " [%d nodes]", len(blk.Nodes))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
