package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"scouts/internal/lint/cfg"
)

// Leak flags goroutines that can block forever on a channel operation
// with no way out. A `go` statement's body (a function literal, or a
// same-package function the statement launches) is checked over its CFG:
// on every path reachable from the body's entry,
//
//   - a send outside a select must target a provably buffered channel;
//   - a receive outside a select must come from a source that
//     terminates by design — ctx.Done(), time.After, a ticker/timer's C,
//     or a chan struct{} close-signal — anything else can wait forever;
//   - a range over a channel is flagged: it leaks unless the producer
//     is guaranteed to close the channel, which a static check cannot
//     see (document real close discipline with //scout:allow);
//   - a select must offer an escape: a default, a ctx.Done()/chan
//     struct{}/time.After case, or a ticker/timer receive.
//
// Unreachable blocks (code after an unconditional return, an infinite
// loop's tail) are skipped — only ops a real execution can reach count.
var Leak = &Analyzer{
	Name: "leak",
	Doc:  "a goroutine must not block forever on a channel op with no select/done/ctx escape",
	Run:  runLeak,
}

func runLeak(p *Pass) {
	decls := packageFuncDecls(p)
	seen := map[*ast.BlockStmt]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok || isTestFile(p.Fset, gs.Pos()) {
				return true
			}
			var body *ast.BlockStmt
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				body = lit.Body
			} else if fd := declOf(p, decls, gs.Call.Fun); fd != nil {
				body = fd.Body
			}
			if body != nil && !seen[body] {
				seen[body] = true
				checkGoBody(p, body)
			}
			return true
		})
	}
}

func checkGoBody(p *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	reach := g.Reachable()
	comms := selectComms(body)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if st, ok := n.(ast.Stmt); ok && comms[st] {
				continue // gated by its select
			}
			leakCheckNode(p, n, comms)
		}
	}
}

func leakCheckNode(p *Pass, n ast.Node, comms map[ast.Stmt]bool) {
	cfg.NodeInspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SendStmt:
			if !bufferedChan(p, x.Chan) {
				p.Reportf(x.Pos(), "goroutine sends on unbuffered channel %s outside a select; if the receiver is gone it blocks forever — add a select with a done/ctx case or buffer the channel", types.ExprString(x.Chan))
			}
		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			if !terminatingRecvSource(p.Info, x.X) {
				p.Reportf(x.Pos(), "goroutine receives on channel %s outside a select; if the sender is gone it blocks forever — add a select with a done/ctx case", types.ExprString(x.X))
			}
			return false
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					p.Reportf(x.Pos(), "goroutine ranges over channel %s; it leaks unless the producer always closes the channel — prefer a select with a done/ctx case", types.ExprString(x.X))
				}
			}
		case *ast.SelectStmt:
			if !selectHasEscape(p.Info, x) {
				p.Reportf(x.Pos(), "select in goroutine has no default or done/ctx escape case; every case can block forever")
			}
		}
		return true
	})
}

// selectHasEscape reports whether a select can always make progress or
// be released: a default case, or a receive from a terminating source.
func selectHasEscape(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true
		}
		if u := commRecv(cc.Comm); u != nil && terminatingRecvSource(info, u.X) {
			return true
		}
	}
	return false
}

// terminatingRecvSource reports whether receiving from ch is bounded by
// design: ctx.Done() (released by cancellation), time.After (fires
// once), a time.Ticker/Timer channel (fires periodically), or a chan
// struct{} (the close-to-signal idiom — closing releases all readers).
func terminatingRecvSource(info *types.Info, ch ast.Expr) bool {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		if isCtxDoneCall(info, call) {
			return true
		}
		fn := calleeFunc(info, call)
		if isPkgFunc(fn, "time", "After") || isPkgFunc(fn, "time", "Tick") {
			return true
		}
	}
	if sel, ok := ch.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
		switch namedPath(info.TypeOf(sel.X)) {
		case "time.Ticker", "time.Timer":
			return true
		}
	}
	if t := info.TypeOf(ch); t != nil {
		if c, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := c.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// bufferedChan reports whether the channel expression is provably
// buffered: a make(chan T, n) in place, or a variable/field whose every
// visible definition in the package is a buffered make.
func bufferedChan(p *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		return makeBuffered(p.Info, call)
	}
	target := exprObject(p.Info, e)
	if target == nil {
		return false
	}
	buffered := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if exprObject(p.Info, lhs) == target && makeBufferedExpr(p.Info, n.Rhs[i]) {
						buffered = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && objectOf(p.Info, name) == target && makeBufferedExpr(p.Info, n.Values[i]) {
						buffered = true
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok && p.Info.Uses[id] == target && makeBufferedExpr(p.Info, n.Value) {
					buffered = true
				}
			}
			return true
		})
	}
	return buffered
}

func makeBufferedExpr(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && makeBuffered(info, call)
}

// makeBuffered reports whether the call is make(chan T, n). Any size
// expression counts — even a variable one, since a zero buffer is
// something nobody writes as make(chan T, n) on purpose.
func makeBuffered(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltin(info, call, "make") && len(call.Args) == 2
}
