package lint

import (
	"go/ast"
	"go/types"
)

// SortSlice bans the reflection-based sorters. PR 2 measured the
// concrete slices kernels (slices.Sort / SortFunc / SortStableFunc)
// beating sort.Slice's interface-and-reflect dispatch on every hot and
// startup path, and migrated the tree; this check keeps new code from
// regressing to the reflective forms. The one deliberate exception —
// the frozen reference split kernel, whose tie ordering golden tests
// pin — carries a //scout:allow.
var SortSlice = &Analyzer{
	Name: "sortslice",
	Doc:  "use the concrete slices.Sort* kernels, not reflection-based sort.Slice/sort.Sort",
	Run:  runSortSlice,
}

// reflectiveSorters are the sort-package entry points that dispatch
// through reflection (Slice*) or an interface vtable (Sort/Stable).
// The concrete helpers (sort.Ints, sort.SearchFloat64s, ...) are fine.
var reflectiveSorters = map[string]string{
	"Slice":         "slices.SortFunc",
	"SliceStable":   "slices.SortStableFunc",
	"SliceIsSorted": "slices.IsSortedFunc",
	"Sort":          "slices.SortFunc",
	"Stable":        "slices.SortStableFunc",
}

func runSortSlice(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if repl, bad := reflectiveSorters[fn.Name()]; bad {
				p.Reportf(call.Pos(), "sort.%s sorts through reflection; use %s", fn.Name(), repl)
			}
			return true
		})
	}
}
