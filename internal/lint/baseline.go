package lint

// Findings baseline: the ratchet that lets new analyzers land with
// grandfathered findings tracked instead of fixed-or-suppressed in the
// same change. A baseline entry keys a finding by (file, check, message)
// and deliberately drops line/column, so unrelated edits that shift code
// around do not churn the file or un-grandfather anything; a finding
// whose message embeds its own position (atomicity does this) still
// re-keys when the underlying code moves, which is the desired ratchet
// pressure. `make ci` diffs the current run against the committed
// lint.baseline.json and fails on any finding not present there.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"strings"
)

// BaselineEntry is one grandfathered finding.
type BaselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (e BaselineEntry) compare(o BaselineEntry) int {
	if c := strings.Compare(e.File, o.File); c != 0 {
		return c
	}
	if c := strings.Compare(e.Check, o.Check); c != 0 {
		return c
	}
	return strings.Compare(e.Message, o.Message)
}

// Baseline is the committed document: a version marker plus the sorted,
// deduplicated entry list.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// NewBaseline builds a baseline from a finding set: entries sorted and
// deduplicated, file paths normalized to slashes by the caller (the CLI
// relativizes against the lint root first).
func NewBaseline(diags []Diagnostic) *Baseline {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, BaselineEntry{File: d.File, Check: d.Check, Message: d.Message})
	}
	slices.SortFunc(entries, BaselineEntry.compare)
	entries = slices.CompactFunc(entries, func(a, b BaselineEntry) bool { return a == b })
	return &Baseline{Version: 1, Findings: entries}
}

// Marshal renders the baseline deterministically (sorted entries, fixed
// key order, trailing newline) so the file is committable and diffable.
func (b *Baseline) Marshal() ([]byte, error) {
	cp := *b
	if cp.Findings == nil {
		cp.Findings = []BaselineEntry{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(&cp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadBaseline reads a baseline file written by Marshal.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Filter splits the findings into new (not in the baseline) and
// grandfathered. Matching is set-based on (file, check, message): once a
// key is grandfathered, any number of same-keyed findings stay silent —
// the alternative (multiset counts) would re-fail CI when a grandfathered
// pattern is copy-pasted, which the per-line suppression directive
// already polices better.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, grandfathered []Diagnostic) {
	known := make(map[BaselineEntry]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[e] = true
	}
	for _, d := range diags {
		if known[BaselineEntry{File: d.File, Check: d.Check, Message: d.Message}] {
			grandfathered = append(grandfathered, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, grandfathered
}
