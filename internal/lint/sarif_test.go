package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	d := []Diagnostic{
		{File: "internal/serving/diskstore.go", Line: 90, Col: 2, Check: "fsyncrename", Message: "rename with no File.Sync on some path"},
		{File: "cmd/scoutd/main.go", Line: 10, Col: 5, Check: "ctxflow", Message: "time.Sleep blocks with no prior ctx check"},
	}
	sortDiagnostics(d)
	return d
}

func TestSARIFDeterministic(t *testing.T) {
	diags := sampleDiags()
	a, err := SARIF(diags, All())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SARIF(diags, All())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two SARIF renders of the same findings differ:\n%s\n----\n%s", a, b)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Fatalf("SARIF output should end in a newline")
	}
}

func TestSARIFShape(t *testing.T) {
	doc, err := SARIF(sampleDiags(), All())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(doc, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("version/schema = %q / %q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "scoutlint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Fatalf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(All()))
	}
	for i := 1; i < len(run.Tool.Driver.Rules); i++ {
		if run.Tool.Driver.Rules[i-1].ID >= run.Tool.Driver.Rules[i].ID {
			t.Fatalf("rules not sorted: %q before %q", run.Tool.Driver.Rules[i-1].ID, run.Tool.Driver.Rules[i].ID)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	// sortDiagnostics orders by file, so cmd/scoutd comes first.
	first := run.Results[0]
	if first.RuleID != "ctxflow" || first.Level != "warning" {
		t.Fatalf("first result = %q/%q", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "cmd/scoutd/main.go" || loc.Region.StartLine != 10 || loc.Region.StartColumn != 5 {
		t.Fatalf("first location = %+v", loc)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := sampleDiags()
	// Duplicate a finding: the baseline is a set, so it dedups.
	b := NewBaseline(append(diags, diags[0]))
	if len(b.Findings) != 2 {
		t.Fatalf("baseline entries = %d, want 2 (deduplicated)", len(b.Findings))
	}
	doc, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 2 || got.Version != 1 {
		t.Fatalf("round trip = %+v", got)
	}

	fresh, old := got.Filter(append(diags, Diagnostic{
		File: "internal/core/new.go", Line: 3, Col: 1, Check: "leak", Message: "goroutine sends on unbuffered channel ch outside a select",
	}))
	if len(old) != 2 {
		t.Fatalf("grandfathered = %d, want 2", len(old))
	}
	if len(fresh) != 1 || fresh[0].Check != "leak" {
		t.Fatalf("fresh = %+v, want the one leak finding", fresh)
	}
}

func TestBaselineIgnoresLine(t *testing.T) {
	d := sampleDiags()[0]
	base := NewBaseline([]Diagnostic{d})
	moved := d
	moved.Line += 40 // the finding shifted; same file, check, message
	fresh, old := base.Filter([]Diagnostic{moved})
	if len(fresh) != 0 || len(old) != 1 {
		t.Fatalf("a line-shifted finding should stay grandfathered; fresh=%v old=%v", fresh, old)
	}
}

func TestBaselineEmptyMarshal(t *testing.T) {
	doc, err := NewBaseline(nil).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"version\": 1,\n  \"findings\": []\n}\n"
	if string(doc) != want {
		t.Fatalf("empty baseline = %q, want %q", doc, want)
	}
}
