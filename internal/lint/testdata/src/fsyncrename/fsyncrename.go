// Package fsyncrename exercises the fsyncrename analyzer: os.Rename of
// a freshly written file needs File.Sync before it and a directory sync
// after it, on every path.
package fsyncrename

import (
	"os"
	"path/filepath"
)

// syncDir is the directory-sync shape the analyzer recognizes: Sync on
// an os.Open handle.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveGood does everything right: write, sync, close, rename, dir sync.
func SaveGood(dir string, data []byte) error {
	tmp := filepath.Join(dir, "good.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "good")); err != nil {
		return err
	}
	return syncDir(dir)
}

// SaveNoSync renames a file that was never fsynced.
func SaveNoSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "nosync.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := os.Rename(tmp, filepath.Join(dir, "nosync")); err != nil { // want "no File.Sync on some path"
		return err
	}
	return syncDir(dir)
}

// SyncOneArm syncs on one branch only; the other path reaches the
// rename dirty.
func SyncOneArm(dir string, data []byte, extra bool) error {
	tmp := filepath.Join(dir, "onearm.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if extra {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	f.Close()
	if err := os.Rename(tmp, filepath.Join(dir, "onearm")); err != nil { // want "no File.Sync on some path"
		return err
	}
	return syncDir(dir)
}

// SaveNoDirSync syncs the file but forgets the directory.
func SaveNoDirSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "nodir.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "nodir")) // want "no directory sync"
}

// SaveDeferred discharges the directory sync with a defer, which runs
// at every exit.
func SaveDeferred(dir string, data []byte) (err error) {
	defer func() {
		if serr := syncDir(dir); err == nil {
			err = serr
		}
	}()
	tmp := filepath.Join(dir, "deferred.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "deferred"))
}

// SaveWriteFile commits bytes that os.WriteFile never fsyncs.
func SaveWriteFile(dir string, data []byte) error {
	tmp := filepath.Join(dir, "wf.tmp")
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "wf")); err != nil { // want "os.WriteFile, which never fsyncs"
		return err
	}
	return syncDir(dir)
}

// replaceFile is a renamer: the obligation to sync the directory
// propagates to its callers rather than being reported here.
func replaceFile(tmp, dst string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// CallerGood discharges the helper's obligation on every path: the
// error return means the rename did not commit.
func CallerGood(dir string, data []byte) error {
	if err := replaceFile(filepath.Join(dir, "cg.tmp"), filepath.Join(dir, "cg"), data); err != nil {
		return err
	}
	return syncDir(dir)
}

// CallerBad forgets the directory sync entirely.
func CallerBad(dir string, data []byte) error {
	return replaceFile(filepath.Join(dir, "cb.tmp"), filepath.Join(dir, "cb"), data) // want "renames a freshly written file"
}

// LoopThenFail: the second iteration's error return abandons the first
// iteration's committed rename with no directory sync.
func LoopThenFail(dir string, blobs [][]byte) error {
	for i, b := range blobs {
		if err := replaceFile( // want "renames a freshly written file"
			filepath.Join(dir, "part.tmp"),
			filepath.Join(dir, "part"),
			b,
		); err != nil {
			return err
		}
		_ = i
	}
	return nil
}

// MoveExisting renames a file it did not write: out of scope.
func MoveExisting(src, dst string) error {
	return os.Rename(src, dst)
}
