// Package leak exercises the leak analyzer: goroutines that can block
// forever on a channel operation with no select/done/ctx escape.
package leak

import (
	"context"
	"time"
)

// SpawnSendNoEscape leaks when the receiver is gone.
func SpawnSendNoEscape(ch chan int) {
	go func() {
		ch <- 1 // want "sends on unbuffered channel ch outside a select"
	}()
}

// SpawnSendBuffered cannot block: the buffer absorbs the send.
func SpawnSendBuffered() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	_ = ch
}

// SpawnSendSelect escapes through ctx.Done.
func SpawnSendSelect(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// SpawnRecvNoEscape leaks when the sender is gone.
func SpawnRecvNoEscape(ch chan int) {
	go func() {
		<-ch // want "receives on channel ch outside a select"
	}()
}

// SpawnRecvDone waits on a close-to-signal channel; closing releases it.
func SpawnRecvDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

// SpawnRecvTimer waits on a source that fires by design.
func SpawnRecvTimer() {
	go func() {
		<-time.After(time.Millisecond)
	}()
}

// SpawnRange leaks unless the producer always closes the channel.
func SpawnRange(ch chan int) {
	go func() {
		for v := range ch { // want "ranges over channel ch"
			_ = v
		}
	}()
}

// SpawnSelectNoEscape: every case can block forever.
func SpawnSelectNoEscape(a, b chan int) {
	go func() {
		select { // want "select in goroutine has no default or done/ctx escape"
		case <-a:
		case <-b:
		}
	}()
}

// SpawnSelectTicker: a ticker case keeps the goroutine live by design.
func SpawnSelectTicker(work chan int, t *time.Ticker) {
	go func() {
		select {
		case <-work:
		case <-t.C:
		}
	}()
}

// SpawnUnreachable: the send sits behind an unconditional return; no
// real execution reaches it.
func SpawnUnreachable(ch chan int) {
	go func() {
		return
		ch <- 1
	}()
}

// worker is only ever launched as a goroutine; its body is analyzed at
// the launch site.
func worker(ch chan int) {
	ch <- 2 // want "sends on unbuffered channel ch outside a select"
}

// SpawnNamed launches a named same-package function.
func SpawnNamed(ch chan int) {
	go worker(ch)
}
