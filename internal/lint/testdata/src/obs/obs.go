// Package obs exercises the obs analyzer: ServeMux routes whose handler
// never records a telemetry sample are flagged; handlers wrapped in an
// instrument middleware, inline-observing closures, and documented
// exceptions are not.
package obs

import "net/http"

// hist stands in for a latency histogram; only the Observe*/method-name
// contract matters to the analyzer.
type hist struct{}

func (hist) Observe(v float64)          {}
func (hist) ObserveDuration(ms float64) {}

var latency hist

// instrument is the sanctioned middleware shape: the returned closure
// records a sample around every request.
func instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		latency.ObserveDuration(1)
		next.ServeHTTP(w, r)
	})
}

// record is an indirect observer one hop deeper, for the depth-2 path.
func record() { latency.Observe(0.001) }

// observed routes through the helper rather than touching the histogram
// itself.
func observed(w http.ResponseWriter, r *http.Request) { record() }

// plain serves without ever recording anything.
func plain(w http.ResponseWriter, r *http.Request) {}

func Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/wrapped", instrument(http.HandlerFunc(plain)))
	mux.HandleFunc("/helper", observed)
	mux.HandleFunc("/inline", func(w http.ResponseWriter, r *http.Request) {
		latency.ObserveDuration(2)
	})
	mux.HandleFunc("/bare", plain)                    // want "no telemetry sample"
	mux.Handle("/converted", http.HandlerFunc(plain)) // want "no telemetry sample"
	mux.HandleFunc("/closure", func(w http.ResponseWriter, r *http.Request) { // want "no telemetry sample"
		w.WriteHeader(http.StatusNoContent)
	})
	//scout:allow obs demo route; samples are recorded by an upstream proxy
	mux.HandleFunc("/excused", plain)
	return mux
}
