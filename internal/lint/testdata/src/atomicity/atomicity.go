// Package atomicity exercises the atomicity analyzer: a variable
// updated through old-style sync/atomic calls must never be touched
// with a plain load or store.
package atomicity

import "sync/atomic"

type Counter struct {
	hits int64
	name string
}

// Incr establishes the atomic protocol for hits.
func (c *Counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

// Load follows the protocol.
func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.hits)
}

// PlainRead races with Incr.
func (c *Counter) PlainRead() int64 {
	return c.hits // want "plain access of hits"
}

// PlainWrite races with Incr.
func (c *Counter) PlainWrite() {
	c.hits = 0 // want "plain access of hits"
}

// Name touches a field with no atomic history: fine.
func (c *Counter) Name() string { return c.name }

// Fresh initializes a new, unshared value: composite-literal keys are
// exempt.
func Fresh() *Counter {
	return &Counter{hits: 0, name: "fresh"}
}

var gauge int32

// Bump establishes the protocol for the package var.
func Bump() {
	atomic.AddInt32(&gauge, 1)
}

// Read follows it.
func Read() int32 {
	return atomic.LoadInt32(&gauge)
}

// Mixed forgets it.
func Mixed() {
	gauge = 0 // want "plain access of gauge"
}

// typed atomics police themselves; no findings on any access.
type Typed struct {
	n atomic.Int64
}

func (t *Typed) Incr() { t.n.Add(1) }

func (t *Typed) Load() int64 { return t.n.Load() }
