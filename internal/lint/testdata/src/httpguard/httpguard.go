// Package httpguard exercises the httpguard analyzer: decoding an
// uncapped *http.Request body, or decoding one without
// DisallowUnknownFields, is flagged; the fully guarded handler and
// client-side *http.Response decodes are not.
package httpguard

import (
	"encoding/json"
	"net/http"
)

type payload struct {
	Name string `json:"name"`
}

// Naked decodes the raw request body with no cap and no strict fields.
func Naked(w http.ResponseWriter, r *http.Request) {
	var p payload
	_ = json.NewDecoder(r.Body).Decode(&p) // want "without http.MaxBytesReader" "never calls DisallowUnknownFields"
	_ = p
}

// CappedOnly bounds the body but still accepts unknown fields.
func CappedOnly(w http.ResponseWriter, r *http.Request) {
	var p payload
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	_ = json.NewDecoder(body).Decode(&p) // want "never calls DisallowUnknownFields"
	_ = p
}

// Guarded is the sanctioned handler shape.
func Guarded(w http.ResponseWriter, r *http.Request) {
	var p payload
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	_ = p
}

// Client decodes a response body: our own server's reply, not untrusted
// request input, so the analyzer leaves it alone.
func Client(resp *http.Response) (payload, error) {
	var p payload
	err := json.NewDecoder(resp.Body).Decode(&p)
	return p, err
}
