// Package determinism exercises the determinism analyzer: wall-clock
// reads and the global math/rand source are flagged in library code;
// seeded generators and clock references are not.
package determinism

import (
	"math/rand"
	"time"
)

// Clock is the sanctioned pattern: referencing time.Now as an injectable
// default is fine — only calling it is a wall-clock read.
var Clock = time.Now

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want "time.Now read in library code"
}

// Age reads the wall clock through time.Since.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since read in library code"
}

// Roll draws from the global math/rand source.
func Roll() int {
	return rand.Intn(6) // want "global math/rand source"
}

// ShuffleIDs mutates through the global source too.
func ShuffleIDs(ids []int) {
	rand.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] }) // want "global math/rand source"
}

// SeededRoll is the sanctioned pattern: an explicit seeded generator.
// The method names collide with the global functions; the analyzer must
// not flag them.
func SeededRoll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// InjectedStamp is the sanctioned clock-injection pattern.
func InjectedStamp(now func() time.Time) time.Time {
	if now == nil {
		now = time.Now
	}
	return now()
}
