// Package clean is the negative control: idiomatic code written the way
// the analyzers want it, expected to produce zero findings.
package clean

import (
	"slices"
	"sync"
	"time"
)

// Registry is the sanctioned shape everywhere the analyzers look: an
// injected clock (referenced, never called at package scope), a pointer
// receiver around the mutex, paired Lock/Unlock, and slices kernels.
type Registry struct {
	mu    sync.Mutex
	now   func() time.Time
	names []string
}

// New takes the clock as a dependency; time.Now is only the default.
func New(now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{now: now}
}

// Add records a name under the lock.
func (r *Registry) Add(name string) time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names = append(r.names, name)
	return r.now()
}

// Sorted returns a deterministic copy.
func (r *Registry) Sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := slices.Clone(r.names)
	slices.Sort(out)
	return out
}
