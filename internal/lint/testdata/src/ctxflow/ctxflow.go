// Package ctxflow exercises the ctxflow analyzer: blocking operations
// in a ctx-carrying function must be dominated by a consultation of the
// context — ctx.Err/Done/Deadline, a select with a ctx.Done() case, or
// passing ctx to a callee — on every path from entry.
package ctxflow

import (
	"context"
	"os"
	"sync"
	"time"
)

func helper(ctx context.Context) {}

// SleepUnguarded blocks with no consultation at all.
func SleepUnguarded(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep blocks with no prior ctx check"
}

// SleepGuarded checks ctx.Err on every path first.
func SleepGuarded(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	time.Sleep(time.Millisecond)
}

// OneArmedCheck consults ctx on one branch only; the join is unguarded.
func OneArmedCheck(ctx context.Context, c bool) {
	if c {
		if ctx.Err() != nil {
			return
		}
	}
	time.Sleep(time.Millisecond) // want "time.Sleep blocks with no prior ctx check"
}

// BothArmsCheck consults ctx on both branches; the join is guarded.
func BothArmsCheck(ctx context.Context, c bool) {
	if c {
		if ctx.Err() != nil {
			return
		}
	} else {
		<-ctx.Done()
	}
	time.Sleep(time.Millisecond)
}

// BareRecv receives with no escape.
func BareRecv(ctx context.Context, ch chan int) int {
	return <-ch // want "channel receive <-ch may block forever"
}

// SelectDone guards the receive with a ctx.Done case.
func SelectDone(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// SelectNoEscape blocks on data channels with no way to cancel.
func SelectNoEscape(ctx context.Context, a, b chan int) {
	select { // want "select blocks with no ctx.Done"
	case <-a:
	case <-b:
	}
}

// SelectDefault polls; it never blocks.
func SelectDefault(ctx context.Context, a chan int) {
	select {
	case <-a:
	default:
	}
}

// SendUnguarded sends with no escape.
func SendUnguarded(ctx context.Context, ch chan int) {
	ch <- 1 // want "channel send ch <- ... may block forever"
}

// Delegate hands ctx to the callee before blocking; the callee owns
// cancellation from there on.
func Delegate(ctx context.Context, ch chan int) {
	helper(ctx)
	<-ch
}

// FreshBackground does not count as consulting the caller's ctx.
func FreshBackground(ctx context.Context, ch chan int) {
	helper(context.Background())
	<-ch // want "channel receive <-ch may block forever"
}

// WaitUnguarded parks on a WaitGroup with no consultation.
func WaitUnguarded(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want "Wait blocks with no prior ctx check"
}

// LoopFirstIteration: the check happens after the receive, so the first
// iteration is unguarded.
func LoopFirstIteration(ctx context.Context, ch chan int) {
	for {
		<-ch // want "channel receive <-ch may block forever"
		if ctx.Err() != nil {
			return
		}
	}
}

// LoopGuarded re-checks at the top of every iteration.
func LoopGuarded(ctx context.Context, ch chan int) {
	for {
		if ctx.Err() != nil {
			return
		}
		<-ch
	}
}

// RangeChan blocks between messages with no escape.
func RangeChan(ctx context.Context, ch chan int) {
	for v := range ch { // want "range over channel ch blocks"
		_ = v
	}
}

// FileRead performs file I/O with no consultation.
func FileRead(ctx context.Context, path string) ([]byte, error) {
	return os.ReadFile(path) // want "os.ReadFile performs file I/O"
}

// FileReadGuarded consults first.
func FileReadGuarded(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
