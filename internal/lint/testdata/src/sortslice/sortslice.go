// Package sortslice exercises the sortslice analyzer: the reflective
// sort-package entry points are flagged; the concrete slices kernels and
// the typed sort helpers are not.
package sortslice

import (
	"slices"
	"sort"
)

type byLen []string

func (b byLen) Len() int           { return len(b) }
func (b byLen) Less(i, j int) bool { return len(b[i]) < len(b[j]) }
func (b byLen) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

// Reflective reports every reflection/interface-dispatch sorter.
func Reflective(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })       // want "sort.Slice sorts through reflection"
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "sort.SliceStable sorts through reflection"
	sort.Sort(byLen(xs))                                               // want "sort.Sort sorts through reflection"
	sort.Stable(byLen(xs))                                             // want "sort.Stable sorts through reflection"
}

// Concrete is the sanctioned form: monomorphic slices kernels and the
// typed helpers dispatch with no reflection.
func Concrete(xs []string, ns []int) {
	slices.Sort(xs)
	slices.SortFunc(xs, func(a, b string) int { return len(a) - len(b) })
	sort.Strings(xs)
	sort.Ints(ns)
	_ = sort.SearchStrings(xs, "q")
}
