// Package locks exercises the locks analyzer: by-value copies of
// lock-bearing types, Lock calls with no reachable Unlock, and
// RLock-to-Lock upgrades are flagged; pointer passing and paired
// lock/unlock (direct or deferred) are not.
package locks

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// ByValueParam copies the mutex through the parameter.
func ByValueParam(c Counter) int { // want "parameter passes .* by value, copying its lock"
	return c.n
}

// ByValueReceiver copies the mutex through the receiver.
func (c Counter) ByValueReceiver() int { // want "receiver passes .* by value, copying its lock"
	return c.n
}

// Dereference copies the mutex through an assignment.
func Dereference(c *Counter) int {
	cp := *c // want "assignment copies .* by value, copying its lock"
	return cp.n
}

// RangeCopy copies each element's mutex through the range value.
func RangeCopy(cs []Counter) int {
	total := 0
	for _, c := range cs { // want "range copies .* elements by value"
		total += c.n
	}
	return total
}

// LeakLock acquires without any reachable release.
func LeakLock(c *Counter) {
	c.mu.Lock() // want "has no c.mu.Unlock"
	c.n++
}

// Upgrade attempts the RWMutex read-to-write upgrade deadlock.
func Upgrade(mu *sync.RWMutex, n *int) {
	mu.RLock()
	if *n == 0 {
		mu.Lock() // want "RWMutex cannot upgrade"
		*n = 1
		mu.Unlock()
	}
	mu.RUnlock()
}

// Deferred is the sanctioned pattern.
func Deferred(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Paired releases explicitly on every path.
func Paired(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// PointerParam passes the lock-bearing struct correctly.
func PointerParam(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
