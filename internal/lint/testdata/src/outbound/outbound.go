// Package outbound exercises the outbound analyzer: HTTP requests built
// in library code must carry a cancellable, caller-owned context.
package outbound

import (
	"context"
	"net/http"
	"time"
)

// ContextlessConstructor uses the legacy constructor.
func ContextlessConstructor(client *http.Client) error {
	req, err := http.NewRequest("GET", "http://example/health", nil) // want "http.NewRequest builds a request on context.Background"
	if err != nil {
		return err
	}
	_, err = client.Do(req)
	return err
}

// PackageConvenience uses the context-less package helpers.
func PackageConvenience() error {
	_, err := http.Get("http://example/health") // want "http.Get issues a request with no attachable context"
	return err
}

// ClientConvenience uses the context-less client methods.
func ClientConvenience(client *http.Client) error {
	_, err := client.Head("http://example/health") // want "Head issues a request with no attachable context"
	return err
}

// DirectBackground passes an uncancellable context straight in.
func DirectBackground(client *http.Client) error {
	req, err := http.NewRequestWithContext(context.Background(), "GET", "http://example/health", nil) // want "no caller can cancel or deadline this request"
	if err != nil {
		return err
	}
	_, err = client.Do(req)
	return err
}

// LaunderedBackground hides the background context behind a variable.
func LaunderedBackground(client *http.Client) error {
	ctx := context.TODO()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://example/health", nil) // want "no caller can cancel or deadline this request"
	if err != nil {
		return err
	}
	_, err = client.Do(req)
	return err
}

// ParamContext is the blessed shape: the caller owns the context (and
// with it the deadline), and the request carries it.
func ParamContext(ctx context.Context, client *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://example/health", nil)
	if err != nil {
		return err
	}
	_, err = client.Do(req)
	return err
}

// DerivedDeadline wraps the background context in a deadline before use;
// the variable is no longer a bare background context.
func DerivedDeadline(client *http.Client) error {
	ctx := context.Background()
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://example/health", nil)
	if err != nil {
		return err
	}
	_, err = client.Do(req)
	return err
}
