// Package hotpath exercises the hotpath analyzer: inside a
// //scout:hotpath function, reflective formatting, interface boxing of
// concrete values, and growing an escaping fresh slice are flagged; the
// caller-supplied-buffer pattern and pointer-shaped arguments are not.
package hotpath

import "fmt"

type point struct{ x, y float64 }

func sink(v any) { _ = v }

//scout:hotpath
func Format(id int) string {
	return fmt.Sprintf("incident-%d", id) // want "hot path calls fmt.Sprintf"
}

//scout:hotpath
func Collect(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want "hot path grows fresh slice"
	}
	return out
}

//scout:hotpath
func Box(p point) {
	sink(p) // want "boxes .* into interface parameter"
}

// PassPointer is fine: pointers are pointer-shaped and box for free.
//
//scout:hotpath
func PassPointer(p *point) {
	sink(p)
}

// CollectInto is the sanctioned caller-supplied-buffer pattern: dst is a
// parameter, so the make fallback does not mark it as a fresh local.
//
//scout:hotpath
func CollectInto(dst []float64, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, 0, n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, float64(i))
	}
	return dst
}

// Cold carries no directive; formatting and boxing are unrestricted.
func Cold(id int) string {
	sink(point{1, 2})
	return fmt.Sprintf("incident-%d", id)
}
