// Package binio exercises the binio analyzer: fixed-width
// encoding/binary reads of a []byte parameter with no len() bounds
// check anywhere in the function are flagged; guarded functions, reads
// of locally-built slices, and non-parameter sources are not.
package binio

import "encoding/binary"

// Naked decodes a header with no bounds check anywhere: a torn file
// panics instead of erroring.
func Naked(data []byte) (uint32, uint64) {
	a := binary.LittleEndian.Uint32(data)     // want "binary.Uint32 reads parameter .data. with no len"
	b := binary.LittleEndian.Uint64(data[4:]) // want "binary.Uint64 reads parameter .data. with no len"
	return a, b
}

// BigEndianNaked shows the byte order does not matter.
func BigEndianNaked(raw []byte) uint16 {
	return binary.BigEndian.Uint16(raw[2:4]) // want "binary.Uint16 reads parameter .raw. with no len"
}

// Guarded is the sanctioned shape: check, then decode.
func Guarded(data []byte) (uint32, bool) {
	if len(data) < 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(data), true
}

// GuardedArithmetic checks through arithmetic — `n > len(data)-12` still
// counts as a bounds check on data.
func GuardedArithmetic(data []byte, n int) uint64 {
	if n > len(data)-12 {
		return 0
	}
	return binary.LittleEndian.Uint64(data[n:])
}

// GuardedLoop bounds the cursor with a loop condition.
func GuardedLoop(data []byte) (sum uint32) {
	for off := 0; off+4 <= len(data); off += 4 {
		sum += binary.LittleEndian.Uint32(data[off:])
	}
	return sum
}

// LocalSlice decodes a slice the function built itself — out of scope
// for the parameter rule.
func LocalSlice(n int) uint32 {
	buf := make([]byte, n)
	return binary.LittleEndian.Uint32(buf)
}

// MixedParams guards one parameter but not the other; only the
// unguarded one is flagged.
func MixedParams(head, tail []byte) uint32 {
	if len(head) < 4 {
		return 0
	}
	_ = binary.LittleEndian.Uint32(head)
	return binary.LittleEndian.Uint32(tail) // want "binary.Uint32 reads parameter .tail. with no len"
}

// PutIsWrite shows encode-direction calls are not decodes and never
// flagged: PutUint32 panics too, but the buffer is typically
// freshly allocated by the writer, not untrusted input.
func PutIsWrite(dst []byte, v uint32) {
	binary.LittleEndian.PutUint32(dst, v)
}
