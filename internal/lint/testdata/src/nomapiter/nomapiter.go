// Package nomapiter exercises the nomapiter analyzer: map iteration
// order reaching a returned slice unsorted is flagged; sorting after the
// loop, writing into maps, or accumulating scalars is not.
package nomapiter

import "slices"

// Keys leaks randomized iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order reaches returned slice"
		out = append(out, k)
	}
	return out
}

// KeysNamed leaks through a named result and a bare return.
func KeysNamed(m map[string]int) (out []string) {
	for k := range m { // want "map iteration order reaches returned slice"
		out = append(out, k)
	}
	return
}

// SortedKeys is the sanctioned form: the sort after the loop erases the
// iteration order.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Invert writes into another map: insertion order does not matter.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Total accumulates a scalar; no order leaks.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Local appends inside a map range but never returns the slice.
func Local(m map[string]int) int {
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	return len(tmp)
}
