// Command clockok shows the determinism exemption: binaries under cmd/
// own the wall clock, so time.Now is legal here. No finding expected
// anywhere in this file.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
