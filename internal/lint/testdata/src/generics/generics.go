// Package generics exercises the lint driver and every flow analyzer on
// type-parameterized code: instantiation expressions (IndexExpr /
// IndexListExpr callees), generic receivers, and channels of type
// parameters must all flow through the CFG builder and the dataflow
// engine without panics — and the analyzers must still see through the
// instantiation to the underlying operation.
package generics

import (
	"context"
	"sync/atomic"
	"time"
)

// Pipe is a generic channel wrapper.
type Pipe[T any] struct {
	ch chan T
}

// NewPipe instantiates with a buffered channel.
func NewPipe[T any](n int) *Pipe[T] {
	return &Pipe[T]{ch: make(chan T, n)}
}

// Send on a generic method: the element type is a type parameter.
func (p *Pipe[T]) Send(v T) {
	p.ch <- v
}

// first is a generic helper used through explicit instantiation below.
func first[T any](ch chan T) T {
	return <-ch
}

// pair needs two type arguments, forcing an IndexListExpr at the call.
func pair[A, B any](a A, b B) (A, B) { return a, b }

// UseInstantiated calls generic functions through explicit instantiation
// — the calleeFunc unwrap must resolve through ast.IndexExpr and
// ast.IndexListExpr, and ctxflow must still flag the blocking receive
// hidden behind neither (the plain time.Sleep).
func UseInstantiated(ctx context.Context, ch chan int) {
	f := first[int]
	_ = f
	a, b := pair[int, string](1, "x")
	_, _ = a, b
	time.Sleep(time.Millisecond) // want "time.Sleep blocks with no prior ctx check"
}

// SpawnGeneric launches a goroutine that blocks on a chan-of-type-param:
// leak must handle the generic element type without panicking and still
// report the unbuffered send.
func SpawnGeneric[T any](ch chan T, v T) {
	go func() {
		ch <- v // want "sends on unbuffered channel ch outside a select"
	}()
}

// Box mixes an atomic counter into a generic struct.
type Box[T any] struct {
	val  T
	hits int64
}

// Touch establishes the atomic protocol on the generic receiver.
func (b *Box[T]) Touch() {
	atomic.AddInt64(&b.hits, 1)
}

// Peek violates it: atomicity must track fields of generic types.
func (b *Box[T]) Peek() int64 {
	return b.hits // want "plain access of hits"
}

// Get only reads the payload; no finding.
func (b *Box[T]) Get() T { return b.val }

// Drain ranges over a generic channel in a ctx-carrying function after a
// proper guard: clean.
func Drain[T any](ctx context.Context, ch chan T) []T {
	var out []T
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, v)
		case <-ctx.Done():
			return out
		}
	}
}
