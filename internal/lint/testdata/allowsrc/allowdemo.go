// Package allowdemo exercises scout:allow handling: a well-formed
// directive (check name + reason) suppresses findings on its own line or
// the line below; malformed directives are findings themselves and
// suppress nothing. This fixture carries no want comments — appending
// prose to a directive line would change what the directive parses to —
// so the expectations live in TestSuppression instead.
package allowdemo

import "sort"

// Suppressed keeps one reflective call: the trailing directive silences
// the sortslice finding.
func Suppressed(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) //scout:allow sortslice fixture keeps one reflective call to prove trailing suppression
}

// SuppressedAbove shows the directive covering the line below it.
func SuppressedAbove(xs []string) {
	//scout:allow sortslice fixture proves the line-above form
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// ReasonMissing: a reasonless directive is itself a finding, and the
// sortslice finding it meant to cover survives.
func ReasonMissing(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) //scout:allow sortslice
}

// The two standalone malformed forms below are findings too.

//scout:allow

//scout:allow nosuchcheck the named check does not exist
