package lint

import (
	"go/ast"
	"go/types"
)

// Outbound hardens the fleet-gateway invariant from DESIGN.md §14:
// every outbound HTTP request built in library code must carry a
// cancellable context — one the caller can deadline — so a stalled
// replica can never wedge a gateway goroutine. Three shapes are banned
// outside cmd/, examples/ and tests:
//
//   - http.NewRequest: builds a context.Background() request; use
//     http.NewRequestWithContext.
//   - The context-less conveniences http.Get/Post/Head/PostForm and
//     their (*http.Client) method forms: same problem, hidden deeper.
//   - http.NewRequestWithContext(context.Background()/TODO(), ...),
//     directly or through a local variable bound to one of them: the
//     letter of the API without a context anyone can cancel. A context
//     from a parameter, a request (r.Context()), or a
//     WithTimeout/WithDeadline/WithCancel derivation passes — the
//     deadline or cancel lives with a caller who owns it.
var Outbound = &Analyzer{
	Name: "outbound",
	Doc:  "outbound HTTP requests in library code must carry a cancellable caller-owned context",
	Run:  runOutbound,
}

// outboundConvenience are the net/http helpers that issue a request with
// no way to attach a context, as package functions and as
// (*http.Client) methods.
var outboundConvenience = map[string]bool{
	"Get": true, "Post": true, "Head": true, "PostForm": true,
}

func runOutbound(p *Pass) {
	if clockExempt(p.RelDir) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isTestFile(p.Fset, fd.Pos()) {
				return true
			}
			checkOutbound(p, fd.Body)
			return false
		})
	}
}

func checkOutbound(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
			return true
		}
		recv := ""
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = namedPath(sig.Recv().Type())
		}
		switch {
		case recv == "" && fn.Name() == "NewRequest":
			p.Reportf(call.Pos(),
				"http.NewRequest builds a request on context.Background(); use http.NewRequestWithContext with a caller-owned context")
		case outboundConvenience[fn.Name()] && (recv == "" || recv == "net/http.Client"):
			who := "http." + fn.Name()
			if recv != "" {
				who = "(*http.Client)." + fn.Name()
			}
			p.Reportf(call.Pos(),
				"%s issues a request with no attachable context; build it with http.NewRequestWithContext and send via (*http.Client).Do", who)
		case recv == "" && fn.Name() == "NewRequestWithContext" && len(call.Args) > 0:
			if reason := backgroundCtx(p.Info, body, call.Args[0]); reason != "" {
				p.Reportf(call.Args[0].Pos(),
					"http.NewRequestWithContext called with %s: no caller can cancel or deadline this request; derive the context from a parameter or wrap it in context.WithTimeout", reason)
			}
		}
		return true
	})
}

// backgroundCtx reports why the context expression is uncancellable —
// a direct context.Background()/TODO() call, or a local variable bound
// to one — or "" when the context plausibly carries a caller's deadline.
func backgroundCtx(info *types.Info, body *ast.BlockStmt, arg ast.Expr) string {
	if name := freshCtxName(info, arg); name != "" {
		return name
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := objectOf(info, id)
	if obj == nil {
		return ""
	}
	// Find the local definition: `ctx := context.Background()` (or TODO).
	// Reassignments and derivations through WithTimeout/WithDeadline/
	// WithCancel make the variable legitimate, so only flag when every
	// binding of the variable in this body is a fresh background context.
	bindings, fresh := 0, 0
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if objectOf(info, lhs) != obj {
				continue
			}
			rhs := as.Rhs[0] // multi-value form: one call binds every LHS
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			bindings++
			if freshCtxName(info, rhs) != "" {
				fresh++
			}
		}
		return true
	})
	if bindings > 0 && bindings == fresh {
		return "a context bound to context.Background()/TODO()"
	}
	return ""
}

// freshCtxName names a direct context.Background()/context.TODO() call,
// or returns "".
func freshCtxName(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	switch {
	case isPkgFunc(fn, "context", "Background"):
		return "context.Background()"
	case isPkgFunc(fn, "context", "TODO"):
		return "context.TODO()"
	}
	return ""
}
