package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BinIO guards the binary decode paths PR 7 introduced (scoutpack, the
// SFF1 forest sections, the .pack disk envelope): a function that takes
// a []byte parameter and reads fixed-width integers out of it with
// encoding/binary's ByteOrder methods is parsing untrusted bytes, and
// binary.LittleEndian.Uint32(b[off:]) panics — it does not error — when
// the slice is short. Such a function must compare len() of that
// parameter somewhere before decoding; a torn download or truncated
// model file must surface as a quarantine, not a crash in the serving
// process.
//
// The check is function-local and deliberately coarse: any comparison
// involving len(param) (directly, or inside arithmetic like
// `n > len(data)-12`) marks the parameter guarded for the whole
// function. Decodes of locally-built slices (e.g. a sub-slice the
// caller already validated and re-sliced into a fresh variable) are not
// traced — only direct reads of the raw parameter are held to the rule.
var BinIO = &Analyzer{
	Name: "binio",
	Doc:  "encoding/binary decodes of a []byte parameter need a len() bounds check",
	Run:  runBinIO,
}

// binaryOrderReads are the encoding/binary ByteOrder methods that panic
// on short input.
var binaryOrderReads = map[string]bool{
	"Uint16": true,
	"Uint32": true,
	"Uint64": true,
}

func runBinIO(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isTestFile(p.Fset, fd.Pos()) {
				continue
			}
			checkBinIOFunc(p, fd)
		}
	}
}

func checkBinIOFunc(p *Pass, fd *ast.FuncDecl) {
	// Collect the []byte parameters — the function's untrusted inputs.
	byteParams := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				byteParams[obj] = true
			}
		}
	}
	if len(byteParams) == 0 {
		return
	}

	// A parameter is guarded once len(param) participates in any
	// comparison — if conditions, loop conditions, and arithmetic
	// inside them (`if n > len(data)-12`) all count.
	guarded := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparisonOp(be.Op) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !isBuiltin(p.Info, call, "len") || len(call.Args) != 1 {
					return true
				}
				if obj := sliceRootObject(p.Info, call.Args[0]); obj != nil && byteParams[obj] {
					guarded[obj] = true
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" || !binaryOrderReads[fn.Name()] {
			return true
		}
		obj := sliceRootObject(p.Info, call.Args[0])
		if obj == nil || !byteParams[obj] || guarded[obj] {
			return true
		}
		p.Reportf(call.Pos(), "binary.%s reads parameter %q with no len() bounds check in this function; short input panics instead of erroring", fn.Name(), obj.Name())
		return true
	})
}

// isByteSlice reports whether t is []byte (or a named alias of it).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isComparisonOp reports whether op yields a bool from two ordered
// operands.
func isComparisonOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// sliceRootObject resolves b, b[off:], b[a:b:c] and b[i] down to the
// variable being sliced, or nil for anything more indirect.
func sliceRootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		default:
			return nil
		}
	}
}
