package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
)

// Config drives one lint run.
type Config struct {
	// Root is the directory to lint: the module root for a whole-repo
	// run, or any subtree (the fixture harness points it at a testdata
	// directory).
	Root string
	// Analyzers defaults to All().
	Analyzers []*Analyzer
}

// Run discovers every package under cfg.Root, type-checks them in
// dependency order, runs the analyzer catalog, applies //scout:allow
// suppressions and returns the surviving findings sorted by position.
// The error is non-nil only for driver-level failures (unreadable tree,
// syntax or type errors) — findings alone never produce an error.
func Run(cfg Config) ([]Diagnostic, error) {
	if cfg.Analyzers == nil {
		cfg.Analyzers = All()
	}
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	moduleRoot, modulePath := findModule(root)
	pkgs, err := discover(root, moduleRoot, modulePath)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	if err := parseAll(fset, pkgs, modulePath); err != nil {
		return nil, err
	}
	pkgs, err = loadClosure(fset, pkgs, moduleRoot, modulePath)
	if err != nil {
		return nil, err
	}
	order, err := dependencyOrder(pkgs)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{fset: fset, module: map[string]*types.Package{}}
	var diags []Diagnostic
	for _, pd := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pd.importPath, fset, pd.files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", pd.importPath, err)
		}
		imp.module[pd.importPath] = tpkg

		if !pd.analyze {
			continue // dependency loaded only so the root's packages type-check
		}
		pass := &Pass{Fset: fset, Files: pd.files, Info: info, Pkg: tpkg, RelDir: pd.relDir}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		for _, a := range cfg.Analyzers {
			pass.check = a.Name
			a.Run(pass)
		}
	}

	analyzed := pkgs[:0:0]
	for _, pd := range pkgs {
		if pd.analyze {
			analyzed = append(analyzed, pd)
		}
	}
	diags = suppress(fset, analyzed, cfg.Analyzers, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// pkgDir is one directory of non-test Go files.
type pkgDir struct {
	dir        string // absolute
	relDir     string // lint-root-relative, "" for the root itself
	importPath string
	analyze    bool // false for packages loaded only as dependencies
	goFiles    []string
	files      []*ast.File
	imports    map[string]bool // module-internal imports only
}

// skipDir names directories the walk never descends into: VCS state,
// fixture trees (they are linted on demand, with their own expectations)
// and the underscore/dot dirs the go tool itself ignores.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModule walks up from root looking for a go.mod, so a subtree lint
// (`scoutlint internal/lint`) derives real import paths and can resolve
// module-internal imports that point outside the subtree. Roots outside
// any module — bare fixture trees — get a synthetic "lintfixture" path;
// their packages never import each other, so it only needs to be unique.
func findModule(root string) (moduleRoot, modulePath string) {
	for dir := root; ; {
		if data, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil {
			if m := moduleRE.FindSubmatch(data); m != nil {
				return dir, string(m[1])
			}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return root, "lintfixture"
		}
		dir = parent
	}
}

// discover walks root for directories containing non-test Go files.
// Import paths are moduleRoot-relative ("scouts/internal/lint/cfg");
// relDir stays root-relative, because the path-scoped analyzer
// exemptions (cmd/, examples/) are about where a package sits under the
// tree being linted, not under the module.
func discover(root, moduleRoot, modulePath string) ([]*pkgDir, error) {
	var pkgs []*pkgDir
	byDir := map[string]*pkgDir{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pd := byDir[dir]
		if pd == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rel = filepath.ToSlash(rel)
			modRel, err := filepath.Rel(moduleRoot, dir)
			if err != nil {
				return err
			}
			ip := modulePath
			if modRel != "." {
				ip = modulePath + "/" + filepath.ToSlash(modRel)
			}
			pd = &pkgDir{dir: dir, relDir: rel, importPath: ip, analyze: true, imports: map[string]bool{}}
			byDir[dir] = pd
			pkgs = append(pkgs, pd)
		}
		pd.goFiles = append(pd.goFiles, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	slices.SortFunc(pkgs, func(a, b *pkgDir) int { return strings.Compare(a.dir, b.dir) })
	for _, pd := range pkgs {
		slices.Sort(pd.goFiles)
	}
	return pkgs, nil
}

// parseAll parses every discovered file (with comments, needed for both
// directives and suppressions) and records module-internal imports.
func parseAll(fset *token.FileSet, pkgs []*pkgDir, modulePath string) error {
	for _, pd := range pkgs {
		if err := parsePkg(fset, pd, modulePath); err != nil {
			return err
		}
	}
	return nil
}

// parsePkg parses one package directory's files and records its
// module-internal imports (by modulePath prefix, whether or not the
// imported package was discovered under the lint root — loadClosure
// pulls in the rest).
func parsePkg(fset *token.FileSet, pd *pkgDir, modulePath string) error {
	prefix := modulePath + "/"
	for _, path := range pd.goFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pd.files = append(pd.files, f)
		for _, im := range f.Imports {
			ip, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				continue
			}
			if ip == modulePath || strings.HasPrefix(ip, prefix) {
				pd.imports[ip] = true
			}
		}
	}
	return nil
}

// loadClosure resolves module-internal imports that were not discovered
// under the lint root: each is mapped back to its directory under the
// module root, parsed, and added with analyze=false — type-check fodder,
// never a source of findings. Runs to a fixpoint so transitive
// dependencies load too.
func loadClosure(fset *token.FileSet, pkgs []*pkgDir, moduleRoot, modulePath string) ([]*pkgDir, error) {
	byPath := map[string]*pkgDir{}
	for _, pd := range pkgs {
		byPath[pd.importPath] = pd
	}
	queue := slices.Clone(pkgs)
	for len(queue) > 0 {
		pd := queue[0]
		queue = queue[1:]
		deps := make([]string, 0, len(pd.imports))
		for ip := range pd.imports {
			deps = append(deps, ip)
		}
		slices.Sort(deps)
		for _, ip := range deps {
			if byPath[ip] != nil {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(ip, modulePath), "/")
			dir := filepath.Join(moduleRoot, filepath.FromSlash(rel))
			entries, err := os.ReadDir(dir)
			if err != nil {
				return nil, fmt.Errorf("resolve module-internal import %q: %w", ip, err)
			}
			np := &pkgDir{dir: dir, relDir: filepath.ToSlash(rel), importPath: ip, imports: map[string]bool{}}
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				np.goFiles = append(np.goFiles, filepath.Join(dir, name))
			}
			if len(np.goFiles) == 0 {
				return nil, fmt.Errorf("resolve module-internal import %q: no Go files in %s", ip, dir)
			}
			slices.Sort(np.goFiles)
			if err := parsePkg(fset, np, modulePath); err != nil {
				return nil, err
			}
			byPath[ip] = np
			pkgs = append(pkgs, np)
			queue = append(queue, np)
		}
	}
	return pkgs, nil
}

// dependencyOrder topologically sorts the packages so every module-
// internal import is type-checked before its importer.
func dependencyOrder(pkgs []*pkgDir) ([]*pkgDir, error) {
	byPath := map[string]*pkgDir{}
	for _, pd := range pkgs {
		byPath[pd.importPath] = pd
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*pkgDir
	var visit func(pd *pkgDir) error
	visit = func(pd *pkgDir) error {
		switch state[pd.importPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", pd.importPath)
		}
		state[pd.importPath] = visiting
		deps := make([]string, 0, len(pd.imports))
		for ip := range pd.imports {
			deps = append(deps, ip)
		}
		slices.Sort(deps)
		for _, ip := range deps {
			if dep := byPath[ip]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[pd.importPath] = done
		order = append(order, pd)
		return nil
	}
	for _, pd := range pkgs {
		if err := visit(pd); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages the
// driver already checked and everything else from the toolchain: the gc
// importer (compiled export data) first — it is fast — falling back to
// the source importer for toolchains that ship no stdlib export data.
type moduleImporter struct {
	fset   *token.FileSet
	module map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	if m.gc == nil {
		m.gc = importer.ForCompiler(m.fset, "gc", nil)
	}
	pkg, gcErr := m.gc.Import(path)
	if gcErr == nil {
		return pkg, nil
	}
	if m.source == nil {
		m.source = importer.ForCompiler(m.fset, "source", nil)
	}
	pkg, srcErr := m.source.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("import %q: gc importer: %v; source importer: %v", path, gcErr, srcErr)
	}
	return pkg, nil
}

// ---- suppression ----

// allowRE matches the suppression directive. The check name and a
// free-text reason are both mandatory: an exception nobody can explain
// is a bug with a comment on it. Like //go: directives, the comment
// must begin with the marker — prose that merely mentions
// "//scout:allow" is not a directive.
var allowRE = regexp.MustCompile(`^//scout:allow(\s+(\S+))?\s*(.*)`)

// suppress drops findings covered by a //scout:allow directive on the
// same line or the line directly above, and adds findings for malformed
// directives (missing reason, unknown check). It returns the surviving
// diagnostic set.
func suppress(fset *token.FileSet, pkgs []*pkgDir, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := map[key]bool{}
	var extra []Diagnostic
	for _, pd := range pkgs {
		for _, f := range pd.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					check, reason := m[2], strings.TrimSpace(m[3])
					switch {
					case check == "":
						extra = append(extra, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check: "allow", Message: "scout:allow needs a check name and a reason"})
					case !known[check]:
						extra = append(extra, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check: "allow", Message: fmt.Sprintf("scout:allow names unknown check %q", check)})
					case reason == "":
						extra = append(extra, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check: "allow", Message: fmt.Sprintf("scout:allow %s needs a reason", check)})
					default:
						end := fset.Position(c.End()).Line
						allowed[key{pos.Filename, end, check}] = true
						allowed[key{pos.Filename, end + 1, check}] = true
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed[key{d.File, d.Line, d.Check}] {
			kept = append(kept, d)
		}
	}
	return append(kept, extra...)
}
