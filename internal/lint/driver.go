package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
)

// Config drives one lint run.
type Config struct {
	// Root is the directory to lint: the module root for a whole-repo
	// run, or any subtree (the fixture harness points it at a testdata
	// directory).
	Root string
	// Analyzers defaults to All().
	Analyzers []*Analyzer
}

// Run discovers every package under cfg.Root, type-checks them in
// dependency order, runs the analyzer catalog, applies //scout:allow
// suppressions and returns the surviving findings sorted by position.
// The error is non-nil only for driver-level failures (unreadable tree,
// syntax or type errors) — findings alone never produce an error.
func Run(cfg Config) ([]Diagnostic, error) {
	if cfg.Analyzers == nil {
		cfg.Analyzers = All()
	}
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	pkgs, err := discover(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	if err := parseAll(fset, pkgs); err != nil {
		return nil, err
	}
	order, err := dependencyOrder(pkgs)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{fset: fset, module: map[string]*types.Package{}}
	var diags []Diagnostic
	for _, pd := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pd.importPath, fset, pd.files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", pd.importPath, err)
		}
		imp.module[pd.importPath] = tpkg

		pass := &Pass{Fset: fset, Files: pd.files, Info: info, Pkg: tpkg, RelDir: pd.relDir}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		for _, a := range cfg.Analyzers {
			pass.check = a.Name
			a.Run(pass)
		}
	}

	diags = suppress(fset, pkgs, cfg.Analyzers, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// pkgDir is one directory of non-test Go files.
type pkgDir struct {
	dir        string // absolute
	relDir     string // module-root-relative, "" for the root itself
	importPath string
	goFiles    []string
	files      []*ast.File
	imports    map[string]bool // module-internal imports only
}

// skipDir names directories the walk never descends into: VCS state,
// fixture trees (they are linted on demand, with their own expectations)
// and the underscore/dot dirs the go tool itself ignores.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// discover walks root for directories containing non-test Go files. The
// import path of each package is derived from root's go.mod when one
// exists ("scouts/internal/core"); fixture roots without a go.mod get a
// synthetic "lintfixture/" prefix — their packages never import each
// other, so the prefix only needs to be unique.
func discover(root string) ([]*pkgDir, error) {
	modulePath := "lintfixture"
	if data, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
		if m := moduleRE.FindSubmatch(data); m != nil {
			modulePath = string(m[1])
		}
	}
	var pkgs []*pkgDir
	byDir := map[string]*pkgDir{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pd := byDir[dir]
		if pd == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rel = filepath.ToSlash(rel)
			ip := modulePath
			if rel != "" {
				ip = modulePath + "/" + rel
			}
			pd = &pkgDir{dir: dir, relDir: rel, importPath: ip, imports: map[string]bool{}}
			byDir[dir] = pd
			pkgs = append(pkgs, pd)
		}
		pd.goFiles = append(pd.goFiles, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	slices.SortFunc(pkgs, func(a, b *pkgDir) int { return strings.Compare(a.dir, b.dir) })
	for _, pd := range pkgs {
		slices.Sort(pd.goFiles)
	}
	return pkgs, nil
}

// parseAll parses every discovered file (with comments, needed for both
// directives and suppressions) and records module-internal imports.
func parseAll(fset *token.FileSet, pkgs []*pkgDir) error {
	intern := map[string]bool{}
	for _, pd := range pkgs {
		intern[pd.importPath] = true
	}
	for _, pd := range pkgs {
		for _, path := range pd.goFiles {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			pd.files = append(pd.files, f)
			for _, im := range f.Imports {
				ip, err := strconv.Unquote(im.Path.Value)
				if err != nil {
					continue
				}
				if intern[ip] {
					pd.imports[ip] = true
				}
			}
		}
	}
	return nil
}

// dependencyOrder topologically sorts the packages so every module-
// internal import is type-checked before its importer.
func dependencyOrder(pkgs []*pkgDir) ([]*pkgDir, error) {
	byPath := map[string]*pkgDir{}
	for _, pd := range pkgs {
		byPath[pd.importPath] = pd
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*pkgDir
	var visit func(pd *pkgDir) error
	visit = func(pd *pkgDir) error {
		switch state[pd.importPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", pd.importPath)
		}
		state[pd.importPath] = visiting
		deps := make([]string, 0, len(pd.imports))
		for ip := range pd.imports {
			deps = append(deps, ip)
		}
		slices.Sort(deps)
		for _, ip := range deps {
			if err := visit(byPath[ip]); err != nil {
				return err
			}
		}
		state[pd.importPath] = done
		order = append(order, pd)
		return nil
	}
	for _, pd := range pkgs {
		if err := visit(pd); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages the
// driver already checked and everything else from the toolchain: the gc
// importer (compiled export data) first — it is fast — falling back to
// the source importer for toolchains that ship no stdlib export data.
type moduleImporter struct {
	fset   *token.FileSet
	module map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	if m.gc == nil {
		m.gc = importer.ForCompiler(m.fset, "gc", nil)
	}
	pkg, gcErr := m.gc.Import(path)
	if gcErr == nil {
		return pkg, nil
	}
	if m.source == nil {
		m.source = importer.ForCompiler(m.fset, "source", nil)
	}
	pkg, srcErr := m.source.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("import %q: gc importer: %v; source importer: %v", path, gcErr, srcErr)
	}
	return pkg, nil
}

// ---- suppression ----

// allowRE matches the suppression directive. The check name and a
// free-text reason are both mandatory: an exception nobody can explain
// is a bug with a comment on it. Like //go: directives, the comment
// must begin with the marker — prose that merely mentions
// "//scout:allow" is not a directive.
var allowRE = regexp.MustCompile(`^//scout:allow(\s+(\S+))?\s*(.*)`)

// suppress drops findings covered by a //scout:allow directive on the
// same line or the line directly above, and adds findings for malformed
// directives (missing reason, unknown check). It returns the surviving
// diagnostic set.
func suppress(fset *token.FileSet, pkgs []*pkgDir, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := map[key]bool{}
	var extra []Diagnostic
	for _, pd := range pkgs {
		for _, f := range pd.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					check, reason := m[2], strings.TrimSpace(m[3])
					switch {
					case check == "":
						extra = append(extra, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check: "allow", Message: "scout:allow needs a check name and a reason"})
					case !known[check]:
						extra = append(extra, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check: "allow", Message: fmt.Sprintf("scout:allow names unknown check %q", check)})
					case reason == "":
						extra = append(extra, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check: "allow", Message: fmt.Sprintf("scout:allow %s needs a reason", check)})
					default:
						end := fset.Position(c.End()).Line
						allowed[key{pos.Filename, end, check}] = true
						allowed[key{pos.Filename, end + 1, check}] = true
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed[key{d.File, d.Line, d.Check}] {
			kept = append(kept, d)
		}
	}
	return append(kept, extra...)
}
