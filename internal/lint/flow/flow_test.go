package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"scouts/internal/lint/cfg"
	"scouts/internal/lint/flow"
)

// The test analysis: a must-analysis tracking whether check() was called
// on every path. Join is AND, so a merge point is "checked" only when
// both arms checked — the exact lattice ctxflow uses for ctx checks.
type mustChecked struct{}

func (mustChecked) Entry() bool          { return false }
func (mustChecked) Join(a, b bool) bool  { return a && b }
func (mustChecked) Equal(a, b bool) bool { return a == b }

func transfer(b *cfg.Block, in bool) bool {
	out := in
	for _, n := range b.Nodes {
		cfg.NodeInspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "check" {
					out = true
				}
			}
			return true
		})
	}
	return out
}

// factAtMark runs the analysis and returns the input fact of the block
// holding mark<n>(), replayed through the block's nodes up to the mark.
func factAtMark(t *testing.T, src, mark string) bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", "package p\nfunc check(){}\nfunc mark1(){}\nfunc mark2(){}\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var g *cfg.Graph
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			g = cfg.New(fd.Body)
		}
	}
	if g == nil {
		t.Fatal("func f not found")
	}
	res := flow.Forward(g, mustChecked{}, transfer)
	for _, b := range g.Blocks {
		fact, reached := res.At(b)
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			hit := false
			cfg.NodeInspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == mark {
					hit = true
				}
				return !hit
			})
			if hit {
				return fact
			}
			fact = transferNode(n, fact)
		}
	}
	t.Fatalf("mark %s not reached", mark)
	return false
}

func transferNode(n ast.Node, in bool) bool {
	out := in
	cfg.NodeInspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "check" {
				out = true
			}
		}
		return true
	})
	return out
}

func TestStraightLine(t *testing.T) {
	if factAtMark(t, `func f() { mark1() }`, "mark1") {
		t.Fatal("fact true before any check")
	}
	if !factAtMark(t, `func f() { check(); mark1() }`, "mark1") {
		t.Fatal("fact false after a check")
	}
}

func TestBranchMustJoin(t *testing.T) {
	// Checked on one arm only: the join must be unchecked.
	src := `func f(c bool) {
	if c {
		check()
	}
	mark1()
}`
	if factAtMark(t, src, "mark1") {
		t.Fatal("one-armed check must not survive the join")
	}
	// Checked on both arms: the join is checked.
	src = `func f(c bool) {
	if c {
		check()
	} else {
		check()
	}
	mark1()
}`
	if !factAtMark(t, src, "mark1") {
		t.Fatal("both-armed check must survive the join")
	}
}

func TestEarlyReturnKeepsFact(t *testing.T) {
	// The unchecked path returns early, so the fallthrough is checked.
	src := `func f(c bool) {
	if !c {
		return
	}
	check()
	mark1()
}`
	if !factAtMark(t, src, "mark1") {
		t.Fatal("early return should not pollute the surviving path")
	}
}

func TestLoopBackEdge(t *testing.T) {
	// The check happens inside the loop; the loop head joins the entry
	// path (unchecked) with the back edge (checked) — so the body's first
	// iteration fact must be unchecked.
	src := `func f(n int) {
	for i := 0; i < n; i++ {
		mark1()
		check()
	}
	mark2()
}`
	if factAtMark(t, src, "mark1") {
		t.Fatal("first iteration cannot rely on a later check")
	}
	// After the loop: the zero-iteration path never checked.
	if factAtMark(t, src, "mark2") {
		t.Fatal("zero-iteration path must dominate the loop exit")
	}
}

func TestCheckBeforeLoopSurvives(t *testing.T) {
	src := `func f(n int) {
	check()
	for i := 0; i < n; i++ {
		mark1()
	}
	mark2()
}`
	if !factAtMark(t, src, "mark1") || !factAtMark(t, src, "mark2") {
		t.Fatal("a dominating check must survive the loop")
	}
}

func TestUnreachableBlockHasNoFact(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", `package p
func f() {
	return
	_ = 1
}`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	g := cfg.New(fd.Body)
	res := flow.Forward(g, mustChecked{}, transfer)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		_, ok := res.At(b)
		if ok && !reach[b] {
			t.Fatalf("unreachable block %d has a fact:\n%s", b.Index, g)
		}
		if !ok && reach[b] {
			t.Fatalf("reachable block %d has no fact:\n%s", b.Index, g)
		}
	}
}
