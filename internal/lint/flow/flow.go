// Package flow is a generic forward worklist dataflow engine over the
// cfg package's graphs. An analysis supplies a join semilattice — an
// entry fact, a Join, and an Equal — plus a transfer function mapping a
// block's input fact to its output fact; the engine iterates to a
// fixpoint and hands back the per-block input facts. Analyzers then make
// one reporting pass per block, replaying the transfer from the settled
// input fact and flagging nodes whose fact violates the invariant.
//
// The engine is optimistic: a block's fact is unset until the first
// value flows into it, and Join only ever combines facts that actually
// arrived along an edge. That makes must-analyses (Join = intersection)
// precise on loops without a special "top" element: the back edge's
// first contribution is whatever the loop body established, not a
// pessimistic bottom.
//
// Iteration order is deterministic — blocks are processed in index
// order, which the cfg builder makes source order — so analyzer output
// is stable run to run, the same invariant the determinism analyzer
// enforces on the rest of the repository.
package flow

import (
	"scouts/internal/lint/cfg"
)

// Lattice is the fact domain of one analysis.
type Lattice[F any] interface {
	// Entry is the fact holding at function entry.
	Entry() F
	// Join combines the facts arriving along two edges into the fact
	// holding where they meet. It must be commutative, associative and
	// idempotent, and must not mutate its arguments.
	Join(a, b F) F
	// Equal reports whether two facts are indistinguishable; the
	// fixpoint stops when every block's input fact stops changing.
	Equal(a, b F) bool
}

// Transfer maps a block's input fact to its output fact. It must not
// mutate in; return a fresh fact (or in itself when nothing changed).
type Transfer[F any] func(b *cfg.Block, in F) F

// Result holds the settled facts of one Forward run.
type Result[F any] struct {
	// In[b] is the fact at b's start; unset (ok == false in At) for
	// blocks unreachable from Entry.
	in  map[*cfg.Block]F
	set map[*cfg.Block]bool
}

// At returns the input fact of b and whether b was ever reached.
func (r *Result[F]) At(b *cfg.Block) (F, bool) {
	f, ok := r.in[b], r.set[b]
	return f, ok
}

// maxPasses bounds fixpoint iteration. Facts in this package's analyses
// come from finite lattices (bools, small sets keyed by syntax), so
// termination is structural; the bound is a backstop against a buggy
// Join that oscillates, sized far above any real function's needs.
const maxPasses = 64

// Forward runs the analysis to fixpoint and returns the per-block input
// facts.
func Forward[F any](g *cfg.Graph, lat Lattice[F], tf Transfer[F]) *Result[F] {
	res := &Result[F]{in: map[*cfg.Block]F{}, set: map[*cfg.Block]bool{}}
	res.in[g.Entry] = lat.Entry()
	res.set[g.Entry] = true

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, b := range g.Blocks {
			if !res.set[b] {
				continue
			}
			out := tf(b, res.in[b])
			for _, s := range b.Succs {
				if !res.set[s] {
					res.in[s] = out
					res.set[s] = true
					changed = true
					continue
				}
				joined := lat.Join(res.in[s], out)
				if !lat.Equal(joined, res.in[s]) {
					res.in[s] = joined
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return res
}
