package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Obs extends PR 6's self-observability plane to every future endpoint:
// a route registered on a net/http ServeMux must resolve to a handler
// that records a telemetry sample — a call to an Observe/ObserveDuration
// method somewhere on its static call path. In this repo that means the
// handler is wrapped in the serving instrument middleware (or an
// equivalent that feeds a latency histogram); a bare mux.HandleFunc
// serves requests no dashboard, soak verdict or alert will ever see.
//
// Resolution is static and shallow by design: the handler argument is
// unwrapped through http.HandlerFunc conversions and followed through
// same-package function calls, function literals, and function/method
// references, two levels deep. A handler the analyzer cannot see into
// (an externally-built http.Handler value) is reported — route it
// through an instrument wrapper, or document the exception with
// //scout:allow obs <reason>.
var Obs = &Analyzer{
	Name: "obs",
	Doc:  "ServeMux routes must record a telemetry sample (wrap handlers in an instrument middleware)",
	Run:  runObs,
}

func runObs(p *Pass) {
	decls := packageFuncDecls(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || namedPath(sig.Recv().Type()) != "net/http.ServeMux" {
				return true
			}
			if handlerObserves(p, decls, call.Args[1], 0) {
				return true
			}
			p.Reportf(call.Args[1].Pos(),
				"route %s registers a handler with no telemetry sample on its call path (no Observe/ObserveDuration); wrap it in the instrument middleware",
				routeName(call.Args[0]))
			return true
		})
	}
}

// packageFuncDecls indexes the package's function and method
// declarations by their type object, so handler references can be
// followed to their bodies.
func packageFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// maxObsDepth bounds how many same-package call hops the analyzer
// follows from the registration to an Observe call. Two is enough for
// every sane middleware shape (instrument -> returned closure) without
// walking whole call graphs.
const maxObsDepth = 2

// handlerObserves reports whether the handler expression statically
// reaches a telemetry observation.
func handlerObserves(p *Pass, decls map[*types.Func]*ast.FuncDecl, e ast.Expr, depth int) bool {
	if depth > maxObsDepth {
		return false
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return bodyObserves(p, decls, v.Body, depth)
	case *ast.CallExpr:
		// http.HandlerFunc(x) and friends are conversions, not calls:
		// look through to the converted expression.
		if tv, ok := p.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return handlerObserves(p, decls, v.Args[0], depth)
		}
		if fd := declOf(p, decls, v.Fun); fd != nil {
			return bodyObserves(p, decls, fd.Body, depth+1)
		}
		return false
	case *ast.Ident, *ast.SelectorExpr:
		// A function or method reference (mux.HandleFunc("/x", s.handleX)).
		if fd := declOf(p, decls, e); fd != nil {
			return bodyObserves(p, decls, fd.Body, depth+1)
		}
	}
	return false
}

// declOf resolves a function-valued expression to its same-package
// declaration, or nil.
func declOf(p *Pass, decls map[*types.Func]*ast.FuncDecl, e ast.Expr) *ast.FuncDecl {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	if fn, ok := p.Info.Uses[id].(*types.Func); ok {
		return decls[fn]
	}
	return nil
}

// bodyObserves scans a function body (nested literals included) for a
// method call named Observe or ObserveDuration, following same-package
// callees one more hop.
func bodyObserves(p *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, depth int) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Observe" || sel.Sel.Name == "ObserveDuration" {
				found = true
				return false
			}
		}
		if depth < maxObsDepth {
			if fd := declOf(p, decls, call.Fun); fd != nil && bodyObserves(p, decls, fd.Body, depth+1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// routeName renders the pattern argument for the report ("/v1/predict"
// for literals, the expression text otherwise).
func routeName(e ast.Expr) string {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return strconv.Quote(s)
		}
	}
	return types.ExprString(e)
}
