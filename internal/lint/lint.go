// Package lint is the repo's project-customized static-analysis suite:
// a from-scratch driver plus a catalog of analyzers that turn the
// invariants earlier PRs established by hand — bit-identical training at
// any worker count, zero-alloc hot kernels, reflection-free sorts,
// lock-safe shared caches, hardened serving decode paths — into checks
// the build refuses to break. Only standard-library packages are used
// (go/parser, go/ast, go/types, go/importer, go/token): the module has
// no dependencies and the linter must not be the first.
//
// The driver (driver.go) type-checks every package under a root and
// hands each analyzer the typed ASTs. Findings print as
//
//	file:line:col: [check] message
//
// and any finding can be suppressed with a trailing or preceding
//
//	//scout:allow <check> <reason>
//
// comment; an allow without a reason (or naming an unknown check) is
// itself a finding, so exceptions stay documented. cmd/scoutlint is the
// CLI; `make lint` runs it over the module and `make ci` gates on it.
package lint

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// Diagnostic is one finding. File is the path as the driver saw it,
// Line/Col are 1-based, Check names the analyzer (or "allow" for
// malformed suppressions).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the check name used in reports and //scout:allow directives.
	Name string
	// Doc is the one-line invariant the check enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass is everything an analyzer sees for one package: the parsed files,
// the type info, and the package's position inside the module (RelDir is
// "" for the module root, "internal/core", "cmd/scoutd", ...).
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Info   *types.Info
	Pkg    *types.Package
	RelDir string

	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer catalog in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		NoMapIter,
		SortSlice,
		HotPath,
		Locks,
		HTTPGuard,
		Obs,
		BinIO,
		CtxFlow,
		Outbound,
		Leak,
		Atomicity,
		FsyncRename,
	}
}

// ---- shared type-resolution helpers ----

// calleeFunc resolves a call to its static callee, or nil for calls
// through function values, method values and built-ins. Explicit generic
// instantiations (f[T](x)) are unwrapped to the generic function; an
// index expression that is really a map/slice access resolves to a
// non-func object and falls out as nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch v := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(v.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(v.X)
	}
	var id *ast.Ident
	switch fn := fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the function or method pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether the call invokes the named builtin (append,
// make, ...), resolving through the identifier so shadowed names don't
// match.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// objectOf resolves an expression to the variable it names, or nil when
// the expression is not a plain identifier.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// exprObject resolves an identifier or a field/package selector to its
// object: the variable for `ch`, the field for `s.ch` (one *types.Var
// shared by every instance of the struct), the package var for `pkg.V`.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objectOf(info, v)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			return sel.Obj()
		}
		return info.Uses[v.Sel]
	}
	return nil
}

// recvKey renders a lock receiver ("s.mu", "mu") so Lock/Unlock calls on
// the same variable can be paired syntactically.
func recvKey(e ast.Expr) string { return types.ExprString(e) }

// namedPath returns the fully-qualified path of a (possibly aliased,
// possibly pointed-to) named type, e.g. "sync.Mutex", or "".
func namedPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// sortDiagnostics orders findings by file, then line, column and check,
// so the tool's output (and the test harness's comparisons) are
// deterministic — the same invariant the determinism analyzer enforces
// on the rest of the repo.
func sortDiagnostics(ds []Diagnostic) {
	slices.SortFunc(ds, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.File, b.File); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Line, b.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Col, b.Col); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Check, b.Check); c != 0 {
			return c
		}
		return cmp.Compare(a.Message, b.Message)
	})
}

// isTestFile reports whether the position's file is a _test.go file. The
// driver does not feed test files to analyzers today, but analyzers
// guard anyway so the driver can widen its net later without silently
// changing what the checks mean.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
