package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoMapIter flags the bug class PR 1's ordered-importance merge fixed by
// hand: a `range` over a map appending into a slice that the function
// then returns, with no intervening sort. Map iteration order is
// deliberately randomized by the runtime, so such a slice changes across
// runs — the exact failure mode that breaks bit-identical snapshots and
// golden tables.
//
// The check is function-local and conservative: it fires only when (a)
// the ranged expression's type is a map, (b) the loop body appends to a
// local slice variable, (c) that variable appears in a return statement
// (or is a named result), and (d) no sort/slices ordering call takes the
// variable after the loop. Writing into another map, accumulating a
// scalar, or sorting before returning are all fine.
var NoMapIter = &Analyzer{
	Name: "nomapiter",
	Doc:  "map iteration order must not reach a returned slice unsorted",
	Run:  runNoMapIter,
}

func runNoMapIter(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapIterFunc(p, fd)
		}
	}
}

func checkMapIterFunc(p *Pass, fd *ast.FuncDecl) {
	// Named results escape via bare returns too.
	namedResults := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					namedResults[obj] = true
				}
			}
		}
	}

	type mapAppend struct {
		obj      types.Object
		rangePos token.Pos // the `for ... range m` position, for the report
		loopEnd  token.Pos
	}
	var appends []mapAppend

	// Pass 1: appends to local slices inside map-range bodies.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltin(p.Info, call, "append") || len(call.Args) == 0 {
				return true
			}
			dst := objectOf(p.Info, as.Lhs[0])
			src := objectOf(p.Info, call.Args[0])
			if dst == nil || dst != src {
				return true
			}
			appends = append(appends, mapAppend{obj: dst, rangePos: rng.For, loopEnd: rng.End()})
			return true
		})
		return true
	})
	if len(appends) == 0 {
		return
	}

	// Pass 2: does the variable get ordered after the loop, and does it
	// escape through a return?
	for _, ma := range appends {
		sorted := false
		escapes := namedResults[ma.obj]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.CallExpr:
				if s.Pos() > ma.loopEnd && isOrderingCall(p.Info, s, ma.obj) {
					sorted = true
				}
			case *ast.ReturnStmt:
				for _, res := range s.Results {
					if resultMentions(p.Info, res, ma.obj) {
						escapes = true
					}
				}
			}
			return true
		})
		if escapes && !sorted {
			p.Reportf(ma.rangePos,
				"map iteration order reaches returned slice %q; sort it (slices.Sort*) after the loop or build a deterministic order first",
				ma.obj.Name())
		}
	}
}

// isOrderingCall reports whether the call imposes a deterministic order
// on obj: any sort.* or slices.* function taking obj as its first
// argument (sort.Strings, slices.SortFunc, even sort.Slice — the
// sortslice check complains about the latter separately).
func isOrderingCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
		return false
	}
	return len(call.Args) > 0 && objectOf(info, call.Args[0]) == obj
}

// resultMentions reports whether the returned expression is obj itself
// or a direct slicing/call wrapping of it (`return out`, `return
// out[:k]`, `return dedupe(out)`). len/cap calls are exempt: a slice's
// length is independent of its element order.
func resultMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			(isBuiltin(info, call, "len") || isBuiltin(info, call, "cap")) {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}
