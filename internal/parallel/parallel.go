// Package parallel is the deterministic worker-pool substrate of the
// repository's parallel execution layer. Every hot path that fans out —
// forest training, per-incident featurization, evaluation prediction —
// funnels through For, which guarantees the same semantics regardless of
// worker count: work items are addressed by index, so callers write results
// into index-addressed slots and any order-sensitive post-processing (rng
// draws, accumulator merges) runs sequentially over those slots afterwards.
//
// The contract that keeps parallel output bit-identical to sequential
// output is: (1) each work item must be a pure function of its index plus
// read-only shared state, and (2) anything order-dependent — floating-point
// accumulation, random sampling — happens after For returns, in index
// order. See DESIGN.md "Parallel execution layer".
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n when positive, otherwise
// runtime.GOMAXPROCS(0). This is the default applied to every Workers
// option in the repository.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) using up to `workers` goroutines
// (resolved through Workers). Items are handed out dynamically via an
// atomic counter, so uneven item costs balance across workers. With
// workers <= 1 — or n == 1 — it degrades to a plain loop on the calling
// goroutine, which keeps single-core runs allocation-free and makes the
// sequential path literally the same code path callers can diff against.
//
// fn must not panic across items it does not own and must treat shared
// state as read-only; results should be written to index-addressed slots.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with the given worker count and collects the
// results in index order — the common "parallel compute, sequential
// consume" shape of the evaluation drivers.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
