package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 137
		hits := make([]atomic.Int32, n)
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not respected")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("default workers must be >= 1")
	}
}
