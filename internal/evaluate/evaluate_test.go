package evaluate

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scouts/internal/core"
	"scouts/internal/incident"
)

// fixedPredictor answers from a map of incident ID -> responsible.
type fixedPredictor struct {
	answers map[string]bool
}

func (f fixedPredictor) PredictIncident(in *incident.Incident) core.Prediction {
	resp, ok := f.answers[in.ID]
	if !ok {
		return core.Prediction{Verdict: core.VerdictFallback, Model: "none"}
	}
	v := core.VerdictNotResponsible
	if resp {
		v = core.VerdictResponsible
	}
	return core.Prediction{Verdict: v, Responsible: resp, Confidence: 0.9, Model: "rf"}
}

// batchedPredictor wraps fixedPredictor with the BatchPredictor interface,
// standing in for a trained Scout's chunked path.
type batchedPredictor struct {
	fixedPredictor
	calls int
}

func (b *batchedPredictor) PredictIncidentBatch(ins []*incident.Incident) []core.Prediction {
	b.calls++
	out := make([]core.Prediction, len(ins))
	for i, in := range ins {
		out[i] = b.PredictIncident(in)
	}
	return out
}

const team = "PhyNet"

func mkIncident(id string, owner string, hops ...incident.Hop) *incident.Incident {
	return &incident.Incident{ID: id, OwnerLabel: owner, CreatedAt: hops[0].Enter, Hops: hops}
}

func TestGainInComputation(t *testing.T) {
	// PhyNet-owned, mis-routed: 3h wasted at Storage, 1h at PhyNet.
	in := mkIncident("a", team,
		incident.Hop{Team: "Storage", Enter: 0, Exit: 3},
		incident.Hop{Team: team, Enter: 3, Exit: 4},
	)
	r := Run(fixedPredictor{answers: map[string]bool{"a": true}}, []*incident.Incident{in}, team, nil, rand.New(rand.NewSource(1)))
	if len(r.GainIn) != 1 || math.Abs(r.GainIn[0]-0.75) > 1e-9 {
		t.Fatalf("gain-in = %v, want [0.75]", r.GainIn)
	}
	if math.Abs(r.BestGainIn[0]-0.75) > 1e-9 {
		t.Fatalf("best gain-in = %v", r.BestGainIn)
	}
	if r.ErrorOut != 0 {
		t.Fatalf("error-out = %v", r.ErrorOut)
	}
}

func TestFalseNegativeZeroGain(t *testing.T) {
	in := mkIncident("a", team,
		incident.Hop{Team: "Storage", Enter: 0, Exit: 3},
		incident.Hop{Team: team, Enter: 3, Exit: 4},
	)
	r := Run(fixedPredictor{answers: map[string]bool{"a": false}}, []*incident.Incident{in}, team, nil, rand.New(rand.NewSource(1)))
	if r.GainIn[0] != 0 {
		t.Fatalf("FN should yield zero gain, got %v", r.GainIn)
	}
	if r.ErrorOut != 1 {
		t.Fatalf("error-out = %v, want 1", r.ErrorOut)
	}
	// The opportunity is still recorded as best possible.
	if r.BestGainIn[0] != 0.75 {
		t.Fatalf("best gain-in = %v", r.BestGainIn)
	}
}

func TestGainOutComputation(t *testing.T) {
	// Storage-owned, dragged through PhyNet for 2h of 4h.
	in := mkIncident("b", "Storage",
		incident.Hop{Team: team, Enter: 0, Exit: 2},
		incident.Hop{Team: "Storage", Enter: 2, Exit: 4},
	)
	r := Run(fixedPredictor{answers: map[string]bool{"b": false}}, []*incident.Incident{in}, team, nil, rand.New(rand.NewSource(1)))
	if len(r.GainOut) != 1 || math.Abs(r.GainOut[0]-0.5) > 1e-9 {
		t.Fatalf("gain-out = %v", r.GainOut)
	}
	if r.OverheadIn[0] != 0 {
		t.Fatalf("true negative should add zero overhead, got %v", r.OverheadIn)
	}
}

func TestFalsePositiveSamplesOverhead(t *testing.T) {
	in := mkIncident("c", "Storage",
		incident.Hop{Team: "Storage", Enter: 0, Exit: 4},
	)
	baseline := []float64{0.3}
	r := Run(fixedPredictor{answers: map[string]bool{"c": true}}, []*incident.Incident{in}, team, baseline, rand.New(rand.NewSource(1)))
	if len(r.OverheadIn) != 1 || r.OverheadIn[0] != 0.3 {
		t.Fatalf("overhead = %v, want sampled 0.3", r.OverheadIn)
	}
}

func TestFallbackSkipped(t *testing.T) {
	in := mkIncident("d", team, incident.Hop{Team: team, Enter: 0, Exit: 1})
	r := Run(fixedPredictor{}, []*incident.Incident{in}, team, nil, rand.New(rand.NewSource(1)))
	if r.Evaluated != 0 || r.Skipped != 1 {
		t.Fatalf("evaluated=%d skipped=%d", r.Evaluated, r.Skipped)
	}
}

func TestCorrectOnAlreadyCorrect(t *testing.T) {
	// Correctly-routed PhyNet incident (single hop at PhyNet).
	a := mkIncident("a", team, incident.Hop{Team: team, Enter: 0, Exit: 2})
	// Non-PhyNet incident never touching PhyNet.
	b := mkIncident("b", "DNS", incident.Hop{Team: "DNS", Enter: 0, Exit: 2})
	r := Run(fixedPredictor{answers: map[string]bool{"a": true, "b": false}},
		[]*incident.Incident{a, b}, team, nil, rand.New(rand.NewSource(1)))
	if r.CorrectOnAlreadyCorrect != 1 {
		t.Fatalf("correct-on-correct = %v", r.CorrectOnAlreadyCorrect)
	}
}

func TestOverheadDistribution(t *testing.T) {
	ins := []*incident.Incident{
		mkIncident("a", "Storage",
			incident.Hop{Team: team, Enter: 0, Exit: 1},
			incident.Hop{Team: "Storage", Enter: 1, Exit: 4}),
		mkIncident("b", team, incident.Hop{Team: team, Enter: 0, Exit: 2}),
		mkIncident("c", "DNS", incident.Hop{Team: "DNS", Enter: 0, Exit: 1}),
	}
	d := OverheadDistribution(ins, team)
	if len(d) != 1 || math.Abs(d[0]-0.25) > 1e-9 {
		t.Fatalf("overhead distribution = %v", d)
	}
}

func TestWastedAndTeamTimeAfter(t *testing.T) {
	in := mkIncident("a", team,
		incident.Hop{Team: "Storage", Enter: 0, Exit: 2},
		incident.Hop{Team: "SLB", Enter: 2, Exit: 5},
		incident.Hop{Team: team, Enter: 5, Exit: 7},
	)
	if got := WastedAfter(in, team, 0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("WastedAfter(0) = %v", got)
	}
	if got := WastedAfter(in, team, 3); math.Abs(got-2) > 1e-9 {
		t.Fatalf("WastedAfter(3) = %v (partial hop clipping)", got)
	}
	if got := TeamTimeAfter(in, team, 6); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TeamTimeAfter(6) = %v", got)
	}
	if got := TeamTimeAfter(in, team, 10); got != 0 {
		t.Fatalf("TeamTimeAfter past end = %v", got)
	}
}

// TestRunWorkersDeterministic pins the parallel fan-out contract: because
// predictions fill an index-addressed slice and the scoring loop (including
// the baseline-overhead rng draws) runs sequentially in incident order, the
// result must be identical at every worker count.
func TestRunWorkersDeterministic(t *testing.T) {
	answers := map[string]bool{}
	var ins []*incident.Incident
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("in-%d", i)
		switch i % 3 {
		case 0: // PhyNet-owned, mis-routed
			ins = append(ins, mkIncident(id, team,
				incident.Hop{Team: "Storage", Enter: 0, Exit: 2},
				incident.Hop{Team: team, Enter: 2, Exit: 3}))
			answers[id] = true
		case 1: // other-owned, correctly rejected
			ins = append(ins, mkIncident(id, "Storage",
				incident.Hop{Team: team, Enter: 0, Exit: 1},
				incident.Hop{Team: "Storage", Enter: 1, Exit: 3}))
			answers[id] = false
		default: // other-owned false positive: consumes one baseline rng draw
			ins = append(ins, mkIncident(id, "DNS",
				incident.Hop{Team: "DNS", Enter: 0, Exit: 2}))
			answers[id] = true
		}
	}
	baseline := []float64{0.1, 0.25, 0.4, 0.6}
	p := fixedPredictor{answers: answers}
	want := RunWorkers(p, ins, team, baseline, rand.New(rand.NewSource(42)), 1)
	for _, w := range []int{0, 2, 8} {
		got := RunWorkers(p, ins, team, baseline, rand.New(rand.NewSource(42)), w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d result differs from workers=1:\n%+v\nvs\n%+v", w, got, want)
		}
	}
	// And the legacy entry point is the same computation.
	if seq := Run(p, ins, team, baseline, rand.New(rand.NewSource(42))); !reflect.DeepEqual(want, seq) {
		t.Fatal("Run and RunWorkers disagree")
	}
}

// TestRunWorkersBatchPathEquivalent pins that a predictor advertising the
// batched interface is scored identically to the per-incident path, at any
// worker count, and that the batched path is actually taken.
func TestRunWorkersBatchPathEquivalent(t *testing.T) {
	answers := map[string]bool{}
	var ins []*incident.Incident
	for i := 0; i < 150; i++ { // > 2 chunks of evalBatchSize
		id := fmt.Sprintf("in-%d", i)
		if i%2 == 0 {
			ins = append(ins, mkIncident(id, team,
				incident.Hop{Team: "Storage", Enter: 0, Exit: 2},
				incident.Hop{Team: team, Enter: 2, Exit: 3}))
			answers[id] = i%4 == 0
		} else {
			ins = append(ins, mkIncident(id, "DNS",
				incident.Hop{Team: "DNS", Enter: 0, Exit: 2}))
			answers[id] = i%3 == 0
		}
	}
	baseline := []float64{0.1, 0.3, 0.7}
	single := fixedPredictor{answers: answers}
	want := RunWorkers(single, ins, team, baseline, rand.New(rand.NewSource(7)), 1)
	for _, w := range []int{1, 4} {
		bp := &batchedPredictor{fixedPredictor: single}
		got := RunWorkers(bp, ins, team, baseline, rand.New(rand.NewSource(7)), w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d batched result differs:\n%+v\nvs\n%+v", w, got, want)
		}
		if wantCalls := (len(ins) + evalBatchSize - 1) / evalBatchSize; bp.calls != wantCalls {
			t.Fatalf("workers=%d made %d batch calls, want %d", w, bp.calls, wantCalls)
		}
	}
}

func TestNthTeamExit(t *testing.T) {
	in := mkIncident("a", team,
		incident.Hop{Team: "Storage", Enter: 0, Exit: 2},
		incident.Hop{Team: "SLB", Enter: 2, Exit: 5},
		incident.Hop{Team: team, Enter: 5, Exit: 7},
	)
	if got := NthTeamExit(in, 0); got != 0 {
		t.Fatalf("n=0: %v", got)
	}
	if got := NthTeamExit(in, 2); got != 5 {
		t.Fatalf("n=2: %v", got)
	}
	if got := NthTeamExit(in, 10); got != 7 {
		t.Fatalf("n beyond teams: %v", got)
	}
}
