// Package evaluate implements the §7 evaluation metrics that compare a
// Scout against the operator's existing incident-routing process: gain-in
// and gain-out (investigation time saved), overhead-in (time wasted on
// false positives, estimated from the baseline's mis-route overhead
// distribution, Figure 6), and error-out (incidents mistakenly routed
// away). All times are fractions of each incident's total investigation
// time, as in the paper.
package evaluate

import (
	"math/rand"

	"scouts/internal/core"
	"scouts/internal/incident"
	"scouts/internal/parallel"
)

// Predictor is anything that can answer for an incident; *core.Scout
// implements it, and the Scout Master simulations use synthetic ones.
// Run fans predictions out across goroutines, so implementations must be
// safe for concurrent PredictIncident calls (a trained Scout is: it is
// read-only at inference).
type Predictor interface {
	PredictIncident(in *incident.Incident) core.Prediction
}

// BatchPredictor is the batched form of Predictor: element i of the result
// must equal PredictIncident(ins[i]). Predictors that implement it (a
// trained Scout does) are evaluated in chunks, so the forest streams
// tree-major over each chunk instead of once per incident.
type BatchPredictor interface {
	PredictIncidentBatch(ins []*incident.Incident) []core.Prediction
}

// evalBatchSize is the evaluation chunk size: large enough that a chunk
// amortizes the tree-major sweep, small enough that chunks still balance
// across workers on modest test sets.
const evalBatchSize = 64

// predictAll fans predictions over the test set: batched in chunks when
// the predictor supports it, per incident otherwise. Either way result i
// is the prediction for test[i], so downstream scoring is unchanged.
func predictAll(p Predictor, test []*incident.Incident, workers int) []core.Prediction {
	bp, ok := p.(BatchPredictor)
	if !ok {
		return parallel.Map(workers, len(test), func(i int) core.Prediction {
			return p.PredictIncident(test[i])
		})
	}
	preds := make([]core.Prediction, len(test))
	chunks := (len(test) + evalBatchSize - 1) / evalBatchSize
	parallel.For(workers, chunks, func(c int) {
		lo := c * evalBatchSize
		hi := min(lo+evalBatchSize, len(test))
		copy(preds[lo:hi], bp.PredictIncidentBatch(test[lo:hi]))
	})
	return preds
}

// Result aggregates the evaluation over a test set. The slices hold one
// fraction-of-investigation-time entry per applicable incident, ready to
// be plotted as CDFs (Figures 7 and 11).
type Result struct {
	// GainIn: team-owned, mis-routed incidents — fraction of time saved
	// by routing them directly to the team.
	GainIn []float64
	// BestGainIn is GainIn under a perfect (100% accurate) gate-keeper.
	BestGainIn []float64
	// GainOut: incidents not owned by the team that the baseline dragged
	// through it — fraction of time saved by routing them away.
	GainOut []float64
	// BestGainOut is GainOut under a perfect gate-keeper.
	BestGainOut []float64
	// OverheadIn: false positives — the team investigates an incident
	// that was never its problem. Ground truth for this counterfactual
	// does not exist, so (like the paper) each false positive draws from
	// the baseline's overhead distribution.
	OverheadIn []float64
	// ErrorOut is the fraction of the team's incidents mistakenly routed
	// away (false negatives).
	ErrorOut float64
	// CorrectOnAlreadyCorrect is the fraction of correctly-routed
	// incidents (no gain opportunity) the Scout also classified correctly
	// (§7.1 reports 98.9%).
	CorrectOnAlreadyCorrect float64
	// Counts.
	Evaluated, Skipped int
}

// OverheadDistribution returns the baseline overhead-in distribution of
// Figure 6: for every incident the baseline mis-routed through the team,
// the fraction of its total investigation time the team consumed.
func OverheadDistribution(ins []*incident.Incident, team string) []float64 {
	// Hop accounting per incident is independent; compute index-addressed
	// in parallel and collect in incident order so the distribution (and
	// everything sampled from it) is identical at any worker count.
	fractions := parallel.Map(0, len(ins), func(i int) float64 {
		in := ins[i]
		if in.OwnerLabel == team || !in.WentThrough(team) {
			return -1
		}
		if tot := in.TotalTime(); tot > 0 {
			return in.TimeIn(team) / tot
		}
		return -1
	})
	var out []float64
	for _, f := range fractions {
		if f >= 0 {
			out = append(out, f)
		}
	}
	return out
}

// Run evaluates a predictor over a test set for the given team. baseline
// supplies the Figure 6 overhead distribution (normally the training
// trace); rng drives overhead sampling for false positives. Predictions
// fan out over runtime.GOMAXPROCS(0) goroutines; see RunWorkers.
func Run(p Predictor, test []*incident.Incident, team string, baseline []float64, rng *rand.Rand) Result {
	return RunWorkers(p, test, team, baseline, rng, 0)
}

// RunWorkers is Run with an explicit worker count (0 selects
// runtime.GOMAXPROCS(0)). The expensive phase — one prediction per
// incident — runs in parallel into index-addressed slots; the scoring
// phase then consumes them sequentially in incident order, so every rng
// draw for false-positive overhead sampling happens in the same order as
// a fully sequential run and the Result is bit-identical at any worker
// count.
func RunWorkers(p Predictor, test []*incident.Incident, team string, baseline []float64, rng *rand.Rand, workers int) Result {
	preds := predictAll(p, test, workers)
	var r Result
	var correctCorrect, totalCorrectRouted int
	var fn, owned int
	for i, in := range test {
		pred := preds[i]
		if !pred.Usable() {
			r.Skipped++
			continue
		}
		r.Evaluated++
		isOurs := in.OwnerLabel == team
		total := in.TotalTime()
		if total <= 0 {
			continue
		}

		if isOurs {
			owned++
			wasted := (total - in.TimeIn(team)) / total
			if wasted > 0 {
				r.BestGainIn = append(r.BestGainIn, wasted)
				if pred.Responsible {
					r.GainIn = append(r.GainIn, wasted)
				} else {
					r.GainIn = append(r.GainIn, 0)
				}
			} else {
				// Already routed correctly: no gain opportunity.
				totalCorrectRouted++
				if pred.Responsible {
					correctCorrect++
				}
			}
			if !pred.Responsible {
				fn++
			}
			continue
		}

		// Not ours.
		if in.WentThrough(team) {
			saved := in.TimeIn(team) / total
			r.BestGainOut = append(r.BestGainOut, saved)
			if !pred.Responsible {
				r.GainOut = append(r.GainOut, saved)
			} else {
				r.GainOut = append(r.GainOut, 0)
			}
		} else {
			totalCorrectRouted++
			if !pred.Responsible {
				correctCorrect++
			}
		}
		if pred.Responsible {
			// False positive: sample the counterfactual overhead from
			// the baseline distribution.
			if len(baseline) > 0 {
				r.OverheadIn = append(r.OverheadIn, baseline[rng.Intn(len(baseline))])
			} else {
				r.OverheadIn = append(r.OverheadIn, 0.1)
			}
		} else {
			r.OverheadIn = append(r.OverheadIn, 0)
		}
	}
	if owned > 0 {
		r.ErrorOut = float64(fn) / float64(owned)
	}
	if totalCorrectRouted > 0 {
		r.CorrectOnAlreadyCorrect = float64(correctCorrect) / float64(totalCorrectRouted)
	}
	return r
}

// WastedAfter returns the investigation time that hops by teams other than
// `team` consume after time t — the time a correct Scout answer at time t
// would save on a team-owned incident (the Figure 12 CRI replay).
func WastedAfter(in *incident.Incident, team string, t float64) float64 {
	var s float64
	for _, h := range in.Hops {
		if h.Team == team {
			continue
		}
		if h.Exit <= t {
			continue
		}
		start := h.Enter
		if start < t {
			start = t
		}
		s += h.Exit - start
	}
	return s
}

// TeamTimeAfter returns the time `team` spends on the incident after time
// t — what routing the incident away at t would save when the team is not
// responsible.
func TeamTimeAfter(in *incident.Incident, team string, t float64) float64 {
	var s float64
	for _, h := range in.Hops {
		if h.Team != team || h.Exit <= t {
			continue
		}
		start := h.Enter
		if start < t {
			start = t
		}
		s += h.Exit - start
	}
	return s
}

// NthTeamExit returns the time when the n-th distinct team finished its
// investigation (n >= 1), or the creation time for n == 0. If fewer than n
// teams investigated it returns the last hop's exit.
func NthTeamExit(in *incident.Incident, n int) float64 {
	if n <= 0 || len(in.Hops) == 0 {
		return in.CreatedAt
	}
	seen := map[string]bool{}
	for _, h := range in.Hops {
		seen[h.Team] = true
		if len(seen) >= n {
			return h.Exit
		}
	}
	return in.Hops[len(in.Hops)-1].Exit
}
