package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	testLabOnce sync.Once
	testLab     *Lab
	testLabErr  error
)

// smallLab builds a reduced-scale lab shared by all experiment tests.
func smallLab(t *testing.T) *Lab {
	t.Helper()
	testLabOnce.Do(func() {
		testLab, testLabErr = NewLab(LabParams{Seed: 99, Days: 90, IncidentsPerDay: 9})
	})
	if testLabErr != nil {
		t.Fatal(testLabErr)
	}
	return testLab
}

func TestLabShape(t *testing.T) {
	lab := smallLab(t)
	if lab.Log.Len() < 400 {
		t.Fatalf("trace too small: %d", lab.Log.Len())
	}
	if len(lab.Train) == 0 || len(lab.Test) == 0 {
		t.Fatal("empty split")
	}
	if len(lab.TrainX) == 0 || len(lab.TestX) == 0 {
		t.Fatal("empty matrices")
	}
	if len(lab.TrainX[0]) != len(lab.Scout.FeatureNames()) {
		t.Fatal("matrix dimension mismatch")
	}
}

func TestTable1Shape(t *testing.T) {
	lab := smallLab(t)
	r := Table1(lab)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	rf := r.Rows[0]
	if rf.F1 < 0.85 {
		t.Fatalf("RF F1 = %v too low (paper: 0.97)", rf.F1)
	}
	// The paper's ordering: RF is the most accurate model.
	for _, row := range r.Rows[1:] {
		if row.F1 > rf.F1+0.03 {
			t.Fatalf("RF should lead Table 1: %v", r.Rows)
		}
	}
	if !strings.Contains(r.String(), "NLP") {
		t.Fatal("rendering broken")
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(smallLab(t))
	if len(r.Rows) != 12 {
		t.Fatalf("Table 2 should list the 12 datasets, got %d", len(r.Rows))
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3()
	if r.Aggregates.Total != 27 {
		t.Fatalf("total = %d", r.Aggregates.Total)
	}
}

func TestTable4Shape(t *testing.T) {
	lab := smallLab(t)
	r, err := Table4(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	f1 := map[string]float64{}
	for _, row := range r.Rows {
		if row.F1 < 0.3 || row.F1 > 1 {
			t.Fatalf("%s F1 = %v out of band", row.Name, row.F1)
		}
		f1[row.Name] = row.F1
	}
	// The paper's qualitative ordering: GNB is the weakest model.
	for name, v := range f1 {
		if name == "Gaussian naive Bayes" {
			continue
		}
		if f1["Gaussian naive Bayes"] > v+0.05 {
			t.Fatalf("GNB (%v) should trail %s (%v)", f1["Gaussian naive Bayes"], name, v)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	lab := smallLab(t)
	r, err := Table5(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	all := r.Rows[6]
	if all.Name != "All" {
		t.Fatalf("last row should be All: %v", all)
	}
	serverOnly := r.Rows[0]
	if serverOnly.F1 >= all.F1 {
		t.Fatalf("server-only (%v) should trail all features (%v)", serverOnly.F1, all.F1)
	}
}

func TestHeadline(t *testing.T) {
	lab := smallLab(t)
	h := Headline(lab)
	if h.Scout.F1 <= h.Baseline.F1 {
		t.Fatalf("Scout (%v) should beat the baseline (%v)", h.Scout.F1, h.Baseline.F1)
	}
	if h.Scout.F1 < 0.85 {
		t.Fatalf("Scout F1 = %v", h.Scout.F1)
	}
}

func TestFigure1Through4(t *testing.T) {
	lab := smallLab(t)
	f1 := Figure1(lab)
	if len(f1.CreatorCDFs) != 3 || len(f1.MisroutedCDFs) != 3 {
		t.Fatal("figure 1 series missing")
	}
	f2 := Figure2(lab)
	if f2.MeanRatio < 3 {
		t.Fatalf("multi/single ratio = %v, want large (paper: 10x)", f2.MeanRatio)
	}
	f3 := Figure3(lab)
	if len(f3.Reducible.Points) == 0 {
		t.Fatal("figure 3 empty")
	}
	// Paper: for 20% of mis-routed incidents, >50% of time reducible.
	lastQ := f3.Reducible.Points[len(f3.Reducible.Points)-1]
	if lastQ[0] < 50 {
		t.Fatalf("max reducible = %v%%, expected high", lastQ[0])
	}
	f4 := Figure4(lab)
	if f4.Median < 15 || f4.Median > 75 {
		t.Fatalf("waypoint median = %v%%, paper reports 35%%", f4.Median)
	}
}

func TestFigure6And7(t *testing.T) {
	lab := smallLab(t)
	f6 := Figure6(lab)
	if f6.Overhead.Points[0][0] < 0 {
		t.Fatal("overhead cannot be negative")
	}
	f7 := Figure7(lab)
	if f7.ErrorOut > 0.15 {
		t.Fatalf("error-out = %v, too high (paper: 1.7%%)", f7.ErrorOut)
	}
	if f7.CorrectOnCorrect < 0.9 {
		t.Fatalf("correct-on-correct = %v (paper: 98.9%%)", f7.CorrectOnCorrect)
	}
	// Gain-in should track best possible closely in the median (paper: gap
	// < 5%).
	gain := f7.GainIn.Points[5][0]
	best := f7.BestGainIn.Points[5][0]
	if best-gain > 0.25 {
		t.Fatalf("median gain %v too far from best possible %v", gain, best)
	}
}

func TestFigure11(t *testing.T) {
	lab := smallLab(t)
	f := Figure11(lab)
	if len(f.GainIn.Points) == 0 {
		t.Fatal("figure 11 empty")
	}
	if f.ErrorOut > 0.2 {
		t.Fatalf("error-out = %v", f.ErrorOut)
	}
}

func TestFigure12Shape(t *testing.T) {
	lab := smallLab(t)
	f := Figure12(lab, 6)
	if len(f.Rows) != 6 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	// Gains must shrink as the Scout triggers later: by the last teams
	// there is little left to save.
	if f.Rows[5].GainInMax > f.Rows[0].GainInMax+1e-9 && f.Rows[0].GainInMax > 0 {
		t.Fatalf("late triggers should not beat early max gain: %v vs %v",
			f.Rows[5].GainInMax, f.Rows[0].GainInMax)
	}
}

func TestFigure13And14(t *testing.T) {
	lab := smallLab(t)
	f13 := Figure13(lab)
	// Cross-class distances should stochastically dominate within-class
	// ones at the median.
	cross := f13.Cross.Points[5][0]
	within := f13.WithinPos.Points[5][0]
	if cross <= 0 {
		t.Fatal("cross distances empty")
	}
	_ = within // separation is asserted qualitatively in Figure14 below
	f14 := Figure14(lab)
	if len(f14.PerType) != 3 {
		t.Fatalf("figure 14 types = %d", len(f14.PerType))
	}
}

func TestFigure9(t *testing.T) {
	lab := smallLab(t)
	r, err := Figure9(lab, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.N) != 4 {
		t.Fatalf("points = %d", len(r.N))
	}
	// Average case should stay close to baseline for small n; worst case
	// should never beat average by a wide margin.
	if r.Baseline-r.AvgCase[0] > 0.08 {
		t.Fatalf("removing one random monitor dropped F1 too much: %v -> %v", r.Baseline, r.AvgCase[0])
	}
	for i := range r.N {
		if r.WorstCase[i] > r.AvgCase[i]+0.05 {
			t.Fatalf("worst case (%v) above average case (%v) at n=%d", r.WorstCase[i], r.AvgCase[i], r.N[i])
		}
	}
}

func TestReplaySmall(t *testing.T) {
	lab := smallLab(t)
	pts, err := Replay(lab, ReplayOptions{WarmupDays: 40, RetrainEveryDays: 20, EvalChunkDays: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no replay points")
	}
	for _, p := range pts {
		if p.F1 < 0 || p.F1 > 1 {
			t.Fatalf("F1 %v out of range", p.F1)
		}
	}
}

func TestReplayAlternativeDecider(t *testing.T) {
	lab := smallLab(t)
	pts, err := Replay(lab, ReplayOptions{WarmupDays: 45, RetrainEveryDays: 45, EvalChunkDays: 45, Decider: DeciderAdaBoost})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points with adaboost decider")
	}
}

func TestFigure15(t *testing.T) {
	lab := smallLab(t)
	f := Figure15(lab, 3, 10)
	if len(f.PerCount) != 3 {
		t.Fatalf("series = %d", len(f.PerCount))
	}
	// More Scouts help: the mean of the pooled distribution grows.
	mean := func(s Series) float64 {
		sum := 0.0
		for _, p := range s.Points {
			sum += p[0]
		}
		return sum / float64(len(s.Points))
	}
	if mean(f.PerCount[2]) <= mean(f.PerCount[0]) {
		t.Fatalf("3 Scouts (%v) should beat 1 (%v)", mean(f.PerCount[2]), mean(f.PerCount[0]))
	}
	if mean(f.BestPossible) < mean(f.PerCount[2]) {
		t.Fatal("best possible should dominate")
	}
}

func TestFigure16(t *testing.T) {
	lab := smallLab(t)
	f := Figure16(lab, 4, 150)
	cells := f.PerCount[1]
	if len(cells) != 7*6 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Higher accuracy should produce higher average gain, comparing the
	// extreme alpha values at beta = 0.
	var low, high float64
	for _, c := range cells {
		if c.Beta != 0 {
			continue
		}
		if c.Alpha == 0.70 {
			low = c.Avg
		}
		if c.Alpha == 1.0 {
			high = c.Avg
		}
	}
	if high <= low {
		t.Fatalf("alpha=1 (%v) should beat alpha=0.7 (%v)", high, low)
	}
}

func TestStorageScout(t *testing.T) {
	lab := smallLab(t)
	r := StorageScout(lab)
	if r.Row.Recall < 0.8 {
		t.Fatalf("rule scout recall = %v, should be high (paper: 99.5%%)", r.Row.Recall)
	}
	if r.Row.Precision > r.Row.Recall {
		t.Fatalf("rule scout should trade precision for recall: %v", r.Row)
	}
}

func TestInferenceLatency(t *testing.T) {
	lab := smallLab(t)
	l := InferenceLatency(lab, 20)
	if l.Samples != 20 || l.MeanSeconds <= 0 {
		t.Fatalf("latency result: %+v", l)
	}
	if l.MeanSeconds > 5 {
		t.Fatalf("inference too slow: %v s", l.MeanSeconds)
	}
}
