package experiments

import (
	"encoding/json"
	"testing"
)

func TestOutageCurve(t *testing.T) {
	lab := smallLab(t)
	r, err := OutageCurve(lab, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if r.Datasets < 2 || len(r.Points) != r.Datasets+1 {
		t.Fatalf("datasets = %d, points = %d", r.Datasets, len(r.Points))
	}
	if r.Incidents == 0 {
		t.Fatal("no model-path incidents to evaluate")
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.BlackoutFraction != 0 || last.BlackoutFraction != 1 {
		t.Fatalf("sweep must span 0 to 1, got %v .. %v", first.BlackoutFraction, last.BlackoutFraction)
	}
	if first.Accuracy <= 0.5 {
		t.Fatalf("clean accuracy = %v, model should beat a coin", first.Accuracy)
	}
	if first.Accuracy != first.RawAccuracy {
		t.Fatalf("at 0%% blackout retained (%v) and raw (%v) accuracy must agree", first.Accuracy, first.RawAccuracy)
	}
	if last.Accuracy != 0 || last.FallbackRate != 1 {
		t.Fatalf("total blackout must fall back everywhere: %+v", last)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Accuracy > r.Points[i-1].Accuracy {
			t.Fatalf("accuracy not monotone at point %d: %v > %v",
				i, r.Points[i].Accuracy, r.Points[i-1].Accuracy)
		}
		if r.Points[i].DarkDatasets != i {
			t.Fatalf("point %d darkens %d datasets", i, r.Points[i].DarkDatasets)
		}
	}
	// The String form is the emitted artifact: valid JSON that round-trips.
	var back OutageCurveResult
	if err := json.Unmarshal([]byte(r.String()), &back); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if len(back.Points) != len(r.Points) || back.Datasets != r.Datasets {
		t.Fatalf("JSON round-trip mangled the curve: %+v", back)
	}

	// Determinism: a rerun is bit-identical.
	again, err := OutageCurve(lab, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != r.String() {
		t.Fatal("outage curve is not deterministic across reruns")
	}
}
