package experiments

import (
	"fmt"
	"strings"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/metrics"
	"scouts/internal/ml/bayes"
	"scouts/internal/ml/boost"
	"scouts/internal/ml/discriminant"
	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
	"scouts/internal/ml/neighbors"
	"scouts/internal/ml/neural"
	"scouts/internal/parallel"
	"scouts/internal/survey"
)

// ModelRow is one row of an accuracy table.
type ModelRow struct {
	Name      string
	Precision float64
	Recall    float64
	F1        float64
}

func (r ModelRow) String() string {
	return fmt.Sprintf("%-28s P=%5.1f%%  R=%5.1f%%  F1=%.2f",
		r.Name, r.Precision*100, r.Recall*100, r.F1)
}

// Table1Result compares the Scout's two models against the NLP baseline
// (paper: RF 97.2/97.6/0.97, CPD+ 93.1/94.0/0.94, NLP 96.5/91.3/0.94).
type Table1Result struct {
	Rows []ModelRow
}

func (t Table1Result) String() string { return renderModelTable("Table 1: model comparison", t.Rows) }

func renderModelTable(title string, rows []ModelRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// Table1 evaluates the supervised RF, CPD+ and the NLP recommender on the
// test set.
func Table1(lab *Lab) Table1Result {
	// Three independent model queries per incident — fan out in parallel,
	// fold the confusion matrices sequentially in incident order.
	type triple struct {
		rf, cpd core.Prediction
		nlpTop  string
	}
	preds := parallel.Map(lab.Params.Workers, len(lab.Test), func(i int) triple {
		in := lab.Test[i]
		var t triple
		t.rf = lab.Scout.PredictWithModel("rf", in.Title, in.Body, in.InitialComponents, in.CreatedAt)
		t.cpd = lab.Scout.PredictWithModel("cpd+", in.Title, in.Body, in.InitialComponents, in.CreatedAt)
		t.nlpTop, _ = lab.NLP.Route(in.Text())
		return t
	})
	var rf, cpdC, nlp metrics.Confusion
	for i, in := range lab.Test {
		actual := in.OwnerLabel == Team
		if p := preds[i].rf; p.Usable() {
			rf.Add(p.Responsible, actual)
		}
		if p := preds[i].cpd; p.Usable() {
			cpdC.Add(p.Responsible, actual)
		}
		nlp.Add(preds[i].nlpTop == Team, actual)
	}
	return Table1Result{Rows: []ModelRow{
		{"RF", rf.Precision(), rf.Recall(), rf.F1()},
		{"CPD+", cpdC.Precision(), cpdC.Recall(), cpdC.F1()},
		{"NLP (legacy recommender)", nlp.Precision(), nlp.Recall(), nlp.F1()},
	}}
}

// Table2Result lists the PhyNet Scout's monitoring datasets.
type Table2Result struct {
	Rows [][3]string // name, type, description
}

func (t Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: data sets used in the PhyNet Scout")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-12s %-12s %s\n", r[0], r[1], r[2])
	}
	return b.String()
}

// Table2 enumerates the monitoring registry.
func Table2(lab *Lab) Table2Result {
	var t Table2Result
	for _, d := range lab.Gen.Telemetry().Datasets() {
		t.Rows = append(t.Rows, [3]string{d.Name, d.Type.String(), d.Description})
	}
	return t
}

// Table3Result is the Appendix A survey tabulation.
type Table3Result struct {
	Aggregates survey.Aggregates
}

func (t Table3Result) String() string {
	s := survey.Table3(t.Aggregates)
	s += fmt.Sprintf("impact>=3: %d/27, impact>=4: %d/27, blamed>60%%: %d, others<20%%: %d, >3 teams: %d, >=2 teams: %d\n",
		t.Aggregates.ImpactAtLeast3, t.Aggregates.ImpactAtLeast4, t.Aggregates.BlamedOver60,
		t.Aggregates.OthersUnder20, t.Aggregates.MoreThan3Teams, t.Aggregates.AtLeast2Teams)
	return "Table 3: operator survey\n" + s
}

// Table3 tabulates the survey responses.
func Table3() Table3Result {
	return Table3Result{Aggregates: survey.Aggregate(survey.Responses())}
}

// Table4Result compares alternative supervised models on the Scout's
// feature set (paper: KNN 0.95, MLP 0.93, AdaBoost 0.96, GNB 0.73,
// QDA 0.90).
type Table4Result struct {
	Rows []ModelRow
}

func (t Table4Result) String() string {
	return renderModelTable("Table 4: alternative supervised models", t.Rows)
}

// Table4 trains each alternative model on the cached training matrix.
func Table4(lab *Lab) (Table4Result, error) {
	train := lab.TrainSet()
	models := []struct {
		name    string
		trainer mlcore.Trainer
	}{
		{"KNN", neighbors.Trainer(neighbors.DefaultParams)},
		{"Neural network (1 layer)", neural.Trainer(neural.Params{Hidden: 32, Epochs: 40, Seed: lab.Params.Seed})},
		{"AdaBoost", boost.Trainer(boost.Params{Rounds: 60})},
		{"Gaussian naive Bayes", bayes.Trainer(bayes.Params{})},
		{"Quadratic discriminant", discriminant.Trainer(discriminant.Params{Reg: 1e-2})},
	}
	var out Table4Result
	for _, m := range models {
		clf, err := m.trainer.Train(train)
		if err != nil {
			return out, fmt.Errorf("table 4: %s: %w", m.name, err)
		}
		c := lab.EvalVectors(clf)
		out.Rows = append(out.Rows, ModelRow{m.name, c.Precision(), c.Recall(), c.F1()})
	}
	return out, nil
}

// Table5Result is the Appendix B deflation study over per-component-type
// feature subsets.
type Table5Result struct {
	Rows []ModelRow
}

func (t Table5Result) String() string {
	return renderModelTable("Table 5: deflation study (feature subsets)", t.Rows)
}

// Table5 retrains the forest on per-component-type feature subsets.
func Table5(lab *Lab) (Table5Result, error) {
	names := lab.Scout.FeatureNames()
	only := func(prefixes ...string) []int {
		var idx []int
		for i, n := range names {
			for _, p := range prefixes {
				if strings.HasPrefix(n, p+".") {
					idx = append(idx, i)
					break
				}
			}
		}
		return idx
	}
	without := func(prefix string) []int {
		var idx []int
		for i, n := range names {
			if !strings.HasPrefix(n, prefix+".") {
				idx = append(idx, i)
			}
		}
		return idx
	}
	all := make([]int, len(names))
	for i := range all {
		all[i] = i
	}
	subsets := []struct {
		name string
		idx  []int
	}{
		{"Server only", only("server")},
		{"Switch only", only("switch")},
		{"Cluster only", only("cluster")},
		{"Without cluster", without("cluster")},
		{"Without switches", without("switch")},
		{"Without server", without("server")},
		{"All", all},
	}
	var out Table5Result
	for k, sub := range subsets {
		if len(sub.idx) == 0 {
			return out, fmt.Errorf("table 5: empty subset %q", sub.name)
		}
		c, err := evalSubset(lab, sub.idx, lab.Params.Seed+int64(k))
		if err != nil {
			return out, fmt.Errorf("table 5: %s: %w", sub.name, err)
		}
		out.Rows = append(out.Rows, ModelRow{sub.name, c.Precision(), c.Recall(), c.F1()})
	}
	return out, nil
}

// evalSubset trains a forest on the selected feature columns and evaluates
// on the test matrix.
func evalSubset(lab *Lab, idx []int, seed int64) (metrics.Confusion, error) {
	project := func(x []float64) []float64 {
		out := make([]float64, len(idx))
		for i, j := range idx {
			out[i] = x[j]
		}
		return out
	}
	nm := make([]string, len(idx))
	for i, j := range idx {
		nm[i] = lab.Scout.FeatureNames()[j]
	}
	d := mlcore.NewDataset(nm)
	for i := range lab.TrainX {
		d.MustAdd(mlcore.Sample{X: project(lab.TrainX[i]), Y: lab.TrainY[i], ID: lab.TrainIDs[i]})
	}
	f, err := forest.Train(d, lab.DefaultForest(seed))
	if err != nil {
		return metrics.Confusion{}, err
	}
	var c metrics.Confusion
	for i := range lab.TestX {
		pred, _ := f.Predict(project(lab.TestX[i]))
		c.Add(pred, lab.TestY[i])
	}
	return c, nil
}

// HeadlineResult is §7.1: full-pipeline Scout accuracy vs the baseline
// routing process (paper: Scout 97.5/97.7/0.98 vs baseline 87.2/91.9/0.89,
// and 98.9% correct on already-correctly-routed incidents).
type HeadlineResult struct {
	Scout    ModelRow
	Baseline ModelRow
}

func (h HeadlineResult) String() string {
	return "§7.1 headline accuracy\n  " + h.Scout.String() + "\n  " + h.Baseline.String() + "\n"
}

// Headline evaluates the end-to-end Scout pipeline against the baseline
// routing process. The baseline's "answer" for a team is whether the
// existing machinery (watchdog rules, run-books, support triage, the NLP
// recommender) puts the incident in that team's queue early in its life —
// operationalized as the team appearing among the first two engineering
// teams of the historical path (support triage is not an engineering
// assignment).
func Headline(lab *Lab) HeadlineResult {
	scout := lab.Scout.Evaluate(lab.Test)
	var base metrics.Confusion
	for _, in := range lab.Test {
		if len(in.Hops) == 0 {
			continue
		}
		early := false
		seen := 0
		for _, h := range in.Hops {
			if h.Team == cloudsim.TeamSupport {
				continue
			}
			seen++
			if h.Team == Team {
				early = true
				break
			}
			if seen == 2 {
				break
			}
		}
		base.Add(early, in.OwnerLabel == Team)
	}
	return HeadlineResult{
		Scout:    ModelRow{"PhyNet Scout (full pipeline)", scout.Precision(), scout.Recall(), scout.F1()},
		Baseline: ModelRow{"Baseline incident routing", base.Precision(), base.Recall(), base.F1()},
	}
}

// LatencyResult is the §6 inference-cost measurement. The paper reports
// 1.79±0.85 minutes per call, dominated by pulling monitoring data from
// production stores; here the substrate is in-process, so only the shape
// (well under the operator-minutes scale) is expected to match.
type LatencyResult struct {
	MeanSeconds, StdSeconds float64
	Samples                 int
}

func (l LatencyResult) String() string {
	return fmt.Sprintf("§6 inference latency: %.4fs ± %.4fs over %d calls\n",
		l.MeanSeconds, l.StdSeconds, l.Samples)
}

// InferenceLatency times end-to-end Scout predictions with the Lab's
// clock (wall time by default; tests inject a fake to make the one
// wall-clock-dependent table reproducible).
func InferenceLatency(lab *Lab, calls int) LatencyResult {
	if calls <= 0 || calls > len(lab.Test) {
		calls = min(200, len(lab.Test))
	}
	now := lab.Clock
	if now == nil {
		now = time.Now
	}
	var durs []float64
	for _, in := range lab.Test[:calls] {
		start := now()
		_ = lab.Scout.PredictIncident(in)
		durs = append(durs, now().Sub(start).Seconds())
	}
	return LatencyResult{
		MeanSeconds: metrics.Mean(durs),
		StdSeconds:  metrics.StdDev(durs),
		Samples:     len(durs),
	}
}
