package experiments

import (
	"fmt"

	"scouts/internal/evaluate"
	"scouts/internal/incident"
	"scouts/internal/metrics"
)

// Figure1Result reproduces Figure 1: per-day fractions of PhyNet incidents
// by creator (a), and the per-day mis-routed fraction of each creator
// class (b).
type Figure1Result struct {
	CreatorCDFs   []Series // fraction of PhyNet incidents per day, per class
	MisroutedCDFs []Series // fraction mis-routed per day, per class
}

func (f Figure1Result) String() string {
	return renderSeries("Figure 1a: per-day fraction of PhyNet incidents by creator (CDF)", f.CreatorCDFs) +
		renderSeries("Figure 1b: per-day mis-routed fraction by creator (CDF)", f.MisroutedCDFs)
}

// creatorClass buckets an incident by how it was created.
func creatorClass(in *incident.Incident) string {
	switch {
	case in.Source == incident.SourceCustomer:
		return "CRI"
	case in.CreatedBy == Team:
		return "PhyNet monitors"
	default:
		return "other teams' monitors"
	}
}

// Figure1 computes both panels over the full trace.
func Figure1(lab *Lab) Figure1Result {
	days, groups := lab.Log.ByDay()
	classes := []string{"CRI", "PhyNet monitors", "other teams' monitors"}
	fractions := map[string][]float64{}
	misFractions := map[string][]float64{}
	for _, d := range days {
		phynet := 0
		counts := map[string]int{}
		mis := map[string]int{}
		classTotal := map[string]int{}
		for _, in := range groups[d] {
			if in.OwnerLabel == Team {
				phynet++
				counts[creatorClass(in)]++
			}
			classTotal[creatorClass(in)]++
			if in.Misrouted() {
				mis[creatorClass(in)]++
			}
		}
		for _, cl := range classes {
			if phynet > 0 {
				fractions[cl] = append(fractions[cl], float64(counts[cl])/float64(phynet))
			}
			if classTotal[cl] > 0 {
				misFractions[cl] = append(misFractions[cl], float64(mis[cl])/float64(classTotal[cl]))
			}
		}
	}
	var out Figure1Result
	for _, cl := range classes {
		out.CreatorCDFs = append(out.CreatorCDFs, cdfSeries(cl, fractions[cl], 11))
		out.MisroutedCDFs = append(out.MisroutedCDFs, cdfSeries(cl, misFractions[cl], 11))
	}
	return out
}

// Figure2Result reproduces Figure 2: normalized time-to-diagnosis CDFs for
// incidents investigated by a single team vs multiple teams, plus the mean
// blow-up factor (paper: 10x).
type Figure2Result struct {
	Single, Multi Series
	MeanRatio     float64
}

func (f Figure2Result) String() string {
	return renderSeries("Figure 2: time to diagnosis, single vs multiple teams (CDF, normalized)",
		[]Series{f.Single, f.Multi}) +
		fmt.Sprintf("  mean multi/single ratio: %.1fx (paper: ~10x)\n", f.MeanRatio)
}

// Figure2 computes the diagnosis-time comparison.
func Figure2(lab *Lab) Figure2Result {
	var single, multi []float64
	maxT := 0.0
	for _, in := range lab.Log.Incidents {
		t := in.TotalTime()
		if t > maxT {
			maxT = t
		}
		if len(in.Teams()) == 1 {
			single = append(single, t)
		} else {
			multi = append(multi, t)
		}
	}
	norm := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, v := range xs {
			out[i] = v / maxT
		}
		return out
	}
	return Figure2Result{
		Single:    cdfSeries("single team", norm(single), 11),
		Multi:     cdfSeries("multiple teams", norm(multi), 11),
		MeanRatio: metrics.Mean(multi) / metrics.Mean(single),
	}
}

// Figure3Result reproduces Figure 3: the CDF of the share of investigation
// time that perfect routing to PhyNet would eliminate, over the mis-routed
// incidents PhyNet resolves.
type Figure3Result struct {
	Reducible Series
}

func (f Figure3Result) String() string {
	return renderSeries("Figure 3: reducible investigation time (%) for mis-routed PhyNet incidents (CDF)",
		[]Series{f.Reducible})
}

// Figure3 computes the reducible-time distribution.
func Figure3(lab *Lab) Figure3Result {
	var fracs []float64
	for _, in := range lab.Log.OwnedBy(Team) {
		if !in.Misrouted() {
			continue
		}
		if t := in.TotalTime(); t > 0 {
			fracs = append(fracs, 100*(t-in.TimeIn(Team))/t)
		}
	}
	return Figure3Result{Reducible: cdfSeries("reducible %", fracs, 11)}
}

// Figure4Result reproduces Figure 4: the per-day fraction of
// PhyNet-involving incidents where PhyNet was only a waypoint
// (paper: median 35%).
type Figure4Result struct {
	Waypoint Series
	Median   float64
}

func (f Figure4Result) String() string {
	return renderSeries("Figure 4: per-day fraction (%) of incidents with PhyNet as innocent waypoint (CDF)",
		[]Series{f.Waypoint}) +
		fmt.Sprintf("  median: %.0f%% (paper: 35%%)\n", f.Median)
}

// Figure4 computes the waypoint distribution.
func Figure4(lab *Lab) Figure4Result {
	days, groups := lab.Log.ByDay()
	var fracs []float64
	for _, d := range days {
		through, innocent := 0, 0
		for _, in := range groups[d] {
			if !in.WentThrough(Team) {
				continue
			}
			through++
			if in.OwnerLabel != Team {
				innocent++
			}
		}
		if through > 0 {
			fracs = append(fracs, 100*float64(innocent)/float64(through))
		}
	}
	sorted := sortedCopy(fracs)
	return Figure4Result{
		Waypoint: cdfSeries("waypoint %", fracs, 11),
		Median:   metrics.Quantile(sorted, 0.5),
	}
}

// Figure6Result reproduces Figure 6: the distribution of overhead-in to
// PhyNet under the legacy routing process.
type Figure6Result struct {
	Overhead Series
}

func (f Figure6Result) String() string {
	return renderSeries("Figure 6: baseline overhead-in to PhyNet (fraction of investigation time, CDF)",
		[]Series{f.Overhead})
}

// Figure6 computes the baseline overhead distribution over the full trace.
func Figure6(lab *Lab) Figure6Result {
	d := evaluate.OverheadDistribution(lab.Log.Incidents, Team)
	return Figure6Result{Overhead: cdfSeries("overhead-in", d, 11)}
}
