package experiments

import (
	"fmt"
	"strings"

	"scouts/internal/cloudsim"
	"scouts/internal/incident"
	"scouts/internal/master"
	"scouts/internal/metrics"
)

// Figure15Result reproduces the Scout Master deployment sweep: the CDF of
// investigation time saved on mis-routed incidents when 1..6 teams operate
// perfect Scouts, plus the best-possible line (every team has one).
type Figure15Result struct {
	PerCount     []Series // one CDF per Scout count
	BestPossible Series
}

func (f Figure15Result) String() string {
	return renderSeries("Figure 15: investigation time saved vs number of (perfect) Scouts (CDF)",
		append(append([]Series(nil), f.PerCount...), f.BestPossible))
}

// Figure15 sweeps Scout counts 1..6 over all assignments to teams.
func Figure15(lab *Lab, maxScouts, maxAssignments int) Figure15Result {
	if maxScouts <= 0 {
		maxScouts = 6
	}
	if maxAssignments <= 0 {
		maxAssignments = 60
	}
	mis := master.Misrouted(lab.Log, cloudsim.Teams)
	var out Figure15Result
	for k := 1; k <= maxScouts; k++ {
		pooled := master.SweepScoutCount(mis, cloudsim.Teams, k, maxAssignments,
			master.SimParams{Alpha: 1, Seed: lab.Params.Seed + 15})
		out.PerCount = append(out.PerCount, cdfSeries(fmt.Sprintf("%d Scouts", k), pooled, 11))
	}
	all := master.SweepScoutCount(mis, cloudsim.Teams, len(cloudsim.Teams), 1,
		master.SimParams{Alpha: 1, Seed: lab.Params.Seed + 15})
	out.BestPossible = cdfSeries("best possible (all teams)", all, 11)
	return out
}

// Figure16Cell is one (alpha, beta) cell of the imperfect-Scout surface.
type Figure16Cell struct {
	Alpha, Beta float64
	Avg, P95    float64
}

// Figure16Result reproduces the imperfect-Scout lower bounds for 1–3
// deployed Scouts.
type Figure16Result struct {
	PerCount map[int][]Figure16Cell
}

func (f Figure16Result) String() string {
	var b strings.Builder
	for k := 1; k <= 3; k++ {
		cells, ok := f.PerCount[k]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "Figure 16: %d Scout(s) — fraction of investigation time saved\n", k)
		fmt.Fprintln(&b, "  alpha  beta    avg     p95")
		for _, c := range cells {
			fmt.Fprintf(&b, "  %.2f   %.2f   %.3f   %.3f\n", c.Alpha, c.Beta, c.Avg, c.P95)
		}
	}
	return b.String()
}

// Figure16 sweeps the accuracy band alpha and confidence spread beta.
func Figure16(lab *Lab, maxAssignments, maxIncidents int) Figure16Result {
	if maxAssignments <= 0 {
		maxAssignments = 12
	}
	mis := master.Misrouted(lab.Log, cloudsim.Teams)
	if maxIncidents > 0 && len(mis) > maxIncidents {
		mis = mis[:maxIncidents]
	}
	out := Figure16Result{PerCount: map[int][]Figure16Cell{}}
	for k := 1; k <= 3; k++ {
		for _, alpha := range []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.0} {
			for _, beta := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
				pooled := master.SweepScoutCount(mis, cloudsim.Teams, k, maxAssignments,
					master.SimParams{Alpha: alpha, Beta: beta, Seed: lab.Params.Seed + 16})
				sorted := sortedCopy(pooled)
				out.PerCount[k] = append(out.PerCount[k], Figure16Cell{
					Alpha: alpha, Beta: beta,
					Avg: metrics.Mean(pooled),
					P95: metrics.Quantile(sorted, 0.95),
				})
			}
		}
	}
	return out
}

// StorageScoutResult reproduces Appendix B's rule-based Storage Scout
// accuracy (paper: precision 76.15%, recall 99.5%).
type StorageScoutResult struct {
	Row ModelRow
}

func (s StorageScoutResult) String() string {
	return "Appendix B: rule-based Storage Scout\n  " + s.Row.String() + "\n"
}

// StorageScout evaluates a simple rule-based gate-keeper for the Storage
// team: claim every monitor-created incident that mentions a cluster and
// shows storage-suspicious wording, turn away the rest. High recall, much
// lower precision — exactly the profile that motivates graduating to an
// ML Scout.
func StorageScout(lab *Lab) StorageScoutResult {
	var c metrics.Confusion
	for _, in := range lab.Test {
		if in.Source != incident.SourceMonitor {
			continue // the rule system does not trigger on CRIs (App. B)
		}
		// Rule systems over-claim: any wording that could possibly be a
		// storage symptom (disks, mounts, latency — the classic
		// storage-or-network ambiguity) pulls a storage engineer in. That
		// buys near-perfect recall at mediocre precision.
		text := strings.ToLower(in.Text())
		claim := strings.Contains(text, "disk") || strings.Contains(text, "storage") ||
			strings.Contains(text, "mount")
		c.Add(claim, in.OwnerLabel == cloudsim.TeamStorage)
	}
	return StorageScoutResult{Row: ModelRow{
		Name: "Storage rule-based Scout", Precision: c.Precision(), Recall: c.Recall(), F1: c.F1(),
	}}
}
