// Package experiments reproduces every table and figure of the paper's
// evaluation over the synthetic cloud. Each experiment is a pure function
// of a Lab — a generated trace plus the trained PhyNet Scout and the
// legacy NLP baseline — and returns a result type whose String() method
// prints the same rows or series the paper reports. cmd/repro and the
// repository benchmarks both drive these functions.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/incident"
	"scouts/internal/metrics"
	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
	"scouts/internal/parallel"
	"scouts/internal/text"
)

// LabParams size the reproduction.
type LabParams struct {
	// Seed fixes every random choice; the same seed regenerates identical
	// tables.
	Seed int64
	// Days of trace (default 180; the paper uses ~270).
	Days int
	// IncidentsPerDay (default 12).
	IncidentsPerDay float64
	// Workers bounds the goroutines used by training, featurization and
	// evaluation fan-out; 0 selects runtime.GOMAXPROCS(0). Every
	// experiment is bit-identical at any worker count.
	Workers int
}

func (p LabParams) withDefaults() LabParams {
	if p.Seed == 0 {
		p.Seed = 20200810 // SIGCOMM '20 started August 10, 2020
	}
	if p.Days <= 0 {
		p.Days = 180
	}
	if p.IncidentsPerDay <= 0 {
		p.IncidentsPerDay = 12
	}
	return p
}

// Lab is the shared experimental setup.
type Lab struct {
	Params LabParams
	Gen    *cloudsim.Generator
	Log    *incident.Log
	Cfg    *core.Config

	// Train/Test is the §7 split: half the PhyNet incidents and 35% of the
	// rest train; everything else tests.
	Train, Test []*incident.Incident

	Scout *core.Scout
	NLP   *text.NLPRouter

	// Cache memoizes featurization for retraining experiments. Valid only
	// while the telemetry registry is untouched.
	Cache *core.FeatureCache

	// Feature matrices over the cached layout (trainable incidents only).
	TrainX, TestX [][]float64
	TrainY, TestY []bool
	TrainIDs      []string
	TestIDs       []string

	// Clock times the latency experiment (§6). nil means time.Now; tests
	// inject a fixed clock so every table is a pure function of the seed.
	Clock func() time.Time

	mu sync.Mutex
}

// Team is the Scout's team in every experiment.
const Team = cloudsim.TeamPhyNet

// NewLab generates the trace, splits it per §7, and trains the PhyNet
// Scout and the NLP baseline.
func NewLab(p LabParams) (*Lab, error) {
	p = p.withDefaults()
	lab := &Lab{Params: p, Cache: core.NewFeatureCache()}
	lab.Gen = cloudsim.New(cloudsim.Params{
		Seed: p.Seed, Days: p.Days, IncidentsPerDay: p.IncidentsPerDay,
	})
	lab.Log = lab.Gen.Generate()

	cfg, err := core.ParseConfig(core.DefaultPhyNetConfig)
	if err != nil {
		return nil, err
	}
	lab.Cfg = cfg

	// §7 split: to counter class imbalance, only 35% of non-PhyNet
	// incidents train; half of the PhyNet incidents train.
	rng := rand.New(rand.NewSource(p.Seed + 1))
	for _, in := range lab.Log.Incidents {
		frac := 0.35
		if in.OwnerLabel == Team {
			frac = 0.5
		}
		if rng.Float64() < frac {
			lab.Train = append(lab.Train, in)
		} else {
			lab.Test = append(lab.Test, in)
		}
	}

	lab.Scout, err = core.Train(core.TrainOptions{
		Config:    cfg,
		Topology:  lab.Gen.Topology(),
		Source:    lab.Gen.Telemetry(),
		Incidents: lab.Train,
		Seed:      p.Seed + 2,
		Cache:     lab.Cache,
		Workers:   p.Workers,
	})
	if err != nil {
		return nil, err
	}

	// The legacy NLP recommender trains on the same incidents' text.
	var docs, teams []string
	for _, in := range lab.Train {
		docs = append(docs, in.Text())
		teams = append(teams, in.OwnerLabel)
	}
	lab.NLP, err = text.TrainNLPRouter(docs, teams, text.VocabOptions{MinDocFreq: 2})
	if err != nil {
		return nil, err
	}

	lab.buildMatrices()
	return lab, nil
}

// buildMatrices featurizes train and test incidents once (through the
// builder, warming the cache) for the model-comparison experiments.
// Featurization is per-incident pure, so it fans out across workers and
// the matrices are assembled in incident order afterwards.
func (lab *Lab) buildMatrices() {
	fb := lab.Scout.Builder()
	type featRow struct {
		x  []float64
		ok bool
	}
	feat := func(ins []*incident.Incident) (xs [][]float64, ys []bool, ids []string) {
		rows := parallel.Map(lab.Params.Workers, len(ins), func(i int) featRow {
			in := ins[i]
			ex := fb.Extract(in.Title, in.Body, in.Components)
			if ex.Excluded || ex.Empty {
				return featRow{}
			}
			return featRow{x: fb.Featurize(ex, in.CreatedAt), ok: true}
		})
		for i, r := range rows {
			if !r.ok {
				continue
			}
			xs = append(xs, r.x)
			ys = append(ys, ins[i].OwnerLabel == Team)
			ids = append(ids, ins[i].ID)
		}
		return xs, ys, ids
	}
	lab.TrainX, lab.TrainY, lab.TrainIDs = feat(lab.Train)
	lab.TestX, lab.TestY, lab.TestIDs = feat(lab.Test)
}

// TrainSet materializes the cached training matrix as an mlcore.Dataset.
func (lab *Lab) TrainSet() *mlcore.Dataset {
	d := mlcore.NewDataset(lab.Scout.FeatureNames())
	for i := range lab.TrainX {
		d.MustAdd(mlcore.Sample{X: lab.TrainX[i], Y: lab.TrainY[i], ID: lab.TrainIDs[i]})
	}
	return d
}

// EvalVectors scores a classifier over the cached test matrix, fanning the
// (read-only) predictions out across the lab's workers.
func (lab *Lab) EvalVectors(clf mlcore.Classifier) metrics.Confusion {
	preds := parallel.Map(lab.Params.Workers, len(lab.TestX), func(i int) bool {
		pred, _ := clf.Predict(lab.TestX[i])
		return pred
	})
	var c metrics.Confusion
	for i, pred := range preds {
		c.Add(pred, lab.TestY[i])
	}
	return c
}

// MisroutedTest returns the mis-routed incidents of the test set — the
// population the gain figures evaluate on.
func (lab *Lab) MisroutedTest() []*incident.Incident {
	var out []*incident.Incident
	for _, in := range lab.Test {
		if in.Misrouted() {
			out = append(out, in)
		}
	}
	return out
}

// RNG derives a deterministic rng for an experiment.
func (lab *Lab) RNG(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(lab.Params.Seed ^ salt))
}

// DefaultForest is the forest parameterization experiments reuse when they
// retrain on cached matrices.
func (lab *Lab) DefaultForest(seed int64) forest.Params {
	return forest.Params{NumTrees: 100, MaxDepth: 14, Seed: seed, Workers: lab.Params.Workers}
}

// --- small report helpers ---------------------------------------------

// Series is a printable (x, y) series for figure reproduction.
type Series struct {
	Name   string
	Points [][2]float64
}

// renderSeries prints series as aligned columns.
func renderSeries(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "  series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "    %10.4f  %8.4f\n", p[0], p[1])
		}
	}
	return b.String()
}

// cdfSeries samples an empirical CDF at n evenly spaced quantiles.
func cdfSeries(name string, sample []float64, n int) Series {
	c := metrics.NewCDF(sample)
	return Series{Name: name, Points: c.Points(n)}
}

// sortedCopy returns a sorted copy.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
