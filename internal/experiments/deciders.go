package experiments

import (
	"fmt"

	"scouts/internal/core"
	"scouts/internal/ml/boost"
	"scouts/internal/ml/mlcore"
	"scouts/internal/ml/svm"
	"scouts/internal/text"
)

// DeciderKind names the model-selector variants of Figure 8 and
// Appendix B's "Evaluating the Model Selector".
type DeciderKind string

// The decider variants.
const (
	DeciderBagOfWords      DeciderKind = "bag-of-words RF"
	DeciderAdaBoost        DeciderKind = "adaboost"
	DeciderSVMConservative DeciderKind = "conservative one-class SVM"
	DeciderSVMAggressive   DeciderKind = "aggressive one-class SVM"
)

// AllDeciders lists the Figure 8 variants.
var AllDeciders = []DeciderKind{
	DeciderBagOfWords, DeciderAdaBoost, DeciderSVMConservative, DeciderSVMAggressive,
}

// buildDecider fits a decider variant from the Scout's selector
// meta-training data. DeciderBagOfWords returns nil: the Scout already
// carries it.
func buildDecider(kind DeciderKind, docs []string, rfWrong []bool, seed int64) (core.DeciderModel, error) {
	if kind == DeciderBagOfWords {
		return nil, nil
	}
	tokenized := make([][]string, len(docs))
	for i, d := range docs {
		tokenized[i] = text.Tokenize(d)
	}
	vocab := text.BuildVocabulary(tokenized, text.VocabOptions{MinDocFreq: 2, MaxWords: 512})
	words := text.ImportantWords(tokenized, rfWrong, vocab, 60)
	if len(words) == 0 {
		// Degenerate meta-data (RF right everywhere): trust the RF.
		return trustRF{}, nil
	}
	wc := text.NewWordCounter(words)
	switch kind {
	case DeciderAdaBoost:
		d := mlcore.NewDataset(wc.Names())
		for i := range docs {
			d.MustAdd(mlcore.Sample{X: wc.Featurize(tokenized[i]), Y: rfWrong[i]})
		}
		model, err := boost.Train(d, boost.Params{Rounds: 60})
		if err != nil {
			return nil, fmt.Errorf("adaboost decider: %w", err)
		}
		return boostDecider{wc: wc, model: model}, nil
	case DeciderSVMConservative, DeciderSVMAggressive:
		// One-class SVMs learn what "old" incidents (those the RF handles)
		// look like; novelty routes to CPD+. The kernel sets the
		// temperament: polynomial is conservative, RBF aggressive
		// (Appendix B).
		var known [][]float64
		for i := range docs {
			if !rfWrong[i] {
				known = append(known, wc.Featurize(tokenized[i]))
			}
		}
		if len(known) == 0 {
			return trustRF{}, nil
		}
		params := svm.Params{Kernel: svm.Poly, Nu: 0.05, Seed: seed}
		if kind == DeciderSVMAggressive {
			params = svm.Params{Kernel: svm.RBF, Nu: 0.25, Gamma: 0.5, Seed: seed}
		}
		model, err := svm.Fit(known, params)
		if err != nil {
			return nil, fmt.Errorf("svm decider: %w", err)
		}
		return svmDecider{wc: wc, model: model}, nil
	default:
		return nil, fmt.Errorf("unknown decider %q", kind)
	}
}

// trustRF always keeps the supervised path.
type trustRF struct{}

func (trustRF) UseCPD(string) (bool, float64) { return false, 0 }

// boostDecider routes to CPD+ when the boosted ensemble predicts the RF
// would be wrong.
type boostDecider struct {
	wc    *text.WordCounter
	model *boost.AdaBoost
}

func (d boostDecider) UseCPD(doc string) (bool, float64) {
	wrong, conf := d.model.Predict(d.wc.Featurize(text.Tokenize(doc)))
	p := conf
	if !wrong {
		p = 1 - conf
	}
	return wrong, p
}

// svmDecider routes to CPD+ when the incident text looks novel.
type svmDecider struct {
	wc    *text.WordCounter
	model *svm.OneClass
}

func (d svmDecider) UseCPD(doc string) (bool, float64) {
	inlier, conf := d.model.Predict(d.wc.Featurize(text.Tokenize(doc)))
	p := conf
	if inlier {
		p = 1 - conf
	}
	return !inlier, p
}
