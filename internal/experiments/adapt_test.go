package experiments

import (
	"testing"

	"scouts/internal/metrics"
)

// TestRetrainingCadenceHelps replays the trace with a 10-day and a 60-day
// retraining cadence past the emergent-incident-family onset and checks
// the paper's §7.3 direction: frequent retraining recovers accuracy at
// least as well as infrequent retraining.
func TestRetrainingCadenceHelps(t *testing.T) {
	lab := smallLab(t)
	fast, err := Replay(lab, ReplayOptions{WarmupDays: 40, RetrainEveryDays: 10, EvalChunkDays: 10})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Replay(lab, ReplayOptions{WarmupDays: 40, RetrainEveryDays: 60, EvalChunkDays: 10})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(pts []F1Point) float64 {
		var xs []float64
		for _, p := range pts {
			xs = append(xs, p.F1)
		}
		return metrics.Mean(xs)
	}
	if len(fast) == 0 || len(slow) == 0 {
		t.Fatal("empty replays")
	}
	// Allow a small tolerance: on a short trace the comparison is noisy,
	// but frequent retraining must not be materially worse.
	if mean(fast) < mean(slow)-0.03 {
		t.Fatalf("10-day retraining (%.3f) materially worse than 60-day (%.3f)",
			mean(fast), mean(slow))
	}
	t.Logf("mean F1: retrain-10d %.3f vs retrain-60d %.3f", mean(fast), mean(slow))
}

// TestSlidingWindowStaysAccurate checks Figure 10b's premise: a fixed
// 60-day training window remains workable (the trace is stationary apart
// from the emergent family, which the window still covers).
func TestSlidingWindowStaysAccurate(t *testing.T) {
	lab := smallLab(t)
	pts, err := Replay(lab, ReplayOptions{WarmupDays: 40, RetrainEveryDays: 20, WindowDays: 60, EvalChunkDays: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.F1 < 0.6 {
			t.Fatalf("sliding-window F1 collapsed to %.3f at day %.0f", p.F1, p.Day)
		}
	}
}
