package experiments

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"scouts/internal/core"
	"scouts/internal/incident"
	"scouts/internal/metrics"
	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
	"scouts/internal/parallel"
)

// F1Point is one (day, F1) sample of a retraining replay.
type F1Point struct {
	Day float64
	F1  float64
}

// ReplayOptions configure the time-ordered retraining replays of
// Figures 8 and 10.
type ReplayOptions struct {
	// WarmupDays of trace train the first Scout (default 1/3 of the trace).
	WarmupDays int
	// RetrainEveryDays is the retraining cadence.
	RetrainEveryDays int
	// WindowDays keeps only this much history for training (0 = growing
	// training set — Figure 10a vs 10b).
	WindowDays int
	// EvalChunkDays is the evaluation granularity (default 10).
	EvalChunkDays int
	// Decider selects the model-selector variant (default bag-of-words).
	Decider DeciderKind
}

func (o ReplayOptions) withDefaults(lab *Lab) ReplayOptions {
	if o.WarmupDays <= 0 {
		o.WarmupDays = lab.Params.Days / 3
	}
	if o.RetrainEveryDays <= 0 {
		o.RetrainEveryDays = 10
	}
	if o.EvalChunkDays <= 0 {
		o.EvalChunkDays = 10
	}
	if o.Decider == "" {
		o.Decider = DeciderBagOfWords
	}
	return o
}

// Replay walks the trace in time order, retraining the Scout on the given
// cadence and scoring each evaluation chunk — the engine behind Figures 8
// and 10.
func Replay(lab *Lab, opt ReplayOptions) ([]F1Point, error) {
	opt = opt.withDefaults(lab)
	incidents := append([]*incident.Incident(nil), lab.Log.Incidents...)
	// Stable: incidents created in the same model hour keep their trace
	// order, so the replay schedule is a pure function of the log.
	slices.SortStableFunc(incidents, func(a, b *incident.Incident) int {
		return cmp.Compare(a.CreatedAt, b.CreatedAt)
	})

	var points []F1Point
	var scout *core.Scout
	lastTrainDay := -1 << 30
	endDay := lab.Params.Days

	for day := opt.WarmupDays; day < endDay; day += opt.EvalChunkDays {
		if day-lastTrainDay >= opt.RetrainEveryDays {
			from := 0.0
			if opt.WindowDays > 0 {
				from = float64(day-opt.WindowDays) * 24
			}
			var train []*incident.Incident
			for _, in := range incidents {
				if in.CreatedAt >= from && in.CreatedAt < float64(day)*24 {
					train = append(train, in)
				}
			}
			if len(train) > 0 {
				s, err := core.Train(core.TrainOptions{
					Config:    lab.Cfg,
					Topology:  lab.Gen.Topology(),
					Source:    lab.Gen.Telemetry(),
					Incidents: train,
					Seed:      lab.Params.Seed + int64(day),
					Cache:     lab.Cache,
					Workers:   lab.Params.Workers,
				})
				if err != nil {
					return nil, err
				}
				if opt.Decider != DeciderBagOfWords {
					docs, wrong := s.SelectorExamples()
					d, err := buildDecider(opt.Decider, docs, wrong, lab.Params.Seed+int64(day))
					if err != nil {
						return nil, err
					}
					s.SetDecider(d)
				}
				scout = s
				lastTrainDay = day
			}
		}
		if scout == nil {
			continue
		}
		// Score the evaluation chunk with a parallel prediction fan-out
		// (PredictCached is race-safe over the shared lab cache) and a
		// sequential fold in incident order.
		var chunk []*incident.Incident
		for _, in := range incidents {
			if in.CreatedAt < float64(day)*24 || in.CreatedAt >= float64(day+opt.EvalChunkDays)*24 {
				continue
			}
			chunk = append(chunk, in)
		}
		preds := parallel.Map(lab.Params.Workers, len(chunk), func(i int) core.Prediction {
			return scout.PredictCached(chunk[i], lab.Cache)
		})
		var c metrics.Confusion
		for i, p := range preds {
			if !p.Usable() {
				continue
			}
			c.Add(p.Responsible, chunk[i].OwnerLabel == Team)
		}
		if c.Total() > 0 {
			points = append(points, F1Point{Day: float64(day) + float64(opt.EvalChunkDays)/2, F1: c.F1()})
		}
	}
	return points, nil
}

// Figure10Result reproduces Figure 10: F1 over time under different
// retraining cadences, with a growing training set (a) and a fixed 60-day
// window (b). The emergent "optics-brownout" family causes the mid-trace
// dip that frequent retraining recovers from first.
type Figure10Result struct {
	Growing map[int][]F1Point // retrain interval (days) -> series
	Sliding map[int][]F1Point
}

func (f Figure10Result) String() string {
	render := func(title string, m map[int][]F1Point) string {
		var b strings.Builder
		fmt.Fprintln(&b, title)
		var keys []int
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  retrain every %d days:", k)
			for _, p := range m[k] {
				fmt.Fprintf(&b, " (%.0f, %.2f)", p.Day, p.F1)
			}
			fmt.Fprintln(&b)
		}
		return b.String()
	}
	return render("Figure 10a: F1 over time, growing training set", f.Growing) +
		render("Figure 10b: F1 over time, fixed 60-day training window", f.Sliding)
}

// Figure10 runs the retraining replays for intervals 10/20/30/60 days.
func Figure10(lab *Lab) (Figure10Result, error) {
	out := Figure10Result{Growing: map[int][]F1Point{}, Sliding: map[int][]F1Point{}}
	for _, interval := range []int{10, 20, 30, 60} {
		g, err := Replay(lab, ReplayOptions{RetrainEveryDays: interval})
		if err != nil {
			return out, err
		}
		out.Growing[interval] = g
		s, err := Replay(lab, ReplayOptions{RetrainEveryDays: interval, WindowDays: 60})
		if err != nil {
			return out, err
		}
		out.Sliding[interval] = s
	}
	return out, nil
}

// Figure8Result compares decider variants under 10-day and 60-day
// retraining cadences.
type Figure8Result struct {
	Fast, Slow map[DeciderKind][]F1Point
}

func (f Figure8Result) String() string {
	render := func(title string, m map[DeciderKind][]F1Point) string {
		var b strings.Builder
		fmt.Fprintln(&b, title)
		for _, k := range AllDeciders {
			pts, ok := m[k]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-28s:", k)
			for _, p := range pts {
				fmt.Fprintf(&b, " (%.0f, %.2f)", p.Day, p.F1)
			}
			fmt.Fprintln(&b)
		}
		return b.String()
	}
	return render("Figure 8a: decider comparison, 10-day retraining", f.Fast) +
		render("Figure 8b: decider comparison, 60-day retraining", f.Slow)
}

// Figure8 runs the decider comparison.
func Figure8(lab *Lab) (Figure8Result, error) {
	out := Figure8Result{Fast: map[DeciderKind][]F1Point{}, Slow: map[DeciderKind][]F1Point{}}
	for _, d := range AllDeciders {
		fast, err := Replay(lab, ReplayOptions{RetrainEveryDays: 10, Decider: d})
		if err != nil {
			return out, err
		}
		out.Fast[d] = fast
		slow, err := Replay(lab, ReplayOptions{RetrainEveryDays: 60, Decider: d})
		if err != nil {
			return out, err
		}
		out.Slow[d] = slow
	}
	return out, nil
}

// Figure9Result reproduces the monitoring-deprecation study: F1 after
// removing n monitoring systems, for random removals (average case) and
// importance-ordered removals (worst case).
type Figure9Result struct {
	N         []int
	AvgCase   []float64
	WorstCase []float64
	Baseline  float64 // F1 with every monitor present
}

func (f Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: F1 vs removed monitoring systems (baseline F1 = %.3f)\n", f.Baseline)
	fmt.Fprintln(&b, "   n   average-case   worst-case")
	for i, n := range f.N {
		fmt.Fprintf(&b, "  %2d   %12.3f   %10.3f\n", n, f.AvgCase[i], f.WorstCase[i])
	}
	return b.String()
}

// Figure9 removes feature groups from the cached matrices and retrains.
// Removing a dataset zeroes its features at train time and mean-imputes at
// inference (§6), which on a retrained model is exactly a zeroed column —
// so the study runs on the supervised path at matrix level.
func Figure9(lab *Lab, maxRemoved, randomTrials int) (Figure9Result, error) {
	if maxRemoved <= 0 {
		maxRemoved = 7
	}
	if randomTrials <= 0 {
		randomTrials = 3
	}
	groups := lab.Scout.Builder().Groups()
	slots := map[string][]int{}
	for _, g := range groups {
		slots[g] = lab.Scout.Builder().GroupSlots(g)
	}

	evalWithout := func(removed []string, seed int64) (float64, error) {
		zero := map[int]bool{}
		for _, g := range removed {
			for _, s := range slots[g] {
				zero[s] = true
			}
		}
		mask := func(x []float64) []float64 {
			out := append([]float64(nil), x...)
			for s := range zero {
				out[s] = 0
			}
			return out
		}
		d := mlcore.NewDataset(lab.Scout.FeatureNames())
		for i := range lab.TrainX {
			d.MustAdd(mlcore.Sample{X: mask(lab.TrainX[i]), Y: lab.TrainY[i], ID: lab.TrainIDs[i]})
		}
		f, err := forest.Train(d, lab.DefaultForest(seed))
		if err != nil {
			return 0, err
		}
		preds := parallel.Map(lab.Params.Workers, len(lab.TestX), func(i int) bool {
			pred, _ := f.Predict(mask(lab.TestX[i]))
			return pred
		})
		var c metrics.Confusion
		for i, pred := range preds {
			c.Add(pred, lab.TestY[i])
		}
		return c.F1(), nil
	}

	base, err := evalWithout(nil, lab.Params.Seed)
	if err != nil {
		return Figure9Result{}, err
	}

	// Worst case: remove the most influential groups first.
	imp := lab.Scout.Forest().Importance()
	type gi struct {
		g string
		v float64
	}
	var ranked []gi
	for _, g := range groups {
		v := 0.0
		for _, s := range slots[g] {
			v += imp[s]
		}
		ranked = append(ranked, gi{g, v})
	}
	// Stable: groups with equal importance keep their feature-group
	// order, so the worst-case removal schedule is deterministic.
	slices.SortStableFunc(ranked, func(a, b gi) int { return cmp.Compare(b.v, a.v) })

	rng := lab.RNG(9)
	out := Figure9Result{Baseline: base}
	for n := 1; n <= maxRemoved && n <= len(groups); n++ {
		// Average case: random subsets.
		var sum float64
		for trial := 0; trial < randomTrials; trial++ {
			perm := rng.Perm(len(groups))
			var rem []string
			for _, i := range perm[:n] {
				rem = append(rem, groups[i])
			}
			f1, err := evalWithout(rem, lab.Params.Seed+int64(n*100+trial))
			if err != nil {
				return out, err
			}
			sum += f1
		}
		// Worst case: top-n by importance.
		var worstRem []string
		for _, r := range ranked[:n] {
			worstRem = append(worstRem, r.g)
		}
		worst, err := evalWithout(worstRem, lab.Params.Seed+int64(n*100+99))
		if err != nil {
			return out, err
		}
		out.N = append(out.N, n)
		out.AvgCase = append(out.AvgCase, sum/float64(randomTrials))
		out.WorstCase = append(out.WorstCase, worst)
	}
	return out, nil
}
