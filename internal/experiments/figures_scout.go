package experiments

import (
	"fmt"
	"strings"

	"scouts/internal/core"
	"scouts/internal/evaluate"
	"scouts/internal/incident"
	"scouts/internal/metrics"
	"scouts/internal/parallel"
)

// Figure7Result reproduces Figure 7: the Scout's gain and overhead on
// mis-routed test incidents, against the best possible gate-keeper.
type Figure7Result struct {
	GainIn, BestGainIn, OverheadIn Series
	GainOut, BestGainOut           Series
	ErrorOut                       float64
	CorrectOnCorrect               float64
}

func (f Figure7Result) String() string {
	return renderSeries("Figure 7a: gain-in / overhead-in for mis-routed incidents (CDF, fraction of time)",
		[]Series{f.GainIn, f.BestGainIn, f.OverheadIn}) +
		renderSeries("Figure 7b: gain-out for mis-routed incidents (CDF)",
			[]Series{f.GainOut, f.BestGainOut}) +
		fmt.Sprintf("  error-out: %.2f%% (paper: 1.7%%); correct on already-correct: %.1f%% (paper: 98.9%%)\n",
			f.ErrorOut*100, f.CorrectOnCorrect*100)
}

// Figure7 runs the §7 gain/overhead evaluation.
func Figure7(lab *Lab) Figure7Result {
	baseline := evaluate.OverheadDistribution(lab.Train, Team)
	r := evaluate.RunWorkers(lab.Scout, lab.Test, Team, baseline, lab.RNG(7), lab.Params.Workers)
	return Figure7Result{
		GainIn:           cdfSeries("gain-in", r.GainIn, 11),
		BestGainIn:       cdfSeries("best possible gain-in", r.BestGainIn, 11),
		OverheadIn:       cdfSeries("overhead-in", r.OverheadIn, 11),
		GainOut:          cdfSeries("gain-out", r.GainOut, 11),
		BestGainOut:      cdfSeries("best possible gain-out", r.BestGainOut, 11),
		ErrorOut:         r.ErrorOut,
		CorrectOnCorrect: r.CorrectOnAlreadyCorrect,
	}
}

// Figure11Result is Figure 11: the same gain/overhead analysis restricted
// to incidents created by other teams' watchdogs.
type Figure11Result struct {
	GainIn, BestGainIn, OverheadIn Series
	GainOut, BestGainOut           Series
	ErrorOut                       float64
}

func (f Figure11Result) String() string {
	return renderSeries("Figure 11a: gain/overhead-in, incidents from other teams' watchdogs (CDF)",
		[]Series{f.GainIn, f.BestGainIn, f.OverheadIn}) +
		renderSeries("Figure 11b: gain-out, incidents from other teams' watchdogs (CDF)",
			[]Series{f.GainOut, f.BestGainOut}) +
		fmt.Sprintf("  error-out: %.2f%% (paper: 3.06%%)\n", f.ErrorOut*100)
}

// Figure11 filters the test set to non-PhyNet-monitor incidents.
func Figure11(lab *Lab) Figure11Result {
	var subset []*incident.Incident
	for _, in := range lab.Test {
		if in.Source == incident.SourceMonitor && in.CreatedBy != Team {
			subset = append(subset, in)
		}
	}
	baseline := evaluate.OverheadDistribution(lab.Train, Team)
	r := evaluate.RunWorkers(lab.Scout, subset, Team, baseline, lab.RNG(11), lab.Params.Workers)
	return Figure11Result{
		GainIn:      cdfSeries("gain-in", r.GainIn, 11),
		BestGainIn:  cdfSeries("best possible gain-in", r.BestGainIn, 11),
		OverheadIn:  cdfSeries("overhead-in", r.OverheadIn, 11),
		GainOut:     cdfSeries("gain-out", r.GainOut, 11),
		BestGainOut: cdfSeries("best possible gain-out", r.BestGainOut, 11),
		ErrorOut:    r.ErrorOut,
	}
}

// Figure12Row is one x-position of Figure 12: the Scout triggered after n
// teams have investigated a customer-reported incident.
type Figure12Row struct {
	N                        int
	GainInAvg, GainInP95     float64
	GainInP99, GainInMax     float64
	GainOutAvg, GainOutP95   float64
	GainOutP99, GainOutMax   float64
	OverheadAvg, OverheadP95 float64
	ErrorOut                 float64
}

// Figure12Result reproduces the CRI replay: Scouts are not one-shot — they
// can be re-queried before each transfer, and CRIs start with missing
// information that earlier teams fill in (§7.4).
type Figure12Result struct {
	Rows []Figure12Row
}

func (f Figure12Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 12: CRIs — Scout triggered after n team investigations")
	fmt.Fprintln(&b, "   n  gain-in(avg/p95/p99/max)      gain-out(avg/p95/p99/max)     ovh-in(avg/p95)  err-out")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %2d  %.2f/%.2f/%.2f/%.2f           %.2f/%.2f/%.2f/%.2f          %.2f/%.2f        %.2f%%\n",
			r.N, r.GainInAvg, r.GainInP95, r.GainInP99, r.GainInMax,
			r.GainOutAvg, r.GainOutP95, r.GainOutP99, r.GainOutMax,
			r.OverheadAvg, r.OverheadP95, r.ErrorOut*100)
	}
	return b.String()
}

// Figure12 replays the CRIs of the test set with delayed Scout triggers.
func Figure12(lab *Lab, maxN int) Figure12Result {
	if maxN <= 0 {
		maxN = 10
	}
	var cris []*incident.Incident
	for _, in := range lab.Test {
		if in.Source == incident.SourceCustomer {
			cris = append(cris, in)
		}
	}
	baseline := evaluate.OverheadDistribution(lab.Train, Team)
	rng := lab.RNG(12)
	var out Figure12Result
	for n := 1; n <= maxN; n++ {
		// Phase 1 (parallel): one Scout query per CRI — the expensive
		// part. Phase 2 (sequential, incident order): accounting plus the
		// overhead rng draws, which must happen in deterministic order so
		// results match a sequential run at any worker count.
		type cri struct {
			trigger float64
			pred    core.Prediction
		}
		queried := parallel.Map(lab.Params.Workers, len(cris), func(i int) cri {
			in := cris[i]
			trigger := evaluate.NthTeamExit(in, n)
			// Information accrues: after the first team, the component
			// names discovered during investigation are in the incident.
			mentioned := in.InitialComponents
			if n >= 1 {
				mentioned = in.Components
			}
			return cri{trigger: trigger, pred: lab.Scout.Predict(in.Title, in.Body, mentioned, trigger)}
		})
		var gainIn, gainOut, overhead []float64
		fn, owned := 0, 0
		for i, in := range cris {
			trigger, p := queried[i].trigger, queried[i].pred
			if !p.Usable() {
				continue
			}
			total := in.TotalTime()
			if total <= 0 {
				continue
			}
			if in.OwnerLabel == Team {
				owned++
				if !p.Responsible {
					fn++
				}
				saved := 0.0
				if p.Responsible {
					saved = evaluate.WastedAfter(in, Team, trigger) / total
				}
				gainIn = append(gainIn, saved)
				continue
			}
			if !p.Responsible {
				gainOut = append(gainOut, evaluate.TeamTimeAfter(in, Team, trigger)/total)
				overhead = append(overhead, 0)
			} else {
				gainOut = append(gainOut, 0)
				if len(baseline) > 0 {
					overhead = append(overhead, baseline[rng.Intn(len(baseline))])
				}
			}
		}
		row := Figure12Row{N: n}
		gi := sortedCopy(gainIn)
		row.GainInAvg = metrics.Mean(gainIn)
		row.GainInP95 = metrics.Quantile(gi, 0.95)
		row.GainInP99 = metrics.Quantile(gi, 0.99)
		row.GainInMax = metrics.Quantile(gi, 1)
		goSorted := sortedCopy(gainOut)
		row.GainOutAvg = metrics.Mean(gainOut)
		row.GainOutP95 = metrics.Quantile(goSorted, 0.95)
		row.GainOutP99 = metrics.Quantile(goSorted, 0.99)
		row.GainOutMax = metrics.Quantile(goSorted, 1)
		ov := sortedCopy(overhead)
		row.OverheadAvg = metrics.Mean(overhead)
		row.OverheadP95 = metrics.Quantile(ov, 0.95)
		if owned > 0 {
			row.ErrorOut = float64(fn) / float64(owned)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Figure13Result reproduces the Euclidean class-distance analysis: within
// PhyNet incidents, within non-PhyNet incidents, and across the classes.
type Figure13Result struct {
	WithinPos, WithinNeg, Cross Series
}

func (f Figure13Result) String() string {
	return renderSeries("Figure 13: Euclidean feature distances (CDF)",
		[]Series{f.WithinPos, f.WithinNeg, f.Cross})
}

// Figure13 computes the distances over the test feature matrix.
func Figure13(lab *Lab) Figure13Result {
	pos, neg := splitByLabel(lab.TestX, lab.TestY)
	wp, wn, cr := metrics.ClassDistances(pos, neg, 20000)
	return Figure13Result{
		WithinPos: cdfSeries("within PhyNet", wp, 11),
		WithinNeg: cdfSeries("within non-PhyNet", wn, 11),
		Cross:     cdfSeries("cross-class", cr, 11),
	}
}

// Figure14Result repeats Figure 13 per component-type feature block.
type Figure14Result struct {
	PerType map[string]Figure13Result
}

func (f Figure14Result) String() string {
	var b strings.Builder
	for _, typ := range []string{"server", "switch", "cluster"} {
		r, ok := f.PerType[typ]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "Figure 14 (%s features):\n%s", typ, r.String())
	}
	return b.String()
}

// Figure14 projects the feature matrix onto each type's columns.
func Figure14(lab *Lab) Figure14Result {
	names := lab.Scout.FeatureNames()
	out := Figure14Result{PerType: map[string]Figure13Result{}}
	for _, typ := range []string{"server", "switch", "cluster"} {
		var idx []int
		for i, n := range names {
			if strings.HasPrefix(n, typ+".") {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		project := func(xs [][]float64) [][]float64 {
			out := make([][]float64, len(xs))
			for i, x := range xs {
				p := make([]float64, len(idx))
				for k, j := range idx {
					p[k] = x[j]
				}
				out[i] = p
			}
			return out
		}
		pos, neg := splitByLabel(lab.TestX, lab.TestY)
		wp, wn, cr := metrics.ClassDistances(project(pos), project(neg), 20000)
		out.PerType[typ] = Figure13Result{
			WithinPos: cdfSeries("within PhyNet", wp, 11),
			WithinNeg: cdfSeries("within non-PhyNet", wn, 11),
			Cross:     cdfSeries("cross-class", cr, 11),
		}
	}
	return out
}

func splitByLabel(xs [][]float64, ys []bool) (pos, neg [][]float64) {
	for i, x := range xs {
		if ys[i] {
			pos = append(pos, x)
		} else {
			neg = append(neg, x)
		}
	}
	return pos, neg
}
