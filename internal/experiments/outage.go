package experiments

import (
	"cmp"
	"encoding/json"
	"slices"

	"scouts/internal/core"
	"scouts/internal/faults"
	"scouts/internal/incident"
)

// OutagePoint is one sample of the outage curve: what routing quality
// survives once DarkDatasets of the consumed monitoring datasets are
// blacked out.
type OutagePoint struct {
	// BlackoutFraction is DarkDatasets / Datasets, 0 → 1.
	BlackoutFraction float64 `json:"blackout_fraction"`
	DarkDatasets     int     `json:"dark_datasets"`
	// Accuracy is the retained accuracy: the fraction of incidents the
	// Scout has answered correctly at this and every smaller blackout —
	// a survival curve, monotonically non-increasing by construction.
	Accuracy float64 `json:"accuracy"`
	// RawAccuracy is the plain correct fraction at this blackout alone
	// (imputation can flip an individual answer either way, so this one
	// may jitter upward between adjacent points).
	RawAccuracy float64 `json:"raw_accuracy"`
	// FallbackRate is the fraction of incidents the degradation policy
	// handed back to legacy routing (VerdictFallback).
	FallbackRate float64 `json:"fallback_rate"`
}

// OutageCurveResult is the Fig. 9-style accuracy-vs-outage sweep in JSON
// form: how gracefully the Scout degrades as monitoring systems disappear,
// from full coverage down to a total blackout.
type OutageCurveResult struct {
	Datasets    int     `json:"datasets"`
	Incidents   int     `json:"incidents"`
	MinCoverage float64 `json:"min_coverage"`
	// BlackoutOrder is the importance-ordered removal sequence; each
	// point's dark set is a prefix, so the sets are nested.
	BlackoutOrder []string      `json:"blackout_order"`
	Points        []OutagePoint `json:"points"`
}

func (r *OutageCurveResult) String() string {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "outage: " + err.Error()
	}
	return string(data)
}

// OutageCurve sweeps a monitoring blackout from 0% to 100% of the
// datasets the Scout consumes and measures what routing quality remains
// at each step. It is the chaos-path companion of Figure 9: where Figure 9
// retrains on masked matrices, this experiment keeps the deployed model
// fixed and serves through the fault injector — featurization imputes the
// dark feature groups with training means and the degradation policy
// (coverage floor minCoverage) falls back to legacy routing once too
// little of the vector is live.
//
// Datasets go dark in order of trained-forest importance (most important
// first, ties by name), and every step's dark set extends the previous
// one, so each point faces strictly less information than the last. The
// headline Accuracy is therefore a survival fraction — incidents still
// answered correctly at every blackout up to this one — and is
// monotonically non-increasing from the clean accuracy at 0% to 0 at
// 100%, where the coverage floor pushes every incident to fallback.
func OutageCurve(lab *Lab, minCoverage float64) (*OutageCurveResult, error) {
	fb := lab.Scout.Builder()
	imp := lab.Scout.Forest().Importance()

	// Rank datasets by the summed importance of the feature group that
	// consumes them (a group's slots all vanish together when its data
	// does), most important first so the curve probes worst-case loss.
	type dsRank struct {
		name string
		imp  float64
	}
	seen := map[string]int{}
	var ranked []dsRank
	for _, g := range fb.Groups() {
		gi := 0.0
		for _, slot := range fb.GroupSlots(g) {
			gi += imp[slot]
		}
		for _, name := range fb.GroupDatasets(g) {
			if i, ok := seen[name]; ok {
				ranked[i].imp += gi
				continue
			}
			seen[name] = len(ranked)
			ranked = append(ranked, dsRank{name: name, imp: gi})
		}
	}
	slices.SortStableFunc(ranked, func(a, b dsRank) int {
		if c := cmp.Compare(b.imp, a.imp); c != 0 {
			return c
		}
		return cmp.Compare(a.name, b.name)
	})
	order := make([]string, len(ranked))
	for i, r := range ranked {
		order[i] = r.name
	}

	// The evaluated population: test incidents that reach a model under
	// full monitoring. Gating is telemetry-independent, so the population
	// is identical at every blackout level.
	var pop []*incident.Incident
	for _, in := range lab.Test {
		ex := fb.Extract(in.Title, in.Body, in.InitialComponents)
		if !ex.Excluded && !ex.Empty {
			pop = append(pop, in)
		}
	}

	snap, err := lab.Scout.Snapshot()
	if err != nil {
		return nil, err
	}

	res := &OutageCurveResult{
		Datasets:      len(order),
		Incidents:     len(pop),
		MinCoverage:   minCoverage,
		BlackoutOrder: order,
	}
	alive := make([]bool, len(pop))
	for i := range alive {
		alive[i] = true
	}
	for dark := 0; dark <= len(order); dark++ {
		var sched faults.Schedule
		for _, name := range order[:dark] {
			sched.Blackouts = append(sched.Blackouts, faults.Blackout{
				Dataset: name, Start: 0, End: faults.Forever,
			})
		}
		chaos := faults.NewChaos(lab.Gen.Telemetry(), sched, lab.Params.Seed)
		s, err := core.Restore(snap, lab.Gen.Topology(), chaos)
		if err != nil {
			return nil, err
		}
		s.SetDegradationPolicy(core.DegradationPolicy{MinCoverage: minCoverage})

		preds := s.PredictIncidentBatch(pop)
		correctNow, fallbacks, retained := 0, 0, 0
		for i, p := range preds {
			truth := pop[i].OwnerLabel == Team
			correct := p.Usable() && p.Verdict != core.VerdictExcluded && p.Responsible == truth
			if correct {
				correctNow++
			} else {
				alive[i] = false
			}
			if p.Verdict == core.VerdictFallback {
				fallbacks++
			}
			if alive[i] {
				retained++
			}
		}
		n := float64(len(pop))
		res.Points = append(res.Points, OutagePoint{
			BlackoutFraction: float64(dark) / float64(len(order)),
			DarkDatasets:     dark,
			Accuracy:         float64(retained) / n,
			RawAccuracy:      float64(correctNow) / n,
			FallbackRate:     float64(fallbacks) / n,
		})
	}
	return res, nil
}
