package cloudsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"scouts/internal/incident"
	"scouts/internal/topology"
)

// Params configure trace generation.
type Params struct {
	// Seed drives all randomness; the same seed reproduces the trace.
	Seed int64
	// Days is the trace length (default 270 ≈ the paper's nine months).
	Days int
	// IncidentsPerDay is the mean arrival rate (default 16).
	IncidentsPerDay float64
	// Topology sizes the synthetic datacenters.
	Topology topology.Params
	// LabelNoise is the fraction of incidents whose recorded owner is
	// wrong because the transfer was never made official (§8; default 0.03).
	LabelNoise float64
	// MentionDropCRI is the probability a customer-reported incident
	// arrives with no machine-readable component names (§7.4; default 0.2).
	MentionDropCRI float64
	// NovelStartDay is the day the emergent incident family
	// ("optics-brownout") starts occurring, reproducing the §7.3 concept
	// drift. Default: 60% of the way through the trace. Negative disables
	// the family entirely.
	NovelStartDay int
}

func (p Params) withDefaults() Params {
	if p.Days <= 0 {
		p.Days = 270
	}
	if p.IncidentsPerDay <= 0 {
		p.IncidentsPerDay = 16
	}
	if p.LabelNoise < 0 {
		p.LabelNoise = 0
	} else if p.LabelNoise == 0 {
		p.LabelNoise = 0.03
	}
	if p.MentionDropCRI == 0 {
		p.MentionDropCRI = 0.2
	}
	if p.NovelStartDay == 0 {
		p.NovelStartDay = p.Days * 6 / 10
	}
	return p
}

// Generator builds synthetic incident traces over a cloud.
type Generator struct {
	params Params
	topo   *topology.Topology
	tel    *Telemetry
	rng    *rand.Rand

	defs        []scenarioDef
	totalWeight float64

	dcs               []string
	clusters          []string
	clustersByDC      map[string][]string
	torsByCluster     map[string][]string
	switchesByCluster map[string][]string
	serversByCluster  map[string][]string

	nextID int
}

// New creates a generator (and its topology + telemetry).
func New(p Params) *Generator {
	p = p.withDefaults()
	topo := topology.Build(p.Topology)
	g := &Generator{
		params:            p,
		topo:              topo,
		tel:               NewTelemetry(topo, p.Seed),
		rng:               rand.New(rand.NewSource(p.Seed)),
		defs:              catalogue(),
		clustersByDC:      map[string][]string{},
		torsByCluster:     map[string][]string{},
		switchesByCluster: map[string][]string{},
		serversByCluster:  map[string][]string{},
	}
	for _, d := range g.defs {
		g.totalWeight += d.weight
	}
	g.dcs = topo.Names(topology.TypeDC)
	g.clusters = topo.Names(topology.TypeCluster)
	for _, dc := range g.dcs {
		g.clustersByDC[dc] = topo.DescendantsOfType(dc, topology.TypeCluster)
	}
	for _, cl := range g.clusters {
		for _, sw := range topo.DescendantsOfType(cl, topology.TypeSwitch) {
			g.switchesByCluster[cl] = append(g.switchesByCluster[cl], sw)
			if strings.HasPrefix(sw, "tor") {
				g.torsByCluster[cl] = append(g.torsByCluster[cl], sw)
			}
		}
		g.serversByCluster[cl] = topo.DescendantsOfType(cl, topology.TypeServer)
	}
	return g
}

// Telemetry returns the telemetry source (with all anomalies registered so
// far).
func (g *Generator) Telemetry() *Telemetry { return g.tel }

// Topology returns the generated topology.
func (g *Generator) Topology() *topology.Topology { return g.topo }

// Generate produces the full incident trace. It can be called once per
// generator (anomalies accumulate in the telemetry model).
func (g *Generator) Generate() *incident.Log {
	log := &incident.Log{}
	t := 24.0 // start on day 1 so look-back windows never go negative
	horizon := float64(g.params.Days) * 24
	for t < horizon {
		// Poisson arrivals.
		t += g.rng.ExpFloat64() * 24 / g.params.IncidentsPerDay
		if t >= horizon {
			break
		}
		log.Append(g.generateOne(t))
	}
	return log
}

// pickScenario samples the catalogue by weight, honoring emergent-family
// start days.
func (g *Generator) pickScenario(t float64) scenarioDef {
	day := int(t / 24)
	for {
		r := g.rng.Float64() * g.totalWeight
		var picked scenarioDef
		for _, d := range g.defs {
			r -= d.weight
			if r <= 0 {
				picked = d
				break
			}
		}
		if picked.build == nil {
			picked = g.defs[len(g.defs)-1]
		}
		start := picked.startDay
		if start == -1 {
			if g.params.NovelStartDay < 0 {
				continue // family disabled
			}
			start = g.params.NovelStartDay
		}
		if day >= start {
			return picked
		}
		// Not yet active: redraw.
	}
}

// genericSymptomP is the probability that a scenario's incident arrives
// with generic symptom wording instead of its distinctive template. The
// same "VMs cannot connect / I/O times out" text can be caused by the
// physical network, the host network, storage or the hypervisor — §3.3's
// observation that "the text of the incident often describes the symptoms
// observed but does not reflect the actual state of the network's
// components". Text-only routing cannot separate these; monitoring can.
var genericSymptomP = map[string]float64{
	"tor-failure":     0.25,
	"switch-drops":    0.2,
	"storage-latency": 0.3,
	"hostnet-vswitch": 0.25,
	"compute-host":    0.2,
	"slb-vip-drop":    0.15,
}

// makeGeneric rewrites a fault's incident text with the shared symptom
// template, keeping only the symptom-level component mentions (the
// affected VM and cluster — reporters see impact, not cause).
func (g *Generator) makeGeneric(f *fault) {
	cluster := ""
	vm := ""
	for _, m := range f.mentioned {
		c, ok := g.topo.Lookup(m)
		if !ok {
			continue
		}
		switch c.Type {
		case topology.TypeCluster:
			if cluster == "" {
				cluster = m
			}
		case topology.TypeVM:
			if vm == "" {
				vm = m
			}
		}
	}
	if cluster == "" {
		for _, m := range f.mentioned {
			if cl := g.topo.ClusterOf(m); cl != "" {
				cluster = cl
				break
			}
		}
	}
	if cluster == "" {
		return // cannot anchor the symptom anywhere; keep original text
	}
	if vm == "" {
		vms := g.topo.DescendantsOfType(cluster, topology.TypeVM)
		if len(vms) > 0 {
			vm = vms[g.rng.Intn(len(vms))]
		}
	}
	f.title = fmt.Sprintf("VM connectivity issues in %s", cluster)
	f.body = fmt.Sprintf("Multiple VMs in cluster %s (e.g. %s) report connection resets, slow virtual disks "+
		"and I/O timeouts. Symptoms are intermittent; impact assessment ongoing.", cluster, vm)
	f.mentioned = []string{cluster}
	if vm != "" {
		f.mentioned = append(f.mentioned, vm)
	}
}

func (g *Generator) generateOne(t float64) *incident.Incident {
	def := g.pickScenario(t)
	f := def.build(g, t, g.rng)
	if p := genericSymptomP[def.name]; p > 0 && g.rng.Float64() < p {
		g.makeGeneric(f)
	}
	for _, a := range f.anomalies {
		g.tel.AddAnomaly(a)
	}

	g.nextID++
	in := &incident.Incident{
		ID:        fmt.Sprintf("INC-%06d", g.nextID),
		Title:     f.title,
		Body:      f.body,
		CreatedAt: t,
		TrueOwner: f.owner,
		RootCause: f.rootCause,
	}

	// Severity.
	pHigh := 0.07
	if f.pHighSev > 0 {
		pHigh = f.pHighSev
	}
	switch r := g.rng.Float64(); {
	case r < pHigh:
		in.Severity = incident.SevHigh
	case r < pHigh+0.35:
		in.Severity = incident.SevMedium
	default:
		in.Severity = incident.SevLow
	}

	// Who notices first?
	detector := g.sampleDetector(f.detectors)
	if detector == TeamCustomer {
		in.Source = incident.SourceCustomer
		in.CreatedBy = ""
	} else {
		in.Source = incident.SourceMonitor
		in.CreatedBy = detector
	}

	// Component mentions. CRIs often arrive without machine-readable names;
	// the first investigating teams append them (§7.4).
	in.Components = append([]string(nil), f.mentioned...)
	in.InitialComponents = in.Components
	if in.Source == incident.SourceCustomer && g.rng.Float64() < g.params.MentionDropCRI {
		in.InitialComponents = nil
		in.Body = stripMentions(in.Body, f.mentioned)
	}

	// Route it the way operators do today.
	g.simulateRouting(in, f, detector)

	// Conversation noise (§7): as teams investigate they append notes, and
	// "the text of the incident is often noisy — it contains logs of
	// conversation which often lead the ML model astray". The notes
	// mention the *investigating* teams' domains, which correlate with the
	// routing path, not the root cause.
	for _, team := range in.Teams() {
		if team == in.OwnerLabel || team == TeamSupport {
			continue
		}
		if g.rng.Float64() < 0.75 {
			in.Body += fmt.Sprintf("\nUpdate from %s on-call: investigated %s; %s look healthy, no conclusive findings.",
				team, teamJargon[team], teamJargon[team])
		}
	}

	// Label noise: the closing team never officially transferred (§8).
	if g.params.LabelNoise > 0 && g.rng.Float64() < g.params.LabelNoise && len(in.Hops) > 1 {
		for i := len(in.Hops) - 1; i >= 0; i-- {
			if in.Hops[i].Team != in.OwnerLabel {
				in.OwnerLabel = in.Hops[i].Team
				break
			}
		}
	}
	return in
}

func (g *Generator) sampleDetector(weights map[string]float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := g.rng.Float64() * total
	// Deterministic order: iterate a fixed team list.
	order := append(append([]string(nil), Teams...), TeamSupport, TeamCustomer)
	for _, team := range order {
		w, ok := weights[team]
		if !ok {
			continue
		}
		r -= w
		if r <= 0 {
			return team
		}
	}
	for team := range weights {
		return team
	}
	return TeamSupport
}

// stripMentions removes component names from CRI text, imitating customers
// who describe symptoms without machine identifiers.
func stripMentions(body string, mentioned []string) string {
	for _, m := range mentioned {
		body = strings.ReplaceAll(body, m, "their resource")
	}
	return body
}

// dwell times ---------------------------------------------------------------

// innocentTime is how long a team needs to prove its innocence.
func (g *Generator) innocentTime(sev incident.Severity, hardness float64) float64 {
	mean := 1.2
	if sev == incident.SevMedium {
		mean = 1.6
	}
	if sev == incident.SevHigh {
		mean = 2.0
	}
	return lognormalish(g.rng, mean*hardness)
}

// ownerTime is how long the responsible team needs to mitigate.
func (g *Generator) ownerTime(sev incident.Severity, hardness float64) float64 {
	mean := 2.0
	if sev == incident.SevMedium {
		mean = 3.0
	}
	if sev == incident.SevHigh {
		mean = 4.5
	}
	return lognormalish(g.rng, mean*hardness)
}

// lognormalish samples a positive duration with the given mean and a heavy
// right tail (investigation-time distributions are famously skewed).
func lognormalish(rng *rand.Rand, mean float64) float64 {
	sigma := 0.6
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// simulateRouting walks the incident through teams the way §3.2 describes:
// start at the detecting team (or the support desk for CRIs), have each
// team spend time proving innocence, and move along dependency-folklore
// suspect lists until the responsible team is found — or, when nobody
// inside the provider is at fault, until enough teams have ruled
// themselves out.
func (g *Generator) simulateRouting(in *incident.Incident, f *fault, detector string) {
	owner := f.owner
	in.OwnerLabel = owner
	now := in.CreatedAt

	// Mis-routed paths are a biased, intrinsically harder sample (§3.1):
	// apply an extra difficulty multiplier when the first team is wrong.
	hardness := f.hardness

	current := detector
	if in.Source == incident.SourceCustomer {
		// The 24x7 support team triages CRIs with run-books, specialized
		// tools and the NLP recommender (§2). A good share goes straight
		// to the responsible team; support's short triage is folded into
		// that team's hop. The rest bounce through suspects below.
		if owner != TeamCustomer && g.rng.Float64() < 0.4 {
			d := g.ownerTime(in.Severity, hardness)
			in.Hops = append(in.Hops, incident.Hop{Team: owner, Enter: now, Exit: now + d})
			return
		}
		current = TeamSupport
	}

	// Highest-severity incidents are war-roomed: everyone joins and the
	// owner is found almost immediately, so routing accuracy barely
	// matters (§3.1: only 0.15% improvement possible).
	if in.Severity == incident.SevHigh && owner != TeamCustomer && g.rng.Float64() < 0.9 {
		if current != owner {
			d := 0.1 + 0.1*g.rng.Float64()
			in.Hops = append(in.Hops, incident.Hop{Team: current, Enter: now, Exit: now + d})
			now += d
		}
		d := g.ownerTime(in.Severity, hardness)
		in.Hops = append(in.Hops, incident.Hop{Team: owner, Enter: now, Exit: now + d})
		return
	}

	if owner == TeamCustomer {
		g.routeCustomerCaused(in, f, now)
		return
	}

	misrouted := current != owner
	if misrouted {
		// Mis-routed incidents are an intrinsically harder sample (§3.1:
		// they take 10x longer on average, and "mis-routing may indicate
		// the incident is intrinsically harder to resolve").
		hardness *= 2.5 + 4*g.rng.Float64()
	}

	visited := map[string]bool{}
	const maxHops = 11
	for hop := 0; hop < maxHops; hop++ {
		visited[current] = true
		if current == owner {
			d := g.ownerTime(in.Severity, hardness)
			in.Hops = append(in.Hops, incident.Hop{Team: owner, Enter: now, Exit: now + d})
			return
		}
		d := g.innocentTime(in.Severity, hardness)
		in.Hops = append(in.Hops, incident.Hop{Team: current, Enter: now, Exit: now + d})
		now += d

		// Choose the next team: knowledge of the true owner accrues as
		// teams attach their findings to the incident.
		pKnow := 0.3 + 0.18*float64(hop)
		if g.rng.Float64() < pKnow {
			current = owner
			continue
		}
		// The physical network is a legitimate suspect for almost any
		// connectivity symptom, so innocent teams disproportionately rule
		// it in (§3: PhyNet receives 1 in 10 mis-routed incidents, other
		// teams 1 in 100 to 1 in 1000). The suspicion grows as easier
		// explanations are exhausted, so PhyNet tends to be dragged in
		// mid-investigation rather than at the very first transfer.
		pPhyNet := 0.18 + 0.12*float64(hop)
		if pPhyNet > 0.5 {
			pPhyNet = 0.5
		}
		if owner != TeamPhyNet && !visited[TeamPhyNet] && g.rng.Float64() < pPhyNet {
			current = TeamPhyNet
			continue
		}
		next := ""
		unvisited := make([]string, 0, 4)
		for _, s := range SuspectsOf(current) {
			if !visited[s] && s != TeamSupport {
				unvisited = append(unvisited, s)
			}
		}
		if len(unvisited) > 0 {
			// Habit says the first suspect, but operators are not
			// deterministic (§3.2).
			if g.rng.Float64() < 0.6 {
				next = unvisited[0]
			} else {
				next = unvisited[g.rng.Intn(len(unvisited))]
			}
		}
		if next == "" {
			// Folklore exhausted: pick any unvisited team, else the owner.
			for _, team := range Teams {
				if !visited[team] {
					next = team
					break
				}
			}
		}
		if next == "" {
			next = owner
		}
		current = next
	}
	// Safety net: resolve at the owner.
	d := g.ownerTime(in.Severity, hardness)
	in.Hops = append(in.Hops, incident.Hop{Team: owner, Enter: now, Exit: now + d})
}

// routeCustomerCaused models the file-share example: several internal teams
// (almost always including PhyNet) rule themselves out before support
// concludes the customer's environment is at fault.
func (g *Generator) routeCustomerCaused(in *incident.Incident, f *fault, now float64) {
	d := 0.3 + 0.4*g.rng.Float64()
	in.Hops = append(in.Hops, incident.Hop{Team: TeamSupport, Enter: now, Exit: now + d})
	now += d

	nTeams := 3 + g.rng.Intn(5) // 3..7 internal teams get involved
	order := []string{TeamCompute, TeamStorage, TeamPhyNet, TeamSLB, TeamHostNet, TeamDNS, TeamFirewall}
	// PhyNet is engaged in nearly every such investigation (§3.2: 28
	// incidents, PhyNet engaged in each); keep it in the first three.
	g.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	placed := false
	for i := 0; i < 3 && i < len(order); i++ {
		if order[i] == TeamPhyNet {
			placed = true
		}
	}
	if !placed && g.rng.Float64() < 0.9 {
		order[g.rng.Intn(3)] = TeamPhyNet
	}
	seen := map[string]bool{}
	count := 0
	for _, team := range order {
		if count >= nTeams || seen[team] {
			continue
		}
		seen[team] = true
		count++
		dt := g.innocentTime(in.Severity, f.hardness)
		in.Hops = append(in.Hops, incident.Hop{Team: team, Enter: now, Exit: now + dt})
		now += dt
	}
	// Support closes it against the customer.
	dt := 0.2 + 0.3*g.rng.Float64()
	in.Hops = append(in.Hops, incident.Hop{Team: TeamSupport, Enter: now, Exit: now + dt})
	in.OwnerLabel = TeamCustomer
}
