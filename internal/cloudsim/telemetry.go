package cloudsim

import (
	"math"
	"sync"

	"scouts/internal/monitoring"
	"scouts/internal/topology"
)

// The twelve PhyNet monitoring datasets of Table 2. Names are the dataset
// identifiers used throughout the Scout configuration.
const (
	DSPingmesh   = "pingmesh"    // server-pair latency (Pingmesh [34])
	DSLinkDrop   = "linkdrop"    // link-level drop detections ([64])
	DSSwitchDrop = "switchdrop"  // switch-level drop detections ([64])
	DSCanary     = "canary"      // canary-VM reachability per cluster
	DSReboots    = "reboots"     // device reboot records
	DSLinkLoss   = "linkloss"    // per-port loss-rate counters
	DSFCS        = "fcs"         // packet-corruption (FCS) alarms
	DSSyslog     = "syslog"      // SNMP/syslog error messages
	DSPFC        = "pfc"         // priority-flow-control pause counts
	DSIfCounters = "ifcounters"  // interface drop counters
	DSTemp       = "temperature" // ASIC/host temperature
	DSCPU        = "cpu"         // device CPU usage
)

// Tick is the telemetry sampling interval in model hours (6 minutes): a
// two-hour Scout look-back window holds 20 samples per series.
const Tick = 0.1

// datasetSpec describes how one dataset is synthesized.
type datasetSpec struct {
	desc     monitoring.Descriptor
	covers   map[topology.ComponentType]bool
	base     float64 // baseline level for time series
	sigma    float64 // baseline noise for time series
	perClust float64 // magnitude of the per-cluster baseline offset
	bgRate   float64 // background event rate per hour (event datasets)
	kind     string  // default event kind
}

func specs() []datasetSpec {
	sw := map[topology.ComponentType]bool{topology.TypeSwitch: true}
	srv := map[topology.ComponentType]bool{topology.TypeServer: true}
	dev := map[topology.ComponentType]bool{topology.TypeSwitch: true, topology.TypeServer: true}
	cl := map[topology.ComponentType]bool{topology.TypeCluster: true}
	return []datasetSpec{
		{desc: monitoring.Descriptor{Name: DSPingmesh, Locator: "store://phynet/pingmesh", Type: monitoring.TimeSeries, ComponentType: topology.TypeServer, Description: "server-pair latency (ms)"},
			covers: srv, base: 0.5, sigma: 0.05, perClust: 0.2},
		{desc: monitoring.Descriptor{Name: DSLinkDrop, Locator: "store://phynet/linkdrop", Type: monitoring.Event, ComponentType: topology.TypeSwitch, Class: "drops", Description: "link-level packet-drop detections"},
			covers: sw, bgRate: 0.002, kind: "LINK_DROP"},
		{desc: monitoring.Descriptor{Name: DSSwitchDrop, Locator: "store://phynet/switchdrop", Type: monitoring.Event, ComponentType: topology.TypeSwitch, Class: "drops", Description: "switch-level packet-drop detections"},
			covers: sw, bgRate: 0.002, kind: "SWITCH_DROP"},
		{desc: monitoring.Descriptor{Name: DSCanary, Locator: "store://phynet/canary", Type: monitoring.TimeSeries, ComponentType: topology.TypeCluster, Description: "canary-VM reachability success rate"},
			covers: cl, base: 0.999, sigma: 0.0005, perClust: 0.0002},
		{desc: monitoring.Descriptor{Name: DSReboots, Locator: "store://phynet/reboots", Type: monitoring.Event, ComponentType: topology.TypeSwitch, Description: "device reboot records"},
			covers: dev, bgRate: 0.0008, kind: "REBOOT"},
		{desc: monitoring.Descriptor{Name: DSLinkLoss, Locator: "store://phynet/linkloss", Type: monitoring.TimeSeries, ComponentType: topology.TypeSwitch, Description: "per-port loss rate"},
			covers: sw, base: 1e-5, sigma: 4e-6, perClust: 2e-6},
		{desc: monitoring.Descriptor{Name: DSFCS, Locator: "store://phynet/fcs", Type: monitoring.Event, ComponentType: topology.TypeSwitch, Description: "FCS corruption alarms"},
			covers: sw, bgRate: 0.001, kind: "FCS_ERROR"},
		{desc: monitoring.Descriptor{Name: DSSyslog, Locator: "store://phynet/syslog", Type: monitoring.Event, ComponentType: topology.TypeSwitch, Description: "SNMP/syslog error messages"},
			covers: sw, bgRate: 0.02, kind: "SYSLOG_ERR"},
		{desc: monitoring.Descriptor{Name: DSPFC, Locator: "store://phynet/pfc", Type: monitoring.TimeSeries, ComponentType: topology.TypeSwitch, Description: "PFC pause frames per interval"},
			covers: sw, base: 10, sigma: 3, perClust: 2},
		{desc: monitoring.Descriptor{Name: DSIfCounters, Locator: "store://phynet/ifcounters", Type: monitoring.TimeSeries, ComponentType: topology.TypeSwitch, Description: "interface packet drops per interval"},
			covers: sw, base: 2, sigma: 1, perClust: 0.5},
		{desc: monitoring.Descriptor{Name: DSTemp, Locator: "store://phynet/temperature", Type: monitoring.TimeSeries, ComponentType: topology.TypeSwitch, Description: "component temperature (C)"},
			covers: dev, base: 45, sigma: 1.5, perClust: 2},
		{desc: monitoring.Descriptor{Name: DSCPU, Locator: "store://phynet/cpu", Type: monitoring.TimeSeries, ComponentType: topology.TypeServer, Description: "device CPU usage (%)"},
			covers: dev, base: 30, sigma: 5, perClust: 4},
	}
}

// Effect is one dataset-level consequence of a fault on a component.
type Effect struct {
	Dataset   string
	MeanShift float64 // added to time-series values
	StdScale  float64 // scales time-series noise (0 or 1 = unchanged)
	EventRate float64 // extra events per hour
	EventKind string  // kind for injected events (default: dataset default)
}

// Anomaly perturbs one component's telemetry during [Start, End).
type Anomaly struct {
	Component string
	Start     float64
	End       float64
	Effects   []Effect
}

// Telemetry is a deterministic, lazily-synthesized monitoring data source:
// any window of any series can be queried at any time and the same window
// always returns the same values. Fault anomalies registered by the trace
// generator perturb the affected series. Telemetry implements
// monitoring.DataSource.
type Telemetry struct {
	topo  *topology.Topology
	seed  uint64
	specs []datasetSpec
	byDS  map[string]*datasetSpec

	mu        sync.RWMutex
	anomalies map[string][]*Anomaly // keyed by component
	removed   map[string]bool       // deprecated datasets (Figure 9)
}

// NewTelemetry builds the telemetry model for a topology.
func NewTelemetry(topo *topology.Topology, seed int64) *Telemetry {
	t := &Telemetry{
		topo:      topo,
		seed:      uint64(seed),
		specs:     specs(),
		byDS:      map[string]*datasetSpec{},
		anomalies: map[string][]*Anomaly{},
		removed:   map[string]bool{},
	}
	for i := range t.specs {
		s := &t.specs[i]
		for _, ct := range []topology.ComponentType{
			topology.TypeVM, topology.TypeServer, topology.TypeSwitch,
			topology.TypeCluster, topology.TypeDC,
		} {
			if s.covers[ct] {
				s.desc.Covers = append(s.desc.Covers, ct)
			}
		}
		t.byDS[s.desc.Name] = s
	}
	return t
}

// Datasets implements monitoring.DataSource.
func (t *Telemetry) Datasets() []monitoring.Descriptor {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]monitoring.Descriptor, 0, len(t.specs))
	for _, s := range t.specs {
		if !t.removed[s.desc.Name] {
			out = append(out, s.desc)
		}
	}
	return out
}

// Deprecate removes a dataset from the registry, simulating a monitoring
// system being retired (Figure 9). Restore re-adds it.
func (t *Telemetry) Deprecate(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.removed[name] = true
}

// Restore undoes Deprecate.
func (t *Telemetry) Restore(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.removed, name)
}

// AddAnomaly registers a fault's telemetry perturbation.
func (t *Telemetry) AddAnomaly(a Anomaly) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := a
	t.anomalies[a.Component] = append(t.anomalies[a.Component], &cp)
}

// relevantAnomalies snapshots the anomalies that touch (dataset, component)
// anywhere inside [from, to), so window synthesis takes the lock once.
func (t *Telemetry) relevantAnomalies(dataset, component string, from, to float64) []*Anomaly {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Anomaly
	for _, a := range t.anomalies[component] {
		if a.End <= from || a.Start >= to {
			continue
		}
		for _, e := range a.Effects {
			if e.Dataset == dataset {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// effectsAt sums the effects of the pre-filtered anomalies at time ts.
func effectsAt(dataset string, anomalies []*Anomaly, ts float64) (meanShift, stdScale, eventRate float64, kind string) {
	stdScale = 1
	for _, a := range anomalies {
		if ts < a.Start || ts >= a.End {
			continue
		}
		for _, e := range a.Effects {
			if e.Dataset != dataset {
				continue
			}
			meanShift += e.MeanShift
			if e.StdScale > 0 {
				stdScale *= e.StdScale
			}
			eventRate += e.EventRate
			if e.EventKind != "" {
				kind = e.EventKind
			}
		}
	}
	return meanShift, stdScale, eventRate, kind
}

// covered reports whether the dataset monitors this component.
func (t *Telemetry) covered(spec *datasetSpec, component string) bool {
	c, ok := t.topo.Lookup(component)
	if !ok {
		return false
	}
	return spec.covers[c.Type]
}

// clusterOffset derives the stable per-cluster baseline deviation ("different
// clusters have different baseline latencies", §3.3).
func (t *Telemetry) clusterOffset(spec *datasetSpec, component string) float64 {
	cluster := t.topo.ClusterOf(component)
	if cluster == "" {
		cluster = component
	}
	u := hashUnit(t.seed, spec.desc.Name, cluster, 0)
	return (u*2 - 1) * spec.perClust
}

// seriesSpec gates a time-series query: the spec when the dataset exists,
// is live, is a time series, and monitors the component; nil otherwise.
func (t *Telemetry) seriesSpec(dataset, component string) *datasetSpec {
	t.mu.RLock()
	spec, ok := t.byDS[dataset]
	removed := t.removed[dataset]
	t.mu.RUnlock()
	if !ok || removed || spec.desc.Type != monitoring.TimeSeries || !t.covered(spec, component) {
		return nil
	}
	return spec
}

// seriesInto appends the synthesized values at every tick in [from, to) to
// buf and returns it — the one synthesis loop shared by SeriesWindow and
// WindowStats, so both produce bit-identical values.
func (t *Telemetry) seriesInto(buf []float64, spec *datasetSpec, dataset, component string, from, to float64) []float64 {
	first := int(math.Ceil(from / Tick))
	offset := t.clusterOffset(spec, component)
	anoms := t.relevantAnomalies(dataset, component, from, to)
	for k := first; ; k++ {
		ts := float64(k) * Tick
		if ts >= to {
			break
		}
		meanShift, stdScale := 0.0, 1.0
		if len(anoms) > 0 {
			meanShift, stdScale, _, _ = effectsAt(dataset, anoms, ts)
		}
		noise := hashNorm(t.seed, dataset, component, k)
		v := spec.base + offset + meanShift + noise*spec.sigma*stdScale
		buf = append(buf, v)
	}
	return buf
}

// SeriesWindow implements monitoring.DataSource: values at every tick in
// [from, to).
func (t *Telemetry) SeriesWindow(dataset, component string, from, to float64) []float64 {
	spec := t.seriesSpec(dataset, component)
	if spec == nil {
		return nil
	}
	return t.seriesInto(nil, spec, dataset, component, from, to)
}

// WindowStats implements monitoring.StatsSource. The values are synthesized
// into a small scratch buffer (stack-sized for the Scout's 20-sample
// look-back windows) instead of a returned slice, and the aggregates use
// StatsOf — bit-identical to materializing the window and computing
// metrics.Mean/metrics.StdDev on it.
//
//scout:hotpath
func (t *Telemetry) WindowStats(dataset, component string, from, to float64) (monitoring.Stats, bool) {
	spec := t.seriesSpec(dataset, component)
	if spec == nil {
		return monitoring.Stats{}, false
	}
	var scratch [64]float64
	vals := t.seriesInto(scratch[:0], spec, dataset, component, from, to)
	if len(vals) == 0 {
		return monitoring.Stats{}, false
	}
	return monitoring.StatsOf(vals), true
}

// EventsWindow implements monitoring.DataSource: background events plus
// anomaly-injected bursts in [from, to).
func (t *Telemetry) EventsWindow(dataset, component string, from, to float64) []monitoring.EventRecord {
	t.mu.RLock()
	spec, ok := t.byDS[dataset]
	removed := t.removed[dataset]
	t.mu.RUnlock()
	if !ok || removed || spec.desc.Type != monitoring.Event || !t.covered(spec, component) {
		return nil
	}
	first := int(math.Ceil(from / Tick))
	var out []monitoring.EventRecord
	anoms := t.relevantAnomalies(dataset, component, from, to)
	for k := first; ; k++ {
		ts := float64(k) * Tick
		if ts >= to {
			break
		}
		extraRate, kind := 0.0, ""
		if len(anoms) > 0 {
			_, _, extraRate, kind = effectsAt(dataset, anoms, ts)
		}
		if kind == "" {
			kind = spec.kind
		}
		rate := spec.bgRate + extraRate
		p := rate * Tick
		if p > 0 && hashUnit(t.seed, dataset, component, k) < p {
			out = append(out, monitoring.EventRecord{
				Time: ts + hashUnit(t.seed+1, dataset, component, k)*Tick,
				Kind: kind,
			})
		}
	}
	return out
}

// EventCount implements monitoring.StatsSource: the number of events in
// [from, to), evaluated with the same per-tick occurrence predicate as
// EventsWindow but without materializing any records.
//
//scout:hotpath
func (t *Telemetry) EventCount(dataset, component string, from, to float64) int {
	t.mu.RLock()
	spec, ok := t.byDS[dataset]
	removed := t.removed[dataset]
	t.mu.RUnlock()
	if !ok || removed || spec.desc.Type != monitoring.Event || !t.covered(spec, component) {
		return 0
	}
	first := int(math.Ceil(from / Tick))
	anoms := t.relevantAnomalies(dataset, component, from, to)
	n := 0
	for k := first; ; k++ {
		ts := float64(k) * Tick
		if ts >= to {
			break
		}
		extraRate := 0.0
		if len(anoms) > 0 {
			_, _, extraRate, _ = effectsAt(dataset, anoms, ts)
		}
		p := (spec.bgRate + extraRate) * Tick
		if p > 0 && hashUnit(t.seed, dataset, component, k) < p {
			n++
		}
	}
	return n
}

// Topology exposes the underlying topology.
func (t *Telemetry) Topology() *topology.Topology { return t.topo }

// Interface conformance checks.
var (
	_ monitoring.DataSource  = (*Telemetry)(nil)
	_ monitoring.StatsSource = (*Telemetry)(nil)
)

// --- deterministic hashing ---------------------------------------------

// fnv1a hashes a string with FNV-1a 64.
func fnv1a(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix is splitmix64 finalization.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashUnit returns a deterministic uniform in [0, 1).
func hashUnit(seed uint64, dataset, component string, k int) float64 {
	h := mix(seed ^ fnv1a(dataset)*3 ^ fnv1a(component)*5 ^ uint64(k)*0x9E3779B97F4A7C15)
	return float64(h>>11) / (1 << 53)
}

// hashNorm returns a deterministic standard normal via Box-Muller.
func hashNorm(seed uint64, dataset, component string, k int) float64 {
	u1 := hashUnit(seed^0xABCD, dataset, component, k)
	u2 := hashUnit(seed^0x1234, dataset, component, k)
	if u1 < 1e-15 {
		u1 = 1e-15
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
