package cloudsim

import (
	"fmt"
	"math/rand"
)

// fault is one concrete fault instance: the ground truth behind an incident.
type fault struct {
	scenario  string
	owner     string   // team truly responsible
	broad     bool     // implicates a whole cluster, not specific devices
	mentioned []string // components the incident text will name
	anomalies []Anomaly
	title     string
	body      string
	rootCause string
	// detectorWeights: (team -> weight) for who notices first; the special
	// key TeamCustomer means a customer-reported incident.
	detectors map[string]float64
	// hardness scales investigation times (customer problems and vague
	// CRIs are intrinsically harder, §3.1).
	hardness float64
	// pHighSev overrides the default high-severity probability.
	pHighSev float64
}

// scenarioDef is a template in the fault catalogue.
type scenarioDef struct {
	name   string
	weight float64
	build  func(g *Generator, t float64, rng *rand.Rand) *fault
	// startDay gates emergent incident families: the scenario only occurs
	// from this day on. 0 means always; -1 means "use Params.NovelStartDay".
	startDay int
}

// pick helpers --------------------------------------------------------------

func pickOne(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func (g *Generator) randomCluster(rng *rand.Rand) string {
	return pickOne(rng, g.clusters)
}

func (g *Generator) randomToR(rng *rand.Rand, cluster string) string {
	tors := g.torsByCluster[cluster]
	return pickOne(rng, tors)
}

func (g *Generator) serversUnder(tor string) []string {
	return g.topo.Children(tor)
}

func (g *Generator) randomVMOn(rng *rand.Rand, server string) string {
	vms := g.topo.Children(server)
	if len(vms) == 0 {
		return ""
	}
	return pickOne(rng, vms)
}

// effect shorthands ----------------------------------------------------------

func shift(ds string, mean float64) Effect { return Effect{Dataset: ds, MeanShift: mean} }

func noisy(ds string, scale float64) Effect { return Effect{Dataset: ds, StdScale: scale} }

func burst(ds string, perHour float64) Effect { return Effect{Dataset: ds, EventRate: perHour} }

// anomalyFor builds an anomaly lasting from slightly before the incident to
// `dur` hours after it (investigations observe live symptoms).
func anomalyFor(comp string, t, dur float64, effects ...Effect) Anomaly {
	return Anomaly{Component: comp, Start: t - 0.5, End: t + dur, Effects: effects}
}

// catalogue returns the full scenario table. Weights approximate the §3
// incident mix: PhyNet owns roughly a third of the incidents that pass
// through it; the physical network is a frequent innocent suspect for the
// rest.
func catalogue() []scenarioDef {
	return []scenarioDef{
		// --- PhyNet-owned faults ------------------------------------------
		{name: "tor-failure", weight: 3, build: buildToRFailure},
		{name: "link-corruption", weight: 2, build: buildLinkCorruption},
		{name: "switch-drops", weight: 2, build: buildSwitchDrops},
		{name: "network-config-push", weight: 1.5, build: buildConfigPush},
		{name: "switch-overheat", weight: 1, build: buildOverheat},
		{name: "transient-spike", weight: 0.8, build: buildTransient},
		{name: "dhcp-misconfig", weight: 0.4, build: buildDHCP},
		// --- other teams' faults ------------------------------------------
		{name: "storage-latency", weight: 3, build: buildStorageLatency},
		{name: "slb-vip-drop", weight: 2, build: buildSLBVIP},
		{name: "hostnet-vswitch", weight: 1.5, build: buildHostNet},
		{name: "db-query-slow", weight: 1.5, build: buildDBQuery},
		{name: "dns-resolution", weight: 1, build: buildDNS},
		{name: "compute-host", weight: 1.5, build: buildComputeHost},
		{name: "firewall-push", weight: 0.8, build: buildFirewall},
		{name: "wan-bgp", weight: 0.8, build: buildWAN},
		{name: "cdn-cache", weight: 0.5, build: buildCDN},
		// --- nobody inside the provider -----------------------------------
		{name: "customer-misconfig", weight: 1.6, build: buildCustomerMisconfig},
		// --- emergent incident family (Figure 10's Oct-Nov novelty) --------
		{name: "optics-brownout", weight: 1.5, build: buildOpticsBrownout, startDay: -1},
	}
}

// buildOpticsBrownout is a *new kind* of PhyNet incident that only starts
// occurring late in the trace (Params.NovelStartDay): a whole optics
// generation browning out. Its wording is novel and its telemetry
// signature is faint, so a Scout trained before its first occurrence
// mis-classifies it until retraining catches up — reproducing the paper's
// October–November accuracy dip (§7.3).
func buildOpticsBrownout(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	dur := 3 + rng.Float64()*5
	f := &fault{
		scenario: "optics-brownout",
		owner:    TeamPhyNet,
		title:    fmt.Sprintf("Optical power brownout on transceivers in %s", cluster),
		body: fmt.Sprintf("New-generation optics on switch %s in cluster %s report marginal receive power; "+
			"intermittent link flaps without packet-drop alarms.", tor, cluster),
		rootCause: "vendor optics firmware brownout (new hardware generation)",
		detectors: map[string]float64{TeamPhyNet: 0.4, TeamStorage: 0.2, TeamSLB: 0.15, TeamCustomer: 0.25},
		hardness:  1.2,
	}
	f.mentioned = []string{tor, cluster}
	// An unusual signature: the transceiver *cools* while its firmware
	// throttles — a negative temperature shift, where every fault a
	// pre-onset model has seen moves temperature up. Change-point
	// detection sees the shift clearly; a forest trained before the
	// family existed has no splits in this region of feature space, so it
	// mis-classifies the family until retraining catches up (§7.3).
	f.anomalies = append(f.anomalies,
		anomalyFor(tor, t, dur, shift(DSTemp, -5)),
	)
	return f
}

func buildToRFailure(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	servers := g.serversUnder(tor)
	dur := 2 + rng.Float64()*6
	f := &fault{
		scenario: "tor-failure",
		owner:    TeamPhyNet,
		title:    fmt.Sprintf("Connectivity loss for servers under %s", tor),
		body: fmt.Sprintf("Multiple servers in cluster %s report connection failures. "+
			"Affected rack is served by switch %s. VMs are rebooting repeatedly.", cluster, tor),
		rootCause: "ToR switch failed after unplanned reboot (config change)",
		detectors: map[string]float64{TeamStorage: 0.2, TeamDB: 0.1, TeamPhyNet: 0.47, TeamCompute: 0.08, TeamCustomer: 0.15},
		hardness:  1,
	}
	f.mentioned = []string{tor, cluster}
	if len(servers) > 0 {
		srv := pickOne(rng, servers)
		f.mentioned = append(f.mentioned, srv)
		if vm := g.randomVMOn(rng, srv); vm != "" {
			f.mentioned = append(f.mentioned, vm)
		}
	}
	f.anomalies = append(f.anomalies,
		anomalyFor(tor, t, dur, burst(DSReboots, 3), burst(DSSyslog, 20), shift(DSIfCounters, 25), noisy(DSIfCounters, 3)),
		anomalyFor(cluster, t, dur, shift(DSCanary, -0.01)),
	)
	for _, s := range servers {
		f.anomalies = append(f.anomalies, anomalyFor(s, t, dur, shift(DSPingmesh, 1.5), noisy(DSPingmesh, 4)))
	}
	return f
}

func buildLinkCorruption(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	dur := 3 + rng.Float64()*8
	f := &fault{
		scenario:  "link-corruption",
		owner:     TeamPhyNet,
		title:     fmt.Sprintf("Packet corruption alarms on %s", tor),
		body:      fmt.Sprintf("FCS error rate above threshold on uplink of switch %s in cluster %s.", tor, cluster),
		rootCause: "optical transceiver degradation corrupting frames",
		detectors: map[string]float64{TeamPhyNet: 0.7, TeamStorage: 0.15, TeamCustomer: 0.15},
		hardness:  1,
	}
	f.mentioned = []string{tor, cluster}
	f.anomalies = append(f.anomalies,
		anomalyFor(tor, t, dur, burst(DSFCS, 8), shift(DSLinkLoss, 5e-4), burst(DSSyslog, 6)),
	)
	return f
}

func buildSwitchDrops(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	servers := g.serversUnder(tor)
	dur := 2 + rng.Float64()*5
	f := &fault{
		scenario:  "switch-drops",
		owner:     TeamPhyNet,
		title:     fmt.Sprintf("Elevated packet drops in cluster %s", cluster),
		body:      fmt.Sprintf("Packet drop detector implicates switch %s. Tenants in cluster %s observe retransmits.", tor, cluster),
		rootCause: "ASIC buffer misconfiguration dropping packets",
		detectors: map[string]float64{TeamPhyNet: 0.6, TeamSLB: 0.1, TeamStorage: 0.12, TeamCustomer: 0.18},
		hardness:  1,
	}
	f.mentioned = []string{tor, cluster}
	f.anomalies = append(f.anomalies,
		anomalyFor(tor, t, dur, burst(DSSwitchDrop, 5), burst(DSLinkDrop, 4), shift(DSIfCounters, 15), shift(DSPFC, 30)),
	)
	for _, s := range servers {
		f.anomalies = append(f.anomalies, anomalyFor(s, t, dur, shift(DSPingmesh, 0.6)))
	}
	return f
}

func buildConfigPush(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	dur := 1.5 + rng.Float64()*4
	f := &fault{
		scenario: "network-config-push",
		owner:    TeamPhyNet,
		broad:    true,
		title:    fmt.Sprintf("Cluster-wide connectivity degradation in %s", cluster),
		body: fmt.Sprintf("Reachability drop across cluster %s following maintenance window. "+
			"Multiple services report errors; no single device implicated.", cluster),
		rootCause: "fleet-wide routing config push withdrew prefixes",
		detectors: map[string]float64{TeamPhyNet: 0.3, TeamSLB: 0.2, TeamStorage: 0.15, TeamDB: 0.15, TeamCustomer: 0.2},
		hardness:  1.2,
		pHighSev:  0.25,
	}
	f.mentioned = []string{cluster}
	f.anomalies = append(f.anomalies, anomalyFor(cluster, t, dur, shift(DSCanary, -0.02)))
	for _, sw := range g.switchesByCluster[cluster] {
		f.anomalies = append(f.anomalies, anomalyFor(sw, t, dur, burst(DSSyslog, 8), shift(DSIfCounters, 10)))
	}
	for _, s := range g.serversByCluster[cluster] {
		f.anomalies = append(f.anomalies, anomalyFor(s, t, dur, shift(DSPingmesh, 0.8)))
	}
	return f
}

func buildOverheat(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	dur := 4 + rng.Float64()*10
	f := &fault{
		scenario:  "switch-overheat",
		owner:     TeamPhyNet,
		title:     fmt.Sprintf("Temperature alarm on switch %s", tor),
		body:      fmt.Sprintf("ASIC temperature on %s above operating threshold; thermal throttling engaged in cluster %s.", tor, cluster),
		rootCause: "failed fan tray overheating the switch ASIC",
		detectors: map[string]float64{TeamPhyNet: 0.85, TeamCustomer: 0.15},
		hardness:  0.9,
	}
	f.mentioned = []string{tor, cluster}
	f.anomalies = append(f.anomalies,
		anomalyFor(tor, t, dur, shift(DSTemp, 18), burst(DSSyslog, 4), shift(DSCPU, 10)),
	)
	return f
}

// buildTransient generates the §7.2 false-negative case: the spike is over
// before anyone investigates, so monitoring looks healthy by the time the
// Scout pulls data.
func buildTransient(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	f := &fault{
		scenario:  "transient-spike",
		owner:     TeamPhyNet,
		title:     fmt.Sprintf("Latency spike alert in cluster %s", cluster),
		body:      fmt.Sprintf("Short-lived latency spike crossed the alerting threshold near switch %s in %s. Metric has since recovered.", tor, cluster),
		rootCause: "transient microburst congestion (self-resolved)",
		detectors: map[string]float64{TeamPhyNet: 0.6, TeamDB: 0.2, TeamCustomer: 0.2},
		hardness:  0.8,
	}
	f.mentioned = []string{tor, cluster}
	// The anomaly ends well before the incident is created.
	for _, s := range g.serversUnder(tor) {
		f.anomalies = append(f.anomalies, Anomaly{
			Component: s, Start: t - 2.2, End: t - 1.4,
			Effects: []Effect{shift(DSPingmesh, 2)},
		})
	}
	return f
}

// buildDHCP generates the §7.2 uncaptured-symptom case: a real PhyNet
// problem none of the twelve datasets observes.
func buildDHCP(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	return &fault{
		scenario:  "dhcp-misconfig",
		owner:     TeamPhyNet,
		title:     fmt.Sprintf("Incorrect DHCP relay configuration on %s", tor),
		body:      fmt.Sprintf("Tracking fixes to DHCP relay settings on ToR %s in cluster %s; new hosts fail to image.", tor, cluster),
		rootCause: "DHCP relay misconfiguration (not covered by monitoring)",
		detectors: map[string]float64{TeamPhyNet: 0.5, TeamCompute: 0.5},
		hardness:  1,
		mentioned: []string{tor, cluster},
	}
}

func buildStorageLatency(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	storageCluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	servers := g.serversUnder(tor)
	srv := pickOne(rng, servers)
	vm := g.randomVMOn(rng, srv)
	f := &fault{
		scenario: "storage-latency",
		owner:    TeamStorage,
		title:    fmt.Sprintf("Virtual disk latency degradation in %s", cluster),
		body: fmt.Sprintf("VM %s on server %s experiencing virtual disk timeouts against storage cluster %s. "+
			"Automated recovery unsuccessful.", vm, srv, storageCluster),
		rootCause: "storage stamp overload (background repair traffic)",
		detectors: map[string]float64{TeamDB: 0.3, TeamCompute: 0.25, TeamStorage: 0.25, TeamCustomer: 0.2},
		hardness:  1.1,
	}
	f.mentioned = []string{vm, srv, cluster, storageCluster}
	// PhyNet telemetry stays at baseline: that absence is the signal.
	return f
}

func buildSLBVIP(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	f := &fault{
		scenario:  "slb-vip-drop",
		owner:     TeamSLB,
		title:     fmt.Sprintf("VIP availability drop in %s", cluster),
		body:      fmt.Sprintf("Connectivity failures to virtual IPs served from cluster %s after SLB deployment rollout.", cluster),
		rootCause: "SLB mux update broke VIP-to-DIP mappings",
		detectors: map[string]float64{TeamSLB: 0.3, TeamSupport: 0.15, TeamCustomer: 0.45, TeamDB: 0.1},
		hardness:  1.1,
	}
	f.mentioned = []string{cluster}
	return f
}

func buildHostNet(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	srv := pickOne(rng, g.serversUnder(tor))
	vm := g.randomVMOn(rng, srv)
	dur := 2 + rng.Float64()*4
	f := &fault{
		scenario:  "hostnet-vswitch",
		owner:     TeamHostNet,
		title:     fmt.Sprintf("Virtual switch packet processing stalls on %s", srv),
		body:      fmt.Sprintf("VM %s on server %s in cluster %s sees intermittent connectivity; host vswitch CPU saturated.", vm, srv, cluster),
		rootCause: "vswitch datapath bug pinning a core",
		detectors: map[string]float64{TeamHostNet: 0.35, TeamCompute: 0.25, TeamPhyNet: 0.1, TeamCustomer: 0.3},
		hardness:  1,
	}
	f.mentioned = []string{vm, srv, cluster}
	// Confounder: the host's CPU telemetry (a PhyNet dataset) does move.
	f.anomalies = append(f.anomalies, anomalyFor(srv, t, dur, shift(DSCPU, 45)))
	return f
}

func buildDBQuery(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	f := &fault{
		scenario:  "db-query-slow",
		owner:     TeamDB,
		title:     fmt.Sprintf("Database query latency regression in %s", cluster),
		body:      fmt.Sprintf("Query execution times degraded for databases hosted in cluster %s; login times normal.", cluster),
		rootCause: "bad query plan after statistics refresh",
		detectors: map[string]float64{TeamDB: 0.6, TeamCustomer: 0.4},
		hardness:  0.9,
	}
	f.mentioned = []string{cluster}
	return f
}

func buildDNS(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	f := &fault{
		scenario:  "dns-resolution",
		owner:     TeamDNS,
		title:     "Name resolution failures for internal zones",
		body:      fmt.Sprintf("Services in cluster %s intermittently fail to resolve internal names; recursive resolvers time out.", cluster),
		rootCause: "zone transfer wedged a resolver pool",
		detectors: map[string]float64{TeamDNS: 0.5, TeamSupport: 0.2, TeamCustomer: 0.3},
		hardness:  0.9,
	}
	f.mentioned = []string{cluster}
	return f
}

func buildComputeHost(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	srv := pickOne(rng, g.serversUnder(tor))
	vm := g.randomVMOn(rng, srv)
	dur := 1 + rng.Float64()*3
	f := &fault{
		scenario:  "compute-host",
		owner:     TeamCompute,
		title:     fmt.Sprintf("Host agent failures on %s", srv),
		body:      fmt.Sprintf("VM %s on server %s (cluster %s) rebooting repeatedly; host OS update suspected.", vm, srv, cluster),
		rootCause: "hypervisor host agent crash loop after OS patch",
		detectors: map[string]float64{TeamCompute: 0.45, TeamDB: 0.15, TeamCustomer: 0.4},
		hardness:  1,
	}
	f.mentioned = []string{vm, srv, cluster}
	// Confounders visible in PhyNet data: server reboots + CPU churn.
	f.anomalies = append(f.anomalies, anomalyFor(srv, t, dur, burst(DSReboots, 2), shift(DSCPU, 25)))
	return f
}

func buildFirewall(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	f := &fault{
		scenario:  "firewall-push",
		owner:     TeamFirewall,
		title:     "Outbound connections blocked on reserved ports",
		body:      fmt.Sprintf("Tenants in cluster %s cannot reach external endpoints on selected ports after edge ACL update.", cluster),
		rootCause: "edge firewall rule push blocked legitimate ports",
		detectors: map[string]float64{TeamFirewall: 0.25, TeamSupport: 0.25, TeamCustomer: 0.5},
		hardness:  1.1,
	}
	f.mentioned = []string{cluster}
	return f
}

func buildWAN(g *Generator, t float64, rng *rand.Rand) *fault {
	dc := pickOne(rng, g.dcs)
	dur := 1 + rng.Float64()*3
	f := &fault{
		scenario:  "wan-bgp",
		owner:     TeamWAN,
		title:     fmt.Sprintf("Reachability loss from partner networks to %s", dc),
		body:      fmt.Sprintf("External monitors report packet loss from several ISPs into datacenter %s; internal paths healthy.", dc),
		rootCause: "BGP session flap with a transit provider",
		detectors: map[string]float64{TeamWAN: 0.4, TeamSupport: 0.2, TeamCustomer: 0.4},
		hardness:  1.3,
	}
	f.mentioned = []string{dc}
	// Mild cross-DC canary wobble — the kind of ambiguity that drags
	// PhyNet into WAN investigations.
	for _, cl := range g.clustersByDC[dc] {
		f.anomalies = append(f.anomalies, anomalyFor(cl, t, dur, shift(DSCanary, -0.003)))
	}
	return f
}

func buildCDN(g *Generator, t float64, rng *rand.Rand) *fault {
	dc := pickOne(rng, g.dcs)
	return &fault{
		scenario:  "cdn-cache",
		owner:     TeamCDN,
		title:     "Elevated cache-miss latency for static content",
		body:      fmt.Sprintf("Edge caches fronting %s serving stale or slow content; origin fetch times elevated.", dc),
		rootCause: "cache invalidation storm after deployment",
		detectors: map[string]float64{TeamCDN: 0.5, TeamCustomer: 0.5},
		hardness:  0.9,
		mentioned: []string{dc},
	}
}

// buildCustomerMisconfig is the §3.2 file-share example: nobody inside the
// provider is responsible, so teams rule themselves out one after another —
// "counter-intuitively, when no teams are responsible, more teams get
// involved" — and PhyNet is almost always dragged in.
func buildCustomerMisconfig(g *Generator, t float64, rng *rand.Rand) *fault {
	cluster := g.randomCluster(rng)
	tor := g.randomToR(rng, cluster)
	srv := pickOne(rng, g.serversUnder(tor))
	vm := g.randomVMOn(rng, srv)
	f := &fault{
		scenario:  "customer-misconfig",
		owner:     TeamCustomer,
		title:     "Customer unable to mount file share",
		body:      fmt.Sprintf("Customer reports VM %s in cluster %s cannot mount a file share. No provider-side errors found so far.", vm, cluster),
		rootCause: "customer on-premises firewall blocked SMB",
		detectors: map[string]float64{TeamCustomer: 1},
		hardness:  1.6,
	}
	f.mentioned = []string{vm, cluster}
	return f
}
