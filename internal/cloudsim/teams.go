// Package cloudsim is the trace-driven stand-in for the proprietary Azure
// incident logs the paper evaluates on. It builds a synthetic cloud — a
// datacenter topology, the twelve PhyNet monitoring datasets of Table 2,
// a catalogue of faults per team, and a behavioural model of how operators
// route incidents today — and emits nine-month incident traces whose §3
// statistics (mis-routing rates, 10x diagnosis blow-up, PhyNet-as-waypoint
// fractions) match the paper's.
//
// Ground truth (which team actually caused each incident) is recorded on
// the incidents but is never visible to the routing systems under test:
// they see only incident text and monitoring data, exactly the paper's
// information surface.
package cloudsim

// Team names of the synthetic cloud. The paper's cloud has hundreds of
// teams ("our cloud has 100 teams in networking"); we model the eleven that
// dominate the PhyNet routing story plus an external pseudo-team for
// customer-caused incidents.
const (
	TeamPhyNet   = "PhyNet"   // physical networking: every switch and router
	TeamStorage  = "Storage"  // remote storage clusters
	TeamSLB      = "SLB"      // software load balancing
	TeamHostNet  = "HostNet"  // host networking / virtual switches
	TeamDB       = "DB"       // database service
	TeamDNS      = "DNS"      // name resolution
	TeamCompute  = "Compute"  // hypervisor / VM lifecycle
	TeamFirewall = "Firewall" // provider edge firewalls
	TeamWAN      = "WAN"      // wide-area networking / peering
	TeamCDN      = "CDN"      // content delivery
	TeamSupport  = "Support"  // 24x7 customer support (CRI entry point)
	// TeamCustomer marks incidents whose root cause is outside the
	// provider (customer misconfigurations, on-prem firewalls, ...).
	TeamCustomer = "Customer"
)

// Teams lists every internal team that can own incidents (Support routes
// but never owns; Customer is external).
var Teams = []string{
	TeamPhyNet, TeamStorage, TeamSLB, TeamHostNet, TeamDB, TeamDNS,
	TeamCompute, TeamFirewall, TeamWAN, TeamCDN,
}

// suspects encodes the operator folklore of §3.2: when team T rules itself
// out, which teams does it suspect next, in order of habit? The physical
// network is "one of the first suspects" for almost everyone — that is why
// it receives 1 in 10 mis-routed incidents.
var suspects = map[string][]string{
	TeamDB:       {TeamStorage, TeamPhyNet, TeamSLB, TeamHostNet, TeamDNS},
	TeamStorage:  {TeamPhyNet, TeamHostNet, TeamSLB, TeamCompute},
	TeamSLB:      {TeamPhyNet, TeamHostNet, TeamDNS, TeamFirewall},
	TeamHostNet:  {TeamPhyNet, TeamCompute, TeamSLB},
	TeamCompute:  {TeamStorage, TeamPhyNet, TeamHostNet},
	TeamDNS:      {TeamPhyNet, TeamWAN, TeamSLB},
	TeamFirewall: {TeamPhyNet, TeamWAN, TeamSLB},
	TeamWAN:      {TeamPhyNet, TeamCDN, TeamFirewall},
	TeamCDN:      {TeamWAN, TeamPhyNet, TeamDNS},
	TeamPhyNet:   {TeamHostNet, TeamSLB, TeamStorage, TeamWAN},
	TeamSupport:  {TeamCompute, TeamStorage, TeamSLB, TeamPhyNet, TeamDB, TeamDNS},
}

// SuspectsOf returns the suspicion order for a team (copy).
func SuspectsOf(team string) []string {
	return append([]string(nil), suspects[team]...)
}

// teamJargon is the domain vocabulary each team's engineers use in their
// incident notes. The trace generator sprinkles it into ticket bodies as
// conversation noise.
var teamJargon = map[string]string{
	TeamPhyNet:   "switch interface counters and link error rates",
	TeamStorage:  "virtual disk queue depths and storage stamp health",
	TeamSLB:      "vip probe health and mux mappings",
	TeamHostNet:  "vswitch datapath and host NIC offloads",
	TeamDB:       "query plans and login latencies",
	TeamDNS:      "resolver caches and zone transfers",
	TeamCompute:  "host agent logs and hypervisor heartbeats",
	TeamFirewall: "edge acl rules and flow logs",
	TeamWAN:      "bgp sessions and peering utilization",
	TeamCDN:      "cache hit ratios and origin fetch times",
}
