package cloudsim

import (
	"sync"
	"testing"

	"scouts/internal/monitoring"
	"scouts/internal/topology"
)

// TestTelemetryConcurrentDeprecateRestore pits Deprecate/Restore/AddAnomaly
// writers against the full read surface (Datasets, SeriesWindow,
// WindowStats, EventsWindow, EventCount) under the race detector. This is
// the §6 serving reality: the registry churns while request featurization
// reads windows, and the RWMutex must cover every path — the audit for the
// fault-injection work found the locking sound, and this test keeps it so.
func TestTelemetryConcurrentDeprecateRestore(t *testing.T) {
	gen := New(Params{Seed: 11, Days: 10, IncidentsPerDay: 4})
	gen.Generate()
	tel := gen.Telemetry()

	ds := tel.Datasets()
	if len(ds) < 2 {
		t.Fatalf("need at least 2 datasets, have %d", len(ds))
	}
	var series, event string
	for _, d := range ds {
		if d.Type == monitoring.TimeSeries && series == "" {
			series = d.Name
		} else if d.Type == monitoring.Event && event == "" {
			event = d.Name
		}
	}
	comps := gen.Topology().Names(topology.TypeServer)
	if series == "" || len(comps) == 0 {
		t.Fatalf("fixture incomplete: series=%q servers=%d", series, len(comps))
	}

	const readers = 4
	const rounds = 200
	var wg sync.WaitGroup
	// Writers: churn the registry and the anomaly list.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tel.Deprecate(ds[i%len(ds)].Name)
			tel.Restore(ds[i%len(ds)].Name)
			tel.AddAnomaly(Anomaly{
				Component: comps[i%len(comps)],
				Start:     float64(i), End: float64(i) + 1,
				Effects: []Effect{{Dataset: series, MeanShift: 2}},
			})
		}
	}()
	// Readers: the full DataSource/StatsSource surface.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				comp := comps[(r+i)%len(comps)]
				from := float64(i % 100)
				tel.Datasets()
				tel.SeriesWindow(series, comp, from, from+6)
				tel.WindowStats(series, comp, from, from+6)
				if event != "" {
					tel.EventsWindow(event, comp, from, from+6)
					tel.EventCount(event, comp, from, from+6)
				}
			}
		}(r)
	}
	wg.Wait()

	// The registry must end whole: every Deprecate was paired with Restore.
	if got := len(tel.Datasets()); got != len(ds) {
		t.Fatalf("registry ended with %d datasets, want %d", got, len(ds))
	}
}
