package cloudsim

import (
	"math"
	"testing"

	"scouts/internal/incident"
	"scouts/internal/metrics"
	"scouts/internal/monitoring"
)

func smallParams(seed int64) Params {
	return Params{Seed: seed, Days: 60, IncidentsPerDay: 10}
}

func TestTelemetryDeterministic(t *testing.T) {
	g := New(smallParams(1))
	tel := g.Telemetry()
	a := tel.SeriesWindow(DSPingmesh, "srv1.c1.dc1", 10, 12)
	b := tel.SeriesWindow(DSPingmesh, "srv1.c1.dc1", 10, 12)
	if len(a) != 20 {
		t.Fatalf("window size %d, want 20", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("telemetry not deterministic")
		}
	}
	// Sub-windows agree with the full window.
	c := tel.SeriesWindow(DSPingmesh, "srv1.c1.dc1", 11, 12)
	if len(c) != 10 || c[0] != a[10] {
		t.Fatalf("sub-window inconsistent: %v vs %v", c[0], a[10])
	}
}

func TestTelemetryCoverage(t *testing.T) {
	g := New(smallParams(2))
	tel := g.Telemetry()
	if tel.SeriesWindow(DSPingmesh, "tor1.c1.dc1", 0, 2) != nil {
		t.Fatal("pingmesh should not cover switches")
	}
	if tel.SeriesWindow(DSCanary, "c1.dc1", 10, 12) == nil {
		t.Fatal("canary should cover clusters")
	}
	if tel.SeriesWindow(DSPingmesh, "vm1.c1.dc1", 10, 12) != nil {
		t.Fatal("PhyNet does not monitor VMs (§5.2)")
	}
	if tel.SeriesWindow("unknown", "srv1.c1.dc1", 10, 12) != nil {
		t.Fatal("unknown dataset should be nil")
	}
	if tel.SeriesWindow(DSSyslog, "tor1.c1.dc1", 10, 12) != nil {
		t.Fatal("event dataset must not serve series")
	}
}

func TestAnomalyShiftsSeries(t *testing.T) {
	g := New(smallParams(3))
	tel := g.Telemetry()
	comp := "srv1.c1.dc1"
	before := tel.SeriesWindow(DSPingmesh, comp, 50, 52)
	tel.AddAnomaly(Anomaly{Component: comp, Start: 50, End: 52,
		Effects: []Effect{{Dataset: DSPingmesh, MeanShift: 5}}})
	after := tel.SeriesWindow(DSPingmesh, comp, 50, 52)
	if metrics.Mean(after)-metrics.Mean(before) < 4.5 {
		t.Fatalf("anomaly shift not visible: %v -> %v", metrics.Mean(before), metrics.Mean(after))
	}
	// Outside the window nothing changes.
	out := tel.SeriesWindow(DSPingmesh, comp, 54, 56)
	if math.Abs(metrics.Mean(out)-metrics.Mean(before)) > 0.2 {
		t.Fatal("anomaly leaked outside its interval")
	}
}

func TestAnomalyEventBurst(t *testing.T) {
	g := New(smallParams(4))
	tel := g.Telemetry()
	comp := "tor1.c1.dc1"
	quiet := tel.EventsWindow(DSSyslog, comp, 100, 104)
	tel.AddAnomaly(Anomaly{Component: comp, Start: 100, End: 104,
		Effects: []Effect{{Dataset: DSSyslog, EventRate: 30}}})
	busy := tel.EventsWindow(DSSyslog, comp, 100, 104)
	if len(busy) < len(quiet)+5 {
		t.Fatalf("event burst missing: quiet=%d busy=%d", len(quiet), len(busy))
	}
	for _, e := range busy {
		if e.Time < 100 || e.Time >= 104.2 {
			t.Fatalf("event time %v outside window", e.Time)
		}
	}
}

func TestDeprecateRestore(t *testing.T) {
	g := New(smallParams(5))
	tel := g.Telemetry()
	n := len(tel.Datasets())
	tel.Deprecate(DSPingmesh)
	if len(tel.Datasets()) != n-1 {
		t.Fatal("deprecate did not remove dataset")
	}
	if tel.SeriesWindow(DSPingmesh, "srv1.c1.dc1", 10, 12) != nil {
		t.Fatal("deprecated dataset still serves data")
	}
	tel.Restore(DSPingmesh)
	if len(tel.Datasets()) != n {
		t.Fatal("restore failed")
	}
}

func TestClusterBaselinesDiffer(t *testing.T) {
	g := New(smallParams(6))
	tel := g.Telemetry()
	a := metrics.Mean(tel.SeriesWindow(DSPingmesh, "srv1.c1.dc1", 10, 20))
	b := metrics.Mean(tel.SeriesWindow(DSPingmesh, "srv1.c3.dc1", 10, 20))
	if math.Abs(a-b) < 0.01 {
		t.Fatalf("clusters should have different baselines: %v vs %v", a, b)
	}
	// Servers within one cluster share the baseline.
	c := metrics.Mean(tel.SeriesWindow(DSPingmesh, "srv2.c1.dc1", 10, 20))
	if math.Abs(a-c) > 0.1 {
		t.Fatalf("same-cluster baseline mismatch: %v vs %v", a, c)
	}
}

func TestGenerateTraceShape(t *testing.T) {
	g := New(smallParams(7))
	log := g.Generate()
	if log.Len() < 300 {
		t.Fatalf("only %d incidents in 60 days", log.Len())
	}
	for _, in := range log.Incidents {
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if in.TrueOwner == "" || in.OwnerLabel == "" {
			t.Fatalf("incident %s missing owner", in.ID)
		}
		if in.Source == incident.SourceMonitor && in.CreatedBy == "" {
			t.Fatalf("monitor incident %s missing creator", in.ID)
		}
	}
}

func TestTraceCalibration(t *testing.T) {
	g := New(Params{Seed: 8, Days: 120, IncidentsPerDay: 14})
	log := g.Generate()

	// (a) Mis-routed incidents take much longer (paper: 10x on average).
	var single, multi []float64
	for _, in := range log.Incidents {
		if len(in.Teams()) == 1 {
			single = append(single, in.TotalTime())
		} else {
			multi = append(multi, in.TotalTime())
		}
	}
	ratio := metrics.Mean(multi) / metrics.Mean(single)
	if ratio < 4 || ratio > 25 {
		t.Fatalf("multi/single time ratio %v out of plausible band", ratio)
	}

	// (b) A large share of incidents passing through PhyNet are not
	// PhyNet's to resolve (paper: 58% involve wasted time; median 35% of
	// daily incidents are innocent waypoints).
	through := log.Involving(TeamPhyNet)
	waypoint := 0
	for _, in := range through {
		if in.OwnerLabel != TeamPhyNet {
			waypoint++
		}
	}
	frac := float64(waypoint) / float64(len(through))
	if frac < 0.2 || frac > 0.75 {
		t.Fatalf("PhyNet innocent-waypoint fraction %v out of band", frac)
	}

	// (c) PhyNet-owned incidents exist in quantity and are mostly detected
	// by PhyNet's own monitors (Figure 1).
	owned := log.OwnedBy(TeamPhyNet)
	if len(owned) < 100 {
		t.Fatalf("only %d PhyNet incidents", len(owned))
	}
	own := 0
	for _, in := range owned {
		if in.CreatedBy == TeamPhyNet {
			own++
		}
	}
	if f := float64(own) / float64(len(owned)); f < 0.3 || f > 0.85 {
		t.Fatalf("own-monitor detection fraction %v out of band", f)
	}

	// (d) Customer-caused incidents drag PhyNet in (§3.2).
	customer := log.OwnedBy(TeamCustomer)
	if len(customer) == 0 {
		t.Fatal("no customer-caused incidents")
	}
	engaged := 0
	for _, in := range customer {
		if in.WentThrough(TeamPhyNet) {
			engaged++
		}
	}
	if f := float64(engaged) / float64(len(customer)); f < 0.6 {
		t.Fatalf("PhyNet engaged in only %v of customer-caused incidents", f)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := New(smallParams(9)).Generate()
	b := New(smallParams(9)).Generate()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Incidents {
		x, y := a.Incidents[i], b.Incidents[i]
		if x.ID != y.ID || x.Title != y.Title || x.CreatedAt != y.CreatedAt ||
			x.OwnerLabel != y.OwnerLabel || len(x.Hops) != len(y.Hops) {
			t.Fatalf("incident %d differs between runs", i)
		}
	}
}

func TestFaultAnomaliesAffectPhyNetTelemetry(t *testing.T) {
	g := New(smallParams(10))
	log := g.Generate()
	tel := g.Telemetry()
	// Find a tor-failure incident that kept its distinctive text (some are
	// rewritten with the generic symptom template) and check its switch
	// shows syslog bursts in the look-back window.
	for _, in := range log.Incidents {
		if in.RootCause != "ToR switch failed after unplanned reboot (config change)" {
			continue
		}
		var tor string
		for _, c := range in.Components {
			if comp, ok := g.Topology().Lookup(c); ok && comp.Type == "switch" {
				tor = c
			}
		}
		if tor == "" {
			continue // generic-symptom variant: no switch mention by design
		}
		evs := tel.EventsWindow(DSSyslog, tor, in.CreatedAt-0.5, in.CreatedAt+0.5)
		if len(evs) == 0 {
			t.Fatalf("no syslog burst for %s at %v", in.ID, in.CreatedAt)
		}
		return
	}
	t.Fatal("no tor-failure incident with a switch mention in trace")
}

func TestCRIMentionDrop(t *testing.T) {
	g := New(Params{Seed: 11, Days: 90, IncidentsPerDay: 14, MentionDropCRI: 0.5})
	log := g.Generate()
	cris := log.Filter(func(in *incident.Incident) bool { return in.Source == incident.SourceCustomer })
	if len(cris) == 0 {
		t.Fatal("no CRIs generated")
	}
	dropped := 0
	for _, in := range cris {
		if len(in.InitialComponents) == 0 {
			dropped++
			// Body must not leak the component names either.
			for _, c := range in.Components {
				if len(c) > 0 && contains(in.Body, c) {
					t.Fatalf("dropped CRI %s still mentions %s", in.ID, c)
				}
			}
		}
	}
	if dropped == 0 {
		t.Fatal("mention dropping never happened at 50% rate")
	}
}

func contains(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

func TestDataSourceInterface(t *testing.T) {
	var _ monitoring.DataSource = New(smallParams(12)).Telemetry()
	ds := New(smallParams(12)).Telemetry().Datasets()
	if len(ds) != 12 {
		t.Fatalf("want the 12 Table 2 datasets, got %d", len(ds))
	}
}
