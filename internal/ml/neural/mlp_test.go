package neural

import (
	"math/rand"
	"testing"

	"scouts/internal/metrics"
	"scouts/internal/ml/mlcore"
)

func xor(n int, rng *rand.Rand) *mlcore.Dataset {
	d := mlcore.NewDataset([]string{"a", "b"})
	for i := 0; i < n; i++ {
		a := rng.Float64() < 0.5
		b := rng.Float64() < 0.5
		xa, xb := -1.0, -1.0
		if a {
			xa = 1
		}
		if b {
			xb = 1
		}
		d.MustAdd(mlcore.Sample{
			X: []float64{xa + rng.NormFloat64()*0.2, xb + rng.NormFloat64()*0.2},
			Y: a != b,
		})
	}
	return d
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := xor(800, rng)
	test := xor(300, rng)
	m, err := Train(train, Params{Hidden: 16, Epochs: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for _, s := range test.Samples {
		pred, conf := m.Predict(s.X)
		if conf < 0.5 || conf > 1 {
			t.Fatalf("conf %v", conf)
		}
		c.Add(pred, s.Y)
	}
	if c.F1() < 0.9 {
		t.Fatalf("MLP F1 = %v on XOR (%s)", c.F1(), c.String())
	}
}

func TestMLPEmpty(t *testing.T) {
	if _, err := Train(mlcore.NewDataset([]string{"a"}), Params{}); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := xor(200, rng)
	m1, _ := Train(d, Params{Hidden: 8, Epochs: 20, Seed: 7})
	m2, _ := Train(d, Params{Hidden: 8, Epochs: 20, Seed: 7})
	probe := []float64{0.5, -0.5}
	if m1.PredictProb(probe) != m2.PredictProb(probe) {
		t.Fatal("same seed must reproduce the network exactly")
	}
}

func TestMLPProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := Train(xor(300, rng), Params{Hidden: 8, Epochs: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := m.PredictProb([]float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100})
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestMLPSingleClassDoesNotDiverge(t *testing.T) {
	d := mlcore.NewDataset([]string{"a"})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		d.MustAdd(mlcore.Sample{X: []float64{rng.NormFloat64()}, Y: true})
	}
	m, err := Train(d, Params{Hidden: 4, Epochs: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := m.Predict([]float64{0})
	if !pred {
		t.Fatal("single-class MLP should saturate to that class")
	}
}
