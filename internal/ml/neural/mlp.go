// Package neural implements a one-hidden-layer multilayer perceptron, the
// neural-network baseline of Table 4 (one layer, F1 = 0.93). It is trained
// with mini-batch SGD on the logistic loss, with features standardized by
// training-set statistics.
package neural

import (
	"errors"
	"math"
	"math/rand"

	"scouts/internal/ml/mlcore"
)

// Params configure MLP training.
type Params struct {
	// Hidden is the hidden layer width (default 32).
	Hidden int
	// Epochs is the number of passes over the training set (default 60).
	Epochs int
	// LearningRate is the SGD step size (default 0.05).
	LearningRate float64
	// BatchSize is the mini-batch size (default 16).
	BatchSize int
	// L2 is the weight decay coefficient (default 1e-4).
	L2 float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Hidden <= 0 {
		p.Hidden = 32
	}
	if p.Epochs <= 0 {
		p.Epochs = 60
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.05
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 16
	}
	if p.L2 < 0 {
		p.L2 = 1e-4
	}
	return p
}

// MLP is a trained one-hidden-layer perceptron with tanh activations and a
// sigmoid output.
type MLP struct {
	std    *mlcore.Standardizer
	w1     [][]float64 // hidden x in
	b1     []float64
	w2     []float64 // 1 x hidden
	b2     float64
	hidden int
}

// ErrEmptyTrainingSet is returned when Train receives no samples.
var ErrEmptyTrainingSet = errors.New("neural: empty training set")

// Train fits the network with mini-batch SGD.
func Train(d *mlcore.Dataset, p Params) (*MLP, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	std := mlcore.FitStandardizer(d)
	work := std.ApplyDataset(d)
	dim := d.Dim()

	m := &MLP{std: std, hidden: p.Hidden}
	m.w1 = make([][]float64, p.Hidden)
	m.b1 = make([]float64, p.Hidden)
	m.w2 = make([]float64, p.Hidden)
	scale := 1 / math.Sqrt(float64(dim))
	for h := 0; h < p.Hidden; h++ {
		m.w1[h] = make([]float64, dim)
		for j := range m.w1[h] {
			m.w1[h][j] = rng.NormFloat64() * scale
		}
		m.w2[h] = rng.NormFloat64() / math.Sqrt(float64(p.Hidden))
	}

	idx := make([]int, work.Len())
	for i := range idx {
		idx[i] = i
	}
	hid := make([]float64, p.Hidden)
	gradW2 := make([]float64, p.Hidden)
	gradB1 := make([]float64, p.Hidden)
	gradW1 := make([][]float64, p.Hidden)
	for h := range gradW1 {
		gradW1[h] = make([]float64, dim)
	}

	for epoch := 0; epoch < p.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for start := 0; start < len(idx); start += p.BatchSize {
			end := start + p.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			// Zero gradients.
			for h := 0; h < p.Hidden; h++ {
				gradW2[h], gradB1[h] = 0, 0
				for j := range gradW1[h] {
					gradW1[h][j] = 0
				}
			}
			gradB2 := 0.0
			var batchW float64
			for _, i := range idx[start:end] {
				s := work.Samples[i]
				sw := s.W()
				batchW += sw
				// Forward.
				z := m.b2
				for h := 0; h < p.Hidden; h++ {
					a := m.b1[h]
					for j, v := range s.X {
						a += m.w1[h][j] * v
					}
					hid[h] = math.Tanh(a)
					z += m.w2[h] * hid[h]
				}
				pred := sigmoid(z)
				target := 0.0
				if s.Y {
					target = 1
				}
				// Backward: dLoss/dz for logistic loss is (pred - target).
				dz := (pred - target) * sw
				gradB2 += dz
				for h := 0; h < p.Hidden; h++ {
					gradW2[h] += dz * hid[h]
					dh := dz * m.w2[h] * (1 - hid[h]*hid[h])
					gradB1[h] += dh
					for j, v := range s.X {
						gradW1[h][j] += dh * v
					}
				}
			}
			if batchW == 0 {
				continue
			}
			lr := p.LearningRate / batchW
			m.b2 -= lr * gradB2
			for h := 0; h < p.Hidden; h++ {
				m.w2[h] -= lr*gradW2[h] + p.LearningRate*p.L2*m.w2[h]
				m.b1[h] -= lr * gradB1[h]
				for j := range m.w1[h] {
					m.w1[h][j] -= lr*gradW1[h][j] + p.LearningRate*p.L2*m.w1[h][j]
				}
			}
		}
	}
	return m, nil
}

// Trainer adapts Train to the mlcore.Trainer interface.
func Trainer(p Params) mlcore.Trainer {
	return mlcore.TrainerFunc(func(d *mlcore.Dataset) (mlcore.Classifier, error) {
		return Train(d, p)
	})
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// PredictProb returns P(class = true | x).
func (m *MLP) PredictProb(x []float64) float64 {
	x = m.std.Apply(x)
	z := m.b2
	for h := 0; h < m.hidden; h++ {
		a := m.b1[h]
		for j, v := range x {
			a += m.w1[h][j] * v
		}
		z += m.w2[h] * math.Tanh(a)
	}
	return sigmoid(z)
}

// Predict implements mlcore.Classifier.
func (m *MLP) Predict(x []float64) (bool, float64) {
	p := m.PredictProb(x)
	if p >= 0.5 {
		return true, p
	}
	return false, 1 - p
}
