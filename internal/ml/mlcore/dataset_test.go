package mlcore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func synth(n int, posFrac float64, rng *rand.Rand) *Dataset {
	d := NewDataset([]string{"a", "b"})
	for i := 0; i < n; i++ {
		y := rng.Float64() < posFrac
		d.MustAdd(Sample{
			X:    []float64{rng.NormFloat64(), rng.NormFloat64()},
			Y:    y,
			Time: float64(i),
			ID:   string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)),
		})
	}
	return d
}

func TestAddDimensionCheck(t *testing.T) {
	d := NewDataset([]string{"a", "b"})
	if err := d.Add(Sample{X: []float64{1}}); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := d.Add(Sample{X: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Dim() != 2 {
		t.Fatalf("len=%d dim=%d", d.Len(), d.Dim())
	}
}

func TestPaperSplitFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := synth(20000, 0.3, rng)
	train, test := PaperSplit(d, DefaultSplit, rand.New(rand.NewSource(2)))
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split loses samples: %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	totPos := d.Positives()
	totNeg := d.Len() - totPos
	posFrac := float64(train.Positives()) / float64(totPos)
	negFrac := float64(train.Len()-train.Positives()) / float64(totNeg)
	if math.Abs(posFrac-0.5) > 0.03 {
		t.Errorf("positive train fraction %v, want ~0.5", posFrac)
	}
	if math.Abs(negFrac-0.35) > 0.03 {
		t.Errorf("negative train fraction %v, want ~0.35", negFrac)
	}
}

func TestPaperSplitDeterministic(t *testing.T) {
	d := synth(500, 0.4, rand.New(rand.NewSource(3)))
	a1, b1 := PaperSplit(d, DefaultSplit, rand.New(rand.NewSource(9)))
	a2, b2 := PaperSplit(d, DefaultSplit, rand.New(rand.NewSource(9)))
	if a1.Len() != a2.Len() || b1.Len() != b2.Len() {
		t.Fatal("same seed should give same split")
	}
	for i := range a1.Samples {
		if a1.Samples[i].ID != a2.Samples[i].ID {
			t.Fatal("split order differs under same seed")
		}
	}
}

func TestTimeSplit(t *testing.T) {
	d := synth(100, 0.5, rand.New(rand.NewSource(4)))
	train, test := TimeSplit(d, 60)
	if train.Len() != 60 || test.Len() != 40 {
		t.Fatalf("time split: %d / %d", train.Len(), test.Len())
	}
	for _, s := range train.Samples {
		if s.Time >= 60 {
			t.Fatal("train sample after cutoff")
		}
	}
}

func TestWindow(t *testing.T) {
	d := synth(100, 0.5, rand.New(rand.NewSource(5)))
	w := d.Window(10, 20)
	if w.Len() != 10 {
		t.Fatalf("window size %d", w.Len())
	}
}

func TestAgeDecayMonotone(t *testing.T) {
	d := synth(50, 0.5, rand.New(rand.NewSource(6)))
	d.AgeDecay(50, 25)
	for i := 1; i < d.Len(); i++ {
		if d.Samples[i].W() < d.Samples[i-1].W() {
			t.Fatal("newer samples should never weigh less after decay")
		}
	}
	if d.Samples[0].W() >= d.Samples[d.Len()-1].W() {
		t.Fatal("oldest sample should weigh less than newest")
	}
}

func TestAgeDecayNoScaleNoop(t *testing.T) {
	d := synth(10, 0.5, rand.New(rand.NewSource(7)))
	d.AgeDecay(10, 0)
	for _, s := range d.Samples {
		if s.Weight != 0 {
			t.Fatal("zero scale should not touch weights")
		}
	}
}

func TestBoost(t *testing.T) {
	d := synth(10, 0.5, rand.New(rand.NewSource(8)))
	target := d.Samples[3].ID
	d.Boost(map[string]bool{target: true}, 4)
	for i, s := range d.Samples {
		want := 1.0
		if s.ID == target {
			want = 4.0
		}
		if math.Abs(s.W()-want) > 1e-12 {
			t.Fatalf("sample %d weight %v want %v", i, s.W(), want)
		}
	}
}

func TestStandardizer(t *testing.T) {
	d := NewDataset([]string{"a", "b"})
	d.MustAdd(Sample{X: []float64{0, 100}})
	d.MustAdd(Sample{X: []float64{10, 100}})
	d.MustAdd(Sample{X: []float64{20, 100}})
	s := FitStandardizer(d)
	std := s.ApplyDataset(d)
	if math.Abs(std.Samples[0].X[0]+std.Samples[2].X[0]) > 1e-9 {
		t.Fatal("standardized extremes should be symmetric")
	}
	// Constant feature: std forced to 1, so values become 0.
	for _, smp := range std.Samples {
		if smp.X[1] != 0 {
			t.Fatalf("constant feature should standardize to 0, got %v", smp.X[1])
		}
	}
	// Original dataset untouched.
	if d.Samples[0].X[0] != 0 {
		t.Fatal("ApplyDataset must not mutate the input")
	}
}

// Property: standardized features have ~zero mean and unit variance for any
// non-degenerate sample.
func TestStandardizerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDataset([]string{"x"})
		n := 5 + rng.Intn(50)
		for i := 0; i < n; i++ {
			d.MustAdd(Sample{X: []float64{rng.NormFloat64()*50 + 10}})
		}
		std := FitStandardizer(d).ApplyDataset(d)
		mean, varsum := 0.0, 0.0
		for _, s := range std.Samples {
			mean += s.X[0]
		}
		mean /= float64(n)
		for _, s := range std.Samples {
			varsum += (s.X[0] - mean) * (s.X[0] - mean)
		}
		varsum /= float64(n)
		return math.Abs(mean) < 1e-8 && math.Abs(varsum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetAndFilter(t *testing.T) {
	d := synth(20, 0.5, rand.New(rand.NewSource(10)))
	sub := d.Subset([]int{0, 5, 19})
	if sub.Len() != 3 || sub.Samples[1].ID != d.Samples[5].ID {
		t.Fatal("subset wrong")
	}
	pos := d.Filter(func(s Sample) bool { return s.Y })
	if pos.Len() != d.Positives() {
		t.Fatal("filter wrong")
	}
}
