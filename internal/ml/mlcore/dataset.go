// Package mlcore defines the shared abstractions used by every ML substrate
// in this repository: datasets of labelled feature vectors, the binary
// Classifier interface, the paper's train/test splitting and class
// re-balancing procedure (§7 "Training and test sets"), and per-sample
// weighting (§8: down-weight old incidents, up-weight past mistakes).
package mlcore

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labelled example: an incident's feature vector plus its
// ground-truth label (true when the Scout's team was responsible).
type Sample struct {
	X      []float64
	Y      bool
	Weight float64 // training weight; 0 is treated as 1
	// Time is the incident creation time in model hours; used by
	// time-ordered splits and by age-based down-weighting.
	Time float64
	// ID ties the sample back to the incident it was built from.
	ID string
}

// W returns the effective training weight of the sample.
func (s Sample) W() float64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// Dataset is an ordered collection of samples with named feature columns.
type Dataset struct {
	Features []string // column names; len == dimension
	Samples  []Sample
}

// NewDataset creates an empty dataset over the given feature names.
func NewDataset(features []string) *Dataset {
	return &Dataset{Features: features}
}

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return len(d.Features) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Add appends a sample, validating its dimension.
func (d *Dataset) Add(s Sample) error {
	if len(s.X) != d.Dim() {
		return fmt.Errorf("mlcore: sample dimension %d != dataset dimension %d", len(s.X), d.Dim())
	}
	d.Samples = append(d.Samples, s)
	return nil
}

// MustAdd appends a sample and panics on a dimension mismatch. It is meant
// for construction sites where the dimension is statically correct.
func (d *Dataset) MustAdd(s Sample) {
	if err := d.Add(s); err != nil {
		panic(err)
	}
}

// Positives returns the number of samples with Y == true.
func (d *Dataset) Positives() int {
	n := 0
	for _, s := range d.Samples {
		if s.Y {
			n++
		}
	}
	return n
}

// Clone returns a dataset sharing feature vectors but with an independent
// sample slice, so callers can reweight or subset without aliasing.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Features: d.Features, Samples: make([]Sample, len(d.Samples))}
	copy(c.Samples, d.Samples)
	return c
}

// Subset returns a dataset containing the samples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Features: d.Features, Samples: make([]Sample, 0, len(idx))}
	for _, i := range idx {
		out.Samples = append(out.Samples, d.Samples[i])
	}
	return out
}

// Filter returns a dataset of samples for which keep returns true.
func (d *Dataset) Filter(keep func(Sample) bool) *Dataset {
	out := &Dataset{Features: d.Features}
	for _, s := range d.Samples {
		if keep(s) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Classifier is a trained binary model. Predict returns the predicted label
// and a confidence in [0.5, 1] for that label (the paper reports an
// "independent confidence score" with every Scout answer).
type Classifier interface {
	Predict(x []float64) (label bool, confidence float64)
}

// Trainer builds a Classifier from a dataset. All model packages implement
// this so the Scout framework and the experiment harness can swap models
// (§5.3 "Important note").
type Trainer interface {
	Train(train *Dataset) (Classifier, error)
}

// TrainerFunc adapts a plain function to the Trainer interface.
type TrainerFunc func(train *Dataset) (Classifier, error)

// Train implements Trainer.
func (f TrainerFunc) Train(d *Dataset) (Classifier, error) { return f(d) }

// SplitOptions control PaperSplit, mirroring §7: the data is split randomly;
// to counter class imbalance only NegTrainFraction of the non-team incidents
// go to the training set (the paper uses 35%), and PosTrainFraction of the
// team's incidents (the paper uses one half).
type SplitOptions struct {
	NegTrainFraction float64
	PosTrainFraction float64
}

// DefaultSplit is the split used in the paper's evaluation.
var DefaultSplit = SplitOptions{NegTrainFraction: 0.35, PosTrainFraction: 0.5}

// PaperSplit randomly partitions the dataset per §7 and returns
// (train, test). The rng makes the split reproducible.
func PaperSplit(d *Dataset, opt SplitOptions, rng *rand.Rand) (train, test *Dataset) {
	if opt.NegTrainFraction <= 0 || opt.NegTrainFraction >= 1 {
		opt.NegTrainFraction = DefaultSplit.NegTrainFraction
	}
	if opt.PosTrainFraction <= 0 || opt.PosTrainFraction >= 1 {
		opt.PosTrainFraction = DefaultSplit.PosTrainFraction
	}
	train = &Dataset{Features: d.Features}
	test = &Dataset{Features: d.Features}
	perm := rng.Perm(len(d.Samples))
	for _, i := range perm {
		s := d.Samples[i]
		frac := opt.NegTrainFraction
		if s.Y {
			frac = opt.PosTrainFraction
		}
		if rng.Float64() < frac {
			train.Samples = append(train.Samples, s)
		} else {
			test.Samples = append(test.Samples, s)
		}
	}
	return train, test
}

// TimeSplit partitions samples by creation time: everything strictly before
// cutoff trains, the rest tests. Used by the retraining experiments
// (Figures 8 and 10).
func TimeSplit(d *Dataset, cutoff float64) (train, test *Dataset) {
	train = &Dataset{Features: d.Features}
	test = &Dataset{Features: d.Features}
	for _, s := range d.Samples {
		if s.Time < cutoff {
			train.Samples = append(train.Samples, s)
		} else {
			test.Samples = append(test.Samples, s)
		}
	}
	return train, test
}

// Window returns the samples with Time in [from, to).
func (d *Dataset) Window(from, to float64) *Dataset {
	return d.Filter(func(s Sample) bool { return s.Time >= from && s.Time < to })
}

// AgeDecay multiplies every sample's weight by exp(-age/scale) where age is
// measured from 'now' in the dataset's time unit. This implements the §8
// practice of down-weighting old incidents. scale <= 0 leaves weights
// untouched.
func (d *Dataset) AgeDecay(now, scale float64) {
	if scale <= 0 {
		return
	}
	for i := range d.Samples {
		age := now - d.Samples[i].Time
		if age < 0 {
			age = 0
		}
		d.Samples[i].Weight = d.Samples[i].W() * math.Exp(-age/scale)
	}
}

// Boost multiplies the weight of the samples whose IDs appear in ids by
// factor, implementing the §8 practice of up-weighting previously
// mis-classified incidents in future retraining.
func (d *Dataset) Boost(ids map[string]bool, factor float64) {
	if factor <= 0 {
		return
	}
	for i := range d.Samples {
		if ids[d.Samples[i].ID] {
			d.Samples[i].Weight = d.Samples[i].W() * factor
		}
	}
}

// Standardizer performs per-feature z-score normalization fit on a training
// set; models that are scale-sensitive (KNN, MLP, SVM, QDA) use it so their
// accuracy is not an artifact of feature magnitudes.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer estimates per-feature mean and std from the dataset.
func FitStandardizer(d *Dataset) *Standardizer {
	dim := d.Dim()
	s := &Standardizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	if d.Len() == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for _, smp := range d.Samples {
		for j, v := range smp.X {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(d.Len())
	}
	for _, smp := range d.Samples {
		for j, v := range smp.X {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(d.Len()))
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply standardizes a single vector (allocating a new one).
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyDataset returns a standardized copy of the dataset.
func (s *Standardizer) ApplyDataset(d *Dataset) *Dataset {
	out := &Dataset{Features: d.Features, Samples: make([]Sample, len(d.Samples))}
	for i, smp := range d.Samples {
		out.Samples[i] = smp
		out.Samples[i].X = s.Apply(smp.X)
	}
	return out
}
