package mlcore

import (
	"slices"

	"scouts/internal/parallel"
)

// Col materializes one feature column of the dataset (cols[i] =
// Samples[i].X[f]). It allocates a fresh slice on every call; training
// kernels that need the column-major view repeatedly should build a
// Columns once instead.
func (d *Dataset) Col(f int) []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.X[f]
	}
	return out
}

// Columns is an immutable column-major view of a dataset plus per-feature
// presorted index arrays — the one-time O(dim · n log n) presort that turns
// CART split finding into an O(n) scan per (node, feature). It is built
// once per training set and shared read-only by every tree worker.
//
// Row indices are int32: a presorted view stores dim·n of them, and a
// training set beyond 2^31 rows would not fit in memory long before the
// index type mattered.
type Columns struct {
	features []string
	n        int
	cols     [][]float64 // cols[f][i] == Samples[i].X[f]
	w        []float64   // effective weights (Sample.W())
	y        []bool
	uniform  bool      // every weight is exactly 1 (the common case)
	order    [][]int32 // order[f]: rows sorted ascending by cols[f], ties by row
}

// NewColumns builds the column-major presorted view of d, fanning the
// per-feature sorts across up to `workers` goroutines (0 selects
// GOMAXPROCS). The result is deterministic at any worker count: each
// feature's order is an independent total order (value ascending, NaNs
// first, ties broken by row index).
func NewColumns(d *Dataset, workers int) *Columns {
	dim, n := d.Dim(), d.Len()
	c := &Columns{
		features: d.Features,
		n:        n,
		cols:     make([][]float64, dim),
		w:        make([]float64, n),
		y:        make([]bool, n),
		order:    make([][]int32, dim),
	}
	c.uniform = true
	for i, s := range d.Samples {
		c.w[i] = s.W()
		c.y[i] = s.Y
		if c.w[i] != 1 {
			c.uniform = false
		}
	}
	parallel.For(workers, dim, func(f int) {
		col := make([]float64, n)
		for i, s := range d.Samples {
			col[i] = s.X[f]
		}
		ord := make([]int32, n)
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int {
			va, vb := col[a], col[b]
			if va < vb {
				return -1
			}
			if vb < va {
				return 1
			}
			// Neither compares below the other: equal values, or a NaN is
			// involved. NaNs sort first so the comparator stays a total
			// order; remaining ties break by row index.
			if an, bn := va != va, vb != vb; an != bn {
				if an {
					return -1
				}
				return 1
			}
			return int(a - b)
		})
		c.cols[f] = col
		c.order[f] = ord
	})
	return c
}

// Dim returns the feature dimensionality.
func (c *Columns) Dim() int { return len(c.cols) }

// Len returns the number of rows.
func (c *Columns) Len() int { return c.n }

// Features returns the feature names (aliased, read-only).
func (c *Columns) Features() []string { return c.features }

// Col returns feature f's value column (aliased, read-only).
func (c *Columns) Col(f int) []float64 { return c.cols[f] }

// Order returns the rows sorted ascending by feature f (aliased,
// read-only): value order, NaNs first, ties by row index.
func (c *Columns) Order(f int) []int32 { return c.order[f] }

// Weights returns the effective per-row weights (aliased, read-only).
func (c *Columns) Weights() []float64 { return c.w }

// Uniform reports whether every weight is exactly 1. Training kernels use
// it to replace weight-sum accumulation with integer counting — exact,
// since float64 sums of 1.0 are exact integers far beyond any dataset
// size, so the fast path is bit-identical to the accumulating one.
func (c *Columns) Uniform() bool { return c.uniform }

// Labels returns the per-row labels (aliased, read-only).
func (c *Columns) Labels() []bool { return c.y }
