package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	got := a.Mul(Identity(3))
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("A*I != A at %d: got %v want %v", i, got.Data[i], a.Data[i])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d): got %v want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec: got %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape: %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %+v", at)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{8, -11, -3})
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSingularDetected(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the random matrix well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(prod.At(i, j), want, 1e-8) {
					t.Fatalf("trial %d: (A*A^-1)[%d][%d] = %v", trial, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 0.25}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	logAbs, sign := f.LogDet()
	if !almostEq(logAbs, 0, 1e-12) || sign != 1 {
		t.Fatalf("LogDet = (%v, %v), want (0, 1)", logAbs, sign)
	}
	b := FromRows([][]float64{{0, 1}, {1, 0}}) // det = -1
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	logAbs, sign = fb.LogDet()
	if !almostEq(logAbs, 0, 1e-12) || sign != -1 {
		t.Fatalf("LogDet = (%v, %v), want (0, -1)", logAbs, sign)
	}
}

func TestCovarianceDiagonal(t *testing.T) {
	// Two independent columns with known variance.
	x := [][]float64{{1, 10}, {2, 10}, {3, 10}, {4, 10}, {5, 10}}
	cov := Covariance(x, 0)
	if !almostEq(cov.At(0, 0), 2.5, 1e-12) {
		t.Errorf("var(col0) = %v, want 2.5", cov.At(0, 0))
	}
	if !almostEq(cov.At(1, 1), 0, 1e-12) {
		t.Errorf("var(col1) = %v, want 0", cov.At(1, 1))
	}
	if !almostEq(cov.At(0, 1), 0, 1e-12) {
		t.Errorf("cov(0,1) = %v, want 0", cov.At(0, 1))
	}
}

func TestCovarianceRegularization(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	cov := Covariance(x, 0.5)
	if !almostEq(cov.At(0, 0), 0.5, 1e-12) || !almostEq(cov.At(1, 1), 0.5, 1e-12) {
		t.Fatalf("regularized diagonal wrong: %v %v", cov.At(0, 0), cov.At(1, 1))
	}
}

func TestCovarianceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, 40)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 3, rng.Float64()}
	}
	cov := Covariance(x, 0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if cov.At(i, j) != cov.At(j, i) {
				t.Fatalf("asymmetric covariance at (%d,%d)", i, j)
			}
		}
	}
}

// Property: for any vectors, Dot(a,a) == SqDist(a, zero) and SqDist is
// symmetric and non-negative.
func TestSqDistProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp to a sane range so squares do not overflow.
			v = math.Mod(v, 1e6)
			if math.IsNaN(v) {
				v = 0
			}
			a[i] = v
			b[i] = -v / 2
		}
		zero := make([]float64, len(a))
		if !almostEq(Dot(a, a), SqDist(a, zero), 1e-6*(1+math.Abs(Dot(a, a)))) {
			return false
		}
		if SqDist(a, b) < 0 {
			return false
		}
		return almostEq(SqDist(a, b), SqDist(b, a), 1e-9*(1+SqDist(a, b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: solving A*x=b then multiplying recovers b for diagonally
// dominant random matrices.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(8)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(2*n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		fact, err := Factorize(a)
		if err != nil {
			return false
		}
		x := fact.Solve(b)
		back := a.MulVec(x)
		for i := range b {
			if !almostEq(back[i], b[i], 1e-7*(1+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
