// Package linalg provides small dense-matrix kernels used by the ML
// substrates (covariance estimation, solving linear systems, determinants).
// It is deliberately minimal: the models in this repository work on feature
// vectors with tens to a few hundred dimensions, so simple O(n^3) dense
// algorithms with partial pivoting are both adequate and predictable.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows requires a non-empty row set")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			base := k * other.Cols
			outBase := i * other.Cols
			for j := 0; j < other.Cols; j++ {
				out.Data[outBase+j] += a * other.Data[base+j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// Factorize computes the LU decomposition of a square matrix.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude in column k at/below row k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max < 1e-12 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			pivot[p], pivot[k] = pivot[k], pivot[p]
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) * inv
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A*x = b for x using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// LogDet returns log(|det(A)|) and the sign of the determinant.
func (f *LU) LogDet() (logAbs, sign float64) {
	sign = f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d := f.lu.At(i, i)
		if d < 0 {
			sign = -sign
			d = -d
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}

// Inverse returns the inverse of a square matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Covariance estimates the (optionally regularized) sample covariance of the
// rows of x. reg is added to the diagonal to keep the matrix well-conditioned
// when features are collinear or constant (common with sparse telemetry).
func Covariance(x [][]float64, reg float64) *Matrix {
	if len(x) == 0 {
		panic("linalg: Covariance of empty sample")
	}
	d := len(x[0])
	mean := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(x))
	}
	cov := New(d, d)
	for _, row := range x {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			if di == 0 {
				continue
			}
			for j := i; j < d; j++ {
				cov.Data[i*d+j] += di * (row[j] - mean[j])
			}
		}
	}
	denom := float64(len(x) - 1)
	if denom < 1 {
		denom = 1
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.Data[i*d+j] / denom
			cov.Data[i*d+j] = v
			cov.Data[j*d+i] = v
		}
		cov.Data[i*d+i] += reg
	}
	return cov
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: SqDist dimension mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
