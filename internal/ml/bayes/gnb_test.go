package bayes

import (
	"math"
	"math/rand"
	"testing"

	"scouts/internal/metrics"
	"scouts/internal/ml/mlcore"
)

func blobs(n int, sep float64, rng *rand.Rand) *mlcore.Dataset {
	d := mlcore.NewDataset([]string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = sep
		}
		d.MustAdd(mlcore.Sample{X: []float64{mu + rng.NormFloat64(), rng.NormFloat64()}, Y: y})
	}
	return d
}

func TestGNBSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := blobs(500, 5, rng)
	test := blobs(200, 5, rng)
	g, err := Train(train, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for _, s := range test.Samples {
		pred, conf := g.Predict(s.X)
		if conf < 0.5 || conf > 1 {
			t.Fatalf("conf %v", conf)
		}
		c.Add(pred, s.Y)
	}
	if c.F1() < 0.95 {
		t.Fatalf("GNB F1 = %v (%s)", c.F1(), c.String())
	}
}

func TestGNBPosteriorCalibrationAtMidpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := Train(blobs(4000, 4, rng), Params{})
	if err != nil {
		t.Fatal(err)
	}
	// At the midpoint of two symmetric classes the posterior should be
	// roughly 0.5 regardless of the winning label.
	_, conf := g.Predict([]float64{2, 0})
	if conf > 0.65 {
		t.Fatalf("midpoint confidence %v should be near 0.5", conf)
	}
}

func TestGNBErrors(t *testing.T) {
	if _, err := Train(mlcore.NewDataset([]string{"a"}), Params{}); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
	d := mlcore.NewDataset([]string{"a"})
	d.MustAdd(mlcore.Sample{X: []float64{1}, Y: true})
	if _, err := Train(d, Params{}); err != ErrSingleClass {
		t.Fatalf("want ErrSingleClass, got %v", err)
	}
}

func TestGNBConstantFeatureSafe(t *testing.T) {
	d := mlcore.NewDataset([]string{"const", "signal"})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = 3
		}
		d.MustAdd(mlcore.Sample{X: []float64{7, mu + rng.NormFloat64()}, Y: y})
	}
	g, err := Train(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	pred, conf := g.Predict([]float64{7, 3})
	if !pred || math.IsNaN(conf) {
		t.Fatalf("constant feature broke prediction: %v %v", pred, conf)
	}
}

func TestGNBWeightedPrior(t *testing.T) {
	// Identical feature distributions; only the weighted prior differs, so
	// predictions should follow the heavier class.
	d := mlcore.NewDataset([]string{"a"})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		y := i%2 == 0
		w := 1.0
		if y {
			w = 9
		}
		d.MustAdd(mlcore.Sample{X: []float64{rng.NormFloat64()}, Y: y, Weight: w})
	}
	g, err := Train(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := g.Predict([]float64{0})
	if !pred {
		t.Fatal("heavier prior should win on uninformative features")
	}
}
