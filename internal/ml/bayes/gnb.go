// Package bayes implements Gaussian naive Bayes, an alternative supervised
// model from the paper's Table 4 comparison (GNB reaches only F1 = 0.73 on
// the incident task — the feature independence assumption is a poor fit for
// correlated telemetry statistics, which the reproduction should show too).
package bayes

import (
	"errors"
	"math"

	"scouts/internal/ml/mlcore"
)

// Params configure Gaussian naive Bayes.
type Params struct {
	// VarSmoothing is added to every per-feature variance, as a fraction of
	// the largest feature variance (default 1e-9, scikit-learn's default).
	VarSmoothing float64
}

// GNB is a trained Gaussian naive Bayes classifier.
type GNB struct {
	logPrior [2]float64   // log P(class)
	mean     [2][]float64 // per-class feature means
	variance [2][]float64 // per-class feature variances (smoothed)
}

// ErrEmptyTrainingSet is returned when Train receives no samples.
var ErrEmptyTrainingSet = errors.New("bayes: empty training set")

// ErrSingleClass is returned when the training set has only one label.
var ErrSingleClass = errors.New("bayes: training set contains a single class")

func classIndex(y bool) int {
	if y {
		return 1
	}
	return 0
}

// Train estimates class priors and per-class feature Gaussians with sample
// weights.
func Train(d *mlcore.Dataset, p Params) (*GNB, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if p.VarSmoothing <= 0 {
		p.VarSmoothing = 1e-9
	}
	dim := d.Dim()
	g := &GNB{}
	var wSum [2]float64
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, dim)
		g.variance[c] = make([]float64, dim)
	}
	for _, s := range d.Samples {
		c := classIndex(s.Y)
		w := s.W()
		wSum[c] += w
		for j, v := range s.X {
			g.mean[c][j] += w * v
		}
	}
	if wSum[0] == 0 || wSum[1] == 0 {
		return nil, ErrSingleClass
	}
	for c := 0; c < 2; c++ {
		for j := range g.mean[c] {
			g.mean[c][j] /= wSum[c]
		}
	}
	for _, s := range d.Samples {
		c := classIndex(s.Y)
		w := s.W()
		for j, v := range s.X {
			dv := v - g.mean[c][j]
			g.variance[c][j] += w * dv * dv
		}
	}
	// Smoothing scale: the largest overall feature variance.
	maxVar := 0.0
	for c := 0; c < 2; c++ {
		for j := range g.variance[c] {
			g.variance[c][j] /= wSum[c]
			if g.variance[c][j] > maxVar {
				maxVar = g.variance[c][j]
			}
		}
	}
	eps := p.VarSmoothing * maxVar
	if eps <= 0 {
		eps = p.VarSmoothing
	}
	for c := 0; c < 2; c++ {
		for j := range g.variance[c] {
			g.variance[c][j] += eps
		}
	}
	total := wSum[0] + wSum[1]
	g.logPrior[0] = math.Log(wSum[0] / total)
	g.logPrior[1] = math.Log(wSum[1] / total)
	return g, nil
}

// Trainer adapts Train to the mlcore.Trainer interface.
func Trainer(p Params) mlcore.Trainer {
	return mlcore.TrainerFunc(func(d *mlcore.Dataset) (mlcore.Classifier, error) {
		return Train(d, p)
	})
}

// logLikelihood computes log P(x | class c) under feature independence.
func (g *GNB) logLikelihood(c int, x []float64) float64 {
	ll := g.logPrior[c]
	for j, v := range x {
		dv := v - g.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*g.variance[c][j]) - dv*dv/(2*g.variance[c][j])
	}
	return ll
}

// Predict returns the MAP class and its posterior probability.
func (g *GNB) Predict(x []float64) (bool, float64) {
	l0 := g.logLikelihood(0, x)
	l1 := g.logLikelihood(1, x)
	// Posterior via the log-sum-exp trick.
	m := math.Max(l0, l1)
	p1 := math.Exp(l1-m) / (math.Exp(l0-m) + math.Exp(l1-m))
	if p1 >= 0.5 {
		return true, p1
	}
	return false, 1 - p1
}
