package discriminant

import (
	"math/rand"
	"testing"

	"scouts/internal/metrics"
	"scouts/internal/ml/mlcore"
)

func TestQDASeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := mlcore.NewDataset([]string{"a", "b"})
	for i := 0; i < 600; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = 5
		}
		d.MustAdd(mlcore.Sample{X: []float64{mu + rng.NormFloat64(), rng.NormFloat64()}, Y: y})
	}
	train, test := mlcore.TimeSplit(withTimes(d), 400)
	q, err := Train(train, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for _, s := range test.Samples {
		pred, conf := q.Predict(s.X)
		if conf < 0.5 || conf > 1 {
			t.Fatalf("conf %v", conf)
		}
		c.Add(pred, s.Y)
	}
	if c.F1() < 0.95 {
		t.Fatalf("QDA F1 = %v (%s)", c.F1(), c.String())
	}
}

func withTimes(d *mlcore.Dataset) *mlcore.Dataset {
	for i := range d.Samples {
		d.Samples[i].Time = float64(i)
	}
	return d
}

// TestQDAQuadraticBoundary exercises what LDA cannot do: classes with the
// same mean but different covariance (inner blob vs outer shell).
func TestQDAQuadraticBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := mlcore.NewDataset([]string{"a", "b"})
	for i := 0; i < 800; i++ {
		inner := i%2 == 0
		sigma := 4.0
		if inner {
			sigma = 0.5
		}
		d.MustAdd(mlcore.Sample{
			X: []float64{rng.NormFloat64() * sigma, rng.NormFloat64() * sigma},
			Y: inner,
		})
	}
	q, err := Train(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for i := 0; i < 400; i++ {
		inner := i%2 == 0
		sigma := 4.0
		if inner {
			sigma = 0.5
		}
		x := []float64{rng.NormFloat64() * sigma, rng.NormFloat64() * sigma}
		pred, _ := q.Predict(x)
		c.Add(pred, inner)
	}
	if c.Accuracy() < 0.8 {
		t.Fatalf("QDA should separate variance-only classes, acc = %v", c.Accuracy())
	}
}

func TestQDAErrors(t *testing.T) {
	if _, err := Train(mlcore.NewDataset([]string{"a"}), Params{}); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
	d := mlcore.NewDataset([]string{"a"})
	d.MustAdd(mlcore.Sample{X: []float64{1}, Y: false})
	if _, err := Train(d, Params{}); err != ErrSingleClass {
		t.Fatalf("want ErrSingleClass, got %v", err)
	}
}

func TestQDAConstantFeaturesRegularized(t *testing.T) {
	// Constant (zero-variance) columns — ubiquitous in Scout features when
	// a component type is absent — must not make training fail.
	rng := rand.New(rand.NewSource(3))
	d := mlcore.NewDataset([]string{"const", "signal"})
	for i := 0; i < 100; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = 4
		}
		d.MustAdd(mlcore.Sample{X: []float64{0, mu + rng.NormFloat64()}, Y: y})
	}
	q, err := Train(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := q.Predict([]float64{0, 4})
	if !pred {
		t.Fatal("QDA with constant feature mispredicts an easy point")
	}
}
