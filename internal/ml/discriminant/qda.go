// Package discriminant implements quadratic discriminant analysis (QDA),
// an alternative supervised model from the paper's Table 4 comparison
// (QDA reaches F1 = 0.9 on the incident task).
package discriminant

import (
	"errors"
	"fmt"
	"math"

	"scouts/internal/ml/linalg"
	"scouts/internal/ml/mlcore"
)

// Params configure QDA.
type Params struct {
	// Reg is the ridge added to each class covariance diagonal; telemetry
	// feature vectors routinely contain constant columns (absent
	// components featurize to zero), so regularization is mandatory in
	// practice (default 1e-3).
	Reg float64
}

// QDA is a trained quadratic discriminant classifier.
type QDA struct {
	logPrior [2]float64
	mean     [2][]float64
	inv      [2]*linalg.Matrix
	logDet   [2]float64
}

// ErrEmptyTrainingSet is returned when Train receives no samples.
var ErrEmptyTrainingSet = errors.New("discriminant: empty training set")

// ErrSingleClass is returned when the training set has only one label.
var ErrSingleClass = errors.New("discriminant: training set contains a single class")

// Train estimates per-class Gaussians with full covariance.
func Train(d *mlcore.Dataset, p Params) (*QDA, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if p.Reg <= 0 {
		p.Reg = 1e-3
	}
	var byClass [2][][]float64
	for _, s := range d.Samples {
		c := 0
		if s.Y {
			c = 1
		}
		byClass[c] = append(byClass[c], s.X)
	}
	if len(byClass[0]) == 0 || len(byClass[1]) == 0 {
		return nil, ErrSingleClass
	}
	q := &QDA{}
	total := float64(d.Len())
	for c := 0; c < 2; c++ {
		rows := byClass[c]
		q.logPrior[c] = math.Log(float64(len(rows)) / total)
		dim := len(rows[0])
		mean := make([]float64, dim)
		for _, r := range rows {
			for j, v := range r {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(rows))
		}
		q.mean[c] = mean
		cov := linalg.Covariance(rows, p.Reg)
		f, err := linalg.Factorize(cov)
		if err != nil {
			return nil, fmt.Errorf("discriminant: class %d covariance: %w", c, err)
		}
		logAbs, _ := f.LogDet()
		q.logDet[c] = logAbs
		inv, err := linalg.Inverse(cov)
		if err != nil {
			return nil, fmt.Errorf("discriminant: class %d covariance inverse: %w", c, err)
		}
		q.inv[c] = inv
	}
	return q, nil
}

// Trainer adapts Train to the mlcore.Trainer interface.
func Trainer(p Params) mlcore.Trainer {
	return mlcore.TrainerFunc(func(d *mlcore.Dataset) (mlcore.Classifier, error) {
		return Train(d, p)
	})
}

// score computes the quadratic discriminant (log posterior up to a shared
// constant) for class c.
func (q *QDA) score(c int, x []float64) float64 {
	dim := len(x)
	diff := make([]float64, dim)
	for j := range diff {
		diff[j] = x[j] - q.mean[c][j]
	}
	m := q.inv[c].MulVec(diff)
	return q.logPrior[c] - 0.5*q.logDet[c] - 0.5*linalg.Dot(diff, m)
}

// Predict returns the MAP class and its posterior probability.
func (q *QDA) Predict(x []float64) (bool, float64) {
	s0, s1 := q.score(0, x), q.score(1, x)
	m := math.Max(s0, s1)
	p1 := math.Exp(s1-m) / (math.Exp(s0-m) + math.Exp(s1-m))
	if p1 >= 0.5 {
		return true, p1
	}
	return false, 1 - p1
}
