package cpd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func step(n1, n2 int, mu1, mu2, sigma float64, rng *rand.Rand) []float64 {
	out := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		out = append(out, mu1+rng.NormFloat64()*sigma)
	}
	for i := 0; i < n2; i++ {
		out = append(out, mu2+rng.NormFloat64()*sigma)
	}
	return out
}

func TestDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := step(40, 40, 0, 5, 1, rng)
	cps := Detect(s, Params{Seed: 1})
	if len(cps) == 0 {
		t.Fatal("missed an obvious mean shift")
	}
	if math.Abs(float64(cps[0])-40) > 4 {
		t.Fatalf("change point at %d, want ~40", cps[0])
	}
}

func TestNoChangeOnStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	falsePositives := 0
	for trial := 0; trial < 20; trial++ {
		s := step(80, 0, 0, 0, 1, rng)
		if len(Detect(s, Params{Seed: int64(trial)})) > 0 {
			falsePositives++
		}
	}
	// At alpha = 0.05 a few false positives are expected; many indicate a
	// broken test.
	if falsePositives > 4 {
		t.Fatalf("%d/20 false positives on stationary noise", falsePositives)
	}
}

func TestDetectsVarianceShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := make([]float64, 0, 120)
	for i := 0; i < 60; i++ {
		s = append(s, rng.NormFloat64()*0.2)
	}
	for i := 0; i < 60; i++ {
		s = append(s, rng.NormFloat64()*4)
	}
	cps := Detect(s, Params{Seed: 4})
	if len(cps) == 0 {
		t.Fatal("energy statistic should catch a pure variance shift")
	}
}

func TestDetectsMultipleChangePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s []float64
	s = append(s, step(40, 40, 0, 6, 0.5, rng)...)
	s = append(s, step(0, 40, 0, -6, 0.5, rng)...)
	cps := Detect(s, Params{Seed: 6})
	if len(cps) < 2 {
		t.Fatalf("want >= 2 change points, got %v", cps)
	}
}

func TestShortSeriesSafe(t *testing.T) {
	for n := 0; n < 10; n++ {
		s := make([]float64, n)
		if got := Detect(s, Params{Seed: 7}); len(got) != 0 {
			t.Fatalf("short series (n=%d) should yield no change points, got %v", n, got)
		}
	}
}

func TestHasChangeAgreesWithDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shifted := step(30, 30, 0, 8, 0.5, rng)
	if !HasChange(shifted, Params{Seed: 9}) {
		t.Fatal("HasChange missed a strong shift")
	}
	flat := step(60, 0, 0, 0, 0.5, rng)
	if HasChange(flat, Params{Seed: 9}) && len(Detect(flat, Params{Seed: 9})) == 0 {
		t.Fatal("HasChange fired where Detect did not")
	}
}

func TestEnergyStatProperties(t *testing.T) {
	// Identical samples: statistic ~ 0. Separated samples: large.
	x := []float64{1, 2, 3, 4, 5}
	if q := energyStat(x, x); q > 1e-9 {
		t.Fatalf("E(x,x) = %v, want ~0", q)
	}
	y := []float64{101, 102, 103, 104, 105}
	if q := energyStat(x, y); q < 100 {
		t.Fatalf("E(x, x+100) = %v, want large", q)
	}
}

func TestMeanWithinAbsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		brute := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				brute += math.Abs(x[i] - x[j])
			}
		}
		brute /= float64(n * n)
		if got := meanWithinAbs(x); math.Abs(got-brute) > 1e-9*(1+brute) {
			t.Fatalf("meanWithinAbs = %v, brute = %v", got, brute)
		}
	}
}

func TestMeanCrossAbsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n, m := 1+rng.Intn(15), 1+rng.Intn(15)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		for i := range y {
			y[i] = rng.NormFloat64()*5 + 1
		}
		brute := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				brute += math.Abs(x[i] - y[j])
			}
		}
		brute /= float64(n * m)
		if got := meanCrossAbs(x, y); math.Abs(got-brute) > 1e-9*(1+brute) {
			t.Fatalf("meanCrossAbs = %v, brute = %v", got, brute)
		}
	}
}

// Property: the energy statistic is symmetric and non-negative for
// separated samples; Detect is deterministic under a fixed seed.
func TestEnergySymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(20), 2+rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() + 3
		}
		a, b := energyStat(x, y), energyStat(y, x)
		return math.Abs(a-b) < 1e-9*(1+math.Abs(a)) && a >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := step(50, 50, 0, 3, 1, rng)
	a := Detect(s, Params{Seed: 99})
	b := Detect(s, Params{Seed: 99})
	if len(a) != len(b) {
		t.Fatal("same seed, different results")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different change points")
		}
	}
}
