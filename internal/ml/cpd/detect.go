// Package cpd implements nonparametric change-point detection and the
// paper's CPD+ extension (§5.2.2).
//
// The base detector follows the energy-statistic approach of Matteson and
// James ("A nonparametric approach for multiple change point analysis of
// multivariate data", JASA 2014, [51] in the paper): a candidate split of a
// series into two segments is scored with the two-sample energy statistic,
// the best split is tested for significance with a permutation test, and
// detection recurses on both halves (binary segmentation).
//
// CPD+ extends the detector for incident routing: it handles EVENT data
// (which has no distribution to shift), learns — with a small random
// forest — which combinations of change points actually indicate failures
// when a whole cluster is implicated, and falls back to a conservative
// any-signal rule when the incident names only a handful of devices.
package cpd

import (
	"math/rand"
	"sort"
)

// Params configure the change-point detector.
type Params struct {
	// MinSegment is the minimum number of points on each side of a change
	// point (default 5).
	MinSegment int
	// Permutations is the number of permutations in the significance test
	// (default 99).
	Permutations int
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// MaxPoints bounds how many change points are reported (default 8).
	MaxPoints int
	// Seed drives the permutation test.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.MinSegment <= 0 {
		p.MinSegment = 5
	}
	if p.Permutations <= 0 {
		p.Permutations = 99
	}
	if p.Alpha <= 0 {
		p.Alpha = 0.05
	}
	if p.MaxPoints <= 0 {
		p.MaxPoints = 8
	}
	return p
}

// Detect returns the indices of statistically significant change points in
// the series, sorted ascending. An index i means the distribution of
// series[:i] differs from series[i:].
func Detect(series []float64, p Params) []int {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5bd1e995))
	var out []int
	segment(series, 0, p, rng, &out)
	sort.Ints(out)
	if len(out) > p.MaxPoints {
		out = out[:p.MaxPoints]
	}
	return out
}

// HasChange reports whether the series contains at least one significant
// change point. It short-circuits after the first detection.
func HasChange(series []float64, p Params) bool {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5bd1e995))
	idx, stat := bestSplit(series, p.MinSegment)
	if idx < 0 {
		return false
	}
	return significant(series, stat, p, rng)
}

func segment(series []float64, offset int, p Params, rng *rand.Rand, out *[]int) {
	if len(*out) >= p.MaxPoints || len(series) < 2*p.MinSegment {
		return
	}
	idx, stat := bestSplit(series, p.MinSegment)
	if idx < 0 || !significant(series, stat, p, rng) {
		return
	}
	*out = append(*out, offset+idx)
	segment(series[:idx], offset, p, rng, out)
	segment(series[idx:], offset+idx, p, rng, out)
}

// bestSplit finds the split index maximizing the scaled energy statistic.
// Returns (-1, 0) when the series is too short.
//
// For the univariate energy statistic we exploit sorting: the expected
// absolute difference between two samples can be computed in O(n log n)
// from prefix sums of the sorted values, so scanning all candidate splits
// costs O(n^2 log n) in the worst case but with small constants; series in
// this system are bounded by the Scout look-back window (tens to a couple
// hundred points).
func bestSplit(series []float64, minSeg int) (int, float64) {
	n := len(series)
	if n < 2*minSeg {
		return -1, 0
	}
	best, bestStat := -1, 0.0
	for i := minSeg; i <= n-minSeg; i++ {
		q := energyStat(series[:i], series[i:])
		if q > bestStat {
			best, bestStat = i, q
		}
	}
	return best, bestStat
}

// energyStat computes the scaled two-sample energy statistic
// Q = nm/(n+m) * (2*E|X-Y| - E|X-X'| - E|Y-Y'|).
func energyStat(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0
	}
	exy := meanCrossAbs(x, y)
	exx := meanWithinAbs(x)
	eyy := meanWithinAbs(y)
	e := 2*exy - exx - eyy
	return float64(n) * float64(m) / float64(n+m) * e
}

// meanWithinAbs returns (1/n^2) * sum_{i,j} |x_i - x_j| (the V-statistic
// form of E|X - X'|), computed in O(n log n) via sorting: for sorted s,
// sum_{i<j} (s_j - s_i) = sum_j s_j * (2j - n + 1).
func meanWithinAbs(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	s := make([]float64, n)
	copy(s, x)
	sort.Float64s(s)
	sum := 0.0
	for i, v := range s {
		sum += float64(2*i-n+1) * v
	}
	// sum counts each unordered pair once; the V-statistic counts ordered
	// pairs, so multiply by 2 and divide by n^2.
	return 2 * sum / (float64(n) * float64(n))
}

// meanCrossAbs returns E|X - Y| using a merge over the two sorted samples.
func meanCrossAbs(x, y []float64) float64 {
	sx := make([]float64, len(x))
	copy(sx, x)
	sort.Float64s(sx)
	sy := make([]float64, len(y))
	copy(sy, y)
	sort.Float64s(sy)
	// For each xi, sum over yj of |xi - yj| =
	//   xi*k - prefix(k) + (suffix - (total - prefix(k)) ... computed via
	// prefix sums of sy.
	prefix := make([]float64, len(sy)+1)
	for i, v := range sy {
		prefix[i+1] = prefix[i] + v
	}
	total := prefix[len(sy)]
	sum := 0.0
	for _, xv := range sx {
		k := sort.SearchFloat64s(sy, xv)
		// y values below xv contribute xv - y; above contribute y - xv.
		sum += xv*float64(k) - prefix[k]
		sum += (total - prefix[k]) - xv*float64(len(sy)-k)
	}
	return sum / float64(len(sx)*len(sy))
}

// significant runs a permutation test: the observed statistic is compared
// with the best-split statistic of shuffled copies of the series.
func significant(series []float64, observed float64, p Params, rng *rand.Rand) bool {
	if observed <= 0 {
		return false
	}
	shuffled := make([]float64, len(series))
	copy(shuffled, series)
	geq := 0
	for i := 0; i < p.Permutations; i++ {
		rng.Shuffle(len(shuffled), func(a, b int) {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		})
		_, stat := bestSplit(shuffled, p.MinSegment)
		if stat >= observed {
			geq++
			// Early exit: p-value already above alpha.
			if float64(geq+1)/float64(p.Permutations+1) > p.Alpha {
				return false
			}
		}
	}
	pval := float64(geq+1) / float64(p.Permutations+1)
	return pval <= p.Alpha
}
