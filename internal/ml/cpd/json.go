package cpd

import (
	"encoding/json"

	"scouts/internal/ml/forest"
)

// plusDTO is the serialized form of a CPD+ model.
type plusDTO struct {
	Params PlusParams     `json:"params"`
	RF     *forest.Forest `json:"rf,omitempty"`
}

// MarshalJSON serializes the CPD+ model for the serving pipeline.
func (c *Plus) MarshalJSON() ([]byte, error) {
	return json.Marshal(plusDTO{Params: c.params, RF: c.rf})
}

// UnmarshalJSON restores a serialized CPD+ model.
func (c *Plus) UnmarshalJSON(b []byte) error {
	var dto plusDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return err
	}
	c.params = dto.Params
	c.rf = dto.RF
	return nil
}
