package cpd

import (
	"encoding/json"

	"scouts/internal/ml/forest"
)

// plusDTO is the serialized form of a CPD+ model.
type plusDTO struct {
	Params PlusParams     `json:"params"`
	RF     *forest.Forest `json:"rf,omitempty"`
}

// MarshalJSON serializes the CPD+ model for the serving pipeline.
func (c *Plus) MarshalJSON() ([]byte, error) {
	return json.Marshal(plusDTO{Params: c.params, RF: c.rf})
}

// UnmarshalJSON restores a serialized CPD+ model.
func (c *Plus) UnmarshalJSON(b []byte) error {
	var dto plusDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return err
	}
	c.params = dto.Params
	c.rf = dto.RF
	return nil
}

// Parts decomposes the model into its parameters and (possibly nil)
// broad-incident forest. The binary snapshot container serializes the two
// through their own formats instead of this package's JSON form.
func (c *Plus) Parts() (PlusParams, *forest.Forest) { return c.params, c.rf }

// PlusFromParts reassembles a model from Parts' output — the binary
// snapshot loader's counterpart to UnmarshalJSON.
func PlusFromParts(p PlusParams, rf *forest.Forest) *Plus {
	return &Plus{params: p, rf: rf}
}
