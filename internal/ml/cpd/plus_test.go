package cpd

import (
	"math/rand"
	"strings"
	"testing"

	"scouts/internal/ml/forest"
)

var testDatasets = []string{"ping", "syslog", "temperature"}

func plusParams() PlusParams {
	return PlusParams{
		Datasets: append([]string(nil), testDatasets...),
		Detector: Params{Seed: 1, Permutations: 49},
		Forest:   forest.Params{NumTrees: 20, Seed: 2},
	}
}

// healthyInput builds an input with stationary series and no events.
func healthyInput(broad bool, rng *rand.Rand) Input {
	in := Input{Broad: broad, Series: map[string][][]float64{}, Events: map[string][]float64{}}
	for _, ds := range testDatasets[:2] {
		var series [][]float64
		for c := 0; c < 3; c++ {
			s := make([]float64, 60)
			for i := range s {
				s[i] = rng.NormFloat64()
			}
			series = append(series, s)
		}
		in.Series[ds] = series
	}
	in.Events["syslog"] = []float64{0, 0, 0}
	return in
}

// faultyInput injects a mean shift and error events.
func faultyInput(broad bool, rng *rand.Rand) Input {
	in := healthyInput(broad, rng)
	for c := range in.Series["ping"] {
		for i := 30; i < 60; i++ {
			in.Series["ping"][c][i] += 8
		}
	}
	in.Events["syslog"] = []float64{4, 2, 7}
	return in
}

func TestNarrowConservativeRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plus, err := TrainPlus(nil, plusParams())
	if err != nil {
		t.Fatal(err)
	}
	label, conf, expl := plus.Predict(faultyInput(false, rng))
	if !label {
		t.Fatal("conservative rule should fire on events + change points")
	}
	if conf < 0.5 || conf > 1 {
		t.Fatalf("confidence %v out of range", conf)
	}
	if !strings.Contains(expl, "syslog") {
		t.Fatalf("explanation should name the signalling dataset: %q", expl)
	}

	label, _, expl = plus.Predict(healthyInput(false, rng))
	if label {
		t.Fatalf("conservative rule fired on healthy input: %s", expl)
	}
}

func TestBroadModelLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var examples []PlusExample
	for i := 0; i < 25; i++ {
		examples = append(examples,
			PlusExample{In: faultyInput(true, rng), Y: true},
			PlusExample{In: healthyInput(true, rng), Y: false},
		)
	}
	plus, err := TrainPlus(examples, plusParams())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 10; i++ {
		if label, _, _ := plus.Predict(faultyInput(true, rng)); label {
			correct++
		}
		if label, _, _ := plus.Predict(healthyInput(true, rng)); !label {
			correct++
		}
	}
	if correct < 17 {
		t.Fatalf("broad model accuracy %d/20 too low", correct)
	}
}

func TestBroadWithoutTrainingFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	plus, err := TrainPlus(nil, plusParams())
	if err != nil {
		t.Fatal(err)
	}
	label, _, expl := plus.Predict(faultyInput(true, rng))
	if !label {
		t.Fatal("fallback narrow rule should still fire")
	}
	if !strings.Contains(expl, "no broad-incident model") {
		t.Fatalf("explanation should mention the fallback: %q", expl)
	}
}

func TestTrainPlusRequiresDatasets(t *testing.T) {
	if _, err := TrainPlus(nil, PlusParams{}); err != ErrNoDatasets {
		t.Fatalf("want ErrNoDatasets, got %v", err)
	}
}

func TestFeaturizeShapeAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	plus, err := TrainPlus(nil, plusParams())
	if err != nil {
		t.Fatal(err)
	}
	x := plus.Featurize(faultyInput(true, rng))
	if len(x) != 2*len(testDatasets) {
		t.Fatalf("feature length %d, want %d", len(x), 2*len(testDatasets))
	}
	// Dataset list is sorted at train time: ping, syslog, temperature.
	// syslog avg events = (4+2+7)/3.
	if x[3] < 4 || x[3] > 4.5 {
		t.Fatalf("syslog avg events = %v, want ~4.33", x[3])
	}
	// temperature has no data at all: both features zero.
	if x[4] != 0 || x[5] != 0 {
		t.Fatalf("absent dataset should featurize to zeros, got %v %v", x[4], x[5])
	}
}

func TestMissingDatasetsTolerated(t *testing.T) {
	plus, err := TrainPlus(nil, plusParams())
	if err != nil {
		t.Fatal(err)
	}
	// Completely empty evidence must classify (as negative) without panic.
	label, conf, _ := plus.Predict(Input{Broad: false})
	if label {
		t.Fatal("no evidence should mean not responsible")
	}
	if conf < 0.5 {
		t.Fatalf("conf %v", conf)
	}
}
