package cpd

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
)

// Input is the monitoring evidence CPD+ examines for one incident: for each
// of the team's monitoring datasets, the time series and/or event counts of
// the components the incident implicates, over the look-back window.
type Input struct {
	// Broad is true when the incident implicates an entire cluster rather
	// than a handful of specific devices. Broad incidents use the learned
	// change-point-combination model; narrow ones use the conservative
	// any-signal rule (§5.2.2).
	Broad bool
	// Series maps dataset name -> one time series per implicated component.
	Series map[string][][]float64
	// Events maps dataset name -> per-implicated-component event counts.
	Events map[string][]float64
}

// PlusParams configure CPD+.
type PlusParams struct {
	// Datasets fixes the universe (and feature order) of monitoring
	// datasets. It must be identical at train and inference time.
	Datasets []string
	// Detector parameterizes the underlying change-point detection.
	Detector Params
	// Forest parameterizes the broad-incident RF ("we 'learn' whether
	// change-points and events are due to failures").
	Forest forest.Params
}

// Plus is a trained CPD+ model.
type Plus struct {
	params PlusParams
	rf     *forest.Forest
}

// PlusExample is one labelled training example for the broad-incident model.
type PlusExample struct {
	In Input
	Y  bool
}

// ErrNoDatasets is returned when PlusParams.Datasets is empty.
var ErrNoDatasets = errors.New("cpd: PlusParams.Datasets must be non-empty")

// featureNames returns the RF feature layout: for every dataset, the average
// change-point count per series and the average event count per component.
func featureNames(datasets []string) []string {
	out := make([]string, 0, 2*len(datasets))
	for _, ds := range datasets {
		out = append(out, ds+".avg_changepoints", ds+".avg_events")
	}
	return out
}

// Featurize converts an Input into the fixed-length broad-incident vector
// (average change-point and event rates per dataset). Callers that retrain
// frequently cache these vectors: change-point detection is the expensive
// step. Datasets must be sorted (TrainPlus and TrainPlusVectors sort them).
func (p PlusParams) Featurize(in Input) []float64 { return p.featurize(in) }

// featurize converts an Input into the fixed-length broad-incident vector.
func (p PlusParams) featurize(in Input) []float64 {
	x := make([]float64, 0, 2*len(p.Datasets))
	for _, ds := range p.Datasets {
		var cps, nSeries float64
		for _, series := range in.Series[ds] {
			cps += float64(len(Detect(series, p.Detector)))
			nSeries++
		}
		avgCP := 0.0
		if nSeries > 0 {
			avgCP = cps / nSeries
		}
		var ev, nComp float64
		for _, c := range in.Events[ds] {
			ev += c
			nComp++
		}
		avgEv := 0.0
		if nComp > 0 {
			avgEv = ev / nComp
		}
		x = append(x, avgCP, avgEv)
	}
	return x
}

// TrainPlus fits the broad-incident random forest of CPD+. Narrow incidents
// do not need training: they use the fixed conservative rule.
func TrainPlus(examples []PlusExample, p PlusParams) (*Plus, error) {
	if len(p.Datasets) == 0 {
		return nil, ErrNoDatasets
	}
	sort.Strings(p.Datasets)
	var xs [][]float64
	var ys []bool
	for _, ex := range examples {
		if !ex.In.Broad {
			continue // the rule path needs no training data
		}
		xs = append(xs, p.featurize(ex.In))
		ys = append(ys, ex.Y)
	}
	return TrainPlusVectors(xs, ys, p)
}

// TrainPlusVectors fits CPD+ from pre-featurized broad examples (see
// PlusParams.Featurize). The vectors must have been produced with the same
// sorted Datasets list and Detector parameters.
func TrainPlusVectors(xs [][]float64, ys []bool, p PlusParams) (*Plus, error) {
	if len(p.Datasets) == 0 {
		return nil, ErrNoDatasets
	}
	sort.Strings(p.Datasets)
	d := mlcore.NewDataset(featureNames(p.Datasets))
	for i, x := range xs {
		d.MustAdd(mlcore.Sample{X: x, Y: ys[i], ID: fmt.Sprintf("cpd-%d", i)})
	}
	var rf *forest.Forest
	if d.Len() > 0 {
		var err error
		rf, err = forest.Train(d, p.Forest)
		if err != nil {
			return nil, fmt.Errorf("cpd: training broad-incident forest: %w", err)
		}
	}
	return &Plus{params: p, rf: rf}, nil
}

// Predict classifies an incident's monitoring evidence. It returns the
// label (true = "this team is responsible"), a confidence in [0.5, 1], and
// a human-readable explanation — the paper requires every Scout answer to
// carry both (§4).
func (c *Plus) Predict(in Input) (label bool, confidence float64, explanation string) {
	if in.Broad {
		return c.predictBroad(in)
	}
	return c.predictNarrow(in)
}

// predictNarrow applies the conservative any-signal rule of §5.2.2 with
// two noise guards. Monitoring floors are never perfectly silent: a lone
// background syslog line or a single borderline change point (the
// permutation test runs once per series, so false positives accumulate
// across series) must not implicate the team. The rule therefore fires on
// a clear event burst (>= 2 events) or on corroborated distribution
// changes (>= 2 series), which preserves the rule's high recall — real
// faults perturb several signals at once — while keeping its precision
// usable.
func (c *Plus) predictNarrow(in Input) (bool, float64, string) {
	var eventHits, changeHits []string
	var totalEvents float64
	for _, ds := range c.params.Datasets {
		for comp, n := range in.Events[ds] {
			totalEvents += n
			if n > 0 {
				eventHits = append(eventHits, fmt.Sprintf("%s: %g events on component #%d", ds, n, comp))
			}
		}
	}
	for _, ds := range c.params.Datasets {
		for comp, series := range in.Series[ds] {
			if HasChange(series, c.params.Detector) {
				changeHits = append(changeHits, fmt.Sprintf("%s: distribution change on component #%d", ds, comp))
			}
		}
	}
	if totalEvents >= 2 || len(changeHits) >= 2 {
		hits := append(eventHits, changeHits...)
		return true, 0.9, "conservative rule fired: " + strings.Join(hits, "; ")
	}
	if totalEvents >= 1 && len(changeHits) >= 1 {
		hits := append(eventHits, changeHits...)
		return true, 0.8, "conservative rule fired (event corroborated by a change point): " + strings.Join(hits, "; ")
	}
	return false, 0.75, "conservative rule: no corroborated events or change points on implicated devices"
}

// predictBroad uses the learned RF over per-dataset change-point and event
// rates. Without any broad training data it degrades to the narrow rule.
func (c *Plus) predictBroad(in Input) (bool, float64, string) {
	if c.rf == nil {
		label, conf, expl := c.predictNarrow(in)
		return label, conf, "no broad-incident model trained; " + expl
	}
	x := c.params.featurize(in)
	label, conf := c.rf.Predict(x)
	_, contribs := c.rf.Explain(x)
	top := make([]string, 0, 3)
	for i, ct := range contribs {
		if i == 3 {
			break
		}
		top = append(top, fmt.Sprintf("%s (%+.3f)", ct.Feature, ct.Value))
	}
	expl := "cluster-level change-point model"
	if len(top) > 0 {
		expl += "; top signals: " + strings.Join(top, ", ")
	}
	return label, conf, expl
}

// Featurize exposes the broad feature vector for diagnostics and tests.
func (c *Plus) Featurize(in Input) []float64 { return c.params.featurize(in) }

// PredictVector classifies a pre-featurized broad incident (see
// PlusParams.Featurize). Callers with cached vectors use this to skip
// re-running change-point detection.
func (c *Plus) PredictVector(x []float64) (bool, float64, string) {
	if c.rf == nil {
		return false, 0.75, "no broad-incident model trained"
	}
	label, conf := c.rf.Predict(x)
	return label, conf, "cluster-level change-point model (cached vector)"
}
