package svm

import (
	"math/rand"
	"testing"
)

func cluster(n int, mu, sigma float64, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{mu + rng.NormFloat64()*sigma, mu + rng.NormFloat64()*sigma}
	}
	return out
}

func TestRBFDetectsNovelty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := cluster(200, 0, 1, rng)
	oc, err := Fit(train, Params{Kernel: RBF, Nu: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Points near the training cloud: mostly inliers.
	in := 0
	for i := 0; i < 100; i++ {
		if oc.Inlier([]float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}) {
			in++
		}
	}
	if in < 80 {
		t.Fatalf("only %d/100 central points accepted", in)
	}
	// Far-away points: mostly novel.
	out := 0
	for i := 0; i < 100; i++ {
		if !oc.Inlier([]float64{20 + rng.NormFloat64(), 20 + rng.NormFloat64()}) {
			out++
		}
	}
	if out < 90 {
		t.Fatalf("only %d/100 distant points rejected", out)
	}
}

func TestNuControlsTrainingRejection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := cluster(200, 0, 1, rng)
	tight, err := Fit(train, Params{Kernel: RBF, Nu: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Fit(train, Params{Kernel: RBF, Nu: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rejTight, rejLoose := 0, 0
	for _, x := range train {
		if !tight.Inlier(x) {
			rejTight++
		}
		if !loose.Inlier(x) {
			rejLoose++
		}
	}
	if rejTight <= rejLoose {
		t.Fatalf("higher nu should reject more training points: nu=.5 rejects %d, nu=.02 rejects %d",
			rejTight, rejLoose)
	}
}

// TestKernelAggressiveness reproduces the Appendix B observation: the RBF
// kernel is more "aggressive" at flagging moderately-off points as novel
// than the conservative polynomial kernel.
func TestKernelAggressiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := cluster(150, 0, 1, rng)
	rbf, err := Fit(train, Params{Kernel: RBF, Nu: 0.1, Gamma: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Fit(train, Params{Kernel: Poly, Nu: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	novelRBF, novelPoly := 0, 0
	for i := 0; i < 200; i++ {
		// Moderately displaced points: 3 sigma off-centre.
		x := []float64{3 + rng.NormFloat64()*0.3, 3 + rng.NormFloat64()*0.3}
		if !rbf.Inlier(x) {
			novelRBF++
		}
		if !poly.Inlier(x) {
			novelPoly++
		}
	}
	if novelRBF <= novelPoly {
		t.Fatalf("RBF should flag more moderately-off points: rbf=%d poly=%d", novelRBF, novelPoly)
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil, Params{}); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
}

func TestPredictInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	oc, err := Fit(cluster(100, 0, 1, rng), Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	label, conf := oc.Predict([]float64{0, 0})
	if conf < 0.5 || conf > 1 {
		t.Fatalf("conf %v", conf)
	}
	far, _ := oc.Predict([]float64{50, 50})
	if far && !label {
		t.Fatal("far point inlier while central point novel — inverted decision")
	}
}

func TestDeterministicFit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	train := cluster(80, 0, 1, rng)
	a, _ := Fit(train, Params{Seed: 9})
	b, _ := Fit(train, Params{Seed: 9})
	probe := []float64{1.5, -0.5}
	if a.Score(probe) != b.Score(probe) {
		t.Fatal("same seed must give identical models")
	}
}
