// Package svm implements a ν-one-class support vector machine — the
// unsupervised novelty detector the paper evaluates both as an alternative
// anomaly model (§5.2.2 footnote: 86% precision / 98% recall) and as a
// candidate decider inside the model selector, where the kernel choice
// matters: a "conservative" polynomial kernel labels most incidents as old,
// an "aggressive" RBF kernel flags many as new (Appendix B, Figure 8).
//
// The dual problem — minimize (1/2) αᵀKα subject to 0 ≤ αᵢ ≤ 1/(νn) and
// Σαᵢ = 1 — is solved with an SMO-style pairwise coordinate descent that
// preserves the equality constraint exactly.
package svm

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"scouts/internal/ml/linalg"
	"scouts/internal/ml/mlcore"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// RBF is the radial basis function kernel exp(-gamma*||x-y||^2). With
	// a tight decision boundary it behaves "aggressively": points off the
	// training manifold are readily declared novel.
	RBF KernelKind = iota
	// Poly is the polynomial kernel (gamma*<x,y> + coef0)^degree, the
	// "conservative" choice of the paper's Appendix B.
	Poly
)

// Params configure the one-class SVM.
type Params struct {
	Kernel KernelKind
	// Nu bounds the fraction of training points treated as outliers
	// (default 0.1).
	Nu float64
	// Gamma is the kernel width (default 1/dim).
	Gamma float64
	// Degree and Coef0 apply to the polynomial kernel (defaults 3 and 1).
	Degree int
	Coef0  float64
	// Iters is the number of SMO pair updates (default 200*n).
	Iters int
	// Seed drives pair selection.
	Seed int64
}

// OneClass is a trained one-class SVM.
type OneClass struct {
	params Params
	std    *mlcore.Standardizer
	sv     [][]float64
	alpha  []float64
	rho    float64
}

// ErrEmptyTrainingSet is returned when Fit receives no samples.
var ErrEmptyTrainingSet = errors.New("svm: empty training set")

// Fit trains the one-class SVM on the feature vectors xs (the single,
// "normal" class; there are no labels).
func Fit(xs [][]float64, p Params) (*OneClass, error) {
	n := len(xs)
	if n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if p.Nu <= 0 || p.Nu > 1 {
		p.Nu = 0.1
	}
	dim := len(xs[0])
	if p.Gamma <= 0 {
		p.Gamma = 1 / float64(dim)
	}
	if p.Degree <= 0 {
		p.Degree = 3
	}
	if p.Kernel == Poly && p.Coef0 == 0 {
		p.Coef0 = 1
	}
	if p.Iters <= 0 {
		p.Iters = 200 * n
	}

	// Standardize internally; kernel scales assume unit-ish features.
	d := mlcore.NewDataset(make([]string, dim))
	for _, x := range xs {
		d.MustAdd(mlcore.Sample{X: x})
	}
	std := mlcore.FitStandardizer(d)
	work := make([][]float64, n)
	for i, x := range xs {
		work[i] = std.Apply(x)
	}

	oc := &OneClass{params: p, std: std, sv: work}
	// Precompute the kernel matrix (n is modest in the Scout setting: the
	// selector trains on at most a few thousand incidents).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := oc.kernel(work[i], work[j])
			k[i][j] = v
			k[j][i] = v
		}
	}

	// Feasible start: α uniform at 1/n (satisfies 0 ≤ α ≤ 1/(νn) since
	// ν ≤ 1, and Σα = 1).
	c := 1 / (p.Nu * float64(n))
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1 / float64(n)
	}
	grad := make([]float64, n) // gradient of (1/2)αᵀKα is Kα
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			grad[i] += k[i][j] * alpha[j]
		}
	}

	rng := rand.New(rand.NewSource(p.Seed))
	for it := 0; it < p.Iters; it++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		// Optimize α_i, α_j keeping α_i + α_j = s constant:
		// minimize over t where α_i' = α_i + t, α_j' = α_j − t.
		// d/dt = grad_i − grad_j + t*(K_ii + K_jj − 2K_ij) = 0.
		denom := k[i][i] + k[j][j] - 2*k[i][j]
		if denom < 1e-12 {
			continue
		}
		t := (grad[j] - grad[i]) / denom
		// Clip to the box.
		lo := math.Max(-alpha[i], alpha[j]-c)
		hi := math.Min(c-alpha[i], alpha[j])
		if t < lo {
			t = lo
		}
		if t > hi {
			t = hi
		}
		if t == 0 {
			continue
		}
		alpha[i] += t
		alpha[j] -= t
		for m := 0; m < n; m++ {
			grad[m] += t * (k[m][i] - k[m][j])
		}
	}
	oc.alpha = alpha

	// ρ: decision offset such that free support vectors (0 < α < C) sit on
	// the boundary f(x) = Σ α_i k(x_i, x) − ρ = 0. Use their mean score;
	// fall back to the ν-quantile of training scores if none are free.
	var free []float64
	scores := make([]float64, n)
	for m := 0; m < n; m++ {
		scores[m] = grad[m] // grad_m == Σ_j K_mj α_j == Σ α_j k(x_j, x_m)
		if alpha[m] > 1e-8 && alpha[m] < c-1e-8 {
			free = append(free, scores[m])
		}
	}
	if len(free) > 0 {
		sum := 0.0
		for _, v := range free {
			sum += v
		}
		oc.rho = sum / float64(len(free))
	} else {
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		idx := int(p.Nu * float64(n))
		if idx >= n {
			idx = n - 1
		}
		oc.rho = sorted[idx]
	}
	return oc, nil
}

func (oc *OneClass) kernel(a, b []float64) float64 {
	switch oc.params.Kernel {
	case Poly:
		return math.Pow(oc.params.Gamma*linalg.Dot(a, b)+oc.params.Coef0, float64(oc.params.Degree))
	default:
		return math.Exp(-oc.params.Gamma * linalg.SqDist(a, b))
	}
}

// Score returns the signed decision value f(x); negative means novel.
func (oc *OneClass) Score(x []float64) float64 {
	x = oc.std.Apply(x)
	s := -oc.rho
	for i, sv := range oc.sv {
		if oc.alpha[i] <= 1e-10 {
			continue
		}
		s += oc.alpha[i] * oc.kernel(sv, x)
	}
	return s
}

// Inlier reports whether x looks like the training class.
func (oc *OneClass) Inlier(x []float64) bool { return oc.Score(x) >= 0 }

// Predict implements mlcore.Classifier with the convention label == true
// meaning "inlier / known". Confidence is a squashed margin.
func (oc *OneClass) Predict(x []float64) (bool, float64) {
	s := oc.Score(x)
	conf := 0.5 + 0.5*math.Tanh(math.Abs(s)*10)
	return s >= 0, conf
}
