package forest

import (
	"math"
	"sync/atomic"
)

// flatForest is the inference-time representation of a trained forest: the
// pointer-addressed per-tree node slices flattened into one contiguous
// structure-of-arrays layout. The pointer trees remain the training
// representation and the snapshot format (snapshots stay byte-identical);
// the flat view is derived from them once, at Train or UnmarshalJSON time.
//
// Why SoA: at prediction time a traversal step reads exactly one feature
// index, one threshold and one child index — never the training-time node
// weight, and the probability only at the leaf. The 48-byte AoS node drags
// all of that through the cache per step; parallel arrays touch only the
// bytes the step uses, int32 indices halve them again, and concatenating
// every tree removes the per-tree slice-header indirection.
//
// Node order within a tree is breadth-first with the two children of every
// split allocated adjacently, so a single child index describes both:
// left = kids[n], right = kids[n]+1. A traversal step then needs no
// branch — it adds the comparison outcome to the child base — which is
// what makes the batch kernel fast: random-forest splits are ~50/50 coin
// flips, and a branchy step pays a pipeline flush on half of them.
// Leaves self-loop (kids[n] == n, threshold +Inf), so stepping a finished
// traversal is a harmless no-op; the batch kernel exploits that to run
// every lane for the tree's full depth with no per-lane "done" check.
//
// Determinism: the flat arrays hold bit-copies of the pointer nodes'
// values and every traversal visits the same splits in the same order, so
// each tree's answer — and each float64 accumulation order across trees —
// is identical to the pointer kernel's, float for float (DESIGN.md §8).
type flatForest struct {
	feature   []int32   // split feature per node (0 for leaf: a harmless load)
	threshold []float64 // go left when x[feature] <= threshold; +Inf for leaf
	kids      []int32   // absolute left-child index; right is kids+1; self for leaf
	prob      []float64 // weighted positive fraction at the node

	roots []int32 // node index of each tree's root (trees are contiguous)
	depth []int32 // per-tree max depth: the fixed step count of the batch kernel
	prior float64 // mean root probability: the training prior, the
	// forest's answer when it cannot trust the input vector

	// quant is the quantized mirror of the traversal arrays (see qnode):
	// float32 thresholds packed with the feature and child indices into one
	// 12-byte record, plus the tree blocking the cache-blocked kernels walk.
	// Derived by quantize() after the f64 arrays exist; prob stays float64,
	// so only the comparison — never the answer's accumulation — is
	// quantized.
	quant quantForest
}

// flatDerivations counts newFlatForest calls. It exists for the
// exactly-once-per-load guard tests (a JSON load must derive the flat
// view exactly once per forest; a binary pack load must derive it zero
// times) and has no other consumers.
var flatDerivations atomic.Int64

// FlatDerivations reports how many pointer-tree flattenings have run in
// this process — a test hook for the load-path derivation-count guards.
func FlatDerivations() int64 { return flatDerivations.Load() }

// newFlatForest flattens the trained pointer trees, re-ordering each
// tree's nodes breadth-first so sibling pairs are adjacent. Child indices
// are rebased from per-tree to forest-wide, which costs one add at build
// time and none at traversal time.
func newFlatForest(trees []*tree) *flatForest {
	flatDerivations.Add(1)
	total := 0
	for _, t := range trees {
		total += len(t.nodes)
	}
	ff := &flatForest{
		feature:   make([]int32, total),
		threshold: make([]float64, total),
		kids:      make([]int32, total),
		prob:      make([]float64, total),
		roots:     make([]int32, len(trees)),
		depth:     make([]int32, len(trees)),
	}
	base := int32(0)
	for t, tr := range trees {
		ff.roots[t] = base
		// Breadth-first renumbering: when a split is visited its children
		// get the next two flat slots, so the pair is always adjacent.
		order := make([]int32, len(tr.nodes)) // old index -> flat index
		queue := make([]int32, 1, len(tr.nodes))
		order[0] = base // grow appends the root first
		next := base + 1
		for qi := 0; qi < len(queue); qi++ {
			old := queue[qi]
			n := &tr.nodes[old]
			j := order[old]
			ff.prob[j] = n.prob
			if n.feature < 0 {
				ff.feature[j] = 0
				ff.threshold[j] = math.Inf(1)
				ff.kids[j] = j
				continue
			}
			ff.feature[j] = int32(n.feature)
			ff.threshold[j] = n.threshold
			ff.kids[j] = next
			order[n.left], order[n.right] = next, next+1
			next += 2
			queue = append(queue, int32(n.left), int32(n.right))
		}
		ff.depth[t] = int32(treeDepth(tr.nodes, 0))
		base += int32(len(tr.nodes))
	}
	if len(trees) > 0 {
		s := 0.0
		for _, r := range ff.roots {
			s += ff.prob[r]
		}
		ff.prior = s / float64(len(trees))
	}
	ff.quantize()
	return ff
}

// treeDepth returns the longest root-to-leaf edge count of a pointer tree.
func treeDepth(nodes []node, i int) int {
	n := &nodes[i]
	if n.feature < 0 {
		return 0
	}
	l := treeDepth(nodes, n.left)
	if r := treeDepth(nodes, n.right); r > l {
		l = r
	}
	return l + 1
}

// predictTree walks one tree (by root node index) to its leaf probability.
// The comparison is written as !(x <= t) so a NaN feature value goes right,
// exactly as the pointer kernel's if/else does.
func (ff *flatForest) predictTree(root int32, x []float64) float64 {
	feature, threshold, kids := ff.feature, ff.threshold, ff.kids
	n := root
	for {
		k := kids[n]
		if k == n {
			return ff.prob[n]
		}
		if !(x[feature[n]] <= threshold[n]) {
			k++
		}
		n = k
	}
}

// predictProb averages the leaf probabilities in tree order — the same
// accumulation order as the pointer kernel, so the sum is bit-identical.
func (ff *flatForest) predictProb(x []float64) float64 {
	s := 0.0
	for _, r := range ff.roots {
		s += ff.predictTree(r, x)
	}
	return s / float64(len(ff.roots))
}

// predictBatch accumulates leaf probabilities for every vector of xs into
// out (which the caller sized and zeroed), then divides by the tree count.
//
// The kernel takes vectors eight at a time and walks all eight traversals
// through each tree in lock-step for the tree's full depth. The
// chains are independent, so the out-of-order core overlaps their
// pointer-chase latencies instead of serializing one traversal at a time —
// that, plus the branch-free step the adjacent-sibling layout allows, is
// where the batch speedup over the single-vector kernels comes from.
// Lanes that reach a leaf early self-loop until the depth counter runs
// out (see flatForest).
//
// Per vector the additions still happen in tree order — out[i] collects
// tree 0, then tree 1, ... — so every batch probability is bit-identical
// to the corresponding predictProb call. The lock-step comparison x > t
// assumes non-NaN input (a NaN would escape a leaf's self-loop); vectors
// containing NaN take the single-vector kernel, which routes NaN right
// exactly as the pointer kernel does.
//
//scout:hotpath
func (ff *flatForest) predictBatch(xs [][]float64, out []float64) {
	feature, threshold, kids, prob := ff.feature, ff.threshold, ff.kids, ff.prob
	i := 0
	for ; i+8 <= len(xs); i += 8 {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		x4, x5, x6, x7 := xs[i+4], xs[i+5], xs[i+6], xs[i+7]
		if hasNaN(x0) || hasNaN(x1) || hasNaN(x2) || hasNaN(x3) ||
			hasNaN(x4) || hasNaN(x5) || hasNaN(x6) || hasNaN(x7) {
			for j := i; j < i+8; j++ {
				for _, r := range ff.roots {
					out[j] += ff.predictTree(r, xs[j])
				}
			}
			continue
		}
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for t, r := range ff.roots {
			n0, n1, n2, n3 := r, r, r, r
			n4, n5, n6, n7 := r, r, r, r
			for d := ff.depth[t]; d > 0; d-- {
				var b0, b1, b2, b3, b4, b5, b6, b7 int32
				if x0[feature[n0]] > threshold[n0] {
					b0 = 1
				}
				if x1[feature[n1]] > threshold[n1] {
					b1 = 1
				}
				if x2[feature[n2]] > threshold[n2] {
					b2 = 1
				}
				if x3[feature[n3]] > threshold[n3] {
					b3 = 1
				}
				if x4[feature[n4]] > threshold[n4] {
					b4 = 1
				}
				if x5[feature[n5]] > threshold[n5] {
					b5 = 1
				}
				if x6[feature[n6]] > threshold[n6] {
					b6 = 1
				}
				if x7[feature[n7]] > threshold[n7] {
					b7 = 1
				}
				n0 = kids[n0] + b0
				n1 = kids[n1] + b1
				n2 = kids[n2] + b2
				n3 = kids[n3] + b3
				n4 = kids[n4] + b4
				n5 = kids[n5] + b5
				n6 = kids[n6] + b6
				n7 = kids[n7] + b7
			}
			s0 += prob[n0]
			s1 += prob[n1]
			s2 += prob[n2]
			s3 += prob[n3]
			s4 += prob[n4]
			s5 += prob[n5]
			s6 += prob[n6]
			s7 += prob[n7]
		}
		out[i] += s0
		out[i+1] += s1
		out[i+2] += s2
		out[i+3] += s3
		out[i+4] += s4
		out[i+5] += s5
		out[i+6] += s6
		out[i+7] += s7
	}
	for ; i < len(xs); i++ {
		for _, r := range ff.roots {
			out[i] += ff.predictTree(r, xs[i])
		}
	}
	count := float64(len(ff.roots))
	for j := range out {
		out[j] /= count
	}
}

func hasNaN(x []float64) bool {
	for _, v := range x {
		if v != v {
			return true
		}
	}
	return false
}

// contributions adds tree t's Palczewska feature-contribution
// decomposition for x into out and returns the tree's root prior —
// node-for-node the arithmetic of the pointer kernel's
// tree.contributions.
func (ff *flatForest) contributions(root int32, x []float64, out []float64) float64 {
	prior := ff.prob[root]
	n := root
	for {
		k := ff.kids[n]
		if k == n {
			return prior
		}
		f := ff.feature[n]
		if !(x[f] <= ff.threshold[n]) {
			k++
		}
		out[f] += ff.prob[k] - ff.prob[n]
		n = k
	}
}
