package forest

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// TestParallelTrainingBitIdentical is the determinism contract of the
// worker pool: because per-tree seeds are pre-drawn from the root stream in
// tree order and importances are merged in tree order, the serialized
// forest must be byte-for-byte identical at any worker count.
func TestParallelTrainingBitIdentical(t *testing.T) {
	d := xorDataset(400, 0.1, rand.New(rand.NewSource(21)))
	snapshot := func(workers int) []byte {
		t.Helper()
		f, err := Train(d, Params{NumTrees: 24, MaxDepth: 6, Seed: 99, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := snapshot(1)
	for _, w := range []int{0, 2, 3, 8, 16} {
		if par := snapshot(w); !bytes.Equal(seq, par) {
			t.Fatalf("workers=%d snapshot differs from workers=1 (%d vs %d bytes)",
				w, len(par), len(seq))
		}
	}
}

// TestWorkersExcludedFromSnapshot pins the json:"-" tag on Params.Workers:
// a runtime tuning knob must not leak into persisted models (it would break
// snapshot equality across machines with different core counts).
func TestWorkersExcludedFromSnapshot(t *testing.T) {
	d := xorDataset(100, 0.1, rand.New(rand.NewSource(22)))
	f, err := Train(d, Params{NumTrees: 4, Seed: 1, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("workers")) || bytes.Contains(b, []byte("Workers")) {
		t.Fatalf("snapshot leaks the Workers knob: %s", b)
	}
	var back Forest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.params.Workers != 0 {
		t.Fatalf("restored forest should not carry a worker count, got %d", back.params.Workers)
	}
}

// TestParallelImportanceMatchesSequential checks the importance merge path
// specifically: per-tree accumulators folded in tree order must reproduce
// the sequential accumulation exactly (float addition is not associative,
// so a per-worker merge would drift).
func TestParallelImportanceMatchesSequential(t *testing.T) {
	d := xorDataset(300, 0.2, rand.New(rand.NewSource(23)))
	f1, err := Train(d, Params{NumTrees: 30, MaxDepth: 5, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Train(d, Params{NumTrees: 30, MaxDepth: 5, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	i1, i8 := f1.Importance(), f8.Importance()
	for k := range i1 {
		if i1[k] != i8[k] {
			t.Fatalf("importance[%d]: workers=1 %v != workers=8 %v", k, i1[k], i8[k])
		}
	}
}
