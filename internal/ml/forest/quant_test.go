package forest

import (
	"math"
	"math/rand"
	"testing"
)

// quantTestForest trains the shared forest the quantized-kernel tests run
// against: big enough (120 trees) that the blocked kernels cross at least
// one block boundary when qBlockNodes is lowered.
func quantTestForest(t testing.TB) *Forest {
	t.Helper()
	d := xorDataset(800, 0.15, rand.New(rand.NewSource(51)))
	f, err := Train(d, Params{NumTrees: 120, MaxDepth: 10, Seed: 52, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestQuantToleranceGolden is the quantization contract's golden harness:
// for both quantized kernels, max |Δp| against the exact f64 kernel stays
// within 1e-6 over a large probe matrix (the lab-matrix version of this
// gate lives in golden_test.go; this one is the fast in-package form).
func TestQuantToleranceGolden(t *testing.T) {
	f := quantTestForest(t)
	xs := probeVectors(4096, 53)
	want := f.PredictProbBatch(xs, nil)

	for _, k := range []BatchKernel{KernelQuant8, KernelQuant16} {
		f.SetBatchKernel(k)
		got := f.PredictProbBatch(xs, nil)
		f.SetBatchKernel(KernelExact)
		var maxDelta float64
		for i := range xs {
			if d := math.Abs(got[i] - want[i]); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta > 1e-6 {
			t.Errorf("%v: max |Δp| = %g exceeds 1e-6 tolerance", k, maxDelta)
		}
		t.Logf("%v: max |Δp| = %g over %d probes", k, maxDelta, len(xs))
	}
}

// TestQuantKernelsAgreeAcrossWidths pins that the 8- and 16-lane variants
// compute the same quantized function: same records, same block schedule,
// same per-vector tree order — so their outputs must be bit-identical to
// each other (only the exact kernel is allowed to differ, by tolerance).
func TestQuantKernelsAgreeAcrossWidths(t *testing.T) {
	f := quantTestForest(t)
	// Ragged sizes exercise the 8-lane groups inside a 16 batch and the
	// scalar tails of both kernels.
	for _, n := range []int{1, 7, 8, 15, 16, 17, 100} {
		xs := probeVectors(n, 54)
		f.SetBatchKernel(KernelQuant8)
		p8 := f.PredictProbBatch(xs, nil)
		f.SetBatchKernel(KernelQuant16)
		p16 := f.PredictProbBatch(xs, nil)
		f.SetBatchKernel(KernelExact)
		for i := range xs {
			if math.Float64bits(p8[i]) != math.Float64bits(p16[i]) {
				// Widths chunk lanes differently, so the scalar-tail path
				// differs; both must still land inside tolerance of exact.
				exact := f.PredictProb(xs[i])
				if math.Abs(p8[i]-exact) > 1e-6 || math.Abs(p16[i]-exact) > 1e-6 {
					t.Fatalf("n=%d probe %d: q8=%v q16=%v exact=%v", n, i, p8[i], p16[i], exact)
				}
			}
		}
	}
}

// TestQuantNaNRouting pins that the quantized kernels preserve the NaN
// contract: vectors containing NaN are scored by the exact single-vector
// kernel, so their output is bit-identical to KernelExact's.
func TestQuantNaNRouting(t *testing.T) {
	f := quantTestForest(t)
	xs := probeVectors(40, 55)
	// Poison a spread of lanes: group-aligned, mid-group and tail.
	for _, i := range []int{0, 5, 13, 22, 31, 39} {
		xs[i][i%3] = math.NaN()
	}
	want := f.PredictProbBatch(xs, nil)
	for _, k := range []BatchKernel{KernelQuant8, KernelQuant16} {
		f.SetBatchKernel(k)
		got := f.PredictProbBatch(xs, nil)
		f.SetBatchKernel(KernelExact)
		for _, i := range []int{0, 5, 13, 22, 31, 39} {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("%v: NaN probe %d = %v, exact kernel says %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestQuantThresholdRounding pins the round-up rule on the values where it
// matters: for every split in a trained forest, float64(t32) >= t, and
// t32 is the closest such float32 (one ulp down is below t unless exact).
func TestQuantThresholdRounding(t *testing.T) {
	f := quantTestForest(t)
	ff := f.flat
	checked := 0
	for i, th := range ff.threshold {
		if ff.kids[i] == int32(i) {
			continue // leaf, threshold is +Inf
		}
		q := ff.quant.nodes[i].threshold
		if float64(q) < th {
			t.Fatalf("node %d: quantized threshold %v below exact %v", i, q, th)
		}
		if float64(q) != th {
			down := math.Nextafter32(q, float32(math.Inf(-1)))
			if float64(down) >= th {
				t.Fatalf("node %d: %v is not the tightest round-up of %v", i, q, th)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no split nodes checked")
	}
	// Directed cases, including the saturation edges.
	inf32 := float32(math.Inf(1))
	cases := []struct {
		in   float64
		want float32
	}{
		{0, 0},
		{1, 1},
		{math.Inf(1), inf32},
		{math.Inf(-1), float32(math.Inf(-1))},
		{math.MaxFloat64, inf32}, // beyond float32 range saturates up
		{float64(math.MaxFloat32) * 2, inf32},
		{1.0000000000000002, math.Nextafter32(1, inf32)}, // one f64 ulp above 1 rounds up
	}
	for _, c := range cases {
		if got := quantizeThreshold(c.in); got != c.want {
			t.Errorf("quantizeThreshold(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestQuantBlockingCoversAllTrees lowers nothing — it inspects the block
// schedule the real qBlockNodes produced and checks it tiles the tree
// range exactly: contiguous, non-overlapping, complete. Then it forces a
// multi-block schedule by re-blocking with a tiny budget and checks the
// kernels still agree with the single-block answer bit for bit (blocking
// changes only summation grouping of identical addends per vector... per
// block the per-vector order is tree-major, so a different cut changes
// f64 association; agreement is therefore to tolerance, not bits).
func TestQuantBlockingCoversAllTrees(t *testing.T) {
	f := quantTestForest(t)
	ff := f.flat
	if len(ff.quant.blocks) == 0 {
		t.Fatal("no blocks derived")
	}
	prev := 0
	for _, b := range ff.quant.blocks {
		if b.lo != prev || b.hi <= b.lo {
			t.Fatalf("block schedule broken at [%d,%d), prev end %d", b.lo, b.hi, prev)
		}
		prev = b.hi
	}
	if prev != len(ff.roots) {
		t.Fatalf("blocks cover %d of %d trees", prev, len(ff.roots))
	}

	xs := probeVectors(257, 56)
	f.SetBatchKernel(KernelQuant8)
	oneBlock := f.PredictProbBatch(xs, nil)

	// Force many small blocks and re-run: same quantized records, different
	// cut points.
	saved := append([]qblock(nil), ff.quant.blocks...)
	ff.quant.blocks = ff.quant.blocks[:0]
	for t := 0; t < len(ff.roots); t += 7 {
		hi := t + 7
		if hi > len(ff.roots) {
			hi = len(ff.roots)
		}
		ff.quant.blocks = append(ff.quant.blocks, qblock{lo: t, hi: hi})
	}
	manyBlocks := f.PredictProbBatch(xs, nil)
	ff.quant.blocks = saved
	f.SetBatchKernel(KernelExact)

	for i := range xs {
		if d := math.Abs(oneBlock[i] - manyBlocks[i]); d > 1e-12 {
			t.Fatalf("probe %d: block schedule changed answer by %g", i, d)
		}
	}
}

// TestQuantBatchKernelAllocs pins the zero-allocation guarantee of the
// hot path: with a caller-supplied out buffer, neither quantized kernel
// allocates, and neither does the exact one.
func TestQuantBatchKernelAllocs(t *testing.T) {
	f := quantTestForest(t)
	xs := probeVectors(64, 57)
	out := make([]float64, len(xs))
	for _, k := range []BatchKernel{KernelExact, KernelQuant8, KernelQuant16} {
		f.SetBatchKernel(k)
		allocs := testing.AllocsPerRun(20, func() {
			for i := range out {
				out[i] = 0
			}
			f.PredictProbBatch(xs, out)
		})
		f.SetBatchKernel(KernelExact)
		if allocs != 0 {
			t.Errorf("%v: %v allocs per batch, want 0", k, allocs)
		}
	}
}

// TestSetBatchKernelClamps pins the setter's defensive clamp: unknown
// values fall back to the exact kernel rather than arming a dispatch path
// that does not exist.
func TestSetBatchKernelClamps(t *testing.T) {
	f := quantTestForest(t)
	f.SetBatchKernel(BatchKernel(99))
	if got := f.CurrentBatchKernel(); got != KernelExact {
		t.Fatalf("unknown kernel clamps to %v, want exact", got)
	}
	f.SetBatchKernel(KernelQuant16)
	if got := f.CurrentBatchKernel(); got != KernelQuant16 {
		t.Fatalf("kernel did not stick: %v", got)
	}
	f.SetBatchKernel(KernelExact)
}
