package forest

import (
	"encoding/json"
	"math/rand"
	"testing"

	"scouts/internal/ml/mlcore"
)

func TestForestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := mlcore.NewDataset([]string{"a", "b"})
	for i := 0; i < 200; i++ {
		y := rng.Float64() < 0.5
		mu := 0.0
		if y {
			mu = 3
		}
		d.MustAdd(mlcore.Sample{X: []float64{mu + rng.NormFloat64(), rng.NormFloat64()}, Y: y})
	}
	f, err := Train(d, Params{NumTrees: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64() * 3, rng.NormFloat64()}
		if f.PredictProb(x) != back.PredictProb(x) {
			t.Fatalf("round trip changed prediction at %v", x)
		}
	}
	if back.NumTrees() != f.NumTrees() {
		t.Fatal("tree count changed")
	}
	// Explanations survive too.
	p1, c1 := f.Explain([]float64{3, 0})
	p2, c2 := back.Explain([]float64{3, 0})
	if p1 != p2 || len(c1) != len(c2) {
		t.Fatal("explanation changed across round trip")
	}
}

func TestForestJSONRejectsCorrupt(t *testing.T) {
	var f Forest
	if err := json.Unmarshal([]byte(`{"features":["a"],"trees":[]}`), &f); err == nil {
		t.Fatal("no trees should be rejected")
	}
	if err := json.Unmarshal([]byte(`{"features":["a"],"trees":[[{"f":5,"p":0.5}]]}`), &f); err == nil {
		t.Fatal("out-of-range feature should be rejected")
	}
	if err := json.Unmarshal([]byte(`{"features":["a"],"trees":[[{"f":0,"l":7,"r":0,"p":0.5}]]}`), &f); err == nil {
		t.Fatal("out-of-range child should be rejected")
	}
	if err := json.Unmarshal([]byte(`not json`), &f); err == nil {
		t.Fatal("garbage should be rejected")
	}
}
