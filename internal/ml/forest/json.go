package forest

import (
	"encoding/json"
	"errors"
)

// nodeDTO is the serialized form of a tree node.
type nodeDTO struct {
	F int     `json:"f"` // split feature, -1 for leaf
	T float64 `json:"t,omitempty"`
	L int     `json:"l,omitempty"`
	R int     `json:"r,omitempty"`
	P float64 `json:"p"`
	W float64 `json:"w,omitempty"`
}

// forestDTO is the serialized form of a Forest.
type forestDTO struct {
	Features []string    `json:"features"`
	Imp      []float64   `json:"importance"`
	Params   Params      `json:"params"`
	Trees    [][]nodeDTO `json:"trees"`
}

// MarshalJSON serializes the forest (model persistence for the serving
// pipeline, §6). Pack-loaded forests carry only the flat inference view —
// the pointer trees the JSON format is made of are gone — so they refuse
// to serialize rather than emit an empty ensemble.
func (f *Forest) MarshalJSON() ([]byte, error) {
	if f.trees == nil && f.flat != nil {
		return nil, errors.New("forest: pack-loaded forest has no pointer trees; JSON snapshot unavailable")
	}
	dto := forestDTO{Features: f.features, Imp: f.imp, Params: f.params}
	for _, t := range f.trees {
		nodes := make([]nodeDTO, len(t.nodes))
		for i, n := range t.nodes {
			nodes[i] = nodeDTO{F: n.feature, T: n.threshold, L: n.left, R: n.right, P: n.prob, W: n.weight}
		}
		dto.Trees = append(dto.Trees, nodes)
	}
	return json.Marshal(dto)
}

// UnmarshalJSON restores a forest serialized with MarshalJSON.
func (f *Forest) UnmarshalJSON(b []byte) error {
	var dto forestDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return err
	}
	if len(dto.Trees) == 0 {
		return errors.New("forest: snapshot contains no trees")
	}
	f.features = dto.Features
	f.imp = dto.Imp
	f.params = dto.Params
	f.trees = nil
	for _, nodes := range dto.Trees {
		t := &tree{nodes: make([]node, len(nodes))}
		for i, n := range nodes {
			if n.F >= len(dto.Features) {
				return errors.New("forest: snapshot node references unknown feature")
			}
			if n.L < 0 || n.L >= len(nodes) || n.R < 0 || n.R >= len(nodes) {
				return errors.New("forest: snapshot node references out-of-range child")
			}
			t.nodes[i] = node{feature: n.F, threshold: n.T, left: n.L, right: n.R, prob: n.P, weight: n.W}
		}
		f.trees = append(f.trees, t)
	}
	// Snapshots carry only the pointer trees; the inference-time flat SoA
	// view is derived here, exactly as Train derives it.
	f.flat = newFlatForest(f.trees)
	return nil
}
