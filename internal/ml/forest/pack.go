package forest

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// This file is the forest's binary snapshot: the flat SoA inference view
// (flat.go) written out as-is, so loading is an array copy with zero
// re-derivation — no pointer trees rebuilt, no breadth-first renumbering,
// no JSON text parsed. The JSON snapshot (json.go) remains the training
// interchange format; the binary form is what the serving fleet ships,
// because at fleet scale model distribution and hot-swap latency are
// dominated by exactly the work this format deletes.
//
// Layout ("SFF1", all little-endian):
//
//	magic "SFF1" | u32 sectionCount
//	per section: tag[4] | pad[4] | u64 payloadLen | payload | pad to 8
//
// The 16-byte section header keeps every payload 8-byte aligned relative
// to the start of the blob, so a future mmap-style loader can alias the
// float64/int32 sections directly; today's loader copies element-wise
// through encoding/binary, which is portable across endianness.
//
// Sections, in fixed order:
//
//	FEAT  u32 count, then per feature name: u32 len | bytes
//	PRMS  JSON-encoded Params (human-auditable, tiny)
//	IMPT  float64 × dim   normalized feature importance
//	NDFT  int32   × nodes split feature per node
//	NDTH  float64 × nodes split threshold (+Inf for leaves)
//	NDKD  int32   × nodes absolute left-child index (self for leaves)
//	NDPB  float64 × nodes leaf/node probability
//	ROOT  int32   × trees root node index per tree
//	DPTH  int32   × trees max depth per tree
//	PRIR  float64         training prior (verified against ROOT/NDPB on load)
//
// Everything a reader consumes is bounds-checked against the buffer
// before slicing, and the structural invariants the kernels rely on —
// strictly increasing roots, children after parents (termination),
// feature indices inside the layout — are validated on load, so a
// corrupt or adversarial blob errors out instead of panicking (or
// looping) in a traversal. Whole-blob integrity (sha256) is the
// enclosing envelope's job: core's scoutpack container and the
// diskstore both checksum their payloads.

const packMagic = "SFF1"

// section tags, in the order AppendBinary writes them.
var packSections = []string{"FEAT", "PRMS", "IMPT", "NDFT", "NDTH", "NDKD", "NDPB", "ROOT", "DPTH", "PRIR"}

// ErrNotPacked is returned by ForestFromBinary when the blob does not
// start with the SFF1 magic — callers sniffing formats test against it.
var ErrNotPacked = errors.New("forest: not an SFF1 binary forest")

// AppendBinary appends the forest's SFF1 binary snapshot to buf and
// returns the extended slice. The payload is exactly the flat inference
// arrays; an untrained forest has none and errors.
func (f *Forest) AppendBinary(buf []byte) ([]byte, error) {
	ff := f.flat
	if ff == nil || len(ff.roots) == 0 {
		return nil, errors.New("forest: no flat view to pack (untrained forest)")
	}
	params, err := json.Marshal(f.params)
	if err != nil {
		return nil, fmt.Errorf("forest: packing params: %w", err)
	}

	buf = append(buf, packMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(packSections)))

	// FEAT
	feat := binary.LittleEndian.AppendUint32(nil, uint32(len(f.features)))
	for _, name := range f.features {
		feat = binary.LittleEndian.AppendUint32(feat, uint32(len(name)))
		feat = append(feat, name...)
	}
	buf = appendSection(buf, "FEAT", feat)
	buf = appendSection(buf, "PRMS", params)
	buf = appendSection(buf, "IMPT", appendF64s(nil, f.imp))
	buf = appendSection(buf, "NDFT", appendI32s(nil, ff.feature))
	buf = appendSection(buf, "NDTH", appendF64s(nil, ff.threshold))
	buf = appendSection(buf, "NDKD", appendI32s(nil, ff.kids))
	buf = appendSection(buf, "NDPB", appendF64s(nil, ff.prob))
	buf = appendSection(buf, "ROOT", appendI32s(nil, ff.roots))
	buf = appendSection(buf, "DPTH", appendI32s(nil, ff.depth))
	buf = appendSection(buf, "PRIR", appendF64s(nil, []float64{ff.prior}))
	return buf, nil
}

func appendSection(buf []byte, tag string, payload []byte) []byte {
	buf = append(buf, tag...)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	for len(buf)%8 != 0 {
		buf = append(buf, 0)
	}
	return buf
}

func appendF64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendI32s(buf []byte, vs []int32) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// ForestFromBinary loads an SFF1 blob written by AppendBinary. The flat
// inference view is filled by direct array copies — newFlatForest never
// runs — so the returned forest is inference-only: it predicts and
// explains through the flat kernels but has no pointer trees and cannot
// re-serialize to JSON.
func ForestFromBinary(data []byte) (*Forest, error) {
	secs, err := parsePackSections(data)
	if err != nil {
		return nil, err
	}

	// FEAT: the feature-layout header.
	feat := secs["FEAT"]
	if len(feat) < 4 {
		return nil, errors.New("forest: FEAT section truncated")
	}
	dim := int(binary.LittleEndian.Uint32(feat))
	feat = feat[4:]
	features := make([]string, 0, dim)
	for i := 0; i < dim; i++ {
		if len(feat) < 4 {
			return nil, errors.New("forest: FEAT name count overruns section")
		}
		n := int(binary.LittleEndian.Uint32(feat))
		feat = feat[4:]
		if n < 0 || n > len(feat) {
			return nil, errors.New("forest: FEAT name length overruns section")
		}
		features = append(features, string(feat[:n]))
		feat = feat[n:]
	}

	var params Params
	if err := json.Unmarshal(secs["PRMS"], &params); err != nil {
		return nil, fmt.Errorf("forest: PRMS section: %w", err)
	}

	imp, err := readF64s(secs["IMPT"], "IMPT")
	if err != nil {
		return nil, err
	}
	if len(imp) != dim {
		return nil, fmt.Errorf("forest: IMPT carries %d importances for %d features", len(imp), dim)
	}

	ff := &flatForest{}
	if ff.feature, err = readI32s(secs["NDFT"], "NDFT"); err != nil {
		return nil, err
	}
	if ff.threshold, err = readF64s(secs["NDTH"], "NDTH"); err != nil {
		return nil, err
	}
	if ff.kids, err = readI32s(secs["NDKD"], "NDKD"); err != nil {
		return nil, err
	}
	if ff.prob, err = readF64s(secs["NDPB"], "NDPB"); err != nil {
		return nil, err
	}
	if ff.roots, err = readI32s(secs["ROOT"], "ROOT"); err != nil {
		return nil, err
	}
	if ff.depth, err = readI32s(secs["DPTH"], "DPTH"); err != nil {
		return nil, err
	}
	prior, err := readF64s(secs["PRIR"], "PRIR")
	if err != nil {
		return nil, err
	}
	if len(prior) != 1 {
		return nil, errors.New("forest: PRIR must carry exactly one value")
	}
	ff.prior = prior[0]

	if err := validateFlat(ff, dim); err != nil {
		return nil, err
	}
	ff.quantize()
	return &Forest{features: features, imp: imp, params: params, flat: ff}, nil
}

// parsePackSections walks the section table, bounds-checking every
// length against the remaining buffer before slicing, and returns the
// payloads keyed by tag. Order, completeness and uniqueness are enforced
// against packSections.
func parsePackSections(data []byte) (map[string][]byte, error) {
	if len(data) < 8 {
		return nil, ErrNotPacked
	}
	if string(data[:4]) != packMagic {
		return nil, ErrNotPacked
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	if count != len(packSections) {
		return nil, fmt.Errorf("forest: SFF1 carries %d sections, want %d", count, len(packSections))
	}
	secs := make(map[string][]byte, count)
	off := 8
	for i := 0; i < count; i++ {
		if len(data)-off < 16 {
			return nil, errors.New("forest: section header truncated")
		}
		tag := string(data[off : off+4])
		if tag != packSections[i] {
			return nil, fmt.Errorf("forest: section %d is %q, want %q", i, tag, packSections[i])
		}
		n := binary.LittleEndian.Uint64(data[off+8:])
		off += 16
		if n > uint64(len(data)-off) {
			return nil, fmt.Errorf("forest: section %q claims %d bytes, only %d remain", tag, n, len(data)-off)
		}
		secs[tag] = data[off : off+int(n)]
		off += int(n)
		off = (off + 7) &^ 7
		if off > len(data) {
			return nil, errors.New("forest: section padding overruns buffer")
		}
	}
	return secs, nil
}

func readF64s(b []byte, tag string) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("forest: %s length %d is not a float64 multiple", tag, len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func readI32s(b []byte, tag string) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("forest: %s length %d is not an int32 multiple", tag, len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// validateFlat enforces the structural invariants the traversal kernels
// assume, so a corrupted blob cannot send them out of bounds or into an
// infinite self-chase:
//
//   - the four node arrays agree on length, roots and depth on tree count;
//   - roots are strictly increasing from 0 and trees tile the node space;
//   - within a tree, a node either self-loops (leaf) or points at a child
//     pair strictly after itself and inside the tree — "children after
//     parents" is what guarantees every walk terminates;
//   - split features index into the feature layout;
//   - per-tree depth is sane, and the stored prior matches the arrays.
func validateFlat(ff *flatForest, dim int) error {
	n := len(ff.feature)
	if len(ff.threshold) != n || len(ff.kids) != n || len(ff.prob) != n {
		return errors.New("forest: node sections disagree on node count")
	}
	trees := len(ff.roots)
	if trees == 0 || n == 0 {
		return errors.New("forest: pack contains no trees")
	}
	if len(ff.depth) != trees {
		return errors.New("forest: ROOT and DPTH disagree on tree count")
	}
	for t := 0; t < trees; t++ {
		lo := int(ff.roots[t])
		hi := n
		if t+1 < trees {
			hi = int(ff.roots[t+1])
		}
		if t == 0 && lo != 0 {
			return errors.New("forest: first root is not node 0")
		}
		if lo >= hi || hi > n {
			return fmt.Errorf("forest: tree %d spans [%d,%d) of %d nodes", t, lo, hi, n)
		}
		if d := ff.depth[t]; d < 0 || int(d) > hi-lo {
			return fmt.Errorf("forest: tree %d depth %d out of range for %d nodes", t, d, hi-lo)
		}
		for i := lo; i < hi; i++ {
			k := int(ff.kids[i])
			if k == i {
				continue // leaf self-loop
			}
			// Children must follow their parent (termination) and the
			// adjacent pair must sit inside the tree's span.
			if k <= i || k+1 >= hi {
				return fmt.Errorf("forest: node %d child pair %d,%d escapes tree [%d,%d)", i, k, k+1, lo, hi)
			}
			if f := int(ff.feature[i]); f < 0 || f >= dim {
				return fmt.Errorf("forest: node %d splits on feature %d of %d", i, f, dim)
			}
		}
	}
	var s float64
	for _, r := range ff.roots {
		s += ff.prob[r]
	}
	if want := s / float64(trees); math.Float64bits(want) != math.Float64bits(ff.prior) {
		return errors.New("forest: stored prior disagrees with root probabilities")
	}
	return nil
}
