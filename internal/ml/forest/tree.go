package forest

import (
	"sort"

	"scouts/internal/ml/mlcore"
)

// node is one node of a CART tree. Leaves have feature == -1.
type node struct {
	feature     int     // split feature index, -1 for leaf
	threshold   float64 // go left when x[feature] <= threshold
	left, right int     // child indices into tree.nodes
	prob        float64 // weighted fraction of positive samples reaching here
	weight      float64 // total sample weight reaching here (training time)
}

// tree is a CART classification tree trained with weighted Gini impurity.
type tree struct {
	nodes []node
}

type treeParams struct {
	maxDepth    int
	minLeaf     float64 // minimum total weight in a leaf
	mtry        int     // features considered per split; <=0 means all
	featImp     []float64
	rng         *rng
	minImpurity float64
}

// rng is a tiny splitmix64 generator. The forest trains trees in parallel
// in principle; keeping a local generator per tree avoids math/rand lock
// contention and keeps training fully deterministic given the seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// buildTree grows a tree on the given sample indices of d.
func buildTree(d *mlcore.Dataset, idx []int, p *treeParams) *tree {
	t := &tree{}
	t.grow(d, idx, p, 0)
	return t
}

// grow appends a subtree for idx and returns its root node index.
func (t *tree) grow(d *mlcore.Dataset, idx []int, p *treeParams, depth int) int {
	var wSum, wPos float64
	for _, i := range idx {
		w := d.Samples[i].W()
		wSum += w
		if d.Samples[i].Y {
			wPos += w
		}
	}
	me := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1, prob: safeDiv(wPos, wSum), weight: wSum})

	if depth >= p.maxDepth || wSum <= p.minLeaf || wPos == 0 || wPos == wSum {
		return me
	}
	feat, thr, gain := t.bestSplit(d, idx, p, wSum, wPos)
	if feat < 0 || gain <= p.minImpurity {
		return me
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.Samples[i].X[feat] <= thr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return me
	}
	if p.featImp != nil {
		p.featImp[feat] += gain * wSum
	}
	t.nodes[me].feature = feat
	t.nodes[me].threshold = thr
	l := t.grow(d, leftIdx, p, depth+1)
	t.nodes[me].left = l
	r := t.grow(d, rightIdx, p, depth+1)
	t.nodes[me].right = r
	return me
}

// bestSplit scans a random subset of features (mtry) and returns the split
// with the largest Gini gain.
func (t *tree) bestSplit(d *mlcore.Dataset, idx []int, p *treeParams, wSum, wPos float64) (feat int, thr, gain float64) {
	dim := d.Dim()
	mtry := p.mtry
	if mtry <= 0 || mtry > dim {
		mtry = dim
	}
	// Sample mtry distinct features by partial Fisher-Yates over a scratch
	// permutation.
	perm := make([]int, dim)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < mtry; i++ {
		j := i + p.rng.intn(dim-i)
		perm[i], perm[j] = perm[j], perm[i]
	}

	parentGini := gini(wPos, wSum)
	feat, gain = -1, 0

	type pair struct {
		v float64
		w float64
		y bool
	}
	pairs := make([]pair, 0, len(idx))
	for f := 0; f < mtry; f++ {
		fi := perm[f]
		pairs = pairs[:0]
		for _, i := range idx {
			s := d.Samples[i]
			pairs = append(pairs, pair{v: s.X[fi], w: s.W(), y: s.Y})
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		var lw, lp float64
		for k := 0; k < len(pairs)-1; k++ {
			lw += pairs[k].w
			if pairs[k].y {
				lp += pairs[k].w
			}
			if pairs[k].v == pairs[k+1].v {
				continue // cannot split between equal values
			}
			rw, rp := wSum-lw, wPos-lp
			if lw < p.minLeaf || rw < p.minLeaf {
				continue
			}
			g := parentGini - (lw/wSum)*gini(lp, lw) - (rw/wSum)*gini(rp, rw)
			if g > gain {
				gain = g
				feat = fi
				thr = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	return feat, thr, gain
}

func gini(pos, total float64) float64 {
	if total <= 0 {
		return 0
	}
	p := pos / total
	return 2 * p * (1 - p)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// predict returns the positive-class probability at the leaf x lands in.
func (t *tree) predict(x []float64) float64 {
	n := 0
	for {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return nd.prob
		}
		if x[nd.feature] <= nd.threshold {
			n = nd.left
		} else {
			n = nd.right
		}
	}
}

// contributions implements the feature-contribution decomposition of
// Palczewska et al. ("Interpreting random forest models using a feature
// contribution method", 2013): prediction = root prior + sum over path of
// (child mean - parent mean), attributed to the split feature. It adds the
// per-feature contributions for x into out and returns the root prior.
func (t *tree) contributions(x []float64, out []float64) float64 {
	n := 0
	prior := t.nodes[0].prob
	for {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return prior
		}
		var next int
		if x[nd.feature] <= nd.threshold {
			next = nd.left
		} else {
			next = nd.right
		}
		out[nd.feature] += t.nodes[next].prob - nd.prob
		n = next
	}
}

// depth returns the maximum depth of the tree (root = 0). Used in tests.
func (t *tree) depth() int {
	var walk func(n, d int) int
	walk = func(n, d int) int {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return d
		}
		return max(walk(nd.left, d+1), walk(nd.right, d+1))
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}
