package forest

import (
	"scouts/internal/ml/mlcore"
)

// node is one node of a CART tree. Leaves have feature == -1.
type node struct {
	feature     int     // split feature index, -1 for leaf
	threshold   float64 // go left when x[feature] <= threshold
	left, right int     // child indices into tree.nodes
	prob        float64 // weighted fraction of positive samples reaching here
	weight      float64 // total sample weight reaching here (training time)
}

// tree is a CART classification tree trained with weighted Gini impurity.
type tree struct {
	nodes []node
}

type treeParams struct {
	maxDepth    int
	minLeaf     float64 // minimum total weight in a leaf
	mtry        int     // features considered per split; <=0 means all
	featImp     []float64
	rng         *rng
	minImpurity float64
}

// rng is a tiny splitmix64 generator. The forest trains trees in parallel
// in principle; keeping a local generator per tree avoids math/rand lock
// contention and keeps training fully deterministic given the seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// splitCtx is the per-tree working state of the presorted split kernel.
// All buffers are sized once per (tree, dataset) and reused for every node,
// so bestSplit and the node partition run with zero allocations. A splitCtx
// is reset per tree and may be pooled across trees: reset overwrites every
// cell the kernel later reads.
//
// The kernel maintains, for the node currently being grown, the classic
// presorted-columns invariant: sorted[f*n:(f+1)*n] holds the tree's sample
// rows arranged so that each node's range [lo, hi) is sorted ascending by
// feature f (ties in base-order position), and idx[lo:hi] holds the same
// rows in insertion order — the exact order the reference kernel's
// leftIdx/rightIdx slices would carry, which keeps every weight-sum
// accumulation bit-identical to it.
type splitCtx struct {
	cols    *mlcore.Columns
	w       []float64 // cols.Weights()
	y       []bool    // cols.Labels()
	uniform bool      // cols.Uniform(): integer counting replaces weight sums
	n       int       // rows per tree (== dataset length; bootstrap resamples)

	sorted []int32 // dim*n flat presorted rows, feature f at [f*n, (f+1)*n)
	idx    []int32 // node rows in insertion order
	tmp    []int32 // spill buffer for the stable partitions
	counts []int32 // per-dataset-row multiplicity scratch (zeroed after use)
	side   []uint8 // per-dataset-row split side of the current node (1=left)
	perm   []int   // feature-sampling scratch
}

func newSplitCtx(cols *mlcore.Columns) *splitCtx {
	dim, n := cols.Dim(), cols.Len()
	return &splitCtx{
		cols:    cols,
		w:       cols.Weights(),
		y:       cols.Labels(),
		uniform: cols.Uniform(),
		n:       n,
		sorted:  make([]int32, dim*n+1), // +1: reset's expansion may overhang one slot
		idx:     make([]int32, n),
		tmp:     make([]int32, n),
		counts:  make([]int32, n),
		side:    make([]uint8, n),
		perm:    make([]int, dim),
	}
}

// rows returns feature f's presorted row arrangement.
func (c *splitCtx) rows(f int) []int32 {
	return c.sorted[f*c.n : (f+1)*c.n]
}

// reset loads one tree's sample multiset (the bootstrap draw) into the
// context: idx keeps the draw order, and every feature's presorted
// arrangement is rebuilt in O(dim · n) by expanding the shared base order
// with the draw multiplicities (duplicates share a value, so they stay
// adjacent and the arrangement stays sorted).
func (c *splitCtx) reset(idx []int) {
	for i, row := range idx {
		c.idx[i] = int32(row)
		c.counts[row]++
	}
	for f := 0; f < c.cols.Dim(); f++ {
		// One slot beyond the feature's range: the unconditional write
		// below may overhang by one, into a cell the next feature's own
		// expansion rewrites (sorted carries a spare slot for the last).
		dst := c.sorted[f*c.n : (f+1)*c.n+1]
		pos := 0
		for _, row := range c.cols.Order(f) {
			// Write once unconditionally and advance by the multiplicity:
			// counts of 0 and 1 (three quarters of a bootstrap draw) take
			// no data-dependent branch at all.
			n := int(c.counts[row])
			dst[pos] = row
			if n > 1 {
				for k := 1; k < n; k++ {
					dst[pos+k] = row
				}
			}
			pos += n
		}
	}
	for _, row := range idx {
		c.counts[row] = 0
	}
}

// buildTree grows a tree over the sample rows loaded into ctx.
func buildTree(ctx *splitCtx, p *treeParams) *tree {
	t := &tree{}
	wSum, wPos := ctx.nodeSums(0, ctx.n)
	t.grow(ctx, p, 0, ctx.n, 0, wSum, wPos)
	return t
}

// nodeSums accumulates total and positive weight over idx[lo:hi] in
// insertion order — the reference kernel's loop exactly. With uniform
// weights it counts instead: float64 sums of 1.0 are exact integers far
// beyond any dataset size, so the counting path is bit-identical to the
// accumulating one.
func (c *splitCtx) nodeSums(lo, hi int) (wSum, wPos float64) {
	if c.uniform {
		pos := 0
		for _, row := range c.idx[lo:hi] {
			if c.y[row] {
				pos++
			}
		}
		return float64(hi - lo), float64(pos)
	}
	for _, row := range c.idx[lo:hi] {
		w := c.w[row]
		wSum += w
		if c.y[row] {
			wPos += w
		}
	}
	return wSum, wPos
}

// isLeaf mirrors grow's stopping rule so a parent can tell whether a child
// will even attempt a split.
func isLeaf(p *treeParams, depth int, wSum, wPos float64) bool {
	return depth >= p.maxDepth || wSum <= p.minLeaf || wPos == 0 || wPos == wSum
}

// grow appends a subtree for the node range [lo, hi) — whose weight sums
// the caller already accumulated — and returns its root node index.
func (t *tree) grow(ctx *splitCtx, p *treeParams, lo, hi, depth int, wSum, wPos float64) int {
	me := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1, prob: safeDiv(wPos, wSum), weight: wSum})

	if isLeaf(p, depth, wSum, wPos) {
		return me
	}
	feat, thr, gain := bestSplit(ctx, p, lo, hi, wSum, wPos)
	if feat < 0 || gain <= p.minImpurity {
		return me
	}
	mid := ctx.partitionIdx(lo, hi, feat, thr)
	if mid == lo || mid == hi {
		return me
	}
	// The children's sums decide whether they can split at all. A certain
	// leaf's presorted feature ranges will never be read, so the per-feature
	// partition only produces the sides that a splittable child will scan:
	// nothing when both children are leaves, a one-sided compaction when one
	// is, and the full stable partition only when both will split.
	lSum, lPos := ctx.nodeSums(lo, mid)
	rSum, rPos := ctx.nodeSums(mid, hi)
	needL := !isLeaf(p, depth+1, lSum, lPos)
	needR := !isLeaf(p, depth+1, rSum, rPos)
	if needL || needR {
		ctx.partitionFeatures(lo, hi, mid, needL, needR)
	}
	if p.featImp != nil {
		p.featImp[feat] += gain * wSum
	}
	t.nodes[me].feature = feat
	t.nodes[me].threshold = thr
	l := t.grow(ctx, p, lo, mid, depth+1, lSum, lPos)
	t.nodes[me].left = l
	r := t.grow(ctx, p, mid, hi, depth+1, rSum, rPos)
	t.nodes[me].right = r
	return me
}

// bestSplit scans a random subset of features (mtry) and returns the split
// with the largest Gini gain. Each candidate feature is scanned in
// presorted order — no sorting, no allocation — so the node costs
// O(mtry · n) instead of O(mtry · n log n). The scan replays the reference
// kernel's arithmetic exactly: the same ascending-value visit order, the
// same equal-value-run skip, the same gain expression, and the same
// strictly-greater tie-break, so both kernels pick identical splits (see
// DESIGN.md §7 for the tie-handling argument).
//
//scout:hotpath
func bestSplit(ctx *splitCtx, p *treeParams, lo, hi int, wSum, wPos float64) (feat int, thr, gain float64) {
	dim := ctx.cols.Dim()
	mtry := p.mtry
	if mtry <= 0 || mtry > dim {
		mtry = dim
	}
	// Sample mtry distinct features by partial Fisher-Yates over the scratch
	// permutation (same rng consumption as the reference kernel).
	perm := ctx.perm
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < mtry; i++ {
		j := i + p.rng.intn(dim-i)
		perm[i], perm[j] = perm[j], perm[i]
	}

	parentGini := gini(wPos, wSum)
	feat, gain = -1, 0

	for f := 0; f < mtry; f++ {
		fi := perm[f]
		col := ctx.cols.Col(fi)
		ord := ctx.rows(fi)[lo:hi]
		if ctx.uniform {
			// Counting fast path: lw/lp are exact integers either way (see
			// nodeSums), so the gains match the accumulating loop bit for
			// bit while skipping the weight loads.
			lc, lpc := 0, 0
			for k := 0; k < len(ord)-1; k++ {
				row := ord[k]
				lc++
				if ctx.y[row] {
					lpc++
				}
				v, next := col[row], col[ord[k+1]]
				if v == next {
					continue // cannot split between equal values
				}
				lw, lp := float64(lc), float64(lpc)
				rw, rp := wSum-lw, wPos-lp
				if lw < p.minLeaf || rw < p.minLeaf {
					continue
				}
				g := parentGini - (lw/wSum)*gini(lp, lw) - (rw/wSum)*gini(rp, rw)
				if g > gain {
					gain = g
					feat = fi
					thr = (v + next) / 2
				}
			}
			continue
		}
		var lw, lp float64
		for k := 0; k < len(ord)-1; k++ {
			row := ord[k]
			w := ctx.w[row]
			lw += w
			if ctx.y[row] {
				lp += w
			}
			v, next := col[row], col[ord[k+1]]
			if v == next {
				continue // cannot split between equal values
			}
			rw, rp := wSum-lw, wPos-lp
			if lw < p.minLeaf || rw < p.minLeaf {
				continue
			}
			g := parentGini - (lw/wSum)*gini(lp, lw) - (rw/wSum)*gini(rp, rw)
			if g > gain {
				gain = g
				feat = fi
				thr = (v + next) / 2
			}
		}
	}
	return feat, thr, gain
}

// partitionIdx marks every row of the node [lo, hi) with its split side
// and stably partitions idx, returning the first index of the right child.
// Stability makes the children's idx order match the reference kernel's
// filtered leftIdx/rightIdx order. The side marks stay valid for a
// subsequent partitionFeatures over the same node.
func (c *splitCtx) partitionIdx(lo, hi, feat int, thr float64) int {
	col := c.cols.Col(feat)
	for _, row := range c.idx[lo:hi] {
		if col[row] <= thr {
			c.side[row] = 1
		} else {
			c.side[row] = 0
		}
	}
	return lo + c.stablePartition(c.idx[lo:hi])
}

// partitionFeatures partitions the node range [lo, hi) of every feature's
// presorted arrangement by the side marks partitionIdx left behind, with
// mid the first right-child index. Stability keeps each child's
// arrangement sorted. When only one child will ever scan its range
// (needL/needR), the other side's cells are left as garbage and the
// partition degenerates to a one-sided compaction with no spill buffer.
func (c *splitCtx) partitionFeatures(lo, hi, mid int, needL, needR bool) {
	for f := 0; f < c.cols.Dim(); f++ {
		seg := c.rows(f)[lo:hi]
		switch {
		case needL && needR:
			c.stablePartition(seg)
		case needL:
			c.compactLeft(seg)
		default:
			c.compactRight(seg, mid-lo)
		}
	}
}

// compactLeft moves rows marked side=1 to the front of seg in order,
// leaving the tail unspecified. The write cursor never passes the read
// cursor, so the move is in place.
func (c *splitCtx) compactLeft(seg []int32) {
	w := 0
	for _, row := range seg {
		seg[w] = row
		w += int(c.side[row])
	}
}

// compactRight moves rows marked side=0 to seg[mid:] in order, leaving the
// front unspecified. It scans backward with a speculative write at w-1
// that only "commits" when the decrement lands on a right row — the same
// branchless shape as compactLeft, mirrored. In place: w >= r+1 throughout,
// so writes never touch an unread cell; and w never drops below mid >= 1
// (the caller guarantees a non-empty left child), so w-1 stays in range.
func (c *splitCtx) compactRight(seg []int32, mid int) {
	w := len(seg)
	for r := len(seg) - 1; r >= 0; r-- {
		row := seg[r]
		seg[w-1] = row
		w -= 1 - int(c.side[row])
	}
}

// stablePartition compacts rows marked side=1 to the front of seg in
// order, spills the rest to the tmp buffer, copies them back after, and
// returns the left count. Both cursors advance unconditionally — the byte
// lookup replaces a data-dependent branch the CPU cannot predict on a
// ~50/50 split.
func (c *splitCtx) stablePartition(seg []int32) int {
	tmp := c.tmp
	w, s := 0, 0
	for _, row := range seg {
		left := int(c.side[row])
		seg[w] = row
		tmp[s] = row
		w += left
		s += 1 - left
	}
	copy(seg[w:], tmp[:s])
	return w
}

func gini(pos, total float64) float64 {
	if total <= 0 {
		return 0
	}
	p := pos / total
	return 2 * p * (1 - p)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// predict returns the positive-class probability at the leaf x lands in.
func (t *tree) predict(x []float64) float64 {
	n := 0
	for {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return nd.prob
		}
		if x[nd.feature] <= nd.threshold {
			n = nd.left
		} else {
			n = nd.right
		}
	}
}

// contributions implements the feature-contribution decomposition of
// Palczewska et al. ("Interpreting random forest models using a feature
// contribution method", 2013): prediction = root prior + sum over path of
// (child mean - parent mean), attributed to the split feature. It adds the
// per-feature contributions for x into out and returns the root prior.
func (t *tree) contributions(x []float64, out []float64) float64 {
	n := 0
	prior := t.nodes[0].prob
	for {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return prior
		}
		var next int
		if x[nd.feature] <= nd.threshold {
			next = nd.left
		} else {
			next = nd.right
		}
		out[nd.feature] += t.nodes[next].prob - nd.prob
		n = next
	}
}

// depth returns the maximum depth of the tree (root = 0). Used in tests.
func (t *tree) depth() int {
	var walk func(n, d int) int
	walk = func(n, d int) int {
		nd := t.nodes[n]
		if nd.feature < 0 {
			return d
		}
		return max(walk(nd.left, d+1), walk(nd.right, d+1))
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}
