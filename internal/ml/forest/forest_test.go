package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scouts/internal/metrics"
	"scouts/internal/ml/mlcore"
)

// xorDataset is a non-linearly-separable problem a single threshold cannot
// solve but a depth-2 tree can.
func xorDataset(n int, noise float64, rng *rand.Rand) *mlcore.Dataset {
	d := mlcore.NewDataset([]string{"x0", "x1", "junk"})
	for i := 0; i < n; i++ {
		a := rng.Float64() < 0.5
		b := rng.Float64() < 0.5
		x0, x1 := 0.0, 0.0
		if a {
			x0 = 1
		}
		if b {
			x1 = 1
		}
		d.MustAdd(mlcore.Sample{
			X: []float64{x0 + rng.NormFloat64()*noise, x1 + rng.NormFloat64()*noise, rng.NormFloat64()},
			Y: a != b,
		})
	}
	return d
}

func TestForestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := xorDataset(600, 0.1, rng)
	test := xorDataset(300, 0.1, rng)
	f, err := Train(train, Params{NumTrees: 40, MaxDepth: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for _, s := range test.Samples {
		pred, conf := f.Predict(s.X)
		if conf < 0.5 || conf > 1 {
			t.Fatalf("confidence %v out of range", conf)
		}
		c.Add(pred, s.Y)
	}
	if c.F1() < 0.95 {
		t.Fatalf("forest should solve noisy XOR, F1 = %v (%v)", c.F1(), c.String())
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	d := mlcore.NewDataset([]string{"a"})
	if _, err := Train(d, Params{}); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
}

func TestSingleClassDataset(t *testing.T) {
	d := mlcore.NewDataset([]string{"a"})
	for i := 0; i < 20; i++ {
		d.MustAdd(mlcore.Sample{X: []float64{float64(i)}, Y: true})
	}
	f, err := Train(d, Params{NumTrees: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pred, conf := f.Predict([]float64{3})
	if !pred || conf != 1 {
		t.Fatalf("single-class forest should predict that class with conf 1, got %v %v", pred, conf)
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := xorDataset(200, 0.1, rand.New(rand.NewSource(3)))
	f1, _ := Train(d, Params{NumTrees: 10, Seed: 42})
	f2, _ := Train(d, Params{NumTrees: 10, Seed: 42})
	probe := []float64{0.9, 0.1, 0}
	if f1.PredictProb(probe) != f2.PredictProb(probe) {
		t.Fatal("same seed must give identical forests")
	}
	f3, _ := Train(d, Params{NumTrees: 10, Seed: 43})
	// Different seeds will almost surely differ somewhere over many probes.
	diff := false
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50 && !diff; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.NormFloat64()}
		diff = f1.PredictProb(x) != f3.PredictProb(x)
	}
	if !diff {
		t.Log("warning: different seeds produced identical predictions on all probes")
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := mlcore.NewDataset([]string{"signal", "noise1", "noise2"})
	for i := 0; i < 500; i++ {
		y := rng.Float64() < 0.5
		sig := 0.0
		if y {
			sig = 1
		}
		d.MustAdd(mlcore.Sample{
			X: []float64{sig + rng.NormFloat64()*0.2, rng.NormFloat64(), rng.NormFloat64()},
			Y: y,
		})
	}
	f, err := Train(d, Params{NumTrees: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	if imp[0] < 0.7 {
		t.Fatalf("signal importance %v should dominate (noise: %v, %v)", imp[0], imp[1], imp[2])
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance should be normalized, sum = %v", sum)
	}
}

func TestExplainDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := xorDataset(400, 0.05, rng)
	f, err := Train(d, Params{NumTrees: 25, MaxDepth: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64() * 1.2, rng.Float64() * 1.2, rng.NormFloat64()}
		prior, contribs := f.Explain(x)
		sum := prior
		for _, c := range contribs {
			sum += c.Value
		}
		if math.Abs(sum-f.PredictProb(x)) > 1e-9 {
			t.Fatalf("prior + contributions = %v, prediction = %v", sum, f.PredictProb(x))
		}
	}
	// Contributions must come sorted by |value| descending.
	_, contribs := f.Explain([]float64{1, 0, 0})
	for i := 1; i < len(contribs); i++ {
		if math.Abs(contribs[i].Value) > math.Abs(contribs[i-1].Value)+1e-12 {
			t.Fatal("contributions not sorted by magnitude")
		}
	}
}

func TestWeightedTrainingShiftsDecision(t *testing.T) {
	// Two overlapping classes; up-weighting the positive class should pull
	// the decision boundary to cover more of the overlap.
	build := func(posW float64) *Forest {
		rng := rand.New(rand.NewSource(9))
		d := mlcore.NewDataset([]string{"x"})
		for i := 0; i < 400; i++ {
			y := i%2 == 0
			mu := 0.0
			w := 1.0
			if y {
				mu = 1
				w = posW
			}
			d.MustAdd(mlcore.Sample{X: []float64{mu + rng.NormFloat64()}, Y: y, Weight: w})
		}
		f, err := Train(d, Params{NumTrees: 20, MaxDepth: 4, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	plain := build(1)
	boosted := build(8)
	// Probe the ambiguous midpoint: the boosted forest should lean positive.
	if boosted.PredictProb([]float64{0.5}) <= plain.PredictProb([]float64{0.5}) {
		t.Fatalf("boosting positives should raise P(+) at the midpoint: plain=%v boosted=%v",
			plain.PredictProb([]float64{0.5}), boosted.PredictProb([]float64{0.5}))
	}
}

func TestMaxDepthRespected(t *testing.T) {
	d := xorDataset(300, 0.3, rand.New(rand.NewSource(11)))
	p := Params{NumTrees: 5, MaxDepth: 3, Seed: 12}
	f, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range f.trees {
		if dep := tr.depth(); dep > 3 {
			t.Fatalf("tree %d depth %d > max 3", i, dep)
		}
	}
}

// Property: probabilities are always within [0, 1] and Predict confidence
// within [0.5, 1] for arbitrary inputs, including out-of-range values.
func TestPredictionBoundsProperty(t *testing.T) {
	d := xorDataset(200, 0.1, rand.New(rand.NewSource(13)))
	f, err := Train(d, Params{NumTrees: 15, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return v
		}
		x := []float64{clamp(a), clamp(b), clamp(c)}
		p := f.PredictProb(x)
		if p < 0 || p > 1 {
			return false
		}
		_, conf := f.Predict(x)
		return conf >= 0.5 && conf <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainerInterface(t *testing.T) {
	tr := Trainer(Params{NumTrees: 5, Seed: 15})
	d := xorDataset(100, 0.1, rand.New(rand.NewSource(16)))
	clf, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, conf := clf.Predict([]float64{1, 0, 0}); conf < 0.5 {
		t.Fatal("trainer produced unusable classifier")
	}
}
