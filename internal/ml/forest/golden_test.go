package forest_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"scouts/internal/experiments"
	"scouts/internal/ml/forest"
)

// TestGoldenEquivalenceOnLabData is the PR's golden gate: on a realistic
// fixed-seed lab training set (real feature distributions — heavy zero
// runs, summary-statistic columns), the presorted split kernel and the
// retained seed kernel serialize to byte-identical snapshots, at one worker
// and at eight. A snapshot captures every split feature, threshold, leaf
// probability and node weight, so byte equality means the optimization
// changed nothing but speed.
func TestGoldenEquivalenceOnLabData(t *testing.T) {
	if testing.Short() {
		t.Skip("lab generation is slow")
	}
	lab, err := experiments.NewLab(experiments.LabParams{Days: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := lab.TrainSet()
	for _, workers := range []int{1, 8} {
		p := forest.Params{NumTrees: 30, MaxDepth: 14, Seed: 20200810, Workers: workers}
		ref := p
		ref.ReferenceKernel = true
		presorted, err := forest.Train(d, p)
		if err != nil {
			t.Fatal(err)
		}
		seed, err := forest.Train(d, ref)
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(presorted)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("workers=%d: presorted kernel snapshot (%d bytes) differs from seed kernel (%d bytes)",
				workers, len(a), len(b))
		}
	}
}
