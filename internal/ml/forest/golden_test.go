package forest_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"scouts/internal/experiments"
	"scouts/internal/ml/forest"
)

// TestGoldenEquivalenceOnLabData is the PR's golden gate: on a realistic
// fixed-seed lab training set (real feature distributions — heavy zero
// runs, summary-statistic columns), the presorted split kernel and the
// retained seed kernel serialize to byte-identical snapshots, at one worker
// and at eight. A snapshot captures every split feature, threshold, leaf
// probability and node weight, so byte equality means the optimization
// changed nothing but speed.
func TestGoldenEquivalenceOnLabData(t *testing.T) {
	if testing.Short() {
		t.Skip("lab generation is slow")
	}
	lab, err := experiments.NewLab(experiments.LabParams{Days: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := lab.TrainSet()
	for _, workers := range []int{1, 8} {
		p := forest.Params{NumTrees: 30, MaxDepth: 14, Seed: 20200810, Workers: workers}
		ref := p
		ref.ReferenceKernel = true
		presorted, err := forest.Train(d, p)
		if err != nil {
			t.Fatal(err)
		}
		seed, err := forest.Train(d, ref)
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(presorted)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("workers=%d: presorted kernel snapshot (%d bytes) differs from seed kernel (%d bytes)",
				workers, len(a), len(b))
		}
	}
}

// TestGoldenQuantToleranceOnLabData is the quantized kernels' golden
// gate on real lab data (the in-package form runs on synthetic xor
// probes): over the full lab test matrix, both blocked float32 kernels
// stay within the documented |Δp| <= 1e-6 of the exact f64 kernel.
// Thresholds round up to the nearest float32, so a vector can only land
// in a different leaf when a feature value falls inside the one-ulp gap
// — and the probe log reports how close the sweep actually came.
func TestGoldenQuantToleranceOnLabData(t *testing.T) {
	if testing.Short() {
		t.Skip("lab generation is slow")
	}
	lab, err := experiments.NewLab(experiments.LabParams{Days: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := forest.Train(lab.TrainSet(), forest.Params{NumTrees: 30, MaxDepth: 14, Seed: 20200810, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	exact := f.PredictProbBatch(lab.TestX, nil)
	defer f.SetBatchKernel(forest.KernelExact)
	for _, k := range []forest.BatchKernel{forest.KernelQuant8, forest.KernelQuant16} {
		f.SetBatchKernel(k)
		quant := f.PredictProbBatch(lab.TestX, nil)
		var worst float64
		for i := range exact {
			if d := math.Abs(exact[i] - quant[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-6 {
			t.Fatalf("kernel %v: max |Δp| = %g over lab matrix, tolerance is 1e-6", k, worst)
		}
		t.Logf("kernel %v: max |Δp| = %g over %d lab vectors", k, worst, len(exact))
	}
}

// TestGoldenFlatInferenceOnLabData is this PR's golden gate: on the real
// lab matrix, the flat SoA inference kernel answers bit-identical
// predictions AND explanations to the retained pointer traversal, for
// forests trained at one worker and at eight (training is bit-identical
// across worker counts, so this also re-checks that the flat view derived
// from each is the same function).
func TestGoldenFlatInferenceOnLabData(t *testing.T) {
	if testing.Short() {
		t.Skip("lab generation is slow")
	}
	lab, err := experiments.NewLab(experiments.LabParams{Days: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := lab.TrainSet()
	for _, workers := range []int{1, 8} {
		f, err := forest.Train(d, forest.Params{NumTrees: 30, MaxDepth: 14, Seed: 20200810, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		probs := f.PredictProbBatch(lab.TestX, nil)
		for i, x := range lab.TestX {
			flat := f.PredictProb(x)
			if ptr := f.PredictProbPointer(x); flat != ptr {
				t.Fatalf("workers=%d vector %d: flat %v != pointer %v", workers, i, flat, ptr)
			}
			if probs[i] != flat {
				t.Fatalf("workers=%d vector %d: batch %v != single %v", workers, i, probs[i], flat)
			}
			fp, fc := f.Explain(x)
			pp, pc := f.ExplainPointer(x)
			if fp != pp || len(fc) != len(pc) {
				t.Fatalf("workers=%d vector %d: explanations diverge (prior %v vs %v, %d vs %d contribs)",
					workers, i, fp, pp, len(fc), len(pc))
			}
			for j := range fc {
				if fc[j] != pc[j] {
					t.Fatalf("workers=%d vector %d contribution %d: %+v != %+v", workers, i, j, fc[j], pc[j])
				}
			}
		}
	}
}
