package forest

import "math"

// This file is the quantized, cache-blocked batch inference path. The
// exact kernel (flat.go) reads three parallel arrays per traversal step —
// an int32 feature, a float64 threshold and an int32 child index — which
// is three cache lines of traffic for 16 useful bytes. The quantized view
// narrows the threshold to float32 and packs all three into one 12-byte
// record (qnode), so a step touches a single line, and partitions the
// trees into contiguous blocks small enough to stay cache-resident while
// the whole batch streams through them.
//
// Tolerance contract (DESIGN.md §12): thresholds are rounded UP to the
// nearest float32 — the smallest t32 with float64(t32) >= t — so every
// sample the f64 kernel sends left (x <= t) still goes left. Only inputs
// landing in the half-open gap (t, t32] can flip, and the gap is one
// float32 ulp wide (relative ~1e-7); on real-valued telemetry features
// the measure of that set is effectively zero, and the goldens pin
// max |Δp| <= 1e-6 against the f64 kernel on the lab matrix. Leaf
// probabilities stay float64, so when no split flips, the only remaining
// difference is block-boundary summation order (~1e-16). NaN inputs are
// prescreened to the exact single-vector kernel, exactly as the f64
// batch kernel does.

// qnode is one quantized traversal record: everything a step reads, in
// 12 bytes. Leaves keep the self-loop encoding (kids == own index,
// threshold +Inf) so the lock-step kernels need no per-lane done check.
type qnode struct {
	feature   int32
	threshold float32
	kids      int32
}

// qblock is a contiguous tree range [lo, hi) whose nodes fit the cache
// budget; the blocked kernels run every batch group through one block
// before touching the next, so a block's lines are loaded once per batch
// instead of once per lane group.
type qblock struct {
	lo, hi int // tree index range
}

// quantForest is the quantized mirror of a flatForest's traversal arrays.
type quantForest struct {
	nodes  []qnode
	blocks []qblock
}

// qBlockNodes bounds the nodes per tree block. 16k qnodes is ~192 KiB —
// comfortably inside a shared L2 alongside the leaf probabilities the
// block's traversals finish on — while big enough that tiny forests stay
// a single block and pay no blocking overhead at all.
const qBlockNodes = 16 << 10

// quantizeThreshold rounds t up to the nearest float32: the smallest t32
// with float64(t32) >= t, so x <= t still implies x <= t32 and no sample
// the exact kernel sends left can flip right. +Inf (leaves) maps to +Inf;
// a finite threshold beyond float32 range saturates to +Inf, which keeps
// the left-preserving guarantee (everything goes left).
func quantizeThreshold(t float64) float32 {
	q := float32(t)
	if float64(q) < t {
		q = math.Nextafter32(q, float32(math.Inf(1)))
	}
	return q
}

// quantize derives the qnode mirror and the tree blocking from the f64
// arrays. It is a linear re-encode of data already in its final form —
// no tree walk, no renumbering — so both the Train path and the binary
// pack loader run it without violating the zero-re-derivation contract.
func (ff *flatForest) quantize() {
	ff.quant.nodes = make([]qnode, len(ff.feature))
	for i := range ff.quant.nodes {
		ff.quant.nodes[i] = qnode{
			feature:   ff.feature[i],
			threshold: quantizeThreshold(ff.threshold[i]),
			kids:      ff.kids[i],
		}
	}
	ff.quant.blocks = ff.quant.blocks[:0]
	lo := 0
	nodes := 0
	for t := range ff.roots {
		end := len(ff.feature)
		if t+1 < len(ff.roots) {
			end = int(ff.roots[t+1])
		}
		size := end - int(ff.roots[t])
		if nodes > 0 && nodes+size > qBlockNodes {
			ff.quant.blocks = append(ff.quant.blocks, qblock{lo: lo, hi: t})
			lo, nodes = t, 0
		}
		nodes += size
	}
	ff.quant.blocks = append(ff.quant.blocks, qblock{lo: lo, hi: len(ff.roots)})
}

// predictTreeQ walks one tree through the quantized records to its leaf
// probability — the single-vector form of the blocked kernels, used for
// their tail lanes so a batch is quantized uniformly.
func (ff *flatForest) predictTreeQ(root int32, x []float64) float64 {
	qn := ff.quant.nodes
	n := root
	for {
		q := qn[n]
		if q.kids == n {
			return ff.prob[n]
		}
		k := q.kids
		if x[q.feature] > float64(q.threshold) {
			k++
		}
		n = k
	}
}

// predictBatchQ8 is the 8-lane quantized, tree-blocked batch kernel:
// same lock-step structure as the exact kernel, one 12-byte record per
// step instead of three array loads, and trees visited block by block so
// each block's lines are fetched once per batch. Accumulation stays
// float64 and tree-ordered within a vector (blocks are contiguous tree
// ranges), so the only summation-order difference from the exact kernel
// is at block boundaries.
//
//scout:hotpath
func (ff *flatForest) predictBatchQ8(xs [][]float64, out []float64) {
	qn, prob, roots, depth := ff.quant.nodes, ff.prob, ff.roots, ff.depth
	for _, blk := range ff.quant.blocks {
		i := 0
		for ; i+8 <= len(xs); i += 8 {
			x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
			x4, x5, x6, x7 := xs[i+4], xs[i+5], xs[i+6], xs[i+7]
			if hasNaN(x0) || hasNaN(x1) || hasNaN(x2) || hasNaN(x3) ||
				hasNaN(x4) || hasNaN(x5) || hasNaN(x6) || hasNaN(x7) {
				// NaN routing is the exact kernel's contract; score these
				// lanes unquantized for this block's trees.
				for j := i; j < i+8; j++ {
					for t := blk.lo; t < blk.hi; t++ {
						out[j] += ff.predictTree(roots[t], xs[j])
					}
				}
				continue
			}
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for t := blk.lo; t < blk.hi; t++ {
				r := roots[t]
				n0, n1, n2, n3 := r, r, r, r
				n4, n5, n6, n7 := r, r, r, r
				for d := depth[t]; d > 0; d-- {
					q0, q1, q2, q3 := qn[n0], qn[n1], qn[n2], qn[n3]
					q4, q5, q6, q7 := qn[n4], qn[n5], qn[n6], qn[n7]
					var b0, b1, b2, b3, b4, b5, b6, b7 int32
					if x0[q0.feature] > float64(q0.threshold) {
						b0 = 1
					}
					if x1[q1.feature] > float64(q1.threshold) {
						b1 = 1
					}
					if x2[q2.feature] > float64(q2.threshold) {
						b2 = 1
					}
					if x3[q3.feature] > float64(q3.threshold) {
						b3 = 1
					}
					if x4[q4.feature] > float64(q4.threshold) {
						b4 = 1
					}
					if x5[q5.feature] > float64(q5.threshold) {
						b5 = 1
					}
					if x6[q6.feature] > float64(q6.threshold) {
						b6 = 1
					}
					if x7[q7.feature] > float64(q7.threshold) {
						b7 = 1
					}
					m0 := q0.kids + b0
					m1 := q1.kids + b1
					m2 := q2.kids + b2
					m3 := q3.kids + b3
					m4 := q4.kids + b4
					m5 := q5.kids + b5
					m6 := q6.kids + b6
					m7 := q7.kids + b7
					// Children renumber strictly after their parent, so an
					// unmoved lane is a leaf self-loop; once all eight lanes
					// park, the remaining depth is pure no-op steps the
					// exact kernel still walks. Skip them.
					if (m0-n0)|(m1-n1)|(m2-n2)|(m3-n3)|
						(m4-n4)|(m5-n5)|(m6-n6)|(m7-n7) == 0 {
						break
					}
					n0, n1, n2, n3 = m0, m1, m2, m3
					n4, n5, n6, n7 = m4, m5, m6, m7
				}
				s0 += prob[n0]
				s1 += prob[n1]
				s2 += prob[n2]
				s3 += prob[n3]
				s4 += prob[n4]
				s5 += prob[n5]
				s6 += prob[n6]
				s7 += prob[n7]
			}
			out[i] += s0
			out[i+1] += s1
			out[i+2] += s2
			out[i+3] += s3
			out[i+4] += s4
			out[i+5] += s5
			out[i+6] += s6
			out[i+7] += s7
		}
		for ; i < len(xs); i++ {
			if hasNaN(xs[i]) {
				for t := blk.lo; t < blk.hi; t++ {
					out[i] += ff.predictTree(roots[t], xs[i])
				}
				continue
			}
			for t := blk.lo; t < blk.hi; t++ {
				out[i] += ff.predictTreeQ(roots[t], xs[i])
			}
		}
	}
	count := float64(len(roots))
	for j := range out {
		out[j] /= count
	}
}

// predictBatchQ16 is the 16-lane variant of predictBatchQ8: twice the
// independent pointer chases in flight per tree pass, for cores whose
// out-of-order window is not yet saturated at 8. Which width wins is
// machine-dependent — BENCH_PR7.json carries both series and the serving
// default follows the winner.
//
//scout:hotpath
func (ff *flatForest) predictBatchQ16(xs [][]float64, out []float64) {
	qn, prob, roots, depth := ff.quant.nodes, ff.prob, ff.roots, ff.depth
	var n [16]int32
	var q [16]qnode
	for _, blk := range ff.quant.blocks {
		i := 0
	groups:
		for ; i+16 <= len(xs); i += 16 {
			for j := i; j < i+16; j++ {
				if hasNaN(xs[j]) {
					for k := i; k < i+16; k++ {
						for t := blk.lo; t < blk.hi; t++ {
							out[k] += ff.predictTree(roots[t], xs[k])
						}
					}
					continue groups
				}
			}
			var s [16]float64
			for t := blk.lo; t < blk.hi; t++ {
				r := roots[t]
				for l := range n {
					n[l] = r
				}
				for d := depth[t]; d > 0; d-- {
					for l := 0; l < 16; l++ {
						q[l] = qn[n[l]]
					}
					var moved int32
					for l := 0; l < 16; l++ {
						var b int32
						if xs[i+l][q[l].feature] > float64(q[l].threshold) {
							b = 1
						}
						m := q[l].kids + b
						moved |= m - n[l]
						n[l] = m
					}
					// All sixteen lanes parked on leaf self-loops: the rest
					// of the depth loop cannot change anything.
					if moved == 0 {
						break
					}
				}
				for l := 0; l < 16; l++ {
					s[l] += prob[n[l]]
				}
			}
			for l := 0; l < 16; l++ {
				out[i+l] += s[l]
			}
		}
		for ; i < len(xs); i++ {
			if hasNaN(xs[i]) {
				for t := blk.lo; t < blk.hi; t++ {
					out[i] += ff.predictTree(roots[t], xs[i])
				}
				continue
			}
			for t := blk.lo; t < blk.hi; t++ {
				out[i] += ff.predictTreeQ(roots[t], xs[i])
			}
		}
	}
	count := float64(len(roots))
	for j := range out {
		out[j] /= count
	}
}
