// Package forest implements CART decision trees and random forests with
// weighted Gini splitting, bootstrap aggregation, mean-decrease-in-impurity
// feature importance, and per-prediction feature contributions following
// Palczewska et al. [57] — the explanation mechanism §8 of the paper calls
// "crucial" for operator acceptance.
//
// Random forests are the supervised model of the PhyNet Scout (§5.2.1): they
// learn the relationship between an incident's per-component telemetry
// statistics and whether the team is responsible, resist over-fitting, and
// can explain each routing decision.
package forest

import (
	"errors"
	"fmt"
	"log"
	"math"
	"slices"
	"sync"

	"scouts/internal/ml/mlcore"
	"scouts/internal/parallel"
)

// Params configure random-forest training.
type Params struct {
	// NumTrees is the ensemble size (default 100).
	NumTrees int
	// MaxDepth bounds tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum total sample weight per leaf (default 2).
	MinLeaf float64
	// MTry is the number of features examined per split; 0 selects
	// round(sqrt(dim)), the standard classification heuristic.
	MTry int
	// Seed makes training deterministic.
	Seed int64
	// Bootstrap resamples the training set per tree when true (default).
	// DisableBootstrap turns it off (each tree sees all samples, useful in
	// tests that need exact reproducibility of a single tree).
	DisableBootstrap bool
	// Workers bounds the goroutines used to grow trees; 0 selects
	// runtime.GOMAXPROCS(0). Training output is bit-identical for every
	// worker count: per-tree seeds are pre-drawn in tree order and feature
	// importance is accumulated per tree, then merged in tree order. The
	// knob is deliberately excluded from snapshots — it describes the
	// training machine, not the model.
	Workers int `json:"-"`
	// ReferenceKernel selects the retained seed split-finding kernel
	// (per-node re-sorting) instead of the presorted-columns kernel. It
	// exists for the golden-equivalence tests and the kernel benchmarks
	// only — both kernels grow byte-identical forests — and, like Workers,
	// is excluded from snapshots.
	ReferenceKernel bool `json:"-"`
}

func (p Params) withDefaults() Params {
	if p.NumTrees <= 0 {
		p.NumTrees = 100
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 2
	}
	return p
}

// Forest is a trained random-forest classifier.
type Forest struct {
	trees    []*tree
	features []string
	imp      []float64 // normalized mean decrease in impurity
	params   Params
	// flat is the inference-time flattened SoA view of trees, derived once
	// at Train/UnmarshalJSON time (see flat.go) — or loaded directly, with
	// no derivation at all, from a binary pack (pack.go), in which case
	// trees stays nil and the forest is inference-only.
	flat *flatForest
	// kernel selects the batch traversal PredictProbBatch dispatches to.
	// The zero value is KernelExact (bit-identical to PredictProb); set it
	// once at load time, before serving — it is not synchronized.
	kernel BatchKernel
}

// BatchKernel names a batch-traversal implementation.
type BatchKernel uint8

const (
	// KernelExact is the float64 8-lane lock-step kernel: every batch
	// probability is bit-identical to the corresponding PredictProb call.
	KernelExact BatchKernel = iota
	// KernelQuant8 is the quantized 8-lane kernel: float32 thresholds in
	// packed 12-byte records, trees walked in cache-sized blocks. Answers
	// are within the quantization tolerance contract (quant.go), not
	// bit-identical.
	KernelQuant8
	// KernelQuant16 is the 16-lane variant of KernelQuant8.
	KernelQuant16
)

func (k BatchKernel) String() string {
	switch k {
	case KernelQuant8:
		return "quant8"
	case KernelQuant16:
		return "quant16"
	default:
		return "exact"
	}
}

// SetBatchKernel selects the kernel PredictProbBatch uses. Call it at
// load time, before the forest serves traffic: the field is read without
// synchronization on the hot path. Unknown values select KernelExact.
func (f *Forest) SetBatchKernel(k BatchKernel) {
	if k > KernelQuant16 {
		k = KernelExact
	}
	f.kernel = k
}

// CurrentBatchKernel reports the kernel PredictProbBatch dispatches to.
func (f *Forest) CurrentBatchKernel() BatchKernel { return f.kernel }

// treeCount is the ensemble size for both representations: pointer-tree
// forests (training, JSON snapshots) count trees; pack-loaded forests
// carry only the flat view and count its roots.
func (f *Forest) treeCount() int {
	if f.trees != nil {
		return len(f.trees)
	}
	if f.flat != nil {
		return len(f.flat.roots)
	}
	return 0
}

// logf reports the forest's defensive error paths (dimension-mismatched
// inputs). Swappable so tests can assert on — or silence — it.
var logf = log.Printf

// ErrEmptyTrainingSet is returned when Train is called with no samples.
var ErrEmptyTrainingSet = errors.New("forest: empty training set")

// Train grows a random forest on the dataset.
func Train(d *mlcore.Dataset, p Params) (*Forest, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	p = p.withDefaults()
	mtry := p.MTry
	if mtry <= 0 {
		mtry = int(math.Round(math.Sqrt(float64(d.Dim()))))
		if mtry < 1 {
			mtry = 1
		}
	}
	f := &Forest{
		features: d.Features,
		imp:      make([]float64, d.Dim()),
		params:   p,
	}
	// Pre-draw every per-tree seed in tree order. The seed stream depends
	// only on p.Seed, so the parallel schedule below cannot perturb it and
	// tree t is grown from the same generator state at any worker count.
	seedGen := newRNG(uint64(p.Seed))
	seeds := make([]uint64, p.NumTrees)
	for t := range seeds {
		seeds[t] = seedGen.next()
	}
	f.trees = make([]*tree, p.NumTrees)
	// Each tree accumulates importance privately; the merge below runs in
	// tree order so the floating-point sums are identical for every worker
	// count (float addition is not associative — a shared accumulator or
	// per-worker accumulators would make importances schedule-dependent).
	treeImp := make([][]float64, p.NumTrees)
	// The presorted kernel shares one read-only column-major presort across
	// all trees and pools the per-tree scratch across workers (a scratch is
	// fully overwritten by reset, so pool reuse order cannot leak state
	// between trees and determinism is preserved).
	var cols *mlcore.Columns
	var scratch sync.Pool
	if !p.ReferenceKernel {
		cols = mlcore.NewColumns(d, p.Workers)
		scratch.New = func() any { return newSplitCtx(cols) }
	}
	parallel.For(p.Workers, p.NumTrees, func(t int) {
		tp := &treeParams{
			maxDepth: p.MaxDepth,
			minLeaf:  p.MinLeaf,
			mtry:     mtry,
			featImp:  make([]float64, d.Dim()),
			rng:      newRNG(seeds[t]),
		}
		idx := make([]int, d.Len())
		if p.DisableBootstrap {
			for i := range idx {
				idx[i] = i
			}
		} else {
			for i := range idx {
				idx[i] = tp.rng.intn(d.Len())
			}
		}
		if p.ReferenceKernel {
			f.trees[t] = buildTreeReference(d, idx, tp)
		} else {
			ctx := scratch.Get().(*splitCtx)
			ctx.reset(idx)
			f.trees[t] = buildTree(ctx, tp)
			scratch.Put(ctx)
		}
		treeImp[t] = tp.featImp
	})
	for _, imp := range treeImp {
		for i, v := range imp {
			f.imp[i] += v
		}
	}
	// Normalize importance to sum to 1 (when any split happened).
	var total float64
	for _, v := range f.imp {
		total += v
	}
	if total > 0 {
		for i := range f.imp {
			f.imp[i] /= total
		}
	}
	f.flat = newFlatForest(f.trees)
	return f, nil
}

// Trainer returns an mlcore.Trainer that trains forests with the params.
func Trainer(p Params) mlcore.Trainer {
	return mlcore.TrainerFunc(func(d *mlcore.Dataset) (mlcore.Classifier, error) {
		return Train(d, p)
	})
}

// PredictProb returns the forest's positive-class probability for x,
// traversing the flat SoA kernel (flat.go). A vector of the wrong
// dimension answers the training prior with a logged error instead of
// panicking deep in traversal.
func (f *Forest) PredictProb(x []float64) float64 {
	if f.treeCount() == 0 {
		return 0
	}
	if len(x) != len(f.features) {
		logf("forest: dimension mismatch: got %d features, trained on %d; answering the training prior", len(x), len(f.features))
		return f.flat.prior
	}
	return f.flat.predictProb(x)
}

// PredictProbBatch scores every vector of xs with one tree-major pass over
// the flat kernel: each tree's node arrays stay cache-hot across the whole
// batch. Results are written into out when it has the capacity (the
// serving path passes a pooled buffer for a zero-allocation call) and the
// filled slice is returned. Every probability is bit-identical to the
// corresponding PredictProb call; dimension-mismatched batches fall back
// to the guarded per-vector path.
//
//scout:hotpath
func (f *Forest) PredictProbBatch(xs [][]float64, out []float64) []float64 {
	if cap(out) >= len(xs) {
		out = out[:len(xs)]
		for i := range out {
			out[i] = 0
		}
	} else {
		out = make([]float64, len(xs))
	}
	if f.treeCount() == 0 || len(xs) == 0 {
		return out
	}
	for _, x := range xs {
		if len(x) != len(f.features) {
			for i, x := range xs {
				out[i] = f.PredictProb(x)
			}
			return out
		}
	}
	switch f.kernel {
	case KernelQuant8:
		f.flat.predictBatchQ8(xs, out)
	case KernelQuant16:
		f.flat.predictBatchQ16(xs, out)
	default:
		f.flat.predictBatch(xs, out)
	}
	return out
}

// Prior returns the forest's training prior: the mean root-node positive
// fraction across trees — the probability the forest answers when it
// cannot trust the input vector.
func (f *Forest) Prior() float64 {
	if f.flat == nil {
		return 0
	}
	return f.flat.prior
}

// PredictProbPointer is the retained pointer-tree traversal. It exists for
// the golden equivalence tests and the kernel benchmarks only — the flat
// kernel's PredictProb is bit-identical to it (see DESIGN.md §8).
func (f *Forest) PredictProbPointer(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// Predict implements mlcore.Classifier: the label and a confidence in
// [0.5, 1] for that label.
func (f *Forest) Predict(x []float64) (bool, float64) {
	p := f.PredictProb(x)
	if p >= 0.5 {
		return true, p
	}
	return false, 1 - p
}

// Importance returns the normalized mean-decrease-in-impurity importance of
// every feature, aligned with Features().
func (f *Forest) Importance() []float64 {
	out := make([]float64, len(f.imp))
	copy(out, f.imp)
	return out
}

// Features returns the feature names the forest was trained on.
func (f *Forest) Features() []string { return f.features }

// Contribution is one feature's share of a prediction's deviation from the
// training prior, used to explain routing decisions to operators.
type Contribution struct {
	Feature string
	Value   float64 // signed contribution to the positive-class probability
}

// Explain decomposes the prediction for x as prior + sum(contributions)
// following Palczewska et al., traversing the flat SoA kernel. It returns
// the prior and the per-feature contributions sorted by decreasing
// absolute value. A dimension-mismatched vector answers the training prior
// with no contributions (and a logged error) instead of panicking.
func (f *Forest) Explain(x []float64) (prior float64, contribs []Contribution) {
	if f.treeCount() == 0 {
		return 0, nil
	}
	if len(x) != len(f.features) {
		logf("forest: dimension mismatch in Explain: got %d features, trained on %d; answering the training prior", len(x), len(f.features))
		return f.flat.prior, nil
	}
	raw := make([]float64, len(f.features))
	for _, r := range f.flat.roots {
		prior += f.flat.contributions(r, x, raw)
	}
	return f.finishExplain(prior, raw)
}

// ExplainPointer is Explain over the retained pointer-tree traversal,
// kept — like PredictProbPointer — for the golden equivalence tests and
// the kernel benchmarks only.
func (f *Forest) ExplainPointer(x []float64) (prior float64, contribs []Contribution) {
	if len(f.trees) == 0 {
		return 0, nil
	}
	raw := make([]float64, len(f.features))
	for _, t := range f.trees {
		prior += t.contributions(x, raw)
	}
	return f.finishExplain(prior, raw)
}

// finishExplain normalizes the accumulated prior and raw contributions and
// sorts them by decreasing absolute value — shared by both kernels so
// their outputs can only differ if the traversals themselves do.
func (f *Forest) finishExplain(prior float64, raw []float64) (float64, []Contribution) {
	count := float64(f.treeCount())
	prior /= count
	contribs := make([]Contribution, 0, len(raw))
	for i, v := range raw {
		v /= count
		if v != 0 {
			contribs = append(contribs, Contribution{Feature: f.features[i], Value: v})
		}
	}
	slices.SortFunc(contribs, func(a, b Contribution) int {
		av, bv := math.Abs(a.Value), math.Abs(b.Value)
		switch {
		case av > bv:
			return -1
		case bv > av:
			return 1
		default:
			return 0
		}
	})
	return prior, contribs
}

// NumTrees reports the ensemble size.
func (f *Forest) NumTrees() int { return f.treeCount() }

// NumNodes reports the total node count across the ensemble (0 before
// training); scoutctl inspect surfaces it when dumping pack files.
func (f *Forest) NumNodes() int {
	if f.flat == nil {
		return 0
	}
	return len(f.flat.feature)
}

// String summarizes the forest for logs.
func (f *Forest) String() string {
	return fmt.Sprintf("RandomForest(trees=%d, dim=%d)", f.treeCount(), len(f.features))
}
