package forest

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// packRoundTrip trains a forest, packs it and loads it back.
func packRoundTrip(t *testing.T, workers int) (*Forest, *Forest) {
	t.Helper()
	d := xorDataset(500, 0.15, rand.New(rand.NewSource(41)))
	f, err := Train(d, Params{NumTrees: 30, MaxDepth: 8, Seed: 42, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ForestFromBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	return f, back
}

// TestPackRoundTripBitIdentity is the tentpole gate: pack -> load gives a
// forest whose predictions, explanations, prior, importance and feature
// layout are bit-identical to the trained original, for forests grown at
// one worker and at eight (training is worker-count invariant, so the
// packed bytes must be too).
func TestPackRoundTripBitIdentity(t *testing.T) {
	var blobs [][]byte
	for _, workers := range []int{1, 8} {
		f, back := packRoundTrip(t, workers)
		blob, _ := f.AppendBinary(nil)
		blobs = append(blobs, blob)

		if back.NumTrees() != f.NumTrees() || back.NumNodes() != f.NumNodes() {
			t.Fatalf("shape drift: %d/%d trees, %d/%d nodes", back.NumTrees(), f.NumTrees(), back.NumNodes(), f.NumNodes())
		}
		if got, want := back.Features(), f.Features(); len(got) != len(want) {
			t.Fatalf("feature layout drift: %d vs %d", len(got), len(want))
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("feature %d: %q vs %q", i, got[i], want[i])
				}
			}
		}
		gi, wi := back.Importance(), f.Importance()
		for i := range wi {
			if gi[i] != wi[i] {
				t.Fatalf("importance %d drifted: %v vs %v", i, gi[i], wi[i])
			}
		}
		if back.Prior() != f.Prior() {
			t.Fatalf("prior drifted: %v vs %v", back.Prior(), f.Prior())
		}
		xs := probeVectors(100, 43)
		got := back.PredictProbBatch(xs, nil)
		want := f.PredictProbBatch(xs, nil)
		for i, x := range xs {
			if back.PredictProb(x) != f.PredictProb(x) {
				t.Fatalf("probe %d: packed single %v != original %v", i, back.PredictProb(x), f.PredictProb(x))
			}
			if got[i] != want[i] {
				t.Fatalf("probe %d: packed batch %v != original %v", i, got[i], want[i])
			}
			gp, gc := back.Explain(x)
			wp, wc := f.Explain(x)
			if gp != wp || len(gc) != len(wc) {
				t.Fatalf("probe %d: packed explanation diverges", i)
			}
			for j := range gc {
				if gc[j] != wc[j] {
					t.Fatalf("probe %d contribution %d diverges", i, j)
				}
			}
		}
	}
	// Worker-count invariance carries through the binary format.
	if string(blobs[0]) != string(blobs[1]) {
		t.Fatal("packed bytes differ between workers=1 and workers=8")
	}
}

// TestPackLoadDerivesNothing pins the zero-re-derivation contract: a
// binary load must never run the pointer-tree flattening, while a JSON
// load runs it exactly once.
func TestPackLoadDerivesNothing(t *testing.T) {
	f, _ := packRoundTrip(t, 1)
	blob, err := f.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	jsonBlob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}

	before := FlatDerivations()
	if _, err := ForestFromBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d := FlatDerivations() - before; d != 0 {
		t.Fatalf("binary load ran %d flat derivations, want 0", d)
	}

	before = FlatDerivations()
	var back Forest
	if err := json.Unmarshal(jsonBlob, &back); err != nil {
		t.Fatal(err)
	}
	if d := FlatDerivations() - before; d != 1 {
		t.Fatalf("JSON load ran %d flat derivations, want exactly 1", d)
	}
}

// TestPackRejectsTruncation cuts the blob at every 64-byte step (and at a
// few pathological lengths) and demands a clean error — never a panic,
// never a silently short forest.
func TestPackRejectsTruncation(t *testing.T) {
	f, _ := packRoundTrip(t, 1)
	blob, err := f.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 3, 4, 7, 8, 9, 15, 16, 23}
	for off := 24; off < len(blob); off += 64 {
		cuts = append(cuts, off)
	}
	for _, cut := range cuts {
		if _, err := ForestFromBinary(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d loaded without error", cut, len(blob))
		}
	}
}

// TestPackRejectsStructuralCorruption patches child indices, feature
// indices and the stored prior and checks the loader's validation wall:
// each corruption errors instead of arming an out-of-bounds (or
// non-terminating) traversal.
func TestPackRejectsStructuralCorruption(t *testing.T) {
	f, _ := packRoundTrip(t, 1)
	pristine, err := f.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForestFromBinary(pristine); err != nil {
		t.Fatalf("pristine blob must load: %v", err)
	}

	corrupt := func(name string, mutate func([]byte) bool) {
		blob := append([]byte(nil), pristine...)
		if !mutate(blob) {
			t.Fatalf("%s: mutation site not found", name)
		}
		if _, err := ForestFromBinary(blob); err == nil {
			t.Errorf("%s: corrupted blob loaded without error", name)
		}
	}

	sectionPayload := func(blob []byte, tag string) []byte {
		off := 8
		for range packSections {
			got := string(blob[off : off+4])
			n := int(binary.LittleEndian.Uint64(blob[off+8:]))
			off += 16
			if got == tag {
				return blob[off : off+n]
			}
			off = (off + n + 7) &^ 7
		}
		return nil
	}

	corrupt("bad magic", func(b []byte) bool { b[0] = 'X'; return true })
	corrupt("child escapes tree", func(b []byte) bool {
		kids := sectionPayload(b, "NDKD")
		binary.LittleEndian.PutUint32(kids, uint32(f.NumNodes()+7)) // root points far outside
		return kids != nil
	})
	corrupt("child before parent", func(b []byte) bool {
		kids := sectionPayload(b, "NDKD")
		// Make node 1 point at node 0: a cycle the kernel would chase forever.
		binary.LittleEndian.PutUint32(kids[4:], 0)
		return kids != nil
	})
	corrupt("feature out of layout", func(b []byte) bool {
		ft := sectionPayload(b, "NDFT")
		binary.LittleEndian.PutUint32(ft, uint32(len(f.Features())+3))
		return ft != nil
	})
	corrupt("prior mismatch", func(b []byte) bool {
		pr := sectionPayload(b, "PRIR")
		binary.LittleEndian.PutUint64(pr, math.Float64bits(0.123456789))
		return pr != nil
	})
	corrupt("section length overrun", func(b []byte) bool {
		// First section header's length field claims more than the buffer.
		binary.LittleEndian.PutUint64(b[16:], uint64(len(b)))
		return true
	})
}

// TestPackEdgeCases covers the degenerate shapes real snapshots can
// contain: a single-leaf tree (a class-pure bootstrap sample) and a NaN
// threshold (never produced by training, but the format must round-trip
// arbitrary float64 bit patterns rather than corrupt them).
func TestPackEdgeCases(t *testing.T) {
	leaf := &tree{nodes: []node{{feature: -1, prob: 0.75, weight: 10}}}
	split := &tree{nodes: []node{
		{feature: 0, threshold: math.NaN(), left: 1, right: 2, prob: 0.5, weight: 20},
		{feature: -1, prob: 0.25, weight: 10},
		{feature: -1, prob: 1, weight: 10},
	}}
	f := &Forest{
		trees:    []*tree{leaf, split},
		features: []string{"only"},
		imp:      []float64{1},
		params:   Params{NumTrees: 2},
	}
	f.flat = newFlatForest(f.trees)

	blob, err := f.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ForestFromBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != 2 || back.NumNodes() != 4 {
		t.Fatalf("edge forest shape: %d trees, %d nodes", back.NumTrees(), back.NumNodes())
	}
	// The NaN threshold survives bit-exactly.
	var nanAt = -1
	for i, th := range back.flat.threshold {
		if math.IsNaN(th) {
			nanAt = i
		}
	}
	if nanAt < 0 {
		t.Fatal("NaN threshold did not survive the round trip")
	}
	if got, want := math.Float64bits(back.flat.threshold[nanAt]), math.Float64bits(math.NaN()); got != want {
		t.Fatalf("NaN bit pattern drifted: %x vs %x", got, want)
	}
	// The single-leaf tree answers its leaf for any input, and the exact
	// kernel agrees with the original on non-NaN-threshold paths.
	for _, x := range [][]float64{{0}, {5}, {-5}} {
		if got, want := back.PredictProb(x), f.PredictProb(x); got != want {
			t.Fatalf("edge forest prediction drifted at %v: %v vs %v", x, got, want)
		}
	}
}

// TestPackedForestRefusesJSON pins the representation boundary: a
// pack-loaded forest has no pointer trees and must refuse to serialize
// as a JSON snapshot instead of emitting an empty ensemble.
func TestPackedForestRefusesJSON(t *testing.T) {
	_, back := packRoundTrip(t, 1)
	if _, err := json.Marshal(back); err == nil || !strings.Contains(err.Error(), "no pointer trees") {
		t.Fatalf("packed forest marshaled to JSON (err=%v), want refusal", err)
	}
}
