package forest

import (
	"sort"

	"scouts/internal/ml/mlcore"
)

// This file retains the seed (pre-presort) tree-growing kernel verbatim.
// It exists for two reasons: the golden-equivalence tests prove that the
// presorted kernel in tree.go grows byte-identical forests, and the
// benchmarks report the presorted kernel's speedup against it from a
// single binary. It is selected via Params.ReferenceKernel and is not used
// on any production path.

// buildTreeReference grows a tree on the given sample indices of d using
// the per-node re-sorting kernel (O(mtry · n log n) per node).
func buildTreeReference(d *mlcore.Dataset, idx []int, p *treeParams) *tree {
	t := &tree{}
	t.growReference(d, idx, p, 0)
	return t
}

// growReference appends a subtree for idx and returns its root node index.
func (t *tree) growReference(d *mlcore.Dataset, idx []int, p *treeParams, depth int) int {
	var wSum, wPos float64
	for _, i := range idx {
		w := d.Samples[i].W()
		wSum += w
		if d.Samples[i].Y {
			wPos += w
		}
	}
	me := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1, prob: safeDiv(wPos, wSum), weight: wSum})

	if depth >= p.maxDepth || wSum <= p.minLeaf || wPos == 0 || wPos == wSum {
		return me
	}
	feat, thr, gain := bestSplitReference(d, idx, p, wSum, wPos)
	if feat < 0 || gain <= p.minImpurity {
		return me
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.Samples[i].X[feat] <= thr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return me
	}
	if p.featImp != nil {
		p.featImp[feat] += gain * wSum
	}
	t.nodes[me].feature = feat
	t.nodes[me].threshold = thr
	l := t.growReference(d, leftIdx, p, depth+1)
	t.nodes[me].left = l
	r := t.growReference(d, rightIdx, p, depth+1)
	t.nodes[me].right = r
	return me
}

// bestSplitReference scans a random subset of features (mtry) and returns
// the split with the largest Gini gain, re-sorting the node's samples for
// every candidate feature.
func bestSplitReference(d *mlcore.Dataset, idx []int, p *treeParams, wSum, wPos float64) (feat int, thr, gain float64) {
	dim := d.Dim()
	mtry := p.mtry
	if mtry <= 0 || mtry > dim {
		mtry = dim
	}
	// Sample mtry distinct features by partial Fisher-Yates over a scratch
	// permutation.
	perm := make([]int, dim)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < mtry; i++ {
		j := i + p.rng.intn(dim-i)
		perm[i], perm[j] = perm[j], perm[i]
	}

	parentGini := gini(wPos, wSum)
	feat, gain = -1, 0

	type pair struct {
		v float64
		w float64
		y bool
	}
	pairs := make([]pair, 0, len(idx))
	for f := 0; f < mtry; f++ {
		fi := perm[f]
		pairs = pairs[:0]
		for _, i := range idx {
			s := d.Samples[i]
			pairs = append(pairs, pair{v: s.X[fi], w: s.W(), y: s.Y})
		}
		// The golden bit-identity tests pin this kernel's behavior, and with
		// non-uniform boosting weights the left-sum accumulation order of
		// equal-valued pairs feeds floating-point rounding — swapping the
		// sort algorithm could reorder ties and change the reference splits.
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v }) //scout:allow sortslice frozen reference kernel; tie order is pinned by the golden snapshot tests

		var lw, lp float64
		for k := 0; k < len(pairs)-1; k++ {
			lw += pairs[k].w
			if pairs[k].y {
				lp += pairs[k].w
			}
			if pairs[k].v == pairs[k+1].v {
				continue // cannot split between equal values
			}
			rw, rp := wSum-lw, wPos-lp
			if lw < p.minLeaf || rw < p.minLeaf {
				continue
			}
			g := parentGini - (lw/wSum)*gini(lp, lw) - (rw/wSum)*gini(rp, rw)
			if g > gain {
				gain = g
				feat = fi
				thr = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	return feat, thr, gain
}
