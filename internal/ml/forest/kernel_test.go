package forest

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"scouts/internal/ml/mlcore"
)

// snapshotWith trains with the given params and returns the serialized
// forest.
func snapshotWith(t *testing.T, d *mlcore.Dataset, p Params) []byte {
	t.Helper()
	f, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPresortedKernelMatchesReference proves the presorted split kernel
// grows byte-identical forests to the retained seed kernel: same splits,
// same thresholds, same importances, bit for bit. Duplicate-heavy features
// (the xor dataset's near-binary columns, plus a constant column) exercise
// the equal-value-run tie handling; bootstrap on/off exercises the
// multiplicity expansion.
func TestPresortedKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := xorDataset(500, 0.05, rng)
	// A constant column and an integer-quantized column maximize ties.
	d.Features = append(d.Features, "const", "quant")
	for i := range d.Samples {
		d.Samples[i].X = append(d.Samples[i].X, 1.0, float64(rng.Intn(4)))
	}
	for _, boot := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			p := Params{NumTrees: 20, MaxDepth: 8, Seed: 77, Workers: workers, DisableBootstrap: !boot}
			ref := p
			ref.ReferenceKernel = true
			a, b := snapshotWith(t, d, p), snapshotWith(t, d, ref)
			if !bytes.Equal(a, b) {
				t.Fatalf("bootstrap=%v workers=%d: presorted kernel diverges from reference (%d vs %d bytes)",
					boot, workers, len(a), len(b))
			}
		}
	}
}

// TestBestSplitZeroAllocs guards the presorted kernel's allocation
// contract: once the per-tree scratch exists, finding the best split of a
// node allocates nothing.
func TestBestSplitZeroAllocs(t *testing.T) {
	d := xorDataset(400, 0.1, rand.New(rand.NewSource(8)))
	cols := mlcore.NewColumns(d, 1)
	ctx := newSplitCtx(cols)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	ctx.reset(idx)
	var wSum, wPos float64
	for _, s := range d.Samples {
		wSum += s.W()
		if s.Y {
			wPos += s.W()
		}
	}
	tp := &treeParams{maxDepth: 8, minLeaf: 2, mtry: 2, rng: newRNG(5)}
	allocs := testing.AllocsPerRun(50, func() {
		bestSplit(ctx, tp, 0, ctx.n, wSum, wPos)
	})
	if allocs != 0 {
		t.Fatalf("bestSplit allocates %.1f times per node, want 0", allocs)
	}
}

// TestPartitionKeepsInvariants checks the two invariants the kernel relies
// on after a split: every feature range stays sorted and idx keeps the
// stable filtered order of the reference kernel.
func TestPartitionKeepsInvariants(t *testing.T) {
	d := xorDataset(200, 0.2, rand.New(rand.NewSource(9)))
	cols := mlcore.NewColumns(d, 0)
	ctx := newSplitCtx(cols)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = (i * 7) % d.Len() // scrambled but a permutation
	}
	ctx.reset(idx)
	col0 := cols.Col(0)
	thr := 0.5
	mid := ctx.partitionIdx(0, ctx.n, 0, thr)
	ctx.partitionFeatures(0, ctx.n, int(mid), true, true)
	// idx order must equal the reference filter order.
	var want []int32
	for _, row := range idx {
		if col0[row] <= thr {
			want = append(want, int32(row))
		}
	}
	for _, row := range idx {
		if col0[row] > thr {
			want = append(want, int32(row))
		}
	}
	for i, row := range ctx.idx {
		if row != want[i] {
			t.Fatalf("idx[%d] = %d, want %d", i, row, want[i])
		}
	}
	// Every feature range must remain sorted by value within each side.
	for f := 0; f < cols.Dim(); f++ {
		col := cols.Col(f)
		for _, seg := range [][]int32{ctx.rows(f)[:mid], ctx.rows(f)[mid:]} {
			for i := 1; i < len(seg); i++ {
				if col[seg[i-1]] > col[seg[i]] {
					t.Fatalf("feature %d not sorted after partition", f)
				}
			}
		}
	}
}

// TestOneSidedCompaction checks that compactLeft/compactRight produce the
// same committed side as the full stable partition (the other side is
// explicitly unspecified).
func TestOneSidedCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 257
	rows := make([]int32, n)
	side := make([]uint8, n)
	for i := range rows {
		rows[i] = int32(i)
		side[i] = uint8(rng.Intn(2))
	}
	ctx := &splitCtx{n: n, tmp: make([]int32, n), side: side}
	ref := append([]int32(nil), rows...)
	mid := ctx.stablePartition(ref)
	if mid == 0 || mid == n {
		t.Fatal("degenerate partition; pick another seed")
	}
	left := append([]int32(nil), rows...)
	ctx.compactLeft(left)
	for i := 0; i < mid; i++ {
		if left[i] != ref[i] {
			t.Fatalf("compactLeft[%d] = %d, want %d", i, left[i], ref[i])
		}
	}
	right := append([]int32(nil), rows...)
	ctx.compactRight(right, mid)
	for i := mid; i < n; i++ {
		if right[i] != ref[i] {
			t.Fatalf("compactRight[%d] = %d, want %d", i, right[i], ref[i])
		}
	}
}
