package forest

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// probeVectors draws in-range and out-of-range probes for the xor layout.
func probeVectors(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 1.4, rng.Float64() * 1.4, rng.NormFloat64() * 3}
	}
	return xs
}

// TestFlatMatchesPointerKernel pins the tentpole invariant: the flat SoA
// traversal answers exactly — bit for bit — what the retained pointer
// traversal answers, for predictions and for explanations.
func TestFlatMatchesPointerKernel(t *testing.T) {
	d := xorDataset(500, 0.15, rand.New(rand.NewSource(21)))
	f, err := Train(d, Params{NumTrees: 30, MaxDepth: 8, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range probeVectors(200, 23) {
		if got, want := f.PredictProb(x), f.PredictProbPointer(x); got != want {
			t.Fatalf("probe %d: flat prob %v != pointer prob %v", i, got, want)
		}
		gp, gc := f.Explain(x)
		wp, wc := f.ExplainPointer(x)
		if gp != wp {
			t.Fatalf("probe %d: flat prior %v != pointer prior %v", i, gp, wp)
		}
		if len(gc) != len(wc) {
			t.Fatalf("probe %d: %d flat contributions != %d pointer", i, len(gc), len(wc))
		}
		for j := range gc {
			if gc[j] != wc[j] {
				t.Fatalf("probe %d contribution %d: flat %+v != pointer %+v", i, j, gc[j], wc[j])
			}
		}
	}
}

// TestFlatSurvivesSnapshotRoundTrip checks the restore path derives the
// same flat view Train does: a restored forest's flat predictions match
// the original's, and the snapshot bytes themselves are unchanged by the
// flat layer (the pointer trees remain the snapshot format).
func TestFlatSurvivesSnapshotRoundTrip(t *testing.T) {
	d := xorDataset(300, 0.1, rand.New(rand.NewSource(24)))
	f, err := Train(d, Params{NumTrees: 15, MaxDepth: 6, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var r Forest
	if err := json.Unmarshal(blob, &r); err != nil {
		t.Fatal(err)
	}
	if r.flat == nil {
		t.Fatal("restore must derive the flat view")
	}
	for i, x := range probeVectors(50, 26) {
		if r.PredictProb(x) != f.PredictProb(x) {
			t.Fatalf("probe %d: restored flat forest disagrees", i)
		}
	}
	blob2, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("flat layer must not change the snapshot format")
	}
}

// TestPredictProbBatch pins batch results bit-identical to per-vector
// calls, exercises the pooled-buffer path, and checks empty batches.
func TestPredictProbBatch(t *testing.T) {
	d := xorDataset(400, 0.1, rand.New(rand.NewSource(27)))
	f, err := Train(d, Params{NumTrees: 20, MaxDepth: 8, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	xs := probeVectors(64, 29)
	got := f.PredictProbBatch(xs, nil)
	for i, x := range xs {
		if got[i] != f.PredictProb(x) {
			t.Fatalf("batch[%d] = %v, single = %v", i, got[i], f.PredictProb(x))
		}
	}
	// Pooled buffer: a dirty slice with capacity is reused, not reallocated.
	buf := make([]float64, 0, len(xs))
	buf = append(buf, 999)
	out := f.PredictProbBatch(xs, buf[:cap(buf)])
	if &out[0] != &buf[:1][0] {
		t.Fatal("batch must reuse the caller's buffer")
	}
	for i := range out {
		if out[i] != got[i] {
			t.Fatalf("pooled batch[%d] = %v, want %v", i, out[i], got[i])
		}
	}
	if res := f.PredictProbBatch(nil, nil); len(res) != 0 {
		t.Fatalf("empty batch should answer empty, got %v", res)
	}
}

// TestDimensionMismatchGuard covers the defensive path: short (or long)
// vectors answer the training prior with a logged error — no panic — in
// PredictProb, Explain and the batch fallback.
func TestDimensionMismatchGuard(t *testing.T) {
	d := xorDataset(300, 0.1, rand.New(rand.NewSource(30)))
	f, err := Train(d, Params{NumTrees: 10, MaxDepth: 6, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	orig := logf
	logf = func(format string, args ...any) { logged = append(logged, format) }
	defer func() { logf = orig }()

	short := []float64{1}
	if got := f.PredictProb(short); got != f.Prior() {
		t.Fatalf("short vector should answer the prior %v, got %v", f.Prior(), got)
	}
	prior, contribs := f.Explain(short)
	if prior != f.Prior() || contribs != nil {
		t.Fatalf("short-vector Explain = (%v, %v), want (prior, nil)", prior, contribs)
	}
	xs := probeVectors(4, 32)
	xs[2] = short // one bad vector degrades the whole batch to the guarded path
	out := f.PredictProbBatch(xs, nil)
	if out[2] != f.Prior() {
		t.Fatalf("batch bad item should answer the prior, got %v", out[2])
	}
	for _, i := range []int{0, 1, 3} {
		if out[i] != f.PredictProb(xs[i]) {
			t.Fatalf("batch good item %d diverged under fallback", i)
		}
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "dimension mismatch") {
		t.Fatalf("mismatches must be logged, got %v", logged)
	}
	if f.Prior() <= 0 || f.Prior() >= 1 {
		t.Fatalf("xor prior should be interior, got %v", f.Prior())
	}
	if math.IsNaN(f.Prior()) {
		t.Fatal("prior is NaN")
	}
}
