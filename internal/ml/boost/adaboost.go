// Package boost implements AdaBoost over decision stumps — the boosting
// baseline of Table 4 (F1 = 0.96) and one of the candidate decider models
// for the Scout's model selector (Figure 8).
package boost

import (
	"errors"
	"math"
	"slices"

	"scouts/internal/ml/mlcore"
)

// Params configure AdaBoost.
type Params struct {
	// Rounds is the number of boosting rounds / stumps (default 50).
	Rounds int
}

// stump is a one-split weak learner: predicts +1 when
// polarity*(x[feature] - threshold) > 0.
type stump struct {
	feature   int
	threshold float64
	polarity  float64 // +1 or -1
	alpha     float64 // learner weight
}

// AdaBoost is a trained boosted-stump ensemble.
type AdaBoost struct {
	stumps []stump
}

// ErrEmptyTrainingSet is returned when Train receives no samples.
var ErrEmptyTrainingSet = errors.New("boost: empty training set")

// Train runs AdaBoost.M1 with weighted resampling-free reweighting.
func Train(d *mlcore.Dataset, p Params) (*AdaBoost, error) {
	n := d.Len()
	if n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if p.Rounds <= 0 {
		p.Rounds = 50
	}
	// Labels in {-1, +1}; initial distribution from sample weights.
	y := make([]float64, n)
	w := make([]float64, n)
	var wSum float64
	for i, s := range d.Samples {
		if s.Y {
			y[i] = 1
		} else {
			y[i] = -1
		}
		w[i] = s.W()
		wSum += w[i]
	}
	for i := range w {
		w[i] /= wSum
	}

	// Pre-sort sample indices per feature once; stump search reuses them.
	dim := d.Dim()
	order := make([][]int, dim)
	for j := 0; j < dim; j++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		slices.SortFunc(idx, func(a, b int) int {
			va, vb := d.Samples[a].X[j], d.Samples[b].X[j]
			if va < vb {
				return -1
			}
			if vb < va {
				return 1
			}
			return a - b // total order: equal values scan in sample order
		})
		order[j] = idx
	}

	a := &AdaBoost{}
	pred := make([]float64, n)
	for round := 0; round < p.Rounds; round++ {
		st, werr := bestStump(d, y, w, order)
		if st.feature < 0 || werr >= 0.5 {
			break // no stump better than chance; stop boosting
		}
		perfect := werr < 1e-10
		if perfect {
			werr = 1e-10
		}
		st.alpha = 0.5 * math.Log((1-werr)/werr)
		a.stumps = append(a.stumps, st)
		if perfect {
			break // further rounds are redundant
		}
		// Reweight: increase the weight of mistakes.
		var z float64
		for i := range w {
			pred[i] = st.predict(d.Samples[i].X)
			w[i] *= math.Exp(-st.alpha * y[i] * pred[i])
			z += w[i]
		}
		for i := range w {
			w[i] /= z
		}
	}
	if len(a.stumps) == 0 {
		// Degenerate data (e.g. single class): emit a constant stump that
		// always votes for the majority class.
		var pos float64
		for i := range y {
			if y[i] > 0 {
				pos += w[i]
			}
		}
		pol := -1.0
		if pos >= 0.5 {
			pol = 1.0
		}
		a.stumps = append(a.stumps, stump{feature: 0, threshold: math.Inf(-1), polarity: pol, alpha: 1})
	}
	return a, nil
}

// Trainer adapts Train to the mlcore.Trainer interface.
func Trainer(p Params) mlcore.Trainer {
	return mlcore.TrainerFunc(func(d *mlcore.Dataset) (mlcore.Classifier, error) {
		return Train(d, p)
	})
}

func (s stump) predict(x []float64) float64 {
	if s.polarity*(x[s.feature]-s.threshold) > 0 {
		return 1
	}
	return -1
}

// bestStump scans every feature/threshold/polarity and returns the stump
// with minimal weighted error, plus that error.
func bestStump(d *mlcore.Dataset, y, w []float64, order [][]int) (stump, float64) {
	best := stump{feature: -1}
	bestErr := math.Inf(1)
	for j := range order {
		idx := order[j]
		// errLeftPos: weighted error of the stump "predict +1 when x > t".
		// Start with threshold below everything: predicts +1 for all.
		var errAllPos float64
		for i := range y {
			if y[i] < 0 {
				errAllPos += w[i]
			}
		}
		errPos := errAllPos // polarity +1, threshold = -inf
		// Walk thresholds between consecutive sorted values.
		for k := 0; k < len(idx); k++ {
			i := idx[k]
			// Moving sample i to the "<= threshold" side flips its
			// prediction from +1 to -1 under polarity +1.
			if y[i] > 0 {
				errPos += w[i]
			} else {
				errPos -= w[i]
			}
			if k+1 < len(idx) && d.Samples[idx[k+1]].X[j] == d.Samples[i].X[j] {
				continue
			}
			thr := d.Samples[i].X[j]
			if k+1 < len(idx) {
				thr = (thr + d.Samples[idx[k+1]].X[j]) / 2
			}
			if errPos < bestErr {
				bestErr = errPos
				best = stump{feature: j, threshold: thr, polarity: 1}
			}
			if 1-errPos < bestErr {
				bestErr = 1 - errPos
				best = stump{feature: j, threshold: thr, polarity: -1}
			}
		}
		if errAllPos < bestErr {
			bestErr = errAllPos
			best = stump{feature: j, threshold: math.Inf(-1), polarity: 1}
		}
		if 1-errAllPos < bestErr {
			bestErr = 1 - errAllPos
			best = stump{feature: j, threshold: math.Inf(-1), polarity: -1}
		}
	}
	return best, bestErr
}

// Score returns the signed ensemble margin for x (positive means class
// true), normalized by the total alpha so it lies in [-1, 1].
func (a *AdaBoost) Score(x []float64) float64 {
	var s, total float64
	for _, st := range a.stumps {
		s += st.alpha * st.predict(x)
		total += st.alpha
	}
	if total == 0 {
		return 0
	}
	return s / total
}

// Predict returns the ensemble vote and a confidence in [0.5, 1] derived
// from the normalized margin.
func (a *AdaBoost) Predict(x []float64) (bool, float64) {
	m := a.Score(x)
	conf := 0.5 + math.Abs(m)/2
	if conf > 1 {
		conf = 1
	}
	return m >= 0, conf
}

// Rounds reports the number of stumps actually trained.
func (a *AdaBoost) Rounds() int { return len(a.stumps) }
