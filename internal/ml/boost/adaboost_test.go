package boost

import (
	"math/rand"
	"testing"

	"scouts/internal/metrics"
	"scouts/internal/ml/mlcore"
)

func TestAdaBoostLinearSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := mlcore.NewDataset([]string{"a", "noise"})
	for i := 0; i < 400; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = 4
		}
		d.MustAdd(mlcore.Sample{X: []float64{mu + rng.NormFloat64(), rng.NormFloat64()}, Y: y})
	}
	a, err := Train(d, Params{Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for i := 0; i < 200; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = 4
		}
		x := []float64{mu + rng.NormFloat64(), rng.NormFloat64()}
		pred, conf := a.Predict(x)
		if conf < 0.5 || conf > 1 {
			t.Fatalf("conf %v", conf)
		}
		c.Add(pred, y)
	}
	if c.F1() < 0.95 {
		t.Fatalf("AdaBoost F1 = %v (%s)", c.F1(), c.String())
	}
}

// TestAdaBoostBeatsSingleStump uses a staircase pattern a single stump
// cannot fit but a boosted ensemble can.
func TestAdaBoostBeatsSingleStump(t *testing.T) {
	d := mlcore.NewDataset([]string{"x"})
	// Pattern along x: class flips at 1, 2, 3 → needs >= 3 stumps.
	pts := []struct {
		x float64
		y bool
	}{{0.2, false}, {0.5, false}, {1.2, true}, {1.7, true}, {2.3, false}, {2.6, false}, {3.4, true}, {3.9, true}}
	for rep := 0; rep < 10; rep++ {
		for _, p := range pts {
			d.MustAdd(mlcore.Sample{X: []float64{p.x + float64(rep)*1e-4}, Y: p.y})
		}
	}
	single, err := Train(d, Params{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Train(d, Params{Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	acc := func(a *AdaBoost) float64 {
		var c metrics.Confusion
		for _, p := range pts {
			pred, _ := a.Predict([]float64{p.x})
			c.Add(pred, p.y)
		}
		return c.Accuracy()
	}
	if acc(full) <= acc(single) {
		t.Fatalf("boosting should beat one stump: single %v, full %v (rounds=%d)",
			acc(single), acc(full), full.Rounds())
	}
	if acc(full) < 0.99 {
		t.Fatalf("boosted ensemble should fit the staircase, acc = %v", acc(full))
	}
}

func TestAdaBoostEmpty(t *testing.T) {
	if _, err := Train(mlcore.NewDataset([]string{"a"}), Params{}); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
}

func TestAdaBoostSingleClass(t *testing.T) {
	d := mlcore.NewDataset([]string{"a"})
	for i := 0; i < 10; i++ {
		d.MustAdd(mlcore.Sample{X: []float64{float64(i)}, Y: true})
	}
	a, err := Train(d, Params{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.Predict([]float64{100})
	if !pred {
		t.Fatal("single-class boosting should predict that class")
	}
}

func TestAdaBoostScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := mlcore.NewDataset([]string{"a"})
	for i := 0; i < 100; i++ {
		d.MustAdd(mlcore.Sample{X: []float64{rng.NormFloat64()}, Y: rng.Float64() < 0.5})
	}
	a, err := Train(d, Params{Rounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s := a.Score([]float64{rng.NormFloat64() * 10})
		if s < -1-1e-9 || s > 1+1e-9 {
			t.Fatalf("normalized score %v out of [-1, 1]", s)
		}
	}
}

func TestAdaBoostRespectsSampleWeights(t *testing.T) {
	// Conflicting labels at the same x: the heavier side must win.
	d := mlcore.NewDataset([]string{"x"})
	d.MustAdd(mlcore.Sample{X: []float64{0}, Y: true, Weight: 10})
	d.MustAdd(mlcore.Sample{X: []float64{0}, Y: false, Weight: 1})
	d.MustAdd(mlcore.Sample{X: []float64{1}, Y: false, Weight: 1})
	a, err := Train(d, Params{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.Predict([]float64{0})
	if !pred {
		t.Fatal("weighted example should dominate the stump choice")
	}
}
