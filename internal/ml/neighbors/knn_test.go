package neighbors

import (
	"math/rand"
	"testing"

	"scouts/internal/metrics"
	"scouts/internal/ml/mlcore"
)

// blobs builds two Gaussian classes separated along the first feature, with
// a second feature on a very different scale to exercise standardization.
func blobs(n int, sep float64, rng *rand.Rand) *mlcore.Dataset {
	d := mlcore.NewDataset([]string{"x", "scaled"})
	for i := 0; i < n; i++ {
		y := i%2 == 0
		mu := 0.0
		if y {
			mu = sep
		}
		d.MustAdd(mlcore.Sample{
			X: []float64{mu + rng.NormFloat64(), 1000 * rng.NormFloat64()},
			Y: y,
		})
	}
	return d
}

func TestKNNSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := blobs(400, 6, rng)
	test := blobs(200, 6, rng)
	k, err := Train(train, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for _, s := range test.Samples {
		pred, conf := k.Predict(s.X)
		if conf < 0.5 || conf > 1 {
			t.Fatalf("confidence %v out of range", conf)
		}
		c.Add(pred, s.Y)
	}
	if c.F1() < 0.95 {
		t.Fatalf("KNN F1 = %v on separable blobs (%s)", c.F1(), c.String())
	}
}

func TestKNNStandardizationMatters(t *testing.T) {
	// Without standardization, the noisy large-scale feature dominates the
	// distance and accuracy collapses toward chance.
	rng := rand.New(rand.NewSource(2))
	train := blobs(400, 6, rng)
	test := blobs(200, 6, rng)
	raw, err := Train(train, Params{K: 5, Standardize: false})
	if err != nil {
		t.Fatal(err)
	}
	std, err := Train(train, Params{K: 5, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	var cRaw, cStd metrics.Confusion
	for _, s := range test.Samples {
		p, _ := raw.Predict(s.X)
		cRaw.Add(p, s.Y)
		p, _ = std.Predict(s.X)
		cStd.Add(p, s.Y)
	}
	if cStd.Accuracy() <= cRaw.Accuracy() {
		t.Fatalf("standardization should help: raw %v vs std %v", cRaw.Accuracy(), cStd.Accuracy())
	}
}

func TestKNNEmpty(t *testing.T) {
	if _, err := Train(mlcore.NewDataset([]string{"a"}), DefaultParams); err != ErrEmptyTrainingSet {
		t.Fatalf("want ErrEmptyTrainingSet, got %v", err)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	d := mlcore.NewDataset([]string{"a"})
	d.MustAdd(mlcore.Sample{X: []float64{0}, Y: false})
	d.MustAdd(mlcore.Sample{X: []float64{1}, Y: true})
	k, err := Train(d, Params{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, conf := k.Predict([]float64{0.5}); conf < 0.5 {
		t.Fatalf("conf %v", conf)
	}
}

func TestKNNWeightsBreakTies(t *testing.T) {
	d := mlcore.NewDataset([]string{"a"})
	// Equidistant neighbours; the heavier one should win.
	d.MustAdd(mlcore.Sample{X: []float64{-1}, Y: false, Weight: 1})
	d.MustAdd(mlcore.Sample{X: []float64{1}, Y: true, Weight: 3})
	k, err := Train(d, Params{K: 2, Standardize: false})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := k.Predict([]float64{0})
	if !pred {
		t.Fatal("weighted vote should favour the heavy positive neighbour")
	}
}
