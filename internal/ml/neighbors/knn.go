// Package neighbors implements a k-nearest-neighbours classifier, one of
// the alternative supervised models the paper compares against the random
// forest in Table 4 (KNN reaches F1 = 0.95 on the PhyNet incident task).
package neighbors

import (
	"errors"
	"slices"

	"scouts/internal/ml/linalg"
	"scouts/internal/ml/mlcore"
)

// Params configure KNN.
type Params struct {
	// K is the neighbourhood size (default 5).
	K int
	// Standardize z-scores features using training statistics (default on
	// via DefaultParams; distance-based models are scale-sensitive).
	Standardize bool
}

// DefaultParams mirror scikit-learn's defaults used by the paper ([8]).
var DefaultParams = Params{K: 5, Standardize: true}

// KNN is a trained k-nearest-neighbours classifier.
type KNN struct {
	params Params
	std    *mlcore.Standardizer
	xs     [][]float64
	ys     []bool
	ws     []float64
}

// ErrEmptyTrainingSet is returned when Train receives no samples.
var ErrEmptyTrainingSet = errors.New("neighbors: empty training set")

// Train memorizes the (standardized) training set.
func Train(d *mlcore.Dataset, p Params) (*KNN, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if p.K <= 0 {
		p.K = DefaultParams.K
	}
	k := &KNN{params: p}
	work := d
	if p.Standardize {
		k.std = mlcore.FitStandardizer(d)
		work = k.std.ApplyDataset(d)
	}
	for _, s := range work.Samples {
		k.xs = append(k.xs, s.X)
		k.ys = append(k.ys, s.Y)
		k.ws = append(k.ws, s.W())
	}
	return k, nil
}

// Trainer adapts Train to the mlcore.Trainer interface.
func Trainer(p Params) mlcore.Trainer {
	return mlcore.TrainerFunc(func(d *mlcore.Dataset) (mlcore.Classifier, error) {
		return Train(d, p)
	})
}

// Predict returns the weighted majority label among the K nearest training
// samples and the winning weight fraction as confidence.
func (k *KNN) Predict(x []float64) (bool, float64) {
	if k.std != nil {
		x = k.std.Apply(x)
	}
	type cand struct {
		d float64
		i int
	}
	cands := make([]cand, len(k.xs))
	for i, tx := range k.xs {
		cands[i] = cand{d: linalg.SqDist(x, tx), i: i}
	}
	slices.SortFunc(cands, func(a, b cand) int {
		if a.d < b.d {
			return -1
		}
		if b.d < a.d {
			return 1
		}
		return a.i - b.i // total order: equidistant neighbors rank by index
	})
	kk := k.params.K
	if kk > len(cands) {
		kk = len(cands)
	}
	var pos, total float64
	for _, c := range cands[:kk] {
		w := k.ws[c.i]
		total += w
		if k.ys[c.i] {
			pos += w
		}
	}
	p := pos / total
	if p >= 0.5 {
		return true, p
	}
	return false, 1 - p
}
