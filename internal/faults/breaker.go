package faults

import (
	"sync"

	"scouts/internal/monitoring"
)

// State is a circuit breaker's position.
type State string

// The classic three breaker states.
const (
	// StateClosed: the dataset is trusted; queries flow and failures are
	// counted.
	StateClosed State = "closed"
	// StateOpen: the dataset tripped; queries short-circuit to empty
	// answers (which featurization imputes over) until the cooldown
	// elapses.
	StateOpen State = "open"
	// StateHalfOpen: the cooldown elapsed; probe queries flow again. One
	// success closes the breaker, one failure re-opens it.
	StateHalfOpen State = "half-open"
)

// BreakerParams tune the per-dataset circuit breakers.
type BreakerParams struct {
	// Trip is how many consecutive failed series windows (empty or too
	// stale) open the breaker. Empty windows are routine for components a
	// dataset does not cover, and any successful window resets the streak,
	// so the threshold counts *uninterrupted* emptiness. Default 32.
	Trip int
	// Cooldown is how long (model hours) an open breaker short-circuits
	// before allowing probe traffic. Default 2.
	Cooldown float64
	// StaleAfter, when positive, counts a window as failed if the inner
	// source reports more than this much staleness (model hours) for the
	// dataset — lagging data trips the breaker like missing data does.
	StaleAfter float64
}

func (p BreakerParams) withDefaults() BreakerParams {
	if p.Trip <= 0 {
		p.Trip = 32
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2
	}
	return p
}

// gate is one dataset's breaker state machine. Time comes from query
// windows (model hours), never from the wall clock, so breaker behavior
// replays deterministically for a fixed query sequence.
type gate struct {
	state    State
	fails    int
	openedAt float64
	trips    int
	// probing marks the single half-open probe slot as taken: exactly one
	// in-flight query may test a recovering dataset, every concurrent
	// query short-circuits until the probe's outcome lands in record. Two
	// racing probes would double-count a failure (re-opening the breaker
	// twice) or let a burst through a dataset that is still down.
	probing bool
}

// Breaker wraps a monitoring.DataSource with a per-dataset circuit
// breaker: consecutive empty (or too-stale) series windows open the
// dataset's breaker, an open breaker answers empty windows without
// touching the inner source, and after a cooldown probe queries test
// whether the dataset recovered. Breaker implements
// monitoring.DataSource, monitoring.StatsSource and
// monitoring.HealthReporter — featurization sees an open breaker as an
// unavailable dataset and mean-imputes its features.
//
// Only time-series queries feed the state machine: most event datasets
// are legitimately silent for hours (background rates are a handful of
// events per week), so an empty event window carries no outage signal.
// Event queries are still short-circuited while the breaker is open.
type Breaker struct {
	inner  monitoring.DataSource
	stats  monitoring.StatsSource
	health monitoring.HealthReporter // nil when inner has no health capability
	p      BreakerParams

	mu    sync.Mutex
	gates map[string]*gate
}

// NewBreaker installs circuit breakers over every dataset of inner.
func NewBreaker(inner monitoring.DataSource, p BreakerParams) *Breaker {
	return &Breaker{
		inner:  inner,
		stats:  monitoring.StatsSourceOf(inner),
		health: monitoring.HealthReporterOf(inner),
		p:      p.withDefaults(),
		gates:  map[string]*gate{},
	}
}

// Datasets implements monitoring.DataSource (registry passthrough).
func (b *Breaker) Datasets() []monitoring.Descriptor { return b.inner.Datasets() }

// gateOf returns the dataset's gate, creating a closed one on first use.
// Callers hold b.mu.
func (b *Breaker) gateOf(dataset string) *gate {
	g := b.gates[dataset]
	if g == nil {
		g = &gate{state: StateClosed}
		b.gates[dataset] = g
	}
	return g
}

// begin decides whether an observed query (one whose outcome will be fed
// back through record) at time t may reach the inner source. probe marks
// the query as the half-open trial whose outcome moves the state machine
// even harder than a closed-state observation; the probe slot is single
// occupancy — a second observed query racing the probe short-circuits
// instead of piling a burst onto a dataset that may still be down. The
// slot is released by record, which every begin(pass=true) caller
// invokes after its inner query returns.
func (b *Breaker) begin(dataset string, t float64) (pass, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gateOf(dataset)
	switch g.state {
	case StateOpen:
		if t-g.openedAt < b.p.Cooldown {
			return false, false
		}
		g.state = StateHalfOpen
		g.probing = true
		return true, true
	case StateHalfOpen:
		if g.probing {
			return false, false
		}
		g.probing = true
		return true, true
	default:
		return true, false
	}
}

// beginPassive decides whether an unobserved query (events; their silence
// carries no outage signal, so no record follows) may pass. It never
// takes the probe slot: while a probe is in flight, passive queries flow
// — the dataset is being tested, not trusted, and an extra read costs
// nothing the probe is not already risking.
func (b *Breaker) beginPassive(dataset string, t float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gateOf(dataset)
	if g.state == StateOpen {
		if t-g.openedAt < b.p.Cooldown {
			return false
		}
		g.state = StateHalfOpen
	}
	return true
}

// record feeds a series-window outcome into the state machine.
func (b *Breaker) record(dataset string, t float64, ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gateOf(dataset)
	if probe {
		g.probing = false
	}
	if ok {
		g.fails = 0
		if g.state != StateClosed {
			g.state = StateClosed
		}
		return
	}
	if probe || g.state == StateHalfOpen {
		g.state = StateOpen
		g.openedAt = t
		g.trips++
		g.fails = 0
		return
	}
	g.fails++
	if g.fails >= b.p.Trip {
		g.state = StateOpen
		g.openedAt = t
		g.trips++
		g.fails = 0
	}
}

// tooStale reports whether the inner source admits to unacceptable lag.
func (b *Breaker) tooStale(dataset string, t float64) bool {
	if b.p.StaleAfter <= 0 || b.health == nil {
		return false
	}
	return b.health.DatasetHealth(dataset, t).Staleness > b.p.StaleAfter
}

// SeriesWindow implements monitoring.DataSource, gated and observed.
func (b *Breaker) SeriesWindow(dataset, component string, from, to float64) []float64 {
	pass, probe := b.begin(dataset, to)
	if !pass {
		return nil
	}
	vals := b.inner.SeriesWindow(dataset, component, from, to)
	ok := len(vals) > 0 && !b.tooStale(dataset, to)
	b.record(dataset, to, ok, probe)
	if !ok {
		return nil
	}
	return vals
}

// WindowStats implements monitoring.StatsSource, gated and observed.
func (b *Breaker) WindowStats(dataset, component string, from, to float64) (monitoring.Stats, bool) {
	pass, probe := b.begin(dataset, to)
	if !pass {
		return monitoring.Stats{}, false
	}
	st, ok := b.stats.WindowStats(dataset, component, from, to)
	ok = ok && !b.tooStale(dataset, to)
	b.record(dataset, to, ok, probe)
	if !ok {
		return monitoring.Stats{}, false
	}
	return st, true
}

// EventsWindow implements monitoring.DataSource: gated (an open breaker
// answers nothing) but never observed — event silence is not failure.
func (b *Breaker) EventsWindow(dataset, component string, from, to float64) []monitoring.EventRecord {
	if !b.beginPassive(dataset, to) {
		return nil
	}
	return b.inner.EventsWindow(dataset, component, from, to)
}

// EventCount implements monitoring.StatsSource, gated like EventsWindow.
func (b *Breaker) EventCount(dataset, component string, from, to float64) int {
	if !b.beginPassive(dataset, to) {
		return 0
	}
	return b.stats.EventCount(dataset, component, from, to)
}

// stateAt reads a gate's effective state at time t without advancing the
// machine: an open gate past its cooldown reports half-open.
func (b *Breaker) stateAt(dataset string, t float64) (State, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gates[dataset]
	if g == nil {
		return StateClosed, 0
	}
	if g.state == StateOpen && t-g.openedAt >= b.p.Cooldown {
		return StateHalfOpen, g.trips
	}
	return g.state, g.trips
}

// DatasetHealth implements monitoring.HealthReporter: the inner source's
// report (when it has one) overlaid with the breaker's verdict.
func (b *Breaker) DatasetHealth(dataset string, t float64) monitoring.DatasetHealth {
	h := monitoring.DatasetHealth{Dataset: dataset, Available: true}
	if b.health != nil {
		h = b.health.DatasetHealth(dataset, t)
	}
	state, _ := b.stateAt(dataset, t)
	h.Breaker = string(state)
	if state == StateOpen {
		h.Available = false
	}
	return h
}

// HealthSnapshot implements monitoring.HealthReporter.
func (b *Breaker) HealthSnapshot(t float64) []monitoring.DatasetHealth {
	ds := b.inner.Datasets()
	out := make([]monitoring.DatasetHealth, len(ds))
	for i, d := range ds {
		out[i] = b.DatasetHealth(d.Name, t)
	}
	return out
}

// Trips returns how many times the dataset's breaker has opened.
func (b *Breaker) Trips(dataset string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if g := b.gates[dataset]; g != nil {
		return g.trips
	}
	return 0
}

// Interface conformance checks.
var (
	_ monitoring.DataSource     = (*Breaker)(nil)
	_ monitoring.StatsSource    = (*Breaker)(nil)
	_ monitoring.HealthReporter = (*Breaker)(nil)
)
