package faults

import (
	"math"
	"reflect"
	"testing"

	"scouts/internal/monitoring"
	"scouts/internal/topology"
)

// fakeSource is a tiny controllable DataSource: one time-series dataset
// ("lat") and one event dataset ("err"), with one sample per model hour.
type fakeSource struct {
	seriesCalls int
	emptyFor    map[string]bool // component -> answer empty windows
}

func (f *fakeSource) Datasets() []monitoring.Descriptor {
	return []monitoring.Descriptor{
		{Name: "lat", Type: monitoring.TimeSeries, ComponentType: topology.TypeServer},
		{Name: "err", Type: monitoring.Event, ComponentType: topology.TypeSwitch},
	}
}

func (f *fakeSource) SeriesWindow(dataset, component string, from, to float64) []float64 {
	if dataset != "lat" || f.emptyFor[component] {
		return nil
	}
	f.seriesCalls++
	var out []float64
	for k := int(math.Ceil(from)); float64(k) < to; k++ {
		out = append(out, float64(k)) // value == its own hour, so shifts are visible
	}
	return out
}

func (f *fakeSource) EventsWindow(dataset, component string, from, to float64) []monitoring.EventRecord {
	if dataset != "err" {
		return nil
	}
	var out []monitoring.EventRecord
	for k := int(math.Ceil(from)); float64(k) < to; k++ {
		out = append(out, monitoring.EventRecord{Time: float64(k), Kind: "E"})
	}
	return out
}

func TestChaosBlackoutFullDataset(t *testing.T) {
	src := &fakeSource{}
	c := NewChaos(src, Schedule{
		Blackouts: []Blackout{{Dataset: "lat", Start: 10, End: 20}},
	}, 1)

	if got := c.SeriesWindow("lat", "s1", 5, 8); len(got) == 0 {
		t.Fatal("window before the blackout should answer")
	}
	if got := c.SeriesWindow("lat", "s1", 12, 15); got != nil {
		t.Fatalf("blacked-out window answered %v", got)
	}
	if _, ok := c.WindowStats("lat", "s1", 12, 15); ok {
		t.Fatal("blacked-out stats should be unavailable")
	}
	if got := c.SeriesWindow("lat", "s1", 22, 25); len(got) == 0 {
		t.Fatal("window after the blackout should answer")
	}

	if h := c.DatasetHealth("lat", 15); h.Available {
		t.Fatal("health should report the dataset dark at t=15")
	}
	if h := c.DatasetHealth("lat", 25); !h.Available {
		t.Fatal("health should report the dataset live at t=25")
	}
	if len(c.Datasets()) != 2 {
		t.Fatal("the registry must stay intact during a blackout")
	}
}

func TestChaosClusterScopedBlackout(t *testing.T) {
	src := &fakeSource{}
	c := NewChaos(src, Schedule{
		Blackouts: []Blackout{{Dataset: "lat", Cluster: "cl1", Start: 0, End: Forever}},
	}, 1)
	c.ClusterOf = func(comp string) string {
		if comp == "s1" {
			return "cl1"
		}
		return "cl2"
	}

	if got := c.SeriesWindow("lat", "s1", 2, 5); got != nil {
		t.Fatalf("cl1 component should be dark, got %v", got)
	}
	if got := c.SeriesWindow("lat", "s2", 2, 5); len(got) == 0 {
		t.Fatal("cl2 component should still answer")
	}
	// A partial outage must not mark the dataset globally unavailable.
	if h := c.DatasetHealth("lat", 3); !h.Available {
		t.Fatal("cluster-scoped blackout should keep dataset-level health available")
	}
}

func TestChaosStaleness(t *testing.T) {
	src := &fakeSource{}
	c := NewChaos(src, Schedule{
		Stalenesses: []Staleness{{Dataset: "lat", Start: 100, End: Forever, Lag: 10}},
	}, 1)

	want := src.SeriesWindow("lat", "s1", 110, 115)
	got := c.SeriesWindow("lat", "s1", 120, 125)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stale window = %v, want frozen values %v", got, want)
	}
	st, ok := c.WindowStats("lat", "s1", 120, 125)
	if !ok || st.Mean != monitoring.StatsOf(want).Mean {
		t.Fatalf("stale stats should aggregate the shifted window: %+v", st)
	}
	if h := c.DatasetHealth("lat", 120); h.Staleness != 10 {
		t.Fatalf("staleness = %v, want 10", h.Staleness)
	}
	if h := c.DatasetHealth("lat", 50); h.Staleness != 0 {
		t.Fatalf("staleness before schedule = %v, want 0", h.Staleness)
	}
}

func TestChaosCorruptionDeterministic(t *testing.T) {
	src := &fakeSource{}
	allNaN := NewChaos(src, Schedule{
		Corruptions: []Corruption{{Dataset: "lat", Start: 0, End: Forever, NaNProb: 1}},
	}, 7)
	for _, v := range allNaN.SeriesWindow("lat", "s1", 2, 8) {
		if !math.IsNaN(v) {
			t.Fatalf("NaNProb=1 should NaN every sample, got %v", v)
		}
	}

	allSpike := NewChaos(src, Schedule{
		Corruptions: []Corruption{{Dataset: "lat", Start: 0, End: Forever, SpikeProb: 1, SpikeScale: 3}},
	}, 7)
	clean := src.SeriesWindow("lat", "s1", 2, 8)
	for i, v := range allSpike.SeriesWindow("lat", "s1", 2, 8) {
		if v != clean[i]*3 {
			t.Fatalf("sample %d = %v, want %v", i, v, clean[i]*3)
		}
	}

	mixed := NewChaos(src, Schedule{
		Corruptions: []Corruption{{Dataset: "lat", Start: 0, End: Forever, NaNProb: 0.3, SpikeProb: 0.2}},
	}, 7)
	a := mixed.SeriesWindow("lat", "s1", 0, 50)
	b := mixed.SeriesWindow("lat", "s1", 0, 50)
	for i := range a {
		same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
		if !same {
			t.Fatalf("corruption not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// WindowStats must agree with the corrupted series, not the clean one.
	st, ok := mixed.WindowStats("lat", "s1", 0, 50)
	if !ok {
		t.Fatal("stats unavailable")
	}
	if !math.IsNaN(st.Mean) {
		// NaNs in the window poison the mean; a clean mean means stats
		// bypassed the corruption.
		t.Fatalf("stats ignored injected NaNs: mean=%v", st.Mean)
	}
}

func TestChaosFlap(t *testing.T) {
	src := &fakeSource{}
	c := NewChaos(src, Schedule{
		Flaps: []Flap{{Dataset: "lat", Start: 0, End: Forever, Period: 10, Duty: 0.5}},
	}, 1)

	// Phase [0, 0.5) of each period is up, [0.5, 1) is down.
	if got := c.SeriesWindow("lat", "s1", 0, 3); len(got) == 0 {
		t.Fatal("up phase should answer")
	}
	if got := c.SeriesWindow("lat", "s1", 4, 7); got != nil {
		t.Fatalf("down phase answered %v", got)
	}
	if h := c.DatasetHealth("lat", 2); !h.Available {
		t.Fatal("health should be up at t=2")
	}
	if h := c.DatasetHealth("lat", 7); h.Available {
		t.Fatal("health should be down at t=7")
	}
	if got := c.SeriesWindow("lat", "s1", 10, 13); len(got) == 0 {
		t.Fatal("next period's up phase should answer")
	}
}

func TestChaosEventGating(t *testing.T) {
	src := &fakeSource{}
	c := NewChaos(src, Schedule{
		Blackouts:   []Blackout{{Dataset: "err", Start: 10, End: 20}},
		Stalenesses: []Staleness{{Dataset: "err", Start: 30, End: Forever, Lag: 5}},
	}, 1)

	if got := c.EventsWindow("err", "sw1", 12, 15); got != nil {
		t.Fatalf("blacked-out events answered %v", got)
	}
	if n := c.EventCount("err", "sw1", 12, 15); n != 0 {
		t.Fatalf("blacked-out event count = %d", n)
	}
	ev := c.EventsWindow("err", "sw1", 35, 38)
	if len(ev) == 0 || ev[0].Time != 30 {
		t.Fatalf("stale events should come from the shifted window: %+v", ev)
	}
	if n := c.EventCount("err", "sw1", 35, 38); n != len(ev) {
		t.Fatalf("EventCount %d disagrees with EventsWindow %d", n, len(ev))
	}
}
