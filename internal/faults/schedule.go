// Package faults is the deterministic fault-injection and graceful-
// degradation layer: a seeded, schedule-driven chaos wrapper around any
// monitoring.DataSource (the Table 2 failure modes — datasets going dark,
// lagging, or corrupting — as reproducible schedules over model time) and
// a per-dataset circuit breaker that turns observed outages into an
// availability signal featurization can impute against.
//
// Everything in the package is a pure function of (schedule, seed, query
// time): there are no wall-clock reads and no global randomness, so a
// chaos run replays bit-identically — the property the outage-curve
// experiment and the serving chaos tests are built on.
package faults

import "math"

// Forever marks an open-ended schedule window.
var Forever = math.Inf(1)

// Blackout makes a dataset answer empty windows during [Start, End).
// Cluster, when non-empty, scopes the outage to components of that cluster
// (a partial, per-cluster blackout); otherwise the whole dataset is dark
// and health reports it unavailable.
type Blackout struct {
	Dataset string // "" matches every dataset
	Cluster string // "" means the entire dataset
	Start   float64
	End     float64
}

// Staleness freezes a dataset Lag model-hours in the past during
// [Start, End): a window query [from, to) answers the data of
// [from-Lag, to-Lag), exactly what a wedged collection pipeline serves.
type Staleness struct {
	Dataset string
	Start   float64
	End     float64
	Lag     float64
}

// Corruption injects deterministic NaNs and magnitude spikes into a
// dataset's time-series values during [Start, End). Each sample is
// corrupted (or not) by a seeded hash of its absolute tick index, so the
// same window is always corrupted the same way.
type Corruption struct {
	Dataset    string
	Start      float64
	End        float64
	NaNProb    float64 // probability a sample becomes NaN
	SpikeProb  float64 // probability a sample is scaled by SpikeScale
	SpikeScale float64 // spike multiplier (default 10 when zero)
}

// Flap toggles a dataset's availability on a fixed cycle during
// [Start, End): up for Duty*Period hours, then dark for the rest of the
// period. A monitoring system in a crash loop looks exactly like this.
type Flap struct {
	Dataset string
	Start   float64
	End     float64
	Period  float64 // cycle length in model hours
	Duty    float64 // fraction of each period the dataset is up, in (0, 1)
}

// Schedule is the full fault plan a Chaos source executes.
type Schedule struct {
	Blackouts   []Blackout
	Stalenesses []Staleness
	Corruptions []Corruption
	Flaps       []Flap
}

// active reports whether t falls inside [start, end).
func active(start, end, t float64) bool { return t >= start && t < end }

// matches reports whether a schedule entry for pattern applies to dataset.
func matches(pattern, dataset string) bool { return pattern == "" || pattern == dataset }

// blackoutAt reports whether (dataset, cluster) is fully dark at time t.
// cluster == "" asks about the dataset as a whole: only cluster-unscoped
// blackouts count, so health reporting does not mark a dataset globally
// dead for a partial outage.
func (s *Schedule) blackoutAt(dataset, cluster string, t float64) bool {
	for _, b := range s.Blackouts {
		if !matches(b.Dataset, dataset) || !active(b.Start, b.End, t) {
			continue
		}
		if b.Cluster == "" || (cluster != "" && b.Cluster == cluster) {
			return true
		}
	}
	return false
}

// flapDownAt reports whether a flap has the dataset in its dark phase at t.
func (s *Schedule) flapDownAt(dataset string, t float64) bool {
	for _, f := range s.Flaps {
		if !matches(f.Dataset, dataset) || !active(f.Start, f.End, t) || f.Period <= 0 {
			continue
		}
		phase := math.Mod(t-f.Start, f.Period) / f.Period
		if phase >= f.Duty {
			return true
		}
	}
	return false
}

// lagAt returns the staleness lag applied to dataset at time t (the
// largest active lag when schedules overlap), 0 when fresh.
func (s *Schedule) lagAt(dataset string, t float64) float64 {
	lag := 0.0
	for _, st := range s.Stalenesses {
		if matches(st.Dataset, dataset) && active(st.Start, st.End, t) && st.Lag > lag {
			lag = st.Lag
		}
	}
	return lag
}

// corruptionAt returns the active corruption for dataset at t, nil when
// the data is clean.
func (s *Schedule) corruptionAt(dataset string, t float64) *Corruption {
	for i := range s.Corruptions {
		c := &s.Corruptions[i]
		if matches(c.Dataset, dataset) && active(c.Start, c.End, t) {
			return c
		}
	}
	return nil
}
