package faults

import (
	"sync"
	"time"
)

// ReqBreakerParams tune a request-level circuit breaker (the wall-clock
// sibling of BreakerParams, which runs on model hours).
type ReqBreakerParams struct {
	// Trip is how many consecutive failed requests open the breaker.
	// Default 5.
	Trip int
	// Cooldown is how long an open breaker short-circuits before allowing
	// a probe request. Default 2s.
	Cooldown time.Duration
}

func (p ReqBreakerParams) withDefaults() ReqBreakerParams {
	if p.Trip <= 0 {
		p.Trip = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	return p
}

// ReqBreaker is the three-state circuit breaker for request/response
// traffic: the gateway keeps one per replica, so a replica that fails
// Trip requests in a row stops receiving traffic until a cooldown
// elapses and a single probe request proves it recovered. It shares the
// State machine (and the single-occupancy half-open probe slot) with the
// per-dataset Breaker; the difference is the time base — a replica
// breaker cools down in wall-clock time, read through an injected clock
// so tests and deterministic replays never touch time.Now themselves.
type ReqBreaker struct {
	p   ReqBreakerParams
	now func() time.Time

	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool
	trips    int
}

// NewReqBreaker builds a closed breaker reading time through now (which
// must be non-nil; binaries pass time.Now, tests a fake).
func NewReqBreaker(p ReqBreakerParams, now func() time.Time) *ReqBreaker {
	return &ReqBreaker{p: p.withDefaults(), now: now, state: StateClosed}
}

// Allow reports whether a request may be sent. probe marks the request
// as the half-open trial; the caller must feed its outcome back through
// Record(ok, probe) — the probe slot is single occupancy and Record is
// what releases it, so a dropped outcome would wedge the breaker
// half-open.
func (b *ReqBreaker) Allow() (pass, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.p.Cooldown {
			return false, false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true, true
	case StateHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	default:
		return true, false
	}
}

// Record feeds one allowed request's outcome into the state machine,
// releasing the probe slot when the request held it. A successful probe
// closes the breaker; a failed probe (or any failure while half-open)
// re-opens it immediately; Trip consecutive closed-state failures open
// it.
func (b *ReqBreaker) Record(ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if ok {
		b.fails = 0
		b.state = StateClosed
		return
	}
	if probe || b.state == StateHalfOpen {
		b.open()
		return
	}
	b.fails++
	if b.fails >= b.p.Trip {
		b.open()
	}
}

// Release abandons an allowed request without recording an outcome:
// the probe slot (if held) is freed, but neither the failure streak nor
// the state machine moves. Hedged requests use it for the loser — a
// request cancelled because its sibling won says nothing about the
// replica's health, and feeding the cancellation in as a failure would
// let hedging itself trip breakers.
func (b *ReqBreaker) Release(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// open transitions to StateOpen. Callers hold b.mu.
func (b *ReqBreaker) open() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.trips++
	b.fails = 0
	b.probing = false
}

// State reads the effective state: an open breaker past its cooldown
// reports half-open, matching what the next Allow would decide.
func (b *ReqBreaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.p.Cooldown {
		return StateHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *ReqBreaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
