package faults

import (
	"math"

	"scouts/internal/monitoring"
)

// Chaos wraps a monitoring.DataSource and executes a fault Schedule
// against it: blackouts and flaps answer empty windows, staleness shifts
// queries into the past, and corruption rewrites series values with
// seeded NaNs and spikes. The wrapper keeps the dataset *registry* intact
// — Datasets() always lists everything the inner source registers — so a
// Scout restored against a Chaos source keeps its trained feature layout;
// availability is reported through the monitoring.HealthReporter
// capability instead, which is what featurization imputes against.
//
// Every decision is a pure function of (schedule, seed, query window), so
// identical queries always see identical faults. Chaos implements
// monitoring.DataSource, monitoring.StatsSource and
// monitoring.HealthReporter.
type Chaos struct {
	inner monitoring.DataSource
	stats monitoring.StatsSource
	sched Schedule
	seed  uint64

	// ClusterOf resolves a component to its cluster for cluster-scoped
	// blackouts (topology.ClusterOf fits). nil disables cluster scoping:
	// only whole-dataset blackouts apply.
	ClusterOf func(component string) string
}

// NewChaos builds a chaos wrapper over inner with a fault schedule. The
// seed drives only corruption sampling; two wrappers with the same
// (schedule, seed) are interchangeable.
func NewChaos(inner monitoring.DataSource, sched Schedule, seed int64) *Chaos {
	return &Chaos{
		inner: inner,
		stats: monitoring.StatsSourceOf(inner),
		sched: sched,
		seed:  uint64(seed),
	}
}

// Datasets implements monitoring.DataSource. The registry is passed
// through untouched: an outage hides data, not the dataset's existence.
func (c *Chaos) Datasets() []monitoring.Descriptor { return c.inner.Datasets() }

// down reports whether the dataset is dark for this component at time t.
func (c *Chaos) down(dataset, component string, t float64) bool {
	cluster := ""
	if c.ClusterOf != nil && component != "" {
		cluster = c.ClusterOf(component)
	}
	return c.sched.blackoutAt(dataset, cluster, t) || c.sched.flapDownAt(dataset, t)
}

// SeriesWindow implements monitoring.DataSource with the schedule applied:
// dark windows answer nil, stale windows answer the past, corrupted
// windows carry seeded NaNs and spikes.
func (c *Chaos) SeriesWindow(dataset, component string, from, to float64) []float64 {
	if c.down(dataset, component, to) {
		return nil
	}
	lag := c.sched.lagAt(dataset, to)
	vals := c.inner.SeriesWindow(dataset, component, from-lag, to-lag)
	if cr := c.sched.corruptionAt(dataset, to); cr != nil && len(vals) > 0 {
		vals = c.corrupt(vals, cr, dataset, component, from)
	}
	return vals
}

// WindowStats implements monitoring.StatsSource. Under corruption the
// aggregates are recomputed from the corrupted series so WindowStats and
// SeriesWindow never disagree about the same window; otherwise the inner
// source's aggregate fast path answers (shifted when stale).
func (c *Chaos) WindowStats(dataset, component string, from, to float64) (monitoring.Stats, bool) {
	if c.down(dataset, component, to) {
		return monitoring.Stats{}, false
	}
	if cr := c.sched.corruptionAt(dataset, to); cr != nil {
		vals := c.SeriesWindow(dataset, component, from, to)
		if len(vals) == 0 {
			return monitoring.Stats{}, false
		}
		return monitoring.StatsOf(vals), true
	}
	lag := c.sched.lagAt(dataset, to)
	return c.stats.WindowStats(dataset, component, from-lag, to-lag)
}

// EventsWindow implements monitoring.DataSource: dark windows answer nil,
// stale windows answer the past (the old event timestamps are kept — a
// frozen pipeline serves old records, it does not re-stamp them).
func (c *Chaos) EventsWindow(dataset, component string, from, to float64) []monitoring.EventRecord {
	if c.down(dataset, component, to) {
		return nil
	}
	lag := c.sched.lagAt(dataset, to)
	return c.inner.EventsWindow(dataset, component, from-lag, to-lag)
}

// EventCount implements monitoring.StatsSource.
func (c *Chaos) EventCount(dataset, component string, from, to float64) int {
	if c.down(dataset, component, to) {
		return 0
	}
	lag := c.sched.lagAt(dataset, to)
	return c.stats.EventCount(dataset, component, from-lag, to-lag)
}

// DatasetHealth implements monitoring.HealthReporter. A cluster-scoped
// blackout does not mark the dataset globally unavailable — the dataset
// still answers for other clusters, and per-component emptiness is the
// accurate signal there.
func (c *Chaos) DatasetHealth(dataset string, t float64) monitoring.DatasetHealth {
	return monitoring.DatasetHealth{
		Dataset:   dataset,
		Available: !c.sched.blackoutAt(dataset, "", t) && !c.sched.flapDownAt(dataset, t),
		Staleness: c.sched.lagAt(dataset, t),
	}
}

// HealthSnapshot implements monitoring.HealthReporter.
func (c *Chaos) HealthSnapshot(t float64) []monitoring.DatasetHealth {
	ds := c.inner.Datasets()
	out := make([]monitoring.DatasetHealth, len(ds))
	for i, d := range ds {
		out[i] = c.DatasetHealth(d.Name, t)
	}
	return out
}

// corrupt returns a rewritten copy of vals (never mutating the inner
// source's slice). Each sample's fate hashes its index anchored at the
// window start, so a fixed query window is always corrupted identically.
func (c *Chaos) corrupt(vals []float64, cr *Corruption, dataset, component string, from float64) []float64 {
	scale := cr.SpikeScale
	if scale == 0 {
		scale = 10
	}
	anchor := int(math.Round(from * 1e6))
	out := make([]float64, len(vals))
	for i, v := range vals {
		u := hashUnit(c.seed, dataset, component, anchor+i)
		switch {
		case u < cr.NaNProb:
			out[i] = math.NaN()
		case u < cr.NaNProb+cr.SpikeProb:
			out[i] = v * scale
		default:
			out[i] = v
		}
	}
	return out
}

// Interface conformance checks.
var (
	_ monitoring.DataSource     = (*Chaos)(nil)
	_ monitoring.StatsSource    = (*Chaos)(nil)
	_ monitoring.HealthReporter = (*Chaos)(nil)
)

// --- deterministic hashing (the cloudsim construction) ------------------

// fnv1a hashes a string with FNV-1a 64.
func fnv1a(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix is splitmix64 finalization.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashUnit returns a deterministic uniform in [0, 1).
func hashUnit(seed uint64, dataset, component string, k int) float64 {
	h := mix(seed ^ fnv1a(dataset)*3 ^ fnv1a(component)*5 ^ uint64(k)*0x9E3779B97F4A7C15)
	return float64(h>>11) / (1 << 53)
}
