package faults

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// FlakySchedule is a deterministic misbehavior pattern for an HTTP
// replica, indexed by request order (the chaos sibling of Schedule,
// which runs on model hours). Every clause is a modulus over the
// transport's request counter, so a fixed request sequence replays the
// same faults — the property every fleet chaos test leans on.
type FlakySchedule struct {
	// DropEvery > 0 fails every DropEvery-th request at the transport
	// (connection-reset flavor: the request may or may not have been
	// processed — exactly why only idempotent calls are retried).
	DropEvery int
	// StallEvery > 0 delays every StallEvery-th request by Stall before
	// forwarding — the tail-latency straggler hedging exists for. The
	// stall respects the request context, so a hedged loser cancels out
	// of it immediately.
	StallEvery int
	Stall      time.Duration
	// Burst5xxEvery > 0 makes request indices i with
	// i % Burst5xxEvery < Burst5xxLen answer a synthetic 503 without
	// reaching the inner transport — the "replica up but sick" mode that
	// must trip the gateway's breaker rather than its retry budget alone.
	Burst5xxEvery int
	Burst5xxLen   int
	// RetryAfterSec, when positive, stamps the synthetic 503s with a
	// Retry-After header so backoff-honoring clients can be observed
	// honoring it.
	RetryAfterSec int
}

// FlakyTransport wraps an http.RoundTripper with a FlakySchedule. It is
// the fleet's chaos plane: tests wrap a healthy replica's transport (or
// an httptest client) in one and assert the gateway's retries, hedges
// and breakers absorb the misbehavior. Precedence per request: drop,
// then 5xx burst, then stall (a stalled request still reaches the inner
// transport).
type FlakyTransport struct {
	// Inner handles the requests the schedule lets through;
	// http.DefaultTransport when nil.
	Inner http.RoundTripper
	S     FlakySchedule

	n atomic.Int64
}

// ErrFlakyDrop is the transport error a dropped request returns.
var ErrFlakyDrop = fmt.Errorf("faults: request dropped by flaky schedule")

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := int(t.n.Add(1) - 1)
	if t.S.DropEvery > 0 && i%t.S.DropEvery == t.S.DropEvery-1 {
		return nil, ErrFlakyDrop
	}
	if t.S.Burst5xxEvery > 0 && i%t.S.Burst5xxEvery < t.S.Burst5xxLen {
		return t.synthetic503(req), nil
	}
	if t.S.StallEvery > 0 && i%t.S.StallEvery == t.S.StallEvery-1 && t.S.Stall > 0 {
		timer := time.NewTimer(t.S.Stall)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// Requests returns how many requests the transport has seen.
func (t *FlakyTransport) Requests() int { return int(t.n.Load()) }

// synthetic503 fabricates the burst response without consuming the
// request body (the client may want to replay it on another replica).
func (t *FlakyTransport) synthetic503(req *http.Request) *http.Response {
	body := `{"error":"chaos: injected 5xx burst"}` + "\n"
	h := http.Header{"Content-Type": []string{"application/json"}}
	if t.S.RetryAfterSec > 0 {
		h.Set("Retry-After", strconv.Itoa(t.S.RetryAfterSec))
	}
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

var _ http.RoundTripper = (*FlakyTransport)(nil)
