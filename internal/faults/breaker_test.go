package faults

import (
	"testing"
)

func breakerOver(src *fakeSource, p BreakerParams) *Breaker {
	return NewBreaker(src, p)
}

func TestBreakerTripsOnConsecutiveEmptyWindows(t *testing.T) {
	src := &fakeSource{emptyFor: map[string]bool{"dead": true}}
	b := breakerOver(src, BreakerParams{Trip: 3, Cooldown: 5})

	for i := 0; i < 2; i++ {
		if got := b.SeriesWindow("lat", "dead", 0, 3); got != nil {
			t.Fatalf("empty component answered %v", got)
		}
		if st, _ := b.stateAt("lat", 3); st != StateClosed {
			t.Fatalf("after %d failures state = %s, want closed", i+1, st)
		}
	}
	b.SeriesWindow("lat", "dead", 0, 3) // third consecutive failure
	if st, _ := b.stateAt("lat", 3); st != StateOpen {
		t.Fatal("three consecutive empty windows should open the breaker")
	}
	if h := b.DatasetHealth("lat", 3); h.Available || h.Breaker != "open" {
		t.Fatalf("open breaker health = %+v", h)
	}

	// While open, queries short-circuit: the inner source is not touched
	// even for components that have data.
	calls := src.seriesCalls
	if got := b.SeriesWindow("lat", "live", 0, 3); got != nil {
		t.Fatalf("open breaker leaked data %v", got)
	}
	if src.seriesCalls != calls {
		t.Fatal("open breaker still queried the inner source")
	}
	// Gating is per dataset: the err breaker is still closed.
	if n := b.EventCount("err", "sw", 0, 3); n == 0 {
		t.Fatal("an open lat breaker must not gate the err dataset")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	src := &fakeSource{emptyFor: map[string]bool{"dead": true}}
	b := breakerOver(src, BreakerParams{Trip: 3, Cooldown: 5})

	b.SeriesWindow("lat", "dead", 0, 3)
	b.SeriesWindow("lat", "dead", 0, 3)
	if got := b.SeriesWindow("lat", "live", 0, 3); len(got) == 0 {
		t.Fatal("live component should answer")
	}
	b.SeriesWindow("lat", "dead", 0, 3)
	b.SeriesWindow("lat", "dead", 0, 3)
	if st, _ := b.stateAt("lat", 3); st != StateClosed {
		t.Fatal("a success between failures must reset the trip streak")
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	src := &fakeSource{emptyFor: map[string]bool{"dead": true}}
	b := breakerOver(src, BreakerParams{Trip: 2, Cooldown: 5})

	b.SeriesWindow("lat", "dead", 0, 10)
	b.SeriesWindow("lat", "dead", 0, 10)
	if st, _ := b.stateAt("lat", 10); st != StateOpen {
		t.Fatal("breaker should be open")
	}
	// Inside the cooldown the breaker stays open and short-circuits.
	if got := b.SeriesWindow("lat", "live", 0, 12); got != nil {
		t.Fatalf("cooldown leaked %v", got)
	}
	// Past the cooldown the next query is a probe; health reads half-open.
	if st, _ := b.stateAt("lat", 16); st != StateHalfOpen {
		t.Fatal("past cooldown the breaker should read half-open")
	}
	if got := b.SeriesWindow("lat", "live", 10, 16); len(got) == 0 {
		t.Fatal("probe query should reach the recovered source")
	}
	if st, _ := b.stateAt("lat", 16); st != StateClosed {
		t.Fatal("successful probe should close the breaker")
	}
	if trips := b.Trips("lat"); trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}
}

func TestBreakerHalfOpenProbeReopens(t *testing.T) {
	src := &fakeSource{emptyFor: map[string]bool{"dead": true}}
	b := breakerOver(src, BreakerParams{Trip: 2, Cooldown: 5})

	b.SeriesWindow("lat", "dead", 0, 10)
	b.SeriesWindow("lat", "dead", 0, 10)
	// Cooldown elapses; the probe still finds the component dead: one
	// failed probe re-opens immediately (no Trip-streak grace).
	if got := b.SeriesWindow("lat", "dead", 10, 16); got != nil {
		t.Fatalf("probe answered %v", got)
	}
	if st, _ := b.stateAt("lat", 16); st != StateOpen {
		t.Fatal("failed probe should re-open the breaker")
	}
	if trips := b.Trips("lat"); trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
	// The re-open restarts the cooldown from the probe's time.
	if got := b.SeriesWindow("lat", "live", 12, 18); got != nil {
		t.Fatalf("restarted cooldown leaked %v", got)
	}
}

func TestBreakerStaleAfterTrips(t *testing.T) {
	src := &fakeSource{}
	chaos := NewChaos(src, Schedule{
		Stalenesses: []Staleness{{Dataset: "lat", Start: 0, End: Forever, Lag: 8}},
	}, 1)
	b := NewBreaker(chaos, BreakerParams{Trip: 2, Cooldown: 5, StaleAfter: 4})

	// Windows answer (the frozen past), but the admitted lag exceeds the
	// tolerance, so each one counts as a failure.
	b.WindowStats("lat", "s1", 20, 25)
	b.WindowStats("lat", "s1", 20, 25)
	if st, _ := b.stateAt("lat", 25); st != StateOpen {
		t.Fatal("stale windows should trip the breaker")
	}
	// The health overlay combines inner staleness and breaker state.
	h := b.DatasetHealth("lat", 25)
	if h.Available || h.Breaker != "open" || h.Staleness != 8 {
		t.Fatalf("health = %+v", h)
	}
}

func TestBreakerEventSilenceIsNotFailure(t *testing.T) {
	src := &fakeSource{}
	b := breakerOver(src, BreakerParams{Trip: 2, Cooldown: 5})
	// "err" event windows for an unknown dataset path answer empty series:
	// query the event dataset many times; the gate must stay closed since
	// events are never observed.
	for i := 0; i < 10; i++ {
		b.EventsWindow("err", "sw1", 0, 0) // empty window
		b.EventCount("err", "sw1", 0, 0)
	}
	if st, _ := b.stateAt("err", 0); st != StateClosed {
		t.Fatal("event silence must not trip the breaker")
	}
}
