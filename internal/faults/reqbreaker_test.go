package faults

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-stepped wall clock for ReqBreaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestReqBreakerTripAndRecover(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewReqBreaker(ReqBreakerParams{Trip: 3, Cooldown: 10 * time.Second}, clk.now)

	for i := 0; i < 2; i++ {
		pass, probe := b.Allow()
		if !pass || probe {
			t.Fatalf("closed breaker: pass=%v probe=%v", pass, probe)
		}
		b.Record(false, probe)
		if b.State() != StateClosed {
			t.Fatalf("after %d failures state = %s, want closed", i+1, b.State())
		}
	}
	pass, probe := b.Allow()
	b.Record(false, probe)
	if b.State() != StateOpen || b.Trips() != 1 {
		t.Fatalf("third failure: state=%s trips=%d, want open/1", b.State(), b.Trips())
	}
	if pass, _ := b.Allow(); pass {
		t.Fatal("open breaker inside cooldown must not pass")
	}

	clk.advance(11 * time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("past cooldown state = %s, want half-open", b.State())
	}
	pass, probe = b.Allow()
	if !pass || !probe {
		t.Fatalf("first post-cooldown Allow: pass=%v probe=%v, want probe", pass, probe)
	}
	// While the probe is in flight the slot is occupied.
	if pass, _ := b.Allow(); pass {
		t.Fatal("second Allow racing the probe must short-circuit")
	}
	b.Record(true, probe)
	if b.State() != StateClosed {
		t.Fatal("successful probe should close")
	}
	if pass, probe := b.Allow(); !pass || probe {
		t.Fatal("closed breaker should pass plain traffic again")
	}
}

func TestReqBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewReqBreaker(ReqBreakerParams{Trip: 1, Cooldown: 5 * time.Second}, clk.now)

	_, probe := b.Allow()
	b.Record(false, probe) // Trip=1: immediate open
	clk.advance(6 * time.Second)
	_, probe = b.Allow()
	if !probe {
		t.Fatal("post-cooldown request should be the probe")
	}
	b.Record(false, probe)
	if b.State() != StateOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%s trips=%d, want open/2", b.State(), b.Trips())
	}
	// The re-open restarts the cooldown.
	clk.advance(3 * time.Second)
	if pass, _ := b.Allow(); pass {
		t.Fatal("restarted cooldown must still short-circuit")
	}
	clk.advance(3 * time.Second)
	if pass, probe := b.Allow(); !pass || !probe {
		t.Fatal("second cooldown elapsed: probe should pass")
	}
}

func TestReqBreakerSuccessResetsStreak(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewReqBreaker(ReqBreakerParams{Trip: 3, Cooldown: time.Second}, clk.now)
	for i := 0; i < 10; i++ {
		_, probe := b.Allow()
		b.Record(i%2 == 0, probe) // alternating outcomes never trip
	}
	if b.State() != StateClosed || b.Trips() != 0 {
		t.Fatalf("alternating outcomes tripped the breaker: %s/%d", b.State(), b.Trips())
	}
}

func TestFlakyTransportSchedule(t *testing.T) {
	inner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer inner.Close()

	ft := &FlakyTransport{S: FlakySchedule{
		DropEvery:     4, // indices 3, 7, 11, ...
		Burst5xxEvery: 8, // indices 0, 1 of every 8
		Burst5xxLen:   2,
		RetryAfterSec: 3,
	}}
	client := &http.Client{Transport: ft}

	var codes []int
	var drops int
	for i := 0; i < 16; i++ {
		resp, err := client.Get(inner.URL)
		if err != nil {
			drops++
			codes = append(codes, 0)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if got := resp.Header.Get("Retry-After"); got != "3" {
				t.Fatalf("synthetic 503 Retry-After = %q, want 3", got)
			}
		}
		codes = append(codes, resp.StatusCode)
		resp.Body.Close()
	}
	want := []int{503, 503, 200, 0, 200, 200, 200, 0, 503, 503, 200, 0, 200, 200, 200, 0}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("request %d answered %d, want %d (full: %v)", i, codes[i], want[i], codes)
		}
	}
	if drops != 4 {
		t.Fatalf("drops = %d, want 4", drops)
	}
	if ft.Requests() != 16 {
		t.Fatalf("transport saw %d requests, want 16", ft.Requests())
	}
}

func TestFlakyTransportStallRespectsContext(t *testing.T) {
	ft := &FlakyTransport{S: FlakySchedule{StallEvery: 1, Stall: time.Hour}}
	client := &http.Client{Transport: ft, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get("http://127.0.0.1:1") // never reached: stall first
	if err == nil {
		t.Fatal("stalled request should fail under the client timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall ignored the request context")
	}
}
