package faults

import (
	"sync"
	"sync/atomic"
	"testing"

	"scouts/internal/monitoring"
	"scouts/internal/topology"
)

// blockingSource counts inner queries and parks each one until released,
// so a test can hold a half-open probe in flight while racing a second
// query against the single probe slot.
type blockingSource struct {
	calls   atomic.Int64
	entered chan struct{} // one token per query that reached the source
	release chan struct{} // closed to let parked queries answer
	empty   atomic.Bool   // answer empty windows (failure) while set
}

func (s *blockingSource) Datasets() []monitoring.Descriptor {
	return []monitoring.Descriptor{
		{Name: "lat", Type: monitoring.TimeSeries, ComponentType: topology.TypeServer},
	}
}

func (s *blockingSource) SeriesWindow(dataset, component string, from, to float64) []float64 {
	s.calls.Add(1)
	s.entered <- struct{}{}
	<-s.release
	if s.empty.Load() {
		return nil
	}
	return []float64{1, 2, 3}
}

func (s *blockingSource) EventsWindow(dataset, component string, from, to float64) []monitoring.EventRecord {
	return nil
}

// TestBreakerHalfOpenSingleProbeSlot pins the probe-slot contract under
// concurrency: when an open breaker's cooldown elapses, exactly one of
// two racing queries may probe the inner source; the other must
// short-circuit to an empty answer without touching it. Run under -race
// (make chaos-smoke does) this also proves the slot handoff is properly
// synchronized.
func TestBreakerHalfOpenSingleProbeSlot(t *testing.T) {
	src := &blockingSource{entered: make(chan struct{}, 4), release: make(chan struct{})}
	b := NewBreaker(src, BreakerParams{Trip: 2, Cooldown: 5})

	// Open the breaker: two consecutive empty windows.
	src.empty.Store(true)
	close(src.release) // failures answer immediately
	b.SeriesWindow("lat", "s0", 0, 10)
	b.SeriesWindow("lat", "s0", 0, 10)
	if st, _ := b.stateAt("lat", 10); st != StateOpen {
		t.Fatal("breaker should be open after two failures")
	}
	<-src.entered
	<-src.entered

	// Re-arm the source: healthy again, but parked until released.
	src.empty.Store(false)
	src.release = make(chan struct{})

	// First query past the cooldown takes the probe slot and parks inside
	// the inner source.
	probeDone := make(chan []float64, 1)
	go func() { probeDone <- b.SeriesWindow("lat", "s0", 10, 16) }()
	<-src.entered // probe is in flight, holding the slot

	// A stampede of queries racing the in-flight probe must all
	// short-circuit: none may reach the inner source.
	callsBefore := src.calls.Load()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := b.SeriesWindow("lat", "s0", 10, 16); got != nil {
				t.Errorf("query racing the probe leaked data %v", got)
			}
		}()
	}
	wg.Wait()
	if n := src.calls.Load(); n != callsBefore {
		t.Fatalf("probe slot admitted %d extra quer(ies) to the inner source", n-callsBefore)
	}

	// Releasing the probe closes the breaker; traffic flows again.
	close(src.release)
	if got := <-probeDone; len(got) == 0 {
		t.Fatal("the probe itself should have answered")
	}
	if st, _ := b.stateAt("lat", 16); st != StateClosed {
		t.Fatal("successful probe should close the breaker")
	}
	if got := b.SeriesWindow("lat", "s0", 10, 16); len(got) == 0 {
		t.Fatal("closed breaker should pass traffic")
	}
}

// TestBreakerFailedProbeReleasesSlot ensures a failed probe both
// re-opens the breaker and releases the slot, so the next cooldown's
// probe is not wedged out by a stale occupancy bit.
func TestBreakerFailedProbeReleasesSlot(t *testing.T) {
	src := &blockingSource{entered: make(chan struct{}, 8), release: make(chan struct{})}
	close(src.release)
	src.empty.Store(true)
	b := NewBreaker(src, BreakerParams{Trip: 2, Cooldown: 5})

	b.SeriesWindow("lat", "s0", 0, 10)
	b.SeriesWindow("lat", "s0", 0, 10) // open @10
	b.SeriesWindow("lat", "s0", 10, 16) // failed probe, re-open @16
	if st, _ := b.stateAt("lat", 16); st != StateOpen {
		t.Fatal("failed probe should re-open")
	}
	src.empty.Store(false)
	if got := b.SeriesWindow("lat", "s0", 16, 22); len(got) == 0 {
		t.Fatal("next cooldown's probe should pass (slot must have been released)")
	}
	if st, _ := b.stateAt("lat", 22); st != StateClosed {
		t.Fatal("successful second probe should close the breaker")
	}
}
