// Package metrics implements the evaluation metrics used throughout the
// paper: precision/recall/F1 for binary classifiers (§7 "Accuracy Metrics"),
// empirical CDFs and percentile summaries for the figure reproductions, and
// the Euclidean class-distance analyses of Appendix B (Figures 13–14).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary-classification confusion matrix. By the paper's
// convention the positive class is "this team (PhyNet) is responsible".
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) observation.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision is TP / (TP + FP): how trustworthy a positive output is.
// Returns 1 when the classifier never fired (vacuous precision).
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN): the portion of positive incidents found.
// Returns 1 when there were no positive incidents at all.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy is the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 1
	}
	return float64(c.TP+c.TN) / float64(t)
}

// F1 is the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix in a compact single line for logs and tests.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// CDF is an empirical cumulative distribution built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF. The input slice is copied.
func NewCDF(sample []float64) *CDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s finds the first index with sorted[i] >= x; walk
	// forward over ties so we count values <= x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th sample quantile, q in [0, 1], with linear
// interpolation between order statistics.
func (c *CDF) Quantile(q float64) float64 {
	return Quantile(c.sorted, q)
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points samples the CDF at n evenly spaced probabilities and returns
// (value, probability) pairs, convenient for printing figure series.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out = append(out, [2]float64{c.Quantile(q), q})
	}
	return out
}

// Quantile computes the q-th quantile of an ALREADY SORTED sample with
// linear interpolation. It is exported so callers that maintain sorted data
// can avoid the CDF allocation.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// SummaryStats is the fixed statistic set the Scout framework computes over
// every time series (§5.2): mean, std, min, max and the paper's percentile
// ladder (1, 10, 25, 50, 75, 90, 99).
type SummaryStats struct {
	Mean, Std, Min, Max              float64
	P1, P10, P25, P50, P75, P90, P99 float64
}

// SummaryNames lists the feature names of SummaryStats in Vector() order.
var SummaryNames = []string{
	"mean", "std", "min", "max", "p1", "p10", "p25", "p50", "p75", "p90", "p99",
}

// Summarize computes SummaryStats over a sample. An empty sample yields the
// zero value, which the feature builder treats as "component not observed".
func Summarize(xs []float64) SummaryStats {
	if len(xs) == 0 {
		return SummaryStats{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return SummaryStats{
		Mean: Mean(s),
		Std:  StdDev(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		P1:   Quantile(s, 0.01),
		P10:  Quantile(s, 0.10),
		P25:  Quantile(s, 0.25),
		P50:  Quantile(s, 0.50),
		P75:  Quantile(s, 0.75),
		P90:  Quantile(s, 0.90),
		P99:  Quantile(s, 0.99),
	}
}

// Vector flattens the statistics in SummaryNames order.
func (s SummaryStats) Vector() []float64 {
	out := make([]float64, len(SummaryNames))
	s.VectorInto(out)
	return out
}

// VectorInto writes the statistics into dst (len(SummaryNames) cells) in
// SummaryNames order — the allocation-free form the featurization hot path
// uses to fill pooled feature vectors in place.
//
//scout:hotpath
func (s SummaryStats) VectorInto(dst []float64) {
	dst[0], dst[1], dst[2], dst[3] = s.Mean, s.Std, s.Min, s.Max
	dst[4], dst[5], dst[6], dst[7] = s.P1, s.P10, s.P25, s.P50
	dst[8], dst[9], dst[10] = s.P75, s.P90, s.P99
}

// Euclidean returns the Euclidean distance between two feature vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: Euclidean dimension mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ClassDistances computes the three distance distributions of Figure 13:
// pairwise distances within the positive class, within the negative class,
// and across the two classes. To keep the computation bounded for large
// samples, at most maxPairs pairs are used per distribution, taken in a
// deterministic stride over the pair space.
func ClassDistances(pos, neg [][]float64, maxPairs int) (withinPos, withinNeg, cross []float64) {
	withinPos = pairDistances(pos, pos, true, maxPairs)
	withinNeg = pairDistances(neg, neg, true, maxPairs)
	cross = pairDistances(pos, neg, false, maxPairs)
	return withinPos, withinNeg, cross
}

func pairDistances(a, b [][]float64, same bool, maxPairs int) []float64 {
	if maxPairs <= 0 {
		maxPairs = 1 << 20
	}
	var total int
	if same {
		total = len(a) * (len(a) - 1) / 2
	} else {
		total = len(a) * len(b)
	}
	if total <= 0 {
		return nil
	}
	stride := 1
	if total > maxPairs {
		stride = (total + maxPairs - 1) / maxPairs
	}
	out := make([]float64, 0, min(total, maxPairs))
	k := 0
	if same {
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				if k%stride == 0 {
					out = append(out, Euclidean(a[i], a[j]))
				}
				k++
			}
		}
	} else {
		for i := 0; i < len(a); i++ {
			for j := 0; j < len(b); j++ {
				if k%stride == 0 {
					out = append(out, Euclidean(a[i], b[j]))
				}
				k++
			}
		}
	}
	return out
}
