package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 85 TN, 5 FN
	for i := 0; i < 8; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 85; i++ {
		c.Add(false, false)
	}
	for i := 0; i < 5; i++ {
		c.Add(false, true)
	}
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	if got, want := c.Precision(), 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("precision = %v want %v", got, want)
	}
	if got, want := c.Recall(), 8.0/13.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("recall = %v want %v", got, want)
	}
	if got, want := c.Accuracy(), 0.93; math.Abs(got-want) > 1e-12 {
		t.Errorf("accuracy = %v want %v", got, want)
	}
}

func TestConfusionVacuousCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 || c.Accuracy() != 1 {
		t.Fatal("empty confusion should be vacuously perfect")
	}
	c.Add(false, false)
	if c.Precision() != 1 {
		t.Fatal("no positive predictions should give precision 1")
	}
	if c.F1() != 1 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestF1HarmonicMean(t *testing.T) {
	c := Confusion{TP: 1, FP: 1, FN: 3}
	p, r := c.Precision(), c.Recall()
	want := 2 * p * r / (p + r)
	if math.Abs(c.F1()-want) > 1e-12 {
		t.Fatalf("F1 = %v want %v", c.F1(), want)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1}}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v want %v", tc.x, got, tc.want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := Quantile(s, 0.5); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(s, 0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(s, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if len(s.Vector()) != len(SummaryNames) {
		t.Fatalf("vector length %d != names %d", len(s.Vector()), len(SummaryNames))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	for i, v := range s.Vector() {
		if v != 0 {
			t.Fatalf("empty summary has non-zero %s = %v", SummaryNames[i], v)
		}
	}
}

func TestEuclideanKnown(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("d = %v", d)
	}
}

func TestClassDistancesSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pos, neg [][]float64
	for i := 0; i < 30; i++ {
		pos = append(pos, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
		neg = append(neg, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	within, withinNeg, cross := ClassDistances(pos, neg, 0)
	if Mean(cross) < 5*Mean(within) || Mean(cross) < 5*Mean(withinNeg) {
		t.Fatalf("cross distance %v should dominate within %v / %v",
			Mean(cross), Mean(within), Mean(withinNeg))
	}
}

func TestClassDistancesCapped(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 100; i++ {
		pts = append(pts, []float64{float64(i)})
	}
	within, _, cross := ClassDistances(pts, pts, 50)
	if len(within) > 50 || len(cross) > 50 {
		t.Fatalf("cap not honored: %d %d", len(within), len(cross))
	}
	if len(within) == 0 || len(cross) == 0 {
		t.Fatal("capped distributions should not be empty")
	}
}

// Property: a CDF is monotone non-decreasing and bounded by [0,1], and
// Quantile is its (approximate) inverse for in-range probabilities.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sample = append(sample, math.Mod(v, 1e9))
		}
		if len(sample) == 0 {
			return true
		}
		c := NewCDF(sample)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.At(c.Quantile(q))
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize percentiles are ordered min <= p1 <= ... <= p99 <= max.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sample = append(sample, math.Mod(v, 1e6))
		}
		if len(sample) == 0 {
			return true
		}
		s := Summarize(sample)
		ladder := []float64{s.Min, s.P1, s.P10, s.P25, s.P50, s.P75, s.P90, s.P99, s.Max}
		return sort.Float64sAreSorted(ladder)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Euclidean satisfies symmetry and the triangle inequality.
func TestEuclideanMetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		vec := func() []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = r.NormFloat64() * 100
			}
			return v
		}
		a, b, c := vec(), vec(), vec()
		if math.Abs(Euclidean(a, b)-Euclidean(b, a)) > 1e-9 {
			return false
		}
		return Euclidean(a, c) <= Euclidean(a, b)+Euclidean(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
