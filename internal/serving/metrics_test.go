package serving

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scouts/internal/core"
	"scouts/internal/faults"
	"scouts/internal/telemetry"
)

// fakeClock hands out wall times advancing a fixed step per call, so
// every instrumented request observes exactly the same latency and the
// /metrics payload is fully deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestMetricsEndpoint drives a trained server — over a breaker-wrapped
// source so the breaker series register — through a fixed request mix
// and pins the /metrics payload: exact per-endpoint request counters,
// exact histogram sums under the injected clock (no wall-clock leaks),
// model gauges, prediction counters and breaker state.
func TestMetricsEndpoint(t *testing.T) {
	gen, log, cfg := testEnv(t)
	store := NewStore()
	tr := &Trainer{Store: store}
	if _, _, err := tr.TrainAndPublish(core.TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: log.Incidents[:300],
		Seed:      1,
	}); err != nil {
		t.Fatal(err)
	}
	br := faults.NewBreaker(gen.Telemetry(), faults.BreakerParams{})
	srv := NewServer(gen.Topology(), br, store, nil)
	srv.Clock = (&fakeClock{t: time.Unix(0, 0), step: 5 * time.Millisecond}).Now
	var access bytes.Buffer
	srv.Access = telemetry.NewLogger(&access)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rec
	}
	in := log.Incidents[300]
	predictBody := `{"title":` + quoteJSON(in.Title) + `,"body":` + quoteJSON(in.Body) + `,"time":` + "1000" + `}`
	if rec := do("POST", "/v1/predict", predictBody); rec.Code != 200 {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do("POST", "/v1/predict", `{"bad`); rec.Code != 400 {
		t.Fatalf("malformed predict: %d", rec.Code)
	}
	if rec := do("GET", "/v1/health", ""); rec.Code != 200 {
		t.Fatalf("health: %d", rec.Code)
	}
	if rec := do("GET", "/nope", ""); rec.Code != 404 {
		t.Fatalf("catch-all: %d", rec.Code)
	}

	rec := do("GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body := rec.Body.String()

	// Exact series values: the injected clock steps 5ms per Clock() call
	// and instrument calls it twice per request, so every request records
	// exactly 0.005s. The /metrics request itself observes after
	// rendering, so it is absent from its own scrape.
	wantLines := []string{
		`scout_http_requests_total{code="200",endpoint="/v1/predict"} 1`,
		`scout_http_requests_total{code="400",endpoint="/v1/predict"} 1`,
		`scout_http_requests_total{code="200",endpoint="/v1/health"} 1`,
		`scout_http_requests_total{code="404",endpoint="other"} 1`,
		`scout_http_request_duration_seconds_sum{endpoint="/v1/predict"} 0.01`,
		`scout_http_request_duration_seconds_count{endpoint="/v1/predict"} 2`,
		`scout_model_version 1`,
		`scout_model_reloads_total 1`,
		`scout_http_requests_shed_total 0`,
		`scout_http_request_timeouts_total 0`,
		`scout_http_panics_recovered_total 0`,
	}
	for _, want := range wantLines {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("metrics missing exact line %q", want)
		}
	}
	// Structural series: values depend on the model's answer, presence
	// does not.
	wantSeries := []string{
		`scout_predictions_total{model="rf"}`,
		`scout_predictions_total{model="cpd+"}`,
		`scout_prediction_fallbacks_total`,
		`scout_imputed_predictions_total`,
		`scout_breaker_state{dataset="`,
		`scout_dataset_available{dataset="`,
		`scout_breaker_trips_total{dataset="`,
		`scout_http_request_duration_seconds_bucket{endpoint="/v1/predict",le="+Inf"}`,
	}
	for _, want := range wantSeries {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing series %q", want)
		}
	}
	if strings.Contains(body, " NaN") || strings.Contains(body, "} -") {
		t.Error("metrics contain NaN or negative samples")
	}

	// One prediction was served; exactly one model counter moved.
	var predTotal int64
	for _, c := range srv.tel.predByModel {
		predTotal += c.Value()
	}
	predTotal += srv.tel.predOther.Value()
	if predTotal != 1 {
		t.Errorf("scout_predictions_total sums to %d, want 1", predTotal)
	}

	// The access log carries one line per request with the middleware's
	// request IDs, and no "ts" field (no clock was injected).
	lines := strings.Split(strings.TrimSpace(access.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("access log has %d lines, want 5:\n%s", len(lines), access.String())
	}
	for _, ln := range lines {
		if !strings.Contains(ln, `"request_id":"r`) {
			t.Errorf("access line lacks a request ID: %s", ln)
		}
		if strings.Contains(ln, `"ts":`) {
			t.Errorf("clockless access line carries a timestamp: %s", ln)
		}
	}
}

func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// TestObserverZeroAlloc guards the PR 3 invariant at the seam the
// observer added: recording a prediction — the per-item work the batch
// scorer now does on every element — must not allocate, whatever the
// verdict, as long as no access logger is wired.
func TestObserverZeroAlloc(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	ctx := context.Background()
	preds := []core.Prediction{
		{Verdict: core.VerdictResponsible, Model: "rf"},
		{Verdict: core.VerdictNotResponsible, Model: "cpd+", Health: &core.DataHealth{ImputedSlots: 3, TotalSlots: 10}},
		{Verdict: core.VerdictFallback, Model: "none", Explanation: "degraded"},
		{Verdict: core.VerdictExcluded, Model: "exclude-rule"},
	}
	if n := testing.AllocsPerRun(200, func() {
		for i := range preds {
			srv.ObservePrediction(ctx, &preds[i])
		}
	}); n != 0 {
		t.Fatalf("ObservePrediction allocates %.1f objects per run, want 0", n)
	}
}

// TestHTTPMetricsUnderConcurrency hammers the instrumented handler from
// many goroutines (run under -race in CI) and checks no sample is lost.
func TestHTTPMetricsUnderConcurrency(t *testing.T) {
	srv := NewServer(nil, nil, NewStore(), nil)
	h := srv.Handler()
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
				if rec.Code != http.StatusServiceUnavailable {
					t.Errorf("health = %d, want 503 (no model)", rec.Code)
				}
			}
		}()
	}
	wg.Wait()
	em := srv.tel.endpoint("/v1/health")
	if got := em.codeCounter(503).Value(); got != workers*each {
		t.Fatalf("503 counter = %d, want %d", got, workers*each)
	}
	if got := em.dur.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}
