package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestPredictRejectsMissingTime(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tm := range []float64{0, -12.5} {
		body, _ := json.Marshal(PredictRequest{
			Title: "link down", Body: "tor1.c1.dc1 unreachable", Time: tm,
		})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("time=%v should 400, got %d", tm, resp.StatusCode)
		}
		if eb.Error == "" {
			t.Fatalf("time=%v rejection should explain itself", tm)
		}
	}
}

func TestReloadEmptyStoreAnswers503(t *testing.T) {
	gen, _, _ := testEnv(t)
	srv := NewServer(gen.Topology(), gen.Telemetry(), NewStore(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// 503, not 409: the client did nothing wrong — the serving side is not
	// ready, and load balancers treat 503 as "retry elsewhere / later".
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("reload from empty store should 503, got %d", resp.StatusCode)
	}
}

// TestHotSwapUnderLoad publishes and reloads new model versions while
// /v1/predict traffic is in flight. Run under -race this exercises the
// atomic model swap: every in-flight request must see a complete model
// (one consistent scout+version pair) and answer 200.
func TestHotSwapUnderLoad(t *testing.T) {
	srv, store, _ := trainAndServe(t)
	_, log, _ := testEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in := log.Incidents[len(log.Incidents)-5]
	body, _ := json.Marshal(PredictRequest{
		Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
	})

	baseVersions := store.Versions()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Swapper: republish the current snapshot as new versions and hot-swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, _ := store.Latest()
		for i := 0; i < 10; i++ {
			store.Put(m.Team, m.Snapshot)
			resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
			if err != nil {
				t.Error(err)
				break
			}
			resp.Body.Close()
		}
		close(stop)
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var pr PredictResponse
				if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
					t.Error(err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict during swap: status %d", resp.StatusCode)
					return
				}
				if pr.ModelVersion < baseVersions {
					t.Errorf("prediction from pre-swap version %d", pr.ModelVersion)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := store.Versions(); got != baseVersions+10 {
		t.Fatalf("store has %d versions, want %d", got, baseVersions+10)
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
}
