package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"scouts/internal/core"
	"scouts/internal/faults"
	"scouts/internal/incident"
	"scouts/internal/monitoring"
)

// chaosSource darkens half the trained Scout's datasets forever and wraps
// the result in circuit breakers, returning the source and the darkened
// names (sorted order keeps the choice deterministic).
func chaosSource(t *testing.T, seed int64) (monitoring.DataSource, []string) {
	t.Helper()
	gen, _, cfg := testEnv(t)
	var names []string
	for _, d := range gen.Telemetry().Datasets() {
		if cfg.UsesDataset(d.Name) {
			names = append(names, d.Name)
		}
	}
	sort.Strings(names)
	dark := names[:len(names)/2]
	var sched faults.Schedule
	for _, n := range dark {
		sched.Blackouts = append(sched.Blackouts, faults.Blackout{Dataset: n, Start: 0, End: faults.Forever})
	}
	chaos := faults.NewChaos(gen.Telemetry(), sched, seed)
	return faults.NewBreaker(chaos, faults.BreakerParams{Trip: 8, Cooldown: 2}), dark
}

// The chaos tests share one clean-trained snapshot (training is the
// expensive part and every test serves the same model).
var (
	onceSnap sync.Once
	snapData []byte
	snapErr  error
)

func chaosSnapshot(t *testing.T) []byte {
	t.Helper()
	gen, log, cfg := testEnv(t)
	onceSnap.Do(func() {
		scout, err := core.Train(core.TrainOptions{
			Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
			Incidents: log.Incidents[:300], Seed: 1,
		})
		if err != nil {
			snapErr = err
			return
		}
		snapData, snapErr = scout.Snapshot()
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return snapData
}

// chaosServe publishes the shared clean-trained model and serves it
// against the chaos-wrapped source with the full hardening chain on.
func chaosServe(t *testing.T, src monitoring.DataSource) *Server {
	t.Helper()
	gen, _, _ := testEnv(t)
	store := NewStore()
	store.Put("PhyNet", chaosSnapshot(t))
	srv := NewServer(gen.Topology(), src, store, nil)
	srv.MaxInFlight = 4
	srv.RequestTimeout = 30 * time.Second
	srv.Degradation = core.DegradationPolicy{MinCoverage: 0.25}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestChaosServingUnderBlackout is the fault-injection integration test:
// a Scout serving through a seeded 50% dataset blackout behind circuit
// breakers, hammered concurrently (run under -race). The server must stay
// available — every response is 200 (possibly a fallback verdict) or a
// deliberate 429 shed; never a 5xx, never a dropped connection — and
// /v1/health must own up to the degradation.
func TestChaosServingUnderBlackout(t *testing.T) {
	src, dark := chaosSource(t, 99)
	srv := chaosServe(t, src)
	_, log, _ := testEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ins := log.Incidents[300:]
	const workers = 8
	codes := make([]map[int]int, workers)
	sawHealth := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			codes[w] = map[int]int{}
			for i := w; i < len(ins); i += workers {
				in := ins[i]
				body, _ := json.Marshal(PredictRequest{
					Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
				})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("request failed outright: %v", err)
					return
				}
				codes[w][resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					var pr PredictResponse
					if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
						t.Errorf("bad response body: %v", err)
					}
					if pr.DataHealth != nil && len(pr.DataHealth.DatasetsDown) > 0 {
						sawHealth[w] = true
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	total := map[int]int{}
	anyHealth := false
	for w := range codes {
		for c, n := range codes[w] {
			total[c] += n
		}
		anyHealth = anyHealth || sawHealth[w]
	}
	for c := range total {
		if c != http.StatusOK && c != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d under chaos (breakdown %v)", c, total)
		}
	}
	if total[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", total)
	}
	if !anyHealth {
		t.Fatal("no prediction admitted to the blackout in its data_health")
	}

	// The health endpoint must report degraded with the dark datasets and
	// breaker states on display.
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status     string                     `json:"status"`
		DataHealth []monitoring.DatasetHealth `json:"data_health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded", health.Status)
	}
	down := map[string]bool{}
	for _, h := range health.DataHealth {
		if h.Breaker == "" {
			t.Fatalf("breaker state missing from %+v", h)
		}
		if !h.Available {
			down[h.Dataset] = true
		}
	}
	for _, n := range dark {
		if !down[n] {
			t.Fatalf("health hides the %s blackout: %+v", n, health.DataHealth)
		}
	}
}

// TestChaosServingDeterministic reruns an identical request sequence
// against two identically-seeded chaos servers and demands bit-identical
// response bodies: every injected fault is a pure function of (schedule,
// seed, query window), so a chaos run is replayable evidence, not noise.
func TestChaosServingDeterministic(t *testing.T) {
	_, log, _ := testEnv(t)
	ins := log.Incidents[300:340]
	run := func() []string {
		src, _ := chaosSource(t, 99)
		srv := chaosServe(t, src)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var out []string
		for _, in := range ins {
			body, _ := json.Marshal(PredictRequest{
				Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
			})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, resp.Status+" "+string(b))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged between identical seeded runs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestShedding verifies the 429 path deterministically: a server with
// MaxInFlight saturated by parked requests sheds the next one immediately
// with a Retry-After hint.
func TestShedding(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	srv.MaxInFlight = 1
	srv.inflight = nil // re-arm in case Handler was built before

	release := make(chan struct{})
	parked := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/park", func(w http.ResponseWriter, _ *http.Request) {
		close(parked)
		<-release
	})
	h := srv.withRecover(srv.withShedding(mux))
	srv.inflight = make(chan struct{}, srv.MaxInFlight)
	ts := httptest.NewServer(h)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/park")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-parked // the one slot is now held

	resp, err := http.Get(ts.URL + "/park")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	close(release)
	<-done
}

// TestPanicRecovery feeds the recovery middleware a handler that panics
// and expects a 500 — not a crashed test binary.
func TestPanicRecovery(t *testing.T) {
	srv := NewServer(nil, nil, NewStore(), nil)
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("scoring bug") })
	ts := httptest.NewServer(srv.withRecover(mux))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic answered %d, want 500", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error == "" {
		t.Fatal("500 must carry an error body")
	}
}

// TestRequestDeadline pins the 503 deadline path with a handler slower
// than the budget: JSON body, application/json Content-Type (the
// http.TimeoutHandler this replaced content-sniffed its body to
// text/plain), and the deadline propagating into the handler's context.
func TestRequestDeadline(t *testing.T) {
	srv := NewServer(nil, nil, NewStore(), nil)
	srv.RequestTimeout = 20 * time.Millisecond
	mux := http.NewServeMux()
	release := make(chan struct{})
	defer close(release)
	handlerSawDeadline := make(chan struct{})
	mux.HandleFunc("/slow", func(_ http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // the deadline propagates into the handler
			close(handlerSawDeadline)
		case <-release:
		}
	})
	h := srv.withRecover(srv.withDeadline(mux))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overrun answered %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout response Content-Type = %q, want application/json", ct)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("timeout body is not JSON: %v", err)
	}
	if eb.Error == "" {
		t.Fatal("timeout response must carry an error body")
	}
	select {
	case <-handlerSawDeadline:
	case <-time.After(2 * time.Second):
		t.Fatal("handler context never expired after the 503 was sent")
	}
	if got := srv.tel.timeouts.Value(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

// TestDeadlinePanicPropagates pins that a panic inside the deadline
// goroutine is re-raised on the serving goroutine and still answers a
// JSON 500 through the recovery middleware.
func TestDeadlinePanicPropagates(t *testing.T) {
	srv := NewServer(nil, nil, NewStore(), nil)
	srv.RequestTimeout = time.Second
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(srv.withRecover(srv.withDeadline(mux)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic under deadline answered %d, want 500", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
}

// TestDegradationOverHTTP drives a full-blackout server with a coverage
// floor: answers must be fallback verdicts that explain themselves.
func TestDegradationOverHTTP(t *testing.T) {
	gen, logTrace, cfg := testEnv(t)
	var sched faults.Schedule
	for _, d := range gen.Telemetry().Datasets() {
		if cfg.UsesDataset(d.Name) {
			sched.Blackouts = append(sched.Blackouts, faults.Blackout{Dataset: d.Name, Start: 0, End: faults.Forever})
		}
	}
	srv := chaosServe(t, faults.NewChaos(gen.Telemetry(), sched, 1))
	srv.Degradation = core.DegradationPolicy{MinCoverage: 0.5}
	if err := srv.Reload(); err != nil { // re-apply the tightened policy
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var in *incident.Incident
	for _, cand := range logTrace.Incidents[300:] {
		if p := srv.PredictIncident(cand); p.Model != "exclude-rule" && len(p.Components) > 0 {
			in = cand
			break
		}
	}
	if in == nil {
		t.Fatal("no suitable incident")
	}
	body, _ := json.Marshal(PredictRequest{Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded predict answered %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Verdict != string(core.VerdictFallback) {
		t.Fatalf("full blackout under a coverage floor must fall back, got %+v", pr)
	}
	if pr.DataHealth == nil || pr.DataHealth.DatasetCoverage != 0 {
		t.Fatalf("fallback must carry its data health: %+v", pr.DataHealth)
	}
}
