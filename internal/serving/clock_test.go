package serving

import (
	"testing"
	"time"
)

// TestInjectedClock pins the clock-injection contract: with a fixed Now,
// the published model's TrainedAt is a pure function of the injected
// time, so snapshot metadata is reproducible in tests.
func TestInjectedClock(t *testing.T) {
	fixed := time.Date(2020, 8, 10, 12, 0, 0, 0, time.FixedZone("PDT", -7*3600))
	st := NewStore()
	st.Now = func() time.Time { return fixed }

	v := st.Put("PhyNet", []byte(`{"snapshot":true}`))
	m, ok := st.Get(v)
	if !ok {
		t.Fatalf("Get(%d) missing", v)
	}
	if !m.TrainedAt.Equal(fixed) {
		t.Fatalf("TrainedAt = %v, want %v", m.TrainedAt, fixed)
	}
	if m.TrainedAt.Location() != time.UTC {
		t.Fatalf("TrainedAt stored in %v, want UTC", m.TrainedAt.Location())
	}

	// The zero value still works: a nil Now lazily falls back to time.Now.
	var zero Store
	zero.Put("PhyNet", []byte(`{}`))
	if m2, ok := zero.Latest(); !ok || m2.TrainedAt.IsZero() {
		t.Fatalf("zero-value store did not stamp TrainedAt: %+v ok=%v", m2, ok)
	}
}
