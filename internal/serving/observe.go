package serving

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"scouts/internal/core"
	"scouts/internal/monitoring"
	"scouts/internal/telemetry"
)

// This file is the server's self-observability plane: the metric set,
// the per-endpoint instrumentation middleware, request-ID plumbing and
// the core.PredictObserver implementation. The invariants (DESIGN.md
// §11): recording a sample on the request path is atomic adds only —
// no locks, no label hashing, no allocation — and nothing exported
// through /metrics reads the wall clock, so a scrape under an injected
// clock is reproducible byte for byte.

// endpoints is the full route set of Handler(), plus the catch-all.
// Per-endpoint series are pre-registered from this list so request-time
// lookup is a prebuilt pointer, never a registry access.
var endpoints = []string{
	"/v1/health", "/v1/model", "/v1/reload", "/v1/predict", "/v1/predict:batch",
	"/metrics", "other",
}

// statusCodes are the label values of scout_http_requests_total; every
// status the serving layer can produce, with "other" as the catch-all.
var statusCodes = []int{200, 400, 404, 405, 413, 429, 500, 503}

// endpointMetrics is one endpoint's request instrumentation.
type endpointMetrics struct {
	dur *telemetry.Histogram
	// byCode is read-only after construction; map reads without a lock
	// are safe, and the fixed code set keeps label cardinality bounded.
	byCode map[int]*telemetry.Counter
	other  *telemetry.Counter
}

func (em *endpointMetrics) codeCounter(status int) *telemetry.Counter {
	if c, ok := em.byCode[status]; ok {
		return c
	}
	return em.other
}

// serverMetrics is every series the server exports, held by pointer so
// the request path records without touching the registry.
type serverMetrics struct {
	reg *telemetry.Registry

	endpoints map[string]*endpointMetrics

	shed     *telemetry.Counter
	timeouts *telemetry.Counter
	panics   *telemetry.Counter

	reloads      *telemetry.Counter
	modelVersion *telemetry.Gauge
	// loadSeconds holds the float64 bits of the last model load's
	// duration; exported through a GaugeFunc because the gauge type is
	// integral and load latency needs sub-second resolution.
	loadSeconds atomic.Uint64
	modelBytes  *telemetry.Gauge
	// modelFormat is 0 while a JSON snapshot is served, 1 for a scoutpack.
	modelFormat *telemetry.Gauge

	predByModel map[string]*telemetry.Counter
	predOther   *telemetry.Counter
	fallbacks   *telemetry.Counter

	imputedPredictions *telemetry.Counter
	imputedSlots       *telemetry.Counter
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg:       reg,
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		shed: reg.Counter("scout_http_requests_shed_total",
			"Requests shed with 429 because MaxInFlight was saturated."),
		timeouts: reg.Counter("scout_http_request_timeouts_total",
			"Requests answered 503 because they overran RequestTimeout."),
		panics: reg.Counter("scout_http_panics_recovered_total",
			"Handler panics converted to 500 responses by the recovery middleware."),
		reloads: reg.Counter("scout_model_reloads_total",
			"Successful model loads (startup load included)."),
		modelVersion: reg.Gauge("scout_model_version",
			"Version of the currently served model (0 before the first load)."),
		modelBytes: reg.Gauge("scout_model_bytes",
			"Size in bytes of the snapshot behind the served model."),
		modelFormat: reg.Gauge("scout_model_snapshot_format",
			"Format of the served snapshot: 0 JSON, 1 scoutpack (binary)."),
		predByModel: map[string]*telemetry.Counter{},
		fallbacks: reg.Counter("scout_prediction_fallbacks_total",
			"Predictions answered VerdictFallback (legacy routing takes over)."),
		imputedPredictions: reg.Counter("scout_imputed_predictions_total",
			"Predictions whose feature vector carried at least one imputed slot."),
		imputedSlots: reg.Counter("scout_imputed_slots_total",
			"Feature-vector slots filled with training means across all predictions."),
	}
	const reqHelp = "HTTP requests by endpoint and status code."
	const durHelp = "HTTP request latency in seconds by endpoint."
	for _, ep := range endpoints {
		em := &endpointMetrics{
			dur:    reg.Histogram("scout_http_request_duration_seconds", durHelp, nil, telemetry.L("endpoint", ep)),
			byCode: make(map[int]*telemetry.Counter, len(statusCodes)),
			other: reg.Counter("scout_http_requests_total", reqHelp,
				telemetry.L("endpoint", ep), telemetry.L("code", "other")),
		}
		for _, code := range statusCodes {
			em.byCode[code] = reg.Counter("scout_http_requests_total", reqHelp,
				telemetry.L("endpoint", ep), telemetry.L("code", strconv.Itoa(code)))
		}
		m.endpoints[ep] = em
	}
	const predHelp = "Predictions served, by answering model."
	for _, model := range []string{"rf", "cpd+", "exclude-rule", "none"} {
		m.predByModel[model] = reg.Counter("scout_predictions_total", predHelp, telemetry.L("model", model))
	}
	m.predOther = reg.Counter("scout_predictions_total", predHelp, telemetry.L("model", "other"))
	reg.GaugeFunc("scout_model_load_duration_seconds",
		"Wall time of the last model load: store read + snapshot restore (0 before the first load).",
		func() float64 { return math.Float64frombits(m.loadSeconds.Load()) })
	return m
}

// setLoadStats records one model load's observability triple: how long
// the restore took (by the server's injected clock, so tests see exact
// values), how many bytes the snapshot was, and which format it was in.
func (m *serverMetrics) setLoadStats(d time.Duration, bytes int, packed bool) {
	m.loadSeconds.Store(math.Float64bits(d.Seconds()))
	m.modelBytes.Set(int64(bytes))
	format := int64(0)
	if packed {
		format = 1
	}
	m.modelFormat.Set(format)
}

func (m *serverMetrics) endpoint(name string) *endpointMetrics {
	if em, ok := m.endpoints[name]; ok {
		return em
	}
	return m.endpoints["other"]
}

// registerSourceMetrics exports the data source's availability picture —
// per-dataset breaker state and lifetime trip counts — as scrape-time
// callbacks reading the live breaker at the health clock's time (the
// maximum trigger time any prediction asked about; never the wall
// clock). Sources without a health capability export nothing.
func (s *Server) registerSourceMetrics() {
	hr := monitoring.HealthReporterOf(s.source)
	if hr == nil {
		return
	}
	type tripsCounter interface{ Trips(string) int }
	tc, hasTrips := s.source.(tripsCounter)
	for _, d := range s.source.Datasets() {
		name := d.Name
		s.tel.reg.GaugeFunc("scout_breaker_state",
			"Circuit-breaker state per dataset: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				t := math.Float64frombits(s.lastTime.Load())
				switch hr.DatasetHealth(name, t).Breaker {
				case "open":
					return 2
				case "half-open":
					return 1
				default:
					return 0
				}
			},
			telemetry.L("dataset", name))
		s.tel.reg.GaugeFunc("scout_dataset_available",
			"Whether the dataset currently answers queries (1) or is dark (0).",
			func() float64 {
				t := math.Float64frombits(s.lastTime.Load())
				if hr.DatasetHealth(name, t).Available {
					return 1
				}
				return 0
			},
			telemetry.L("dataset", name))
		if hasTrips {
			s.tel.reg.CounterFunc("scout_breaker_trips_total",
				"Times the dataset's circuit breaker has opened.",
				func() float64 { return float64(tc.Trips(name)) },
				telemetry.L("dataset", name))
		}
	}
}

// Metrics returns the server's metric registry (the GET /metrics
// payload); tests and embedding binaries can render or extend it.
func (s *Server) Metrics() *telemetry.Registry { return s.tel.reg }

// nextRequestID mints a per-request ID: the instance prefix (set by the
// binary; empty in tests keeps IDs short and deterministic) plus a
// process-monotonic sequence number. No randomness, no wall clock.
func (s *Server) nextRequestID() string {
	n := s.reqSeq.Add(1)
	if s.InstanceID != "" {
		return s.InstanceID + "-" + strconv.FormatUint(n, 10)
	}
	return "r" + strconv.FormatUint(n, 10)
}

// withRequestID is the outermost middleware: every request — including
// ones later shed, timed out or panicking — gets an ID, echoed in the
// X-Request-Id response header and propagated through the request
// context into the batch scorer and the access log.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := s.nextRequestID()
		w.Header().Set("X-Request-Id", rid)
		next.ServeHTTP(w, r.WithContext(telemetry.WithRequestID(r.Context(), rid)))
	})
}

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps one endpoint's handler with its latency histogram,
// status counters and the structured access log. It is the layer the
// scoutlint obs analyzer demands on every mux registration: a handler
// that never passes through here serves invisible requests.
func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	em := s.tel.endpoint(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.Clock()
		sw := &statusWriter{ResponseWriter: w}
		done := false
		// Observation is deferred so a panicking handler still records a
		// sample (as a 500; the recovery middleware owns the response).
		defer func() {
			elapsed := s.Clock().Sub(start)
			em.dur.ObserveDuration(elapsed)
			status := sw.code
			if status == 0 {
				status = http.StatusOK
			}
			if !done {
				status = http.StatusInternalServerError
			}
			em.codeCounter(status).Inc()
			if s.Access != nil {
				s.Access.Log("http_request",
					telemetry.F("request_id", telemetry.RequestID(r.Context())),
					telemetry.F("method", r.Method),
					telemetry.F("endpoint", endpoint),
					telemetry.F("status", status),
					telemetry.F("duration_ms", float64(elapsed)/1e6),
				)
			}
		}()
		next.ServeHTTP(sw, r)
		done = true
	})
}

// withDeadline bounds every request with RequestTimeout. It replaces
// http.TimeoutHandler — which emits its timeout body without a
// Content-Type, so Go content-sniffs our JSON error as text/plain — with
// the same semantics through writeJSON: the handler runs on its own
// goroutine against a buffered response while the request context
// carries the deadline; on overrun the client gets an immediate 503
// application/json body and the handler's context expires so in-flight
// scoring stops at the next chunk boundary.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
		defer cancel()
		bw := &bufferedResponse{header: http.Header{}}
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			next.ServeHTTP(bw, r.WithContext(ctx))
		}()
		select {
		case rec := <-done:
			if rec != nil {
				// Re-raise on the serving goroutine so the recovery
				// middleware turns it into a 500 (http.ErrAbortHandler
				// included — withRecover re-raises that one further).
				panic(rec)
			}
			bw.copyTo(w)
		case <-ctx.Done():
			// The handler goroutine keeps running against the abandoned
			// buffer until it notices the expired context; nothing reads
			// that buffer again.
			s.tel.timeouts.Inc()
			s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "request deadline exceeded"})
		}
	})
}

// bufferedResponse is withDeadline's parking space for the handler's
// response: headers, status and body land here and are copied to the
// real writer only if the handler beats the deadline.
type bufferedResponse struct {
	header http.Header
	body   []byte
	code   int
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vv := range b.header {
		dst[k] = vv
	}
	code := b.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	_, _ = w.Write(b.body)
}

// handleNotFound answers unrouted paths with a JSON 404 — every error
// the serving layer emits is decodable JSON with the right Content-Type.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusNotFound, errorBody{Error: "no such endpoint: " + r.URL.Path})
}

// ObservePrediction implements core.PredictObserver: atomic counter
// bumps for every prediction (model mix, fallbacks, imputation), plus a
// structured log line — carrying the request ID the middleware minted —
// on the cold fallback branch. The non-fallback path allocates nothing.
func (s *Server) ObservePrediction(ctx context.Context, p *core.Prediction) {
	if c, ok := s.tel.predByModel[p.Model]; ok {
		c.Inc()
	} else {
		s.tel.predOther.Inc()
	}
	if h := p.Health; h != nil && h.ImputedSlots > 0 {
		s.tel.imputedPredictions.Inc()
		s.tel.imputedSlots.Add(int64(h.ImputedSlots))
	}
	if p.Verdict == core.VerdictFallback {
		s.tel.fallbacks.Inc()
		if s.Access != nil {
			s.Access.Log("prediction_fallback",
				telemetry.F("request_id", telemetry.RequestID(ctx)),
				telemetry.F("model", p.Model),
				telemetry.F("explanation", p.Explanation),
			)
		}
	}
}

var (
	_ core.PredictObserver = (*Server)(nil)
	_ http.Handler         = (*telemetry.Registry)(nil)
)
