package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"scouts/internal/core"
)

func postJSON(t testing.TB, ts *httptest.Server, path string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestStoreSnapshotIsolation is the regression test for the snapshot
// aliasing bug: Put/Get/Latest used to hand out the same backing array, so
// a caller scribbling on its buffer after Put (or on a Get result) would
// corrupt the stored model for every later Reload.
func TestStoreSnapshotIsolation(t *testing.T) {
	st := NewStore()
	buf := []byte("pristine snapshot")
	st.Put("PhyNet", buf)
	copy(buf, "CORRUPTED")
	if m, _ := st.Latest(); string(m.Snapshot) != "pristine snapshot" {
		t.Fatalf("Put aliased the caller's buffer: %q", m.Snapshot)
	}
	m1, _ := st.Get(1)
	copy(m1.Snapshot, "SCRIBBLE!")
	if m, _ := st.Get(1); string(m.Snapshot) != "pristine snapshot" {
		t.Fatalf("Get handed out store-internal bytes: %q", m.Snapshot)
	}
	m2, _ := st.Latest()
	copy(m2.Snapshot, "SCRIBBLE!")
	if m, _ := st.Latest(); string(m.Snapshot) != "pristine snapshot" {
		t.Fatalf("Latest handed out store-internal bytes: %q", m.Snapshot)
	}
}

// TestBatchPredictMatchesSingle pins the batch endpoint contract: each
// item's prediction is exactly what /v1/predict answers for it.
func TestBatchPredictMatchesSingle(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	_, log, _ := testEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var breq BatchPredictRequest
	for _, in := range log.Incidents[len(log.Incidents)-16:] {
		breq.Items = append(breq.Items, PredictRequest{
			Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
		})
	}
	resp, body := postJSON(t, ts, "/v1/predict:batch", breq)
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var bresp BatchPredictResponse
	if err := json.Unmarshal(body, &bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.ModelVersion != 1 || len(bresp.Results) != len(breq.Items) {
		t.Fatalf("batch response shape: version=%d results=%d", bresp.ModelVersion, len(bresp.Results))
	}
	for i, item := range breq.Items {
		sresp, sbody := postJSON(t, ts, "/v1/predict", item)
		if sresp.StatusCode != 200 {
			t.Fatalf("single status %d: %s", sresp.StatusCode, sbody)
		}
		var single PredictResponse
		if err := json.Unmarshal(sbody, &single); err != nil {
			t.Fatal(err)
		}
		if bresp.Results[i].Error != "" || bresp.Results[i].Prediction == nil {
			t.Fatalf("item %d: unexpected error %q", i, bresp.Results[i].Error)
		}
		if !reflect.DeepEqual(*bresp.Results[i].Prediction, single) {
			t.Fatalf("item %d: batch %+v != single %+v", i, *bresp.Results[i].Prediction, single)
		}
	}
}

func TestBatchPredictRequestValidation(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Empty batch fails the whole call.
	resp, body := postJSON(t, ts, "/v1/predict:batch", BatchPredictRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, body)
	}

	// Too many items fails the whole call with 413.
	over := BatchPredictRequest{Items: make([]PredictRequest, MaxBatchItems+1)}
	for i := range over.Items {
		over.Items[i] = PredictRequest{Title: "t", Time: 1}
	}
	resp, body = postJSON(t, ts, "/v1/predict:batch", over)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d: %s", resp.StatusCode, body)
	}

	// Unknown top-level field is rejected: a typo must not silently drop
	// the entire payload.
	resp2, err := http.Post(ts.URL+"/v1/predict:batch", "application/json",
		strings.NewReader(`{"itmes": []}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp2.StatusCode)
	}
}

// TestBatchPredictPartialFailure: one invalid item yields a per-item error
// in a 200 response; the valid items are still scored.
func TestBatchPredictPartialFailure(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	_, log, _ := testEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	good := log.Incidents[len(log.Incidents)-1]
	breq := BatchPredictRequest{Items: []PredictRequest{
		{Title: good.Title, Body: good.Body, Components: good.Components, Time: good.CreatedAt},
		{Title: "missing time"}, // Time == 0: invalid
		{Title: good.Title, Body: good.Body, Components: good.Components, Time: good.CreatedAt},
	}}
	resp, body := postJSON(t, ts, "/v1/predict:batch", breq)
	if resp.StatusCode != 200 {
		t.Fatalf("partial batch should 200, got %d: %s", resp.StatusCode, body)
	}
	var bresp BatchPredictResponse
	if err := json.Unmarshal(body, &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 3 {
		t.Fatalf("results: %d", len(bresp.Results))
	}
	if bresp.Results[0].Prediction == nil || bresp.Results[2].Prediction == nil {
		t.Fatal("valid items should still be scored")
	}
	if bresp.Results[1].Prediction != nil || bresp.Results[1].Error == "" {
		t.Fatalf("invalid item should carry an error, got %+v", bresp.Results[1])
	}
	if !reflect.DeepEqual(bresp.Results[0].Prediction, bresp.Results[2].Prediction) {
		t.Fatal("identical items answered differently")
	}
}

func TestPredictBodyCap(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	huge, err := json.Marshal(PredictRequest{
		Title: "t", Body: strings.Repeat("x", maxPredictBody+1), Time: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body should 413, got %d", resp.StatusCode)
	}

	resp2, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"title": "t", "time": 1, "tiem": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field should 400, got %d", resp2.StatusCode)
	}
}

// TestBatchPredictDuringHotSwap runs batches concurrently with model
// reloads (run under -race). Every response must be internally consistent:
// all items in one batch answered by one model version.
func TestBatchPredictDuringHotSwap(t *testing.T) {
	srv, store, _ := trainAndServe(t)
	gen, log, cfg := testEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr := &Trainer{Store: store}
	if _, _, err := tr.TrainAndPublish(core.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: log.Incidents[:320], Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}

	var breq BatchPredictRequest
	for _, in := range log.Incidents[len(log.Incidents)-8:] {
		breq.Items = append(breq.Items, PredictRequest{
			Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
		})
	}
	payload, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/v1/predict:batch", "application/json", bytes.NewReader(payload))
				if err != nil {
					errc <- err
					return
				}
				var br BatchPredictResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				for _, res := range br.Results {
					if res.Prediction == nil {
						errc <- fmt.Errorf("missing prediction: %+v", res)
						return
					}
					if res.Prediction.ModelVersion != br.ModelVersion {
						errc <- fmt.Errorf("mid-batch version skew: item v%d, batch v%d",
							res.Prediction.ModelVersion, br.ModelVersion)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := srv.Reload(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
