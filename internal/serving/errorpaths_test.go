package serving

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestErrorResponsesAreJSON pins the error-path contract end to end:
// EVERY non-200 the serving layer emits — bad JSON, unknown fields,
// missing fields, oversized bodies, oversized batches, unrouted paths,
// no-model 503s — is a decodable JSON object with a non-empty "error"
// and Content-Type: application/json. http.TimeoutHandler violated this
// (its body was content-sniffed to text/plain); this table keeps any
// future error path honest.
func TestErrorResponsesAreJSON(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	h := srv.Handler()

	empty := NewServer(nil, nil, NewStore(), nil) // no model loaded
	emptyH := empty.Handler()

	bigTitle := strings.Repeat("x", maxPredictBody+1)
	manyItems := `{"items":[` + strings.TrimSuffix(strings.Repeat(`{"title":"t","time":1},`, MaxBatchItems+1), ",") + `]}`

	cases := []struct {
		name       string
		handler    http.Handler
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"malformed JSON", h, "POST", "/v1/predict", `{"title":`, 400},
		{"unknown field", h, "POST", "/v1/predict", `{"title":"t","time":1,"nope":true}`, 400},
		{"missing time", h, "POST", "/v1/predict", `{"title":"t"}`, 400},
		{"negative time", h, "POST", "/v1/predict", `{"title":"t","time":-1}`, 400},
		{"oversized body", h, "POST", "/v1/predict", `{"title":"` + bigTitle + `","time":1}`, 413},
		{"empty batch", h, "POST", "/v1/predict:batch", `{"items":[]}`, 400},
		{"oversized batch", h, "POST", "/v1/predict:batch", manyItems, 413},
		{"unrouted path", h, "GET", "/nope", "", 404},
		{"method mismatch", h, "GET", "/v1/predict", "", 404},
		{"no model health", emptyH, "GET", "/v1/health", "", 503},
		{"no model predict", emptyH, "POST", "/v1/predict", `{"title":"t","time":1}`, 503},
		{"empty store reload", emptyH, "POST", "/v1/reload", "", 503},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			tc.handler.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body: %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			if rid := rec.Header().Get("X-Request-Id"); rid == "" {
				t.Fatal("error response carries no X-Request-Id")
			}
			var eb errorBody
			if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
				t.Fatalf("body is not a JSON error object: %v\n%s", err, rec.Body.String())
			}
			if eb.Error == "" {
				t.Fatalf("%d response has an empty error message", rec.Code)
			}
		})
	}
}

// TestSheddingResponseIsJSON saturates MaxInFlight through the full
// handler chain and checks the 429 contract (JSON body, Retry-After).
func TestSheddingResponseIsJSON(t *testing.T) {
	srv := NewServer(nil, nil, NewStore(), nil)
	srv.MaxInFlight = 1
	block := make(chan struct{})
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hold", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-block
		w.WriteHeader(http.StatusOK)
	})
	srv.inflight = make(chan struct{}, srv.MaxInFlight)
	h := srv.withRequestID(srv.withRecover(srv.withShedding(mux)))
	ts := httptest.NewServer(h)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/hold")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/hold")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("429 body not a JSON error: %v", err)
	}
	if got := srv.tel.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	close(block)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestRequestIDsAreUnique pins the ID scheme: every response carries an
// X-Request-Id, IDs never repeat, and the instance prefix shows up.
func TestRequestIDsAreUnique(t *testing.T) {
	srv := NewServer(nil, nil, NewStore(), nil)
	srv.InstanceID = "scoutd-test"
	h := srv.Handler()
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
		rid := rec.Header().Get("X-Request-Id")
		if rid == "" {
			t.Fatalf("request %d: no X-Request-Id", i)
		}
		if !strings.HasPrefix(rid, "scoutd-test-") {
			t.Fatalf("request ID %q lacks the instance prefix", rid)
		}
		if seen[rid] {
			t.Fatalf("request ID %q repeated", rid)
		}
		seen[rid] = true
	}
}
