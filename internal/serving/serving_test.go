package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/incident"
)

var (
	onceEnv sync.Once
	envGen  *cloudsim.Generator
	envLog  *incident.Log
	envCfg  *core.Config
	envErr  error
)

func testEnv(t testing.TB) (*cloudsim.Generator, *incident.Log, *core.Config) {
	t.Helper()
	onceEnv.Do(func() {
		envGen = cloudsim.New(cloudsim.Params{Seed: 5, Days: 50, IncidentsPerDay: 8})
		envLog = envGen.Generate()
		envCfg, envErr = core.ParseConfig(core.DefaultPhyNetConfig)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envGen, envLog, envCfg
}

func trainAndServe(t testing.TB) (*Server, *Store, *core.Scout) {
	t.Helper()
	gen, log, cfg := testEnv(t)
	store := NewStore()
	tr := &Trainer{Store: store}
	scout, version, err := tr.TrainAndPublish(core.TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: log.Incidents[:300],
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if version != store.Versions() {
		t.Fatalf("version %d, store has %d", version, store.Versions())
	}
	srv := NewServer(gen.Topology(), gen.Telemetry(), store, nil)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	return srv, store, scout
}

func TestSnapshotRoundTripAgreement(t *testing.T) {
	srv, _, scout := trainAndServe(t)
	_, log, _ := testEnv(t)
	restored := srv.Scout()
	agree := 0
	n := 0
	for _, in := range log.Incidents[300:] {
		a := scout.PredictIncident(in)
		b := restored.PredictIncident(in)
		if !a.Usable() {
			continue
		}
		n++
		if a.Responsible == b.Responsible && a.Verdict == b.Verdict {
			agree++
		}
	}
	if n == 0 {
		t.Fatal("no usable predictions")
	}
	if agree != n {
		t.Fatalf("restored scout disagrees on %d/%d predictions", n-agree, n)
	}
}

func TestHealthAndModelEndpoints(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("health status %d", resp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	resp2, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var model map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&model); err != nil {
		t.Fatal(err)
	}
	if model["team"] != "PhyNet" {
		t.Fatalf("model = %v", model)
	}
}

func TestPredictEndpoint(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	_, log, _ := testEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in := log.Incidents[len(log.Incidents)-10]
	body, _ := json.Marshal(PredictRequest{
		Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
	})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Team != "PhyNet" || pr.ModelVersion != 1 {
		t.Fatalf("response: %+v", pr)
	}
	if pr.Verdict != "fallback" && pr.Recommendation == "" {
		t.Fatal("missing recommendation fine print")
	}
}

func TestPredictValidation(t *testing.T) {
	srv, _, _ := trainAndServe(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON should 400, got %d", resp.StatusCode)
	}

	empty, _ := json.Marshal(PredictRequest{})
	resp2, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(empty))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request should 400, got %d", resp2.StatusCode)
	}
}

func TestServeBeforeLoad(t *testing.T) {
	gen, _, _ := testEnv(t)
	srv := NewServer(gen.Topology(), gen.Telemetry(), NewStore(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 before load, got %d", resp.StatusCode)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("reload from empty store should fail")
	}
}

func TestHotSwap(t *testing.T) {
	srv, store, _ := trainAndServe(t)
	gen, log, cfg := testEnv(t)
	tr := &Trainer{Store: store}
	_, v2, err := tr.TrainAndPublish(core.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: log.Incidents[:350], Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if int(health["model_version"].(float64)) != v2 {
		t.Fatalf("hot swap failed: %v (want v%d)", health, v2)
	}
}

func TestStoreVersioning(t *testing.T) {
	st := NewStore()
	if _, ok := st.Latest(); ok {
		t.Fatal("empty store should have no latest")
	}
	v1 := st.Put("PhyNet", []byte("a"))
	v2 := st.Put("PhyNet", []byte("b"))
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d %d", v1, v2)
	}
	m, ok := st.Get(1)
	if !ok || string(m.Snapshot) != "a" {
		t.Fatalf("get v1: %v %v", m, ok)
	}
	if _, ok := st.Get(3); ok {
		t.Fatal("v3 should not exist")
	}
	latest, _ := st.Latest()
	if string(latest.Snapshot) != "b" {
		t.Fatal("latest wrong")
	}
}
