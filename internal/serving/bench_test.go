package serving

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// BenchmarkServingPredict times the full /v1/predict handler path —
// decode, featurize, forest inference, explanation, encode — without a
// network socket (httptest request/recorder only). allocs/op is the number
// that matters: the serving hot path must not produce per-request garbage
// beyond what JSON decoding of the request inherently costs.
func BenchmarkServingPredict(b *testing.B) {
	srv, _, _ := trainAndServe(b)
	_, log, _ := testEnv(b)
	h := srv.Handler()

	in := log.Incidents[len(log.Incidents)-10]
	body, err := json.Marshal(PredictRequest{
		Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
	})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		req := httptest.NewRequest("POST", "/v1/predict", rd)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServingPredictBatch times /v1/predict:batch with 32 incidents
// per request; divide ns/op by 32 to compare per-incident cost against
// BenchmarkServingPredict.
func BenchmarkServingPredictBatch(b *testing.B) {
	srv, _, _ := trainAndServe(b)
	_, log, _ := testEnv(b)
	h := srv.Handler()

	const batchSize = 32
	var breq BatchPredictRequest
	for _, in := range log.Incidents[len(log.Incidents)-batchSize:] {
		breq.Items = append(breq.Items, PredictRequest{
			Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
		})
	}
	body, err := json.Marshal(breq)
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		req := httptest.NewRequest("POST", "/v1/predict:batch", rd)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
