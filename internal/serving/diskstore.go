package serving

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// diskEnvelope is the on-disk form of one model version: the serialized
// Model plus a checksum over exactly those bytes, so a torn write or
// bit-rot is detected at load time instead of surfacing later as a
// corrupt snapshot mid-reload.
type diskEnvelope struct {
	Checksum string          `json:"checksum"` // "sha256:" + hex of Model
	Model    json.RawMessage `json:"model"`
}

func checksumOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// SaveStore persists every model version of a store to a directory, one
// JSON file per version (model-000001.json, ...). The directory is
// created if needed. Each file is written crash-safely: the bytes go to a
// temp file in the same directory, the temp file is fsynced before the
// atomic rename, and the directory itself is fsynced after, so a crash at
// any instant leaves either the old file, the new file, or an ignorable
// *.tmp — never a half-written model under the final name.
func SaveStore(st *Store, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serving: creating %s: %w", dir, err)
	}
	st.mu.Lock()
	models := append([]Model(nil), st.models...)
	st.mu.Unlock()
	for _, m := range models {
		payload, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("serving: encoding v%d: %w", m.Version, err)
		}
		data, err := json.Marshal(diskEnvelope{Checksum: checksumOf(payload), Model: payload})
		if err != nil {
			return fmt.Errorf("serving: enveloping v%d: %w", m.Version, err)
		}
		final := filepath.Join(dir, fmt.Sprintf("model-%06d.json", m.Version))
		if err := writeFileSync(final, data); err != nil {
			return err
		}
	}
	return syncDir(dir)
}

// writeFileSync writes data to path through a same-directory temp file,
// fsyncing the file before the rename commits it.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serving: writing %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serving: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serving: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serving: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serving: committing %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serving: syncing %s: %w", dir, err)
	}
	defer d.Close()
	d.Sync()
	return nil
}

// LoadReport says what LoadStore found: which versions loaded and which
// files were quarantined (set aside with reasons) instead of failing the
// whole load — one rotten version must not take down a store holding
// good ones.
type LoadReport struct {
	Loaded      []int             `json:"loaded"`
	Quarantined []QuarantinedFile `json:"quarantined,omitempty"`
}

// QuarantinedFile is one model file LoadStore refused to load. The file
// is renamed to <name>.quarantined so the next save or load does not trip
// over it again; Renamed is false if the rename itself failed.
type QuarantinedFile struct {
	Name    string `json:"name"`
	Reason  string `json:"reason"`
	Renamed bool   `json:"renamed"`
}

// LoadStore reads a directory written by SaveStore back into a Store.
// Files that fail to read, decode, or checksum are quarantined — renamed
// to *.quarantined and listed in the report — and the remaining versions
// load; gaps in the version sequence are tolerated for the same reason.
// The error is non-nil only when the directory itself cannot be read.
func LoadStore(dir string) (*Store, *LoadReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: reading %s: %w", dir, err)
	}
	type vf struct {
		v    int
		name string
	}
	var files []vf
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "model-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "model-"), ".json")
		v, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		files = append(files, vf{v, name})
	}
	slices.SortFunc(files, func(a, b vf) int { return a.v - b.v })

	st := NewStore()
	rep := &LoadReport{}
	quarantine := func(name, reason string) {
		q := QuarantinedFile{Name: name, Reason: reason}
		q.Renamed = os.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".quarantined")) == nil
		rep.Quarantined = append(rep.Quarantined, q)
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.name))
		if err != nil {
			quarantine(f.name, "read: "+err.Error())
			continue
		}
		var env diskEnvelope
		if err := json.Unmarshal(data, &env); err != nil || len(env.Model) == 0 {
			quarantine(f.name, "malformed envelope")
			continue
		}
		if got := checksumOf(env.Model); got != env.Checksum {
			quarantine(f.name, fmt.Sprintf("checksum mismatch: file says %s, content is %s", env.Checksum, got))
			continue
		}
		var m Model
		if err := json.Unmarshal(env.Model, &m); err != nil {
			quarantine(f.name, "decoding model: "+err.Error())
			continue
		}
		if m.Version != f.v {
			quarantine(f.name, fmt.Sprintf("file claims v%d but contains v%d", f.v, m.Version))
			continue
		}
		st.models = append(st.models, m)
		rep.Loaded = append(rep.Loaded, m.Version)
	}
	return st, rep, nil
}
