package serving

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"scouts/internal/core"
)

// The disk store persists versioned models in two on-disk formats,
// sniffed by extension and magic on load:
//
//   - model-%06d.json — the JSON envelope: {"checksum","model"} with a
//     sha256 over the serialized Model. The training-side interchange
//     format; any snapshot kind can live here.
//   - model-%06d.pack — the binary envelope for scoutpack snapshots:
//     magic "SDP1" | u32 metaLen | meta JSON (version/team/trained_at +
//     payload checksum) | raw scoutpack bytes. Loading it never parses
//     the multi-megabyte snapshot through encoding/json, which is the
//     point: the snapshot bytes land in memory as-is and core.Restore's
//     zero-re-derivation path takes over.
//
// When both extensions exist for one version, the pack wins (a repack
// run — `scoutctl pack` — leaves the JSON file as a fallback for older
// readers). Damaged files of either format are quarantined, not fatal.

// diskEnvelope is the JSON on-disk form of one model version: the
// serialized Model plus a checksum over exactly those bytes, so a torn
// write or bit-rot is detected at load time instead of surfacing later
// as a corrupt snapshot mid-reload.
type diskEnvelope struct {
	Checksum string          `json:"checksum"` // "sha256:" + hex of Model
	Model    json.RawMessage `json:"model"`
}

// packEnvelopeMagic heads a .pack store file (the disk envelope, not the
// scoutpack payload itself, which carries its own "SCPK" magic+checksum).
const packEnvelopeMagic = "SDP1"

// packMeta is the JSON header of a .pack store file: the Model's
// metadata fields, kept outside the binary payload so `ls` + `head` on a
// store directory stays explicable without a scoutpack parser.
type packMeta struct {
	Version   int    `json:"version"`
	Team      string `json:"team"`
	TrainedAt string `json:"trained_at"` // RFC3339Nano, as time.Time JSON
	Checksum  string `json:"checksum"`   // "sha256:" + hex of payload
}

func checksumOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// SaveStore persists every model version of a store to a directory, one
// file per version. Scoutpack snapshots are written as model-%06d.pack
// (binary envelope), everything else as model-%06d.json. The directory is
// created if needed. Each file is written crash-safely: the bytes go to a
// temp file in the same directory, the temp file is fsynced before the
// atomic rename, and the directory itself is fsynced after, so a crash at
// any instant leaves either the old file, the new file, or an ignorable
// *.tmp — never a half-written model under the final name. The directory
// sync is deferred so it also covers error returns: a save that fails on
// version N must not leave versions 1..N-1 renamed but undurable.
func SaveStore(st *Store, dir string) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serving: creating %s: %w", dir, err)
	}
	defer func() {
		if serr := syncDir(dir); err == nil {
			err = serr
		}
	}()
	st.mu.Lock()
	models := append([]Model(nil), st.models...)
	st.mu.Unlock()
	for _, m := range models {
		if m.Snapshot == nil {
			// A lazily-loaded model that was never materialized is already
			// on disk in the directory it was loaded from; writing it
			// requires its bytes, so materialize through the store.
			got, ok := st.Get(m.Version)
			if !ok {
				return fmt.Errorf("serving: v%d is lazy and its file is unreadable", m.Version)
			}
			m = got
		}
		if core.IsScoutpack(m.Snapshot) {
			if err := writePackFile(dir, m); err != nil {
				return err
			}
			continue
		}
		payload, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("serving: encoding v%d: %w", m.Version, err)
		}
		data, err := json.Marshal(diskEnvelope{Checksum: checksumOf(payload), Model: payload})
		if err != nil {
			return fmt.Errorf("serving: enveloping v%d: %w", m.Version, err)
		}
		if err := writeFileSync(filepath.Join(dir, fmt.Sprintf("model-%06d.json", m.Version)), data); err != nil {
			return err
		}
	}
	return nil
}

// timeLayout serializes TrainedAt in the pack envelope exactly as
// encoding/json serializes time.Time, so the two formats agree.
const timeLayout = "2006-01-02T15:04:05.999999999Z07:00"

// writeFileSync writes data to path through a same-directory temp file,
// fsyncing the file before the rename commits it.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serving: writing %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serving: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serving: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serving: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serving: committing %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serving: syncing %s: %w", dir, err)
	}
	defer d.Close()
	d.Sync()
	return nil
}

// LoadReport says what LoadStore found: which versions loaded eagerly,
// which were registered lazily (verified only on first Get), and which
// files were quarantined (set aside with reasons) instead of failing the
// whole load — one rotten version must not take down a store holding
// good ones.
type LoadReport struct {
	Loaded      []int             `json:"loaded"`
	Lazy        []int             `json:"lazy,omitempty"`
	Quarantined []QuarantinedFile `json:"quarantined,omitempty"`
}

// QuarantinedFile is one model file the store refused to load. The file
// is renamed to <name>.quarantined so the next save or load does not trip
// over it again; Renamed is false if the rename itself failed.
type QuarantinedFile struct {
	Name    string `json:"name"`
	Reason  string `json:"reason"`
	Renamed bool   `json:"renamed"`
}

// LoadOptions tune LoadStoreOptions.
type LoadOptions struct {
	// EagerVersions is how many of the newest versions are read and
	// verified at load time. Older versions are registered lazily: their
	// files are opened, verified and decoded only on the first Get. Zero
	// means the default (2: the serving version plus one rollback step);
	// negative means every version loads eagerly.
	EagerVersions int
}

// DefaultEagerVersions is the LoadOptions.EagerVersions default: the
// latest version (what Reload serves) plus one rollback candidate. A
// store directory holding months of history costs two file reads at
// boot, not a full-directory parse.
const DefaultEagerVersions = 2

// LoadStore reads a directory written by SaveStore back into a Store
// with the default options. See LoadStoreOptions.
func LoadStore(dir string) (*Store, *LoadReport, error) {
	return LoadStoreOptions(dir, LoadOptions{})
}

// LoadStoreOptions reads a directory written by SaveStore back into a
// Store. Both file formats load; when a version exists as both .json and
// .pack, the pack is used. The newest EagerVersions versions are read and
// verified now; older files are registered by path and verified on first
// Get, which quarantines them exactly as an eager load would. Files that
// fail to read, decode, or checksum are quarantined — renamed to
// *.quarantined and listed in the report — and the remaining versions
// load; gaps in the version sequence are tolerated for the same reason.
// The error is non-nil only when the directory itself cannot be read.
func LoadStoreOptions(dir string, opt LoadOptions) (*Store, *LoadReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: reading %s: %w", dir, err)
	}
	eager := opt.EagerVersions
	if eager == 0 {
		eager = DefaultEagerVersions
	}
	type vf struct {
		v    int
		name string
	}
	// Collect candidates per version; .pack shadows .json.
	best := map[int]string{}
	for _, e := range entries {
		name := e.Name()
		var num string
		switch {
		case strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".pack"):
			num = strings.TrimSuffix(strings.TrimPrefix(name, "model-"), ".pack")
		case strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".json"):
			num = strings.TrimSuffix(strings.TrimPrefix(name, "model-"), ".json")
		default:
			continue
		}
		v, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		if prev, ok := best[v]; !ok || (strings.HasSuffix(prev, ".json") && strings.HasSuffix(name, ".pack")) {
			best[v] = name
		}
	}
	var files []vf
	for v, name := range best {
		files = append(files, vf{v, name})
	}
	slices.SortFunc(files, func(a, b vf) int { return a.v - b.v })

	st := NewStore()
	rep := &LoadReport{}
	for i, f := range files {
		path := filepath.Join(dir, f.name)
		if eager >= 0 && len(files)-i > eager {
			// Old version: register by path, defer the read to first Get.
			st.models = append(st.models, Model{Version: f.v, path: path})
			rep.Lazy = append(rep.Lazy, f.v)
			continue
		}
		m, reason := loadModelFile(path, f.v)
		if reason != "" {
			rep.Quarantined = append(rep.Quarantined, quarantineFile(path, reason))
			continue
		}
		st.models = append(st.models, m)
		rep.Loaded = append(rep.Loaded, m.Version)
	}
	return st, rep, nil
}

// quarantineFile renames a damaged model file to <name>.quarantined and
// returns the report entry.
func quarantineFile(path, reason string) QuarantinedFile {
	q := QuarantinedFile{Name: filepath.Base(path), Reason: reason}
	q.Renamed = os.Rename(path, path+".quarantined") == nil
	return q
}

// RepackStore converts every JSON-snapshot version in a store directory
// to the scoutpack format, writing model-%06d.pack next to each
// model-%06d.json (which is left in place as a fallback for older
// readers — LoadStore prefers the pack). Versions already packed are
// skipped. It returns the versions converted. Damaged files are left
// alone for LoadStore's quarantine to handle.
func RepackStore(dir string) (converted []int, err error) {
	st, _, err := LoadStoreOptions(dir, LoadOptions{EagerVersions: -1})
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	models := append([]Model(nil), st.models...)
	st.mu.Unlock()
	// Deferred so an error return after some versions were already packed
	// still fsyncs the directory — those renames are committed and must be
	// durable.
	defer func() {
		if len(converted) == 0 {
			return
		}
		if serr := syncDir(dir); err == nil {
			err = serr
		}
	}()
	for _, m := range models {
		if core.IsScoutpack(m.Snapshot) {
			continue
		}
		// The stored Model wraps a JSON Scout snapshot; convert the inner
		// snapshot, keep the version/team/time metadata.
		packed, err := core.PackSnapshot(m.Snapshot)
		if err != nil {
			return converted, fmt.Errorf("serving: packing v%d: %w", m.Version, err)
		}
		m.Snapshot = packed
		if err := writePackFile(dir, m); err != nil {
			return converted, err
		}
		converted = append(converted, m.Version)
	}
	return converted, nil
}

// writePackFile writes one scoutpack model as model-%06d.pack, crash-safe.
func writePackFile(dir string, m Model) error {
	meta, err := json.Marshal(packMeta{
		Version:   m.Version,
		Team:      m.Team,
		TrainedAt: m.TrainedAt.Format(timeLayout),
		Checksum:  checksumOf(m.Snapshot),
	})
	if err != nil {
		return fmt.Errorf("serving: enveloping v%d: %w", m.Version, err)
	}
	data := append([]byte(nil), packEnvelopeMagic...)
	data = binary.LittleEndian.AppendUint32(data, uint32(len(meta)))
	data = append(data, meta...)
	data = append(data, m.Snapshot...)
	return writeFileSync(filepath.Join(dir, fmt.Sprintf("model-%06d.pack", m.Version)), data)
}

// ReadModelFile reads and fully verifies one model file of either disk
// format, without going through a Store — `scoutctl inspect` uses it on
// files directly.
func ReadModelFile(path string) (Model, error) {
	base := filepath.Base(path)
	num := strings.TrimSuffix(strings.TrimSuffix(strings.TrimPrefix(base, "model-"), ".pack"), ".json")
	want, err := strconv.Atoi(num)
	if err != nil {
		// Not a store-named file: trust the embedded version.
		want = -1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Model{}, fmt.Errorf("serving: %w", err)
	}
	var m Model
	var reason string
	if strings.HasSuffix(path, ".pack") {
		if want < 0 {
			if len(data) >= 8 && string(data[:4]) == packEnvelopeMagic {
				var meta packMeta
				if n := int(binary.LittleEndian.Uint32(data[4:])); n >= 0 && n <= len(data)-8 {
					if json.Unmarshal(data[8:8+n], &meta) == nil {
						want = meta.Version
					}
				}
			}
		}
		m, reason = decodePackFile(data, want)
	} else {
		if want < 0 {
			var env diskEnvelope
			var inner Model
			if json.Unmarshal(data, &env) == nil && json.Unmarshal(env.Model, &inner) == nil {
				want = inner.Version
			}
		}
		m, reason = decodeJSONFile(data, want)
	}
	if reason != "" {
		return Model{}, fmt.Errorf("serving: %s: %s", base, reason)
	}
	return m, nil
}

// loadModelFile reads and fully verifies one model file of either
// format. It returns the model, or a non-empty quarantine reason.
func loadModelFile(path string, wantVersion int) (Model, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Model{}, "read: " + err.Error()
	}
	if strings.HasSuffix(path, ".pack") {
		return decodePackFile(data, wantVersion)
	}
	return decodeJSONFile(data, wantVersion)
}

func decodeJSONFile(data []byte, wantVersion int) (Model, string) {
	var env diskEnvelope
	if err := json.Unmarshal(data, &env); err != nil || len(env.Model) == 0 {
		return Model{}, "malformed envelope"
	}
	if got := checksumOf(env.Model); got != env.Checksum {
		return Model{}, fmt.Sprintf("checksum mismatch: file says %s, content is %s", env.Checksum, got)
	}
	var m Model
	if err := json.Unmarshal(env.Model, &m); err != nil {
		return Model{}, "decoding model: " + err.Error()
	}
	if m.Version != wantVersion {
		return Model{}, fmt.Sprintf("file claims v%d but contains v%d", wantVersion, m.Version)
	}
	return m, ""
}

func decodePackFile(data []byte, wantVersion int) (Model, string) {
	if len(data) < 8 || string(data[:4]) != packEnvelopeMagic {
		return Model{}, "malformed pack envelope"
	}
	metaLen := int(binary.LittleEndian.Uint32(data[4:]))
	if metaLen < 0 || metaLen > len(data)-8 {
		return Model{}, "pack envelope meta length overruns file"
	}
	var meta packMeta
	if err := json.Unmarshal(data[8:8+metaLen], &meta); err != nil {
		return Model{}, "decoding pack meta: " + err.Error()
	}
	payload := data[8+metaLen:]
	if got := checksumOf(payload); got != meta.Checksum {
		return Model{}, fmt.Sprintf("checksum mismatch: file says %s, content is %s", meta.Checksum, got)
	}
	if meta.Version != wantVersion {
		return Model{}, fmt.Sprintf("file claims v%d but contains v%d", wantVersion, meta.Version)
	}
	// The payload must be a structurally-sound scoutpack: its own
	// envelope (magic, version, inner sha256) is verified here so a
	// damaged snapshot quarantines at load, not at Restore.
	if err := core.VerifyScoutpack(payload); err != nil {
		return Model{}, "scoutpack payload: " + err.Error()
	}
	m := Model{Version: meta.Version, Team: meta.Team, Snapshot: payload}
	if meta.TrainedAt != "" {
		if err := m.TrainedAt.UnmarshalText([]byte(meta.TrainedAt)); err != nil {
			return Model{}, "decoding pack meta time: " + err.Error()
		}
	}
	return m, ""
}
