package serving

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// SaveStore persists every model version of a store to a directory, one
// JSON file per version (model-000001.json, ...). The directory is created
// if needed. Writing is atomic per file (write to temp, rename).
func SaveStore(st *Store, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serving: creating %s: %w", dir, err)
	}
	st.mu.Lock()
	models := append([]Model(nil), st.models...)
	st.mu.Unlock()
	for _, m := range models {
		data, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("serving: encoding v%d: %w", m.Version, err)
		}
		final := filepath.Join(dir, fmt.Sprintf("model-%06d.json", m.Version))
		tmp := final + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("serving: writing %s: %w", tmp, err)
		}
		if err := os.Rename(tmp, final); err != nil {
			return fmt.Errorf("serving: committing %s: %w", final, err)
		}
	}
	return nil
}

// LoadStore reads a directory written by SaveStore back into a Store.
// Version numbers are re-derived from the file names, which must be
// contiguous from 1.
func LoadStore(dir string) (*Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serving: reading %s: %w", dir, err)
	}
	type vf struct {
		v    int
		name string
	}
	var files []vf
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "model-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "model-"), ".json")
		v, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		files = append(files, vf{v, name})
	}
	slices.SortFunc(files, func(a, b vf) int { return a.v - b.v })
	st := NewStore()
	for i, f := range files {
		if f.v != i+1 {
			return nil, fmt.Errorf("serving: %s: versions not contiguous (want %d)", dir, i+1)
		}
		data, err := os.ReadFile(filepath.Join(dir, f.name))
		if err != nil {
			return nil, err
		}
		var m Model
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("serving: decoding %s: %w", f.name, err)
		}
		st.models = append(st.models, m)
	}
	return st, nil
}
