package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"scouts/internal/core"
)

// packFixture trains a scout and returns it with its scoutpack bytes.
func packFixture(t testing.TB) (*core.Scout, []byte) {
	t.Helper()
	gen, log, cfg := testEnv(t)
	scout, err := core.Train(core.TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: log.Incidents[:300],
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pack, err := scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	return scout, pack
}

// TestSaveLoadPackRoundTrip pins the .pack disk format end to end: a
// scoutpack snapshot saves as model-%06d.pack, survives the load with its
// bytes intact, and the server serves predictions from it.
func TestSaveLoadPackRoundTrip(t *testing.T) {
	_, pack := packFixture(t)
	dir := t.TempDir()
	st := NewStore()
	st.Now = func() time.Time { return time.Unix(1700000000, 0) }
	st.Put("PhyNet", pack)
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "model-000001.pack")); err != nil {
		t.Fatalf("pack snapshot did not save as .pack: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "model-000001.json")); err == nil {
		t.Fatal("pack snapshot must not also save as .json")
	}
	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	m, ok := loaded.Get(1)
	if !ok || !bytes.Equal(m.Snapshot, pack) {
		t.Fatal("pack bytes did not survive the round trip")
	}
	if m.Team != "PhyNet" || !m.TrainedAt.Equal(time.Unix(1700000000, 0)) {
		t.Fatalf("pack metadata drifted: %+v", m)
	}

	gen, _, _ := testEnv(t)
	srv := NewServer(gen.Topology(), gen.Telemetry(), loaded, nil)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"title":"link down","body":"tor1.c1.dc1 reports link flaps","time":100}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict over pack-loaded model: status %d", resp.StatusCode)
	}
}

// TestPackShadowsJSON pins the collision rule: when one version exists in
// both formats, the pack is loaded and the JSON file is left alone as a
// fallback for older readers.
func TestPackShadowsJSON(t *testing.T) {
	_, pack := packFixture(t)
	dir := t.TempDir()

	jsonStore := NewStore()
	jsonStore.Put("JsonTeam", []byte(`{"a":1}`))
	if err := SaveStore(jsonStore, dir); err != nil {
		t.Fatal(err)
	}
	packStore := NewStore()
	packStore.Put("PackTeam", pack)
	if err := SaveStore(packStore, dir); err != nil {
		t.Fatal(err)
	}

	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("versions = %d, report = %+v", loaded.Versions(), rep)
	}
	m, ok := loaded.Get(1)
	if !ok || m.Team != "PackTeam" || !core.IsScoutpack(m.Snapshot) {
		t.Fatalf("pack did not shadow json: %+v", m.Team)
	}
	if _, err := os.Stat(filepath.Join(dir, "model-000001.json")); err != nil {
		t.Fatalf("shadowed json file must survive: %v", err)
	}
}

// TestSaveStoreQuarantinedPack pins load-time verification of the inner
// scoutpack: a .pack file whose payload checksum matches but whose
// scoutpack envelope is damaged quarantines instead of loading.
func TestPackPayloadVerifiedOnLoad(t *testing.T) {
	_, pack := packFixture(t)
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", pack)
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte AND refresh the envelope checksum, so only the
	// scoutpack's own sha256 can catch it.
	path := filepath.Join(dir, "model-000001.pack")
	damaged := append([]byte(nil), pack...)
	damaged[len(damaged)/2] ^= 0x01
	st2 := NewStore()
	st2.Put("X", damaged)
	if err := SaveStore(st2, dir); err != nil {
		t.Fatal(err)
	}
	_, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0].Reason, "scoutpack payload") {
		t.Fatalf("report = %+v, want a scoutpack-payload quarantine", rep)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("damaged pack not set aside: %v", err)
	}
}

// TestLoadStoreLazyVersions pins the eager/lazy split: only the newest
// EagerVersions files are read at load time; older versions are
// registered by path, materialize on first Get, and quarantine on first
// Get when their file is damaged.
func TestLoadStoreLazyVersions(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	for i := 1; i <= 5; i++ {
		st.Put("X", []byte(strings.Repeat("s", i)))
	}
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}

	loaded, rep, err := LoadStore(dir) // default: 2 eager
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Loaded); got != 2 {
		t.Fatalf("eager loads = %v, want the newest 2", rep.Loaded)
	}
	if got := len(rep.Lazy); got != 3 {
		t.Fatalf("lazy registrations = %v, want 3", rep.Lazy)
	}
	if loaded.Versions() != 5 {
		t.Fatalf("versions = %d, want all 5 visible", loaded.Versions())
	}
	// Latest never touches the lazy files.
	if m, ok := loaded.Latest(); !ok || m.Version != 5 || string(m.Snapshot) != "sssss" {
		t.Fatalf("latest = %+v", m)
	}

	// Damage v1 on disk AFTER the load: an eager loader would have caught
	// it already; the lazy path must catch it on first Get.
	path1 := filepath.Join(dir, "model-000001.json")
	data, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path1, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.Get(1); ok {
		t.Fatal("damaged lazy version must not load")
	}
	q := loaded.QuarantinedLazy()
	if len(q) != 1 || q[0].Reason == "" || !q[0].Renamed {
		t.Fatalf("lazy quarantine report = %+v", q)
	}
	if _, err := os.Stat(path1 + ".quarantined"); err != nil {
		t.Fatalf("damaged file not set aside: %v", err)
	}
	if loaded.Versions() != 4 {
		t.Fatalf("versions after quarantine = %d, want 4", loaded.Versions())
	}
	// A healthy lazy version materializes on first Get and stays cached.
	m, ok := loaded.Get(2)
	if !ok || string(m.Snapshot) != "ss" || m.Team != "X" {
		t.Fatalf("lazy v2 = %+v, %v", m, ok)
	}
	if err := os.Remove(filepath.Join(dir, "model-000002.json")); err != nil {
		t.Fatal(err)
	}
	if m, ok := loaded.Get(2); !ok || string(m.Snapshot) != "ss" {
		t.Fatalf("materialized v2 must not re-read its file: %+v, %v", m, ok)
	}
	if drained := loaded.QuarantinedLazy(); len(drained) != 0 {
		t.Fatalf("quarantine report must drain: %+v", drained)
	}
}

// TestLoadStoreEagerOverride pins the option: negative means everything
// eager, explicit N means exactly N.
func TestLoadStoreEagerOverride(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	for i := 1; i <= 4; i++ {
		st.Put("X", []byte("s"))
	}
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	all, rep, err := LoadStoreOptions(dir, LoadOptions{EagerVersions: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 4 || len(rep.Lazy) != 0 || all.Versions() != 4 {
		t.Fatalf("eager=-1: report = %+v", rep)
	}
	_, rep, err = LoadStoreOptions(dir, LoadOptions{EagerVersions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 1 || len(rep.Lazy) != 3 {
		t.Fatalf("eager=1: report = %+v", rep)
	}
}

// TestReloadRecordsLoadStats pins the model-load observability triple
// under an injected clock: duration, bytes and format land in /metrics
// after a reload, and a scoutpack reload flips the format gauge.
func TestReloadRecordsLoadStats(t *testing.T) {
	scout, pack := packFixture(t)
	jsonSnap, err := scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gen, _, _ := testEnv(t)
	st := NewStore()
	st.Put("PhyNet", jsonSnap)
	srv := NewServer(gen.Topology(), gen.Telemetry(), st, nil)
	// Stepping clock: every reading advances 250ms, so one Reload (two
	// readings) records exactly 0.25s.
	now := time.Unix(1700000000, 0)
	srv.Clock = func() time.Time {
		now = now.Add(250 * time.Millisecond)
		return now
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	scrape := func() string {
		rec := httptest.NewRecorder()
		srv.Metrics().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}
	body := scrape()
	if !strings.Contains(body, "scout_model_load_duration_seconds 0.25") {
		t.Fatalf("load duration gauge missing or wrong:\n%s", grepMetric(body, "scout_model_load_duration_seconds"))
	}
	if !strings.Contains(body, "scout_model_bytes "+strconv.Itoa(len(jsonSnap))) {
		t.Fatalf("model bytes gauge wrong:\n%s", grepMetric(body, "scout_model_bytes"))
	}
	if !strings.Contains(body, "scout_model_snapshot_format 0") {
		t.Fatalf("format gauge should say JSON:\n%s", grepMetric(body, "scout_model_snapshot_format"))
	}

	st.Put("PhyNet", pack)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	body = scrape()
	if !strings.Contains(body, "scout_model_snapshot_format 1") {
		t.Fatalf("format gauge should say scoutpack:\n%s", grepMetric(body, "scout_model_snapshot_format"))
	}
	if !strings.Contains(body, "scout_model_bytes "+strconv.Itoa(len(pack))) {
		t.Fatalf("model bytes gauge should track the pack:\n%s", grepMetric(body, "scout_model_bytes"))
	}
}

// TestReloadStoreHook pins the /v1/reload -> directory re-read path: a
// version published to the store directory by another process is picked
// up by the HTTP reload without restarting the server.
func TestReloadStoreHook(t *testing.T) {
	_, pack := packFixture(t)
	dir := t.TempDir()
	seed := NewStore()
	seed.Put("PhyNet", pack)
	if err := SaveStore(seed, dir); err != nil {
		t.Fatal(err)
	}
	gen, _, _ := testEnv(t)
	first, _, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(gen.Topology(), gen.Telemetry(), first, nil)
	srv.ReloadStore = func() (*Store, error) {
		st, _, err := LoadStore(dir)
		return st, err
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}

	// Another process publishes v2 into the directory.
	pub := NewStore()
	pub.Put("PhyNet", pack)
	pub.Put("PhyNet", pack)
	if err := SaveStore(pub, dir); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	var health struct {
		ModelVersion int `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.ModelVersion != 2 {
		t.Fatalf("served version after reload = %d, want 2", health.ModelVersion)
	}
}

// TestRepackStore pins the `scoutctl pack` path: a JSON-snapshot store
// gains a byte-valid .pack per version, the originals stay in place, the
// conversion is idempotent, and a fresh load prefers the packs.
func TestRepackStore(t *testing.T) {
	scout, _ := packFixture(t)
	jsonSnap, err := scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := NewStore()
	st.Put("PhyNet", jsonSnap)
	st.Put("PhyNet", jsonSnap)
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}

	converted, err := RepackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(converted) != 2 {
		t.Fatalf("converted %v, want both versions", converted)
	}
	for _, v := range []int{1, 2} {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("model-%06d.json", v))); err != nil {
			t.Fatalf("v%d JSON original removed: %v", v, err)
		}
		m, err := ReadModelFile(filepath.Join(dir, fmt.Sprintf("model-%06d.pack", v)))
		if err != nil {
			t.Fatalf("v%d pack unreadable: %v", v, err)
		}
		if !core.IsScoutpack(m.Snapshot) {
			t.Fatalf("v%d converted snapshot is not a scoutpack", v)
		}
	}

	again, err := RepackStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second repack converted %v, want nothing", again)
	}

	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined after repack: %+v", rep.Quarantined)
	}
	m, ok := loaded.Latest()
	if !ok || !core.IsScoutpack(m.Snapshot) {
		t.Fatal("load after repack must serve the pack variant")
	}
}

// TestReadModelFileRejectsDamage pins that ReadModelFile is a full
// verification pass, not a parse: a bit flip anywhere in a .pack file
// fails it.
func TestReadModelFileRejectsDamage(t *testing.T) {
	_, pack := packFixture(t)
	dir := t.TempDir()
	st := NewStore()
	st.Put("PhyNet", pack)
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "model-000001.pack")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModelFile(path); err == nil {
		t.Fatal("ReadModelFile accepted a damaged pack file")
	}
}

// grepMetric returns the lines of a scrape mentioning one metric, for
// readable failures.
func grepMetric(body, name string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
