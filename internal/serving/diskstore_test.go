package serving

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("PhyNet", []byte(`{"a":1}`))
	st.Put("PhyNet", []byte(`{"a":2}`))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 2 || len(rep.Loaded) != 2 || len(rep.Quarantined) != 0 {
		t.Fatalf("versions = %d, report = %+v", loaded.Versions(), rep)
	}
	m, ok := loaded.Get(2)
	if !ok || string(m.Snapshot) != `{"a":2}` || m.Team != "PhyNet" {
		t.Fatalf("v2 = %+v", m)
	}
}

func TestLoadStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", []byte("s"))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from a crashed save must also be ignored.
	if err := os.WriteFile(filepath.Join(dir, "model-000002.json.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("versions = %d, report = %+v", loaded.Versions(), rep)
	}
}

func TestLoadStoreToleratesGaps(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", []byte("a"))
	st.Put("X", []byte("b"))
	st.Put("X", []byte("c"))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "model-000002.json")); err != nil {
		t.Fatal(err)
	}
	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 2 || len(rep.Quarantined) != 0 {
		t.Fatalf("versions = %d (report %+v), want the 2 surviving files", loaded.Versions(), rep)
	}
	if _, ok := loaded.Get(2); ok {
		t.Fatal("the deleted version must not resurrect")
	}
	if m, ok := loaded.Get(3); !ok || string(m.Snapshot) != "c" {
		t.Fatalf("v3 = %+v, %v", m, ok)
	}
	if m, ok := loaded.Latest(); !ok || m.Version != 3 {
		t.Fatalf("latest = %+v", m)
	}
	// Publishing into the gapped store continues after the highest version.
	if v := loaded.Put("X", []byte("d")); v != 4 {
		t.Fatalf("next version = %d, want 4", v)
	}
}

func TestLoadStoreQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", []byte("good-1"))
	st.Put("X", []byte("good-2"))
	st.Put("X", []byte("good-3"))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	// v2: tamper with the model payload, keeping the stale checksum.
	path2 := filepath.Join(dir, "model-000002.json")
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"team":"X"`, `"team":"Y"`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in envelope")
	}
	if err := os.WriteFile(path2, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	// v3: truncate mid-file (malformed envelope — the torn-write case).
	path3 := filepath.Join(dir, "model-000003.json")
	if err := os.WriteFile(path3, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 1 {
		t.Fatalf("versions = %d, want only the intact v1", loaded.Versions())
	}
	if len(rep.Quarantined) != 2 {
		t.Fatalf("quarantined = %+v, want 2 entries", rep.Quarantined)
	}
	for _, q := range rep.Quarantined {
		if q.Reason == "" || !q.Renamed {
			t.Fatalf("quarantine entry incomplete: %+v", q)
		}
		if _, err := os.Stat(filepath.Join(dir, q.Name+".quarantined")); err != nil {
			t.Fatalf("quarantined file not set aside: %v", err)
		}
	}
	// The corrupt files are out of the way: a reload sees only good data.
	again, rep2, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if again.Versions() != 1 || len(rep2.Quarantined) != 0 {
		t.Fatalf("second load: versions = %d, report = %+v", again.Versions(), rep2)
	}
}

func TestLoadStoreQuarantinesVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", []byte("a"))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	// Rename v1's file to claim v7: the payload still says version 1.
	if err := os.Rename(filepath.Join(dir, "model-000001.json"), filepath.Join(dir, "model-000007.json")); err != nil {
		t.Fatal(err)
	}
	loaded, rep, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 0 || len(rep.Quarantined) != 1 {
		t.Fatalf("versions = %d, report = %+v", loaded.Versions(), rep)
	}
	if !strings.Contains(rep.Quarantined[0].Reason, "claims v7") {
		t.Fatalf("reason = %q", rep.Quarantined[0].Reason)
	}
}

func TestLoadStoreMissingDir(t *testing.T) {
	if _, _, err := LoadStore(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory should error")
	}
}

func TestSaveStoreEmptyOK(t *testing.T) {
	dir := t.TempDir()
	if err := SaveStore(NewStore(), dir); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 0 {
		t.Fatal("expected empty store")
	}
}

// TestSaveStorePartialFailureStillDurable pins the fsyncrename fix: a
// save that fails midway (here: a lazy model whose backing file is
// gone) must still return an error, AND the versions committed before
// the failure must remain present and loadable — SaveStore's deferred
// directory sync runs on the error path too, so those renames are not
// abandoned undurable.
func TestSaveStorePartialFailureStillDurable(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("PhyNet", []byte(`{"a":1}`))
	// Append an unmaterializable model: Snapshot nil and a backing path
	// that does not exist, so SaveStore's materialization via Get fails
	// after v1 has already been written and renamed.
	st.mu.Lock()
	st.models = append(st.models, Model{
		Version: 2,
		Team:    "PhyNet",
		path:    filepath.Join(dir, "never-existed.json"),
	})
	st.mu.Unlock()

	if err := SaveStore(st, dir); err == nil {
		t.Fatal("SaveStore should fail on the unmaterializable model")
	}
	if _, err := os.Stat(filepath.Join(dir, "model-000001.json")); err != nil {
		t.Fatalf("v1 should be committed despite the later failure: %v", err)
	}
	loaded, _, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := loaded.Get(1); !ok || string(m.Snapshot) != `{"a":1}` {
		t.Fatalf("v1 not loadable after partial save: %+v", m)
	}
}
