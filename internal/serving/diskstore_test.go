package serving

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("PhyNet", []byte(`{"a":1}`))
	st.Put("PhyNet", []byte(`{"a":2}`))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 2 {
		t.Fatalf("versions = %d", loaded.Versions())
	}
	m, ok := loaded.Get(2)
	if !ok || string(m.Snapshot) != `{"a":2}` || m.Team != "PhyNet" {
		t.Fatalf("v2 = %+v", m)
	}
}

func TestLoadStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", []byte("s"))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 1 {
		t.Fatalf("versions = %d", loaded.Versions())
	}
}

func TestLoadStoreRejectsGaps(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Put("X", []byte("a"))
	st.Put("X", []byte("b"))
	if err := SaveStore(st, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "model-000001.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStore(dir); err == nil {
		t.Fatal("gap in versions should be rejected")
	}
}

func TestLoadStoreMissingDir(t *testing.T) {
	if _, err := LoadStore(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory should error")
	}
}

func TestSaveStoreEmptyOK(t *testing.T) {
	dir := t.TempDir()
	if err := SaveStore(NewStore(), dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions() != 0 {
		t.Fatal("expected empty store")
	}
}
